//! `mfsolve` — solve a Matrix Market system with Mille-feuille from the
//! command line.
//!
//! ```text
//! mfsolve <matrix.mtx> [options]
//!
//! options:
//!   --method cg|bicgstab|pcg|pbicgstab|auto   (default: auto — CG for SPD)
//!   --device a100|mi210                       (default: a100)
//!   --rhs ones|a1                             b = 1 or b = A·1 (default: a1)
//!   --tol <float>                             (default: 1e-10)
//!   --max-iter <int>                          (default: 1000)
//!   --fp64                                    disable mixed precision
//!   --no-partial                              disable the dynamic strategy
//!   --multi-kernel | --single-kernel          force the execution mode
//!   --solution <path>                         write x as one value per line
//! ```

use mille_feuille::prelude::*;
use mille_feuille::sparse::{mm::read_matrix_market_file, MatrixStats};
use std::io::Write;
use std::process::ExitCode;

struct Args {
    matrix: String,
    method: String,
    device: String,
    rhs: String,
    tol: f64,
    max_iter: usize,
    fp64: bool,
    no_partial: bool,
    mode: KernelMode,
    solution: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mfsolve <matrix.mtx> [--method cg|bicgstab|pcg|pbicgstab|auto] \
         [--device a100|mi210] [--rhs ones|a1] [--tol T] [--max-iter N] \
         [--fp64] [--no-partial] [--multi-kernel|--single-kernel] [--solution PATH]"
    );
    ExitCode::from(2)
}

fn parse() -> Result<Args, ExitCode> {
    let mut args = Args {
        matrix: String::new(),
        method: "auto".into(),
        device: "a100".into(),
        rhs: "a1".into(),
        tol: 1e-10,
        max_iter: 1000,
        fp64: false,
        no_partial: false,
        mode: KernelMode::Auto,
        solution: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Result<String, ExitCode> {
            it.next().ok_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--method" => args.method = grab("--method")?,
            "--device" => args.device = grab("--device")?,
            "--rhs" => args.rhs = grab("--rhs")?,
            "--tol" => {
                args.tol = grab("--tol")?.parse().map_err(|_| usage())?;
            }
            "--max-iter" => {
                args.max_iter = grab("--max-iter")?.parse().map_err(|_| usage())?;
            }
            "--fp64" => args.fp64 = true,
            "--no-partial" => args.no_partial = true,
            "--multi-kernel" => args.mode = KernelMode::MultiKernel,
            "--single-kernel" => args.mode = KernelMode::SingleKernel,
            "--solution" => args.solution = Some(grab("--solution")?),
            "-h" | "--help" => return Err(usage()),
            other if args.matrix.is_empty() && !other.starts_with('-') => {
                args.matrix = other.to_string();
            }
            other => {
                eprintln!("unknown argument: {other}");
                return Err(usage());
            }
        }
    }
    if args.matrix.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(code) => return code,
    };

    let coo = match read_matrix_market_file(&args.matrix) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}: {e}", args.matrix);
            return ExitCode::FAILURE;
        }
    };
    let a = coo.to_csr();
    if a.nrows != a.ncols {
        eprintln!("matrix must be square ({}x{})", a.nrows, a.ncols);
        return ExitCode::FAILURE;
    }
    let stats = MatrixStats::compute(&a);
    println!(
        "{}: n = {}, nnz = {}, symmetric = {}, diag-dominant rows = {:.0}%",
        args.matrix,
        a.nrows,
        a.nnz(),
        stats.symmetric,
        100.0 * stats.diag_dominant_fraction
    );

    let device = match args.device.as_str() {
        "a100" => DeviceSpec::a100(),
        "mi210" => DeviceSpec::mi210(),
        other => {
            eprintln!("unknown device {other}");
            return ExitCode::from(2);
        }
    };
    let method = if args.method == "auto" {
        if stats.likely_spd() { "cg" } else { "bicgstab" }.to_string()
    } else {
        args.method.clone()
    };

    let b = match args.rhs.as_str() {
        "ones" => vec![1.0; a.nrows],
        "a1" => {
            let mut b = vec![0.0; a.nrows];
            a.matvec(&vec![1.0; a.ncols], &mut b);
            b
        }
        other => {
            eprintln!("unknown rhs {other}");
            return ExitCode::from(2);
        }
    };

    let cfg = SolverConfig {
        tolerance: args.tol,
        max_iter: args.max_iter,
        mixed_precision: !args.fp64,
        partial_convergence: !args.no_partial && !args.fp64,
        kernel_mode: args.mode,
        ..SolverConfig::default()
    };
    let solver = MilleFeuille::new(device, cfg);

    let report = match method.as_str() {
        "cg" => solver.solve_cg(&a, &b),
        "bicgstab" => solver.solve_bicgstab(&a, &b),
        "pcg" => match solver.solve_pcg(&a, &b) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ILU(0) failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        "pbicgstab" => match solver.solve_pbicgstab(&a, &b) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ILU(0) failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        other => {
            eprintln!("unknown method {other}");
            return ExitCode::from(2);
        }
    };

    println!("method:        {method} on {}", solver.device.name);
    println!(
        "result:        {} after {} iterations (relres {:.3e})",
        if report.converged {
            "converged"
        } else {
            "NOT converged"
        },
        report.iterations,
        report.final_relres
    );
    println!(
        "mode:          {:?}, {} warps",
        report.mode, report.warp_count
    );
    println!(
        "modeled time:  {:.1} µs ({})",
        report.total_us(),
        report.timeline
    );
    println!(
        "precision:     {:.1}% of SpMV work below FP64, {:.1}% bypassed",
        100.0 * report.low_precision_fraction(),
        100.0 * report.bypass_fraction()
    );
    println!(
        "memory:        tiled/CSR ratio {:.3}",
        report.tiled_memory.total() as f64 / report.csr_memory as f64
    );

    if let Some(path) = args.solution {
        let mut f = match std::fs::File::create(&path) {
            Ok(f) => std::io::BufWriter::new(f),
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for v in &report.x {
            writeln!(f, "{v:e}").expect("write solution");
        }
        println!("solution:      written to {path}");
    }

    if report.converged {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
