//! # Mille-feuille
//!
//! A from-scratch Rust reproduction of *Mille-feuille: A Tile-Grained Mixed
//! Precision Single-Kernel Conjugate Gradient Solver on GPUs* (SC 2024).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`precision`] | software FP16/FP8, the "enough good" classifier, packed storage |
//! | [`sparse`] | COO/CSR/dense, the two-level tiled format, Matrix Market I/O |
//! | [`gpu`] | device models (A100/MI210), roofline cost model, warp scheduling, dependency arrays |
//! | [`kernels`] | SpMV (CSR/tiled/mixed), BLAS-1, SpTRSV, ILU(0)/IC(0) |
//! | [`solver`] | the Mille-feuille CG/BiCGSTAB/PCG/PBiCGSTAB solver |
//! | [`trace`] | deterministic event recorder: JSONL + Chrome `trace_event` exports |
//! | [`baselines`] | cuSPARSE/hipSPARSE/PETSc/Ginkgo-like comparison solvers |
//! | [`collection`] | synthetic SuiteSparse-style matrix collection |
//!
//! ## Quickstart
//!
//! ```
//! use mille_feuille::prelude::*;
//!
//! // A small SPD system (2-D Poisson), b = A·1.
//! let a = mille_feuille::collection::poisson2d(32, 32);
//! let mut b = vec![0.0; a.nrows];
//! a.matvec(&vec![1.0; a.ncols], &mut b);
//!
//! // Solve with Mille-feuille on the A100 device model.
//! let solver = MilleFeuille::with_defaults(DeviceSpec::a100());
//! let report = solver.solve_cg(&a, &b);
//! assert!(report.converged);
//! assert!(report.x.iter().all(|v| (v - 1.0).abs() < 1e-6));
//! println!("{} iterations, modeled {:.1} µs", report.iterations, report.solve_us());
//! ```

pub use mf_baselines as baselines;
pub use mf_collection as collection;
pub use mf_gpu as gpu;
pub use mf_kernels as kernels;
pub use mf_precision as precision;
pub use mf_solver as solver;
pub use mf_sparse as sparse;
pub use mf_trace as trace;

/// The types most programs need.
pub mod prelude {
    pub use mf_baselines::Baseline;
    pub use mf_gpu::DeviceSpec;
    pub use mf_precision::Precision;
    pub use mf_solver::{
        BreakdownEvent, BreakdownKind, ExecutedMode, FaultKind, FaultPlan, InjectedFaults,
        KernelMode, MilleFeuille, RecoveryAction, ShardedReport, SolveFailure, SolveReport,
        SolverConfig, ThreadedReport, WatchdogPolicy,
    };
    pub use mf_sparse::{Coo, Csr, TiledMatrix};
    pub use mf_trace::{EventKind, Trace, TraceConfig, TraceEvent};
}
