//! Circuit transient simulation: repeated BiCGSTAB solves against the same
//! circuit matrix with a time-varying right-hand side — the workload class
//! (`ASIC_320k`, `rajat24`) the paper's introduction motivates.
//!
//! Circuit matrices mix small-integer device stamps (FP8-classifiable
//! blocks) with wide-dynamic-range interconnect entries (FP64) — exactly
//! the precision structure Fig. 1 shows — and the factorization is reused
//! across time steps for the preconditioned variant.
//!
//! ```text
//! cargo run --release --example circuit_transient
//! ```

use mille_feuille::collection::{circuit_like_with, ValueClass};
use mille_feuille::kernels::ilu0;
use mille_feuille::prelude::*;

fn main() {
    // A 4000-node circuit: 500 blocks of 8 nodes plus 2000 hub interconnects.
    // Hub values span ~5 decades (WideModerate): stiff but solvable to the
    // 1e-10 tolerance — the full post-layout range sits below BiCGSTAB's
    // attainable-accuracy floor (see EXPERIMENTS.md).
    let a = circuit_like_with(500, 8, 2_000, 0.04, ValueClass::WideModerate, 42);
    println!(
        "circuit matrix: n = {}, nnz = {} ({} tiles)",
        a.nrows,
        a.nnz(),
        TiledMatrix::from_csr(&a).tile_count()
    );
    let hist = TiledMatrix::from_csr(&a).tile_precision_histogram();
    println!(
        "tile precisions: FP64 {}  FP32 {}  FP16 {}  FP8 {}\n",
        hist[0], hist[1], hist[2], hist[3]
    );

    let solver = MilleFeuille::with_defaults(DeviceSpec::a100());
    let ilu = ilu0(&a).expect("circuit matrices are diagonally dominated");

    // Time-stepped excitation: the source vector swings each step.
    let n = a.nrows;
    let steps = 8;
    let mut total_mf = 0.0;
    let mut total_pre = 0.0;
    let mut x_prev = vec![0.0; n];
    println!("step | BiCGSTAB iters     µs | PBiCGSTAB iters     µs | Δx");
    for step in 0..steps {
        let t = step as f64 / steps as f64;
        let b: Vec<f64> = (0..n)
            .map(|i| (1.0 + (2.0 * std::f64::consts::PI * t).sin()) * ((i % 7) as f64 - 3.0))
            .collect();

        let rep = solver.solve_bicgstab(&a, &b);
        assert!(rep.converged, "step {step} must converge");
        total_mf += rep.solve_us();

        let pre = solver.solve_pbicgstab_with(&a, &b, &ilu);
        assert!(pre.converged);
        total_pre += pre.solve_us();

        let dx = rep
            .x
            .iter()
            .zip(&x_prev)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        x_prev = rep.x.clone();
        println!(
            "{step:>4} | {:>14} {:>6.1} | {:>15} {:>6.1} | {dx:.3e}",
            rep.iterations,
            rep.solve_us(),
            pre.iterations,
            pre.solve_us()
        );
    }
    println!(
        "\ntotal modeled time over {steps} steps: {total_mf:.1} µs unpreconditioned, \
         {total_pre:.1} µs preconditioned (ILU(0) reused across steps)"
    );
}
