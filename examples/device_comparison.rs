//! Device comparison: the same solves priced on the A100, the MI210, and a
//! user-defined device — showing how the execution model responds to
//! launch latency, bandwidth and shared-memory capacity.
//!
//! ```text
//! cargo run --release --example device_comparison
//! ```

use mille_feuille::collection::{convdiff2d, poisson2d};
use mille_feuille::gpu::Vendor;
use mille_feuille::prelude::*;

/// A hypothetical next-gen device: twice the bandwidth, half the launch
/// latency, 2.5× the shared memory of an A100.
fn nextgen() -> DeviceSpec {
    let mut d = DeviceSpec::a100();
    d.name = "Hypothetical NextGen".into();
    d.vendor = Vendor::Nvidia;
    d.mem_bw_gbs *= 2.0;
    d.fp64_gflops *= 2.0;
    d.kernel_launch_us *= 0.5;
    d.shared_mem_per_sm = (d.shared_mem_per_sm as f64 * 2.5) as usize;
    d
}

fn main() {
    let devices = [DeviceSpec::a100(), DeviceSpec::mi210(), nextgen()];

    println!("CG on 2-D Poisson grids, converged to 1e-10, per device:\n");
    println!(
        "{:<22} {:>9} {:>7} | {:>12} {:>14} {:>9}",
        "device", "n", "iters", "MF µs", "baseline µs", "speedup"
    );
    for grid in [32usize, 128, 384] {
        let a = poisson2d(grid, grid);
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);
        for device in &devices {
            let solver = MilleFeuille::with_defaults(device.clone());
            let rep = solver.solve_cg(&a, &b);
            // Price the FP64 multi-kernel baseline on the same device.
            let base = {
                let cfg = SolverConfig {
                    kernel_mode: KernelMode::MultiKernel,
                    mixed_precision: false,
                    partial_convergence: false,
                    ..SolverConfig::default()
                };
                MilleFeuille::new(device.clone(), cfg).solve_cg(&a, &b)
            };
            println!(
                "{:<22} {:>9} {:>7} | {:>12.1} {:>14.1} {:>8.2}x",
                device.name,
                a.nrows,
                rep.iterations,
                rep.solve_us(),
                base.solve_us(),
                base.solve_us() / rep.solve_us()
            );
        }
        println!();
    }

    println!("BiCGSTAB on convection–diffusion (200×200):");
    let a = convdiff2d(200, 200, 0.5, 0.25);
    let mut b = vec![0.0; a.nrows];
    a.matvec(&vec![1.0; a.ncols], &mut b);
    for device in &devices {
        let rep = MilleFeuille::with_defaults(device.clone()).solve_bicgstab(&a, &b);
        println!(
            "  {:<22} {:>4} iterations, {:>10.1} µs [{:?}, {} warps]",
            device.name,
            rep.iterations,
            rep.solve_us(),
            rep.mode,
            rep.warp_count
        );
    }
}
