//! Quickstart: build a sparse SPD system, solve it with Mille-feuille, and
//! inspect what the solver did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mille_feuille::prelude::*;

fn main() {
    // A 2-D Poisson problem on a 96×96 grid — the classic SPD test system.
    // Its stencil values (4 / −1) are exactly representable in FP8, so the
    // classifier will store every tile in one byte per nonzero.
    let a = mille_feuille::collection::poisson2d(96, 96);
    let mut b = vec![0.0; a.nrows];
    a.matvec(&vec![1.0; a.ncols], &mut b); // b = A·1 like the paper (§IV-A)

    // Solve on the modeled NVIDIA A100 with the paper's defaults:
    // tile-grained mixed precision, single-kernel execution, and the
    // partial-convergence strategy all enabled.
    let solver = MilleFeuille::with_defaults(DeviceSpec::a100());
    let report = solver.solve_cg(&a, &b);

    println!("system:        n = {}, nnz = {}", a.nrows, a.nnz());
    println!(
        "converged:     {} ({} iterations)",
        report.converged, report.iterations
    );
    println!("rel. residual: {:.3e}", report.final_relres);
    println!(
        "mode:          {:?} with {} warps",
        report.mode, report.warp_count
    );
    println!(
        "modeled time:  {:.1} µs solve, {:.1} µs total",
        report.solve_us(),
        report.total_us()
    );
    println!("breakdown:     {}", report.timeline);
    println!(
        "precision:     {:.1}% of SpMV work below FP64, {:.1}% bypassed",
        100.0 * report.low_precision_fraction(),
        100.0 * report.bypass_fraction()
    );
    let mem = report.tiled_memory;
    println!(
        "memory:        tiled {} B vs CSR {} B (ratio {:.3})",
        mem.total(),
        report.csr_memory,
        mem.total() as f64 / report.csr_memory as f64
    );

    // Verify against the exact solution (b = A·1 ⇒ x = 1).
    let worst = report
        .x
        .iter()
        .map(|v| (v - 1.0).abs())
        .fold(0.0f64, f64::max);
    println!("max |x - 1|:   {worst:.3e}");
    assert!(report.converged && worst < 1e-6);

    // Compare with the cuSPARSE-style FP64 multi-kernel baseline.
    let base = Baseline::cusparse().solve_cg(&a, &b, &SolverConfig::default());
    println!(
        "\nbaseline:      {} iterations, {:.1} µs -> Mille-feuille speedup {:.2}x",
        base.iterations,
        base.solve_us(),
        base.solve_us() / report.solve_us()
    );
}
