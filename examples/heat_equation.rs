//! Steady-state heat conduction: a 3-D Poisson system solved with PCG, and
//! a small configuration study — mixed precision on/off, single- vs
//! multi-kernel, A100 vs MI210 — on one realistic workload.
//!
//! ```text
//! cargo run --release --example heat_equation
//! ```

use mille_feuille::collection::poisson3d;
use mille_feuille::prelude::*;

fn main() {
    // 3-D heat cube, 40³ unknowns, 7-point stencil.
    let a = poisson3d(40, 40, 40);
    let n = a.nrows;
    // Heat source in one corner octant.
    let b: Vec<f64> = (0..n).map(|i| if i < n / 8 { 1.0 } else { 0.0 }).collect();
    println!("heat system: n = {n}, nnz = {}\n", a.nnz());

    // --- Plain CG vs ILU(0)-preconditioned CG.
    let solver = MilleFeuille::with_defaults(DeviceSpec::a100());
    let cg = solver.solve_cg(&a, &b);
    let pcg = solver
        .solve_pcg(&a, &b)
        .expect("stencil ILU(0) cannot break down");
    println!(
        "CG : {:>4} iterations, {:>10.1} µs, relres {:.2e} [{:?}]",
        cg.iterations,
        cg.solve_us(),
        cg.final_relres,
        cg.mode
    );
    println!(
        "PCG: {:>4} iterations, {:>10.1} µs, relres {:.2e} (recursive-block SpTRSV)",
        pcg.iterations,
        pcg.solve_us(),
        pcg.final_relres
    );
    assert!(pcg.iterations < cg.iterations, "ILU(0) must cut iterations");

    // Solutions agree.
    let diff =
        cg.x.iter()
            .zip(&pcg.x)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
    println!("max |x_cg - x_pcg| = {diff:.2e}\n");

    // --- Configuration sweep on CG.
    println!(
        "{:<42} {:>6} {:>12} {:>10}",
        "configuration", "iters", "solve µs", "relres"
    );
    let configs: Vec<(&str, DeviceSpec, SolverConfig)> = vec![
        (
            "A100, mixed + partial (paper default)",
            DeviceSpec::a100(),
            SolverConfig::default(),
        ),
        (
            "A100, mixed, partial convergence off",
            DeviceSpec::a100(),
            SolverConfig {
                partial_convergence: false,
                ..SolverConfig::default()
            },
        ),
        (
            "A100, FP64 only",
            DeviceSpec::a100(),
            SolverConfig::fp64_only(),
        ),
        (
            "A100, forced multi-kernel",
            DeviceSpec::a100(),
            SolverConfig {
                kernel_mode: KernelMode::MultiKernel,
                ..SolverConfig::default()
            },
        ),
        (
            "MI210, mixed + partial",
            DeviceSpec::mi210(),
            SolverConfig::default(),
        ),
    ];
    for (label, device, cfg) in configs {
        let rep = MilleFeuille::new(device, cfg).solve_cg(&a, &b);
        println!(
            "{label:<42} {:>6} {:>12.1} {:>10.2e}",
            rep.iterations,
            rep.solve_us(),
            rep.final_relres
        );
    }
}
