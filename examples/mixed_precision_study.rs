//! Mixed-precision study: how the "enough good" classification threshold
//! and the partial-convergence safety factor trade storage, speed and
//! iteration count on one workload.
//!
//! The paper fixes both knobs (loss < 1e-15, thresholds ε·10⁻³…ε); this
//! example shows what the dials do — relaxing the loss threshold pushes
//! more tiles narrow (cheaper, but costs iterations once rounding bites),
//! and a looser partial-convergence ladder bypasses more work.
//!
//! ```text
//! cargo run --release --example mixed_precision_study
//! ```

use mille_feuille::precision::ClassifyOptions;
use mille_feuille::prelude::*;

fn main() {
    // A CFD-like system with real-valued coefficients so classification
    // actually has decisions to make.
    let a = mille_feuille::collection::banded_spd(
        20_000,
        6,
        mille_feuille::collection::ValueClass::Real,
        7,
    );
    let mut b = vec![0.0; a.nrows];
    a.matvec(&vec![1.0; a.ncols], &mut b);
    println!("system: n = {}, nnz = {}\n", a.nrows, a.nnz());

    // --- Dial 1: the classification loss threshold.
    println!("classification loss threshold sweep (paper: 1e-15):");
    println!(
        "{:>10} | {:>7} {:>7} {:>7} {:>7} | {:>9} | {:>6} | {:>10}",
        "threshold", "t64", "t32", "t16", "t8", "mem/CSR", "iters", "solve µs"
    );
    for loss in [1e-15, 1e-9, 1e-6, 1e-2, 0.4] {
        let classify = ClassifyOptions {
            loss_threshold: loss,
            ..ClassifyOptions::default()
        };
        let t = TiledMatrix::from_csr_with(&a, 16, &classify);
        let h = t.tile_precision_histogram();
        let mem = t.memory_bytes().total() as f64 / a.memory_bytes() as f64;
        let cfg = SolverConfig {
            classify,
            ..SolverConfig::default()
        };
        let rep = MilleFeuille::new(DeviceSpec::a100(), cfg).solve_cg(&a, &b);
        println!(
            "{:>10.0e} | {:>7} {:>7} {:>7} {:>7} | {:>9.3} | {:>6} | {:>10.1}{}",
            loss,
            h[0],
            h[1],
            h[2],
            h[3],
            mem,
            rep.iterations,
            rep.solve_us(),
            if rep.converged { "" } else { "  [!conv]" }
        );
    }

    // --- Dial 2: the partial-convergence safety factor, on a system with
    // genuinely early-converging components (the m3plates class).
    let a = mille_feuille::collection::decoupled_blocks_with(160, 64, 0.3, 2.0, 21);
    let mut b = vec![0.0; a.nrows];
    a.matvec(&vec![1.0; a.ncols], &mut b);
    println!(
        "\nsecond system (decoupled blocks): n = {}, nnz = {}",
        a.nrows,
        a.nnz()
    );
    println!(
        "\npartial-convergence safety factor sweep (default 0.1; 1.0 = paper's exact ladder):"
    );
    println!(
        "{:>8} | {:>6} | {:>8} | {:>10}",
        "safety", "iters", "bypass%", "solve µs"
    );
    for safety in [0.0f64, 0.01, 0.1, 1.0] {
        let cfg = SolverConfig {
            partial_convergence: safety > 0.0,
            partial_safety: safety.max(1e-300),
            ..SolverConfig::default()
        };
        let rep = MilleFeuille::new(DeviceSpec::a100(), cfg).solve_cg(&a, &b);
        println!(
            "{:>8} | {:>6} | {:>8.2} | {:>10.1}{}",
            if safety == 0.0 {
                "off".to_string()
            } else {
                format!("{safety}")
            },
            rep.iterations,
            100.0 * rep.bypass_fraction(),
            rep.solve_us(),
            if rep.converged { "" } else { "  [!conv]" }
        );
    }
    println!("\nreading: storage shrinks monotonically with the loss threshold, and the\nsolver tolerates surprisingly sloppy storage before iterations grow — the\nheadroom Finding 1 exploits. The safety dial trades bypass volume against\nrobustness on stiff systems (EXPERIMENTS.md, deviation 4).");
}
