//! Precision explorer: renders the Fig.-1-style "enough good" precision map
//! of a matrix as ASCII art, plus the classification histograms.
//!
//! Works on the built-in named proxies or on any Matrix Market file:
//!
//! ```text
//! cargo run --release --example precision_explorer            # named proxies
//! cargo run --release --example precision_explorer my.mtx     # your matrix
//! ```

use mille_feuille::collection::named_matrix;
use mille_feuille::precision::{classification_histogram, ClassifyOptions, Precision};
use mille_feuille::prelude::*;
use mille_feuille::sparse::mm::read_matrix_market_file;

/// Renders a coarse tile-precision map: each character cell aggregates the
/// tile grid down to at most `width` columns and shows the *widest*
/// precision any covered tile needs.
fn render_map(t: &TiledMatrix, width: usize) {
    if t.tile_count() == 0 {
        println!("  (empty matrix)");
        return;
    }
    let scale = (t.tile_cols.max(t.tile_rows)).div_ceil(width).max(1);
    let rows = t.tile_rows.div_ceil(scale);
    let cols = t.tile_cols.div_ceil(scale);
    // 0 empty, else precision rank (1=FP8 .. 4=FP64).
    let mut grid = vec![0u8; rows * cols];
    for i in 0..t.tile_count() {
        let r = t.tile_rowidx[i] as usize / scale;
        let c = t.tile_colidx[i] as usize / scale;
        let rank = match t.tile_prec[i] {
            Precision::Fp8 => 1,
            Precision::Fp16 => 2,
            Precision::Fp32 => 3,
            Precision::Fp64 => 4,
        };
        let cell = &mut grid[r * cols + c];
        *cell = (*cell).max(rank);
    }
    println!("  legend: '.' empty  '8' FP8  'h' FP16  's' FP32  'D' FP64  (1 char = {scale}x{scale} tiles)");
    for r in 0..rows {
        let line: String = (0..cols)
            .map(|c| match grid[r * cols + c] {
                0 => '.',
                1 => '8',
                2 => 'h',
                3 => 's',
                _ => 'D',
            })
            .collect();
        println!("  {line}");
    }
}

fn explore(name: &str, a: &Csr) {
    println!("== {name}: n = {}, nnz = {}", a.nrows, a.nnz());
    let h = classification_histogram(&a.vals, &ClassifyOptions::default());
    let pct = |c: usize| 100.0 * c as f64 / a.nnz().max(1) as f64;
    println!(
        "  nonzeros: FP64 {:.1}%  FP32 {:.1}%  FP16 {:.1}%  FP8 {:.1}%",
        pct(h[0]),
        pct(h[1]),
        pct(h[2]),
        pct(h[3])
    );
    let t = TiledMatrix::from_csr(a);
    let th = t.tile_precision_histogram();
    println!(
        "  tiles:    FP64 {}  FP32 {}  FP16 {}  FP8 {}   (memory {:.3}x of CSR)",
        th[0],
        th[1],
        th[2],
        th[3],
        t.memory_bytes().total() as f64 / a.memory_bytes() as f64
    );
    render_map(&t, 64);
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        for name in ["garon2", "nmos3", "ASIC_320k"] {
            let a = named_matrix(name).expect("named proxy").generate();
            explore(name, &a);
        }
        println!("tip: pass a path to a Matrix Market file to explore your own matrix");
    } else {
        for path in &args {
            match read_matrix_market_file(path) {
                Ok(coo) => explore(path, &coo.to_csr()),
                Err(e) => eprintln!("{path}: {e}"),
            }
        }
    }
}
