//! Offline stand-in for the `rayon` crate.
//!
//! Implements the indexed-parallel-iterator subset this workspace uses
//! (`par_iter`, `par_iter_mut`, `into_par_iter`, `map`, `zip`, `enumerate`,
//! `filter_map`, `for_each`, `sum`, `collect`) on top of
//! [`std::thread::scope`]. There is no work-stealing pool: each consumer
//! splits its index space into one contiguous chunk per available thread and
//! joins them in order, so **chunk results are always combined in index
//! order** — `collect` preserves input order exactly like real rayon.
//!
//! The driving model is an *indexed* iterator: every source knows its length
//! and can produce the item at index `i`. Each index is produced exactly
//! once by exactly one chunk, which is what makes the `&mut`/by-value
//! sources sound (disjoint chunks never alias).

use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::Range;
use std::sync::OnceLock;

/// Number of worker threads consumers may use: `RAYON_NUM_THREADS` if set,
/// otherwise [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Splits `0..len` into at most `chunks` contiguous ranges of near-equal
/// size, in index order.
fn chunk_bounds(len: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1).min(len.max(1));
    let base = len / chunks;
    let rem = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut lo = 0;
    for c in 0..chunks {
        let hi = lo + base + usize::from(c < rem);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Runs `work` over `0..len` split into per-thread chunks and returns the
/// chunk results **in index order**. Chunk 0 runs on the calling thread.
fn drive<R, W>(len: usize, work: W) -> Vec<R>
where
    R: Send,
    W: Fn(Range<usize>) -> R + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 {
        return vec![work(0..len)];
    }
    let bounds = chunk_bounds(len, threads);
    std::thread::scope(|s| {
        let mut rest = bounds[1..].iter().cloned();
        let handles: Vec<_> = rest
            .by_ref()
            .map(|r| {
                let work = &work;
                s.spawn(move || work(r))
            })
            .collect();
        let mut out = Vec::with_capacity(bounds.len());
        out.push(work(bounds[0].clone()));
        for h in handles {
            out.push(h.join().expect("rayon worker panicked"));
        }
        out
    })
}

/// An indexed parallel iterator.
///
/// # Safety
///
/// Callers of [`get`](ParallelIterator::get) must request each index in
/// `0..len()` at most once across all threads; sources that hand out `&mut`
/// references or move values out rely on that exclusivity.
pub unsafe trait ParallelIterator: Sized + Sync {
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// `true` when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the item at `i`.
    ///
    /// # Safety
    /// Each index may be taken at most once (see trait docs), and `i` must
    /// be `< self.len()`.
    unsafe fn get(&self, i: usize) -> Self::Item;

    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pairs items with those of `other`, truncating to the shorter side.
    fn zip<B>(self, other: B) -> Zip<Self, B::Iter>
    where
        B: IntoParallelIterator,
    {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Maps each item through `f`, keeping only `Some` results (in index
    /// order).
    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Sync,
        R: Send,
    {
        FilterMap { base: self, f }
    }

    /// Applies `f` to every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive(self.len(), |r| {
            for i in r {
                f(unsafe { self.get(i) });
            }
        });
    }

    /// Sums the items. Chunk partial sums are combined in index order.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        drive(self.len(), |r| {
            r.map(|i| unsafe { self.get(i) }).sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// Collects the items, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Collection types constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;

    /// Builds from per-chunk buffers already in index order (used by
    /// `filter_map`, where chunks yield a variable number of items).
    fn from_ordered_chunks(chunks: Vec<Vec<T>>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Vec<T> {
        let len = it.len();
        let chunks = drive(len, |r| {
            r.map(|i| unsafe { it.get(i) }).collect::<Vec<T>>()
        });
        let mut out = Vec::with_capacity(len);
        for c in chunks {
            out.extend(c);
        }
        out
    }

    fn from_ordered_chunks(chunks: Vec<Vec<T>>) -> Vec<T> {
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

/// Values convertible into a [`ParallelIterator`].
pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` on shared slices (and anything derefing to one).
pub trait IntoParallelRefIterator<'a> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'a;
    fn par_iter(&'a self) -> Self::Iter;
}

/// `.par_iter_mut()` on mutable slices (and anything derefing to one).
pub trait IntoParallelRefMutIterator<'a> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'a;
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T: Sync> {
    slice: &'a [T],
}

unsafe impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn get(&self, i: usize) -> &'a T {
        self.slice.get_unchecked(i)
    }
}

/// Parallel iterator over `&mut [T]`. Soundness: the driver hands each index
/// to exactly one chunk, so the `&mut` references never alias.
pub struct ParIterMut<'a, T: Send> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for ParIterMut<'_, T> {}

unsafe impl<'a, T: Send> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn get(&self, i: usize) -> &'a mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

/// Owning parallel iterator over `Vec<T>`. Items are moved out with
/// `ptr::read`; the allocation is freed (without dropping elements) when the
/// iterator is dropped. Consumers read every index exactly once; if a
/// consumer panics mid-way the unread items leak rather than double-drop.
pub struct IntoVec<T: Send> {
    buf: ManuallyDrop<Vec<T>>,
}

unsafe impl<T: Send> Sync for IntoVec<T> {}

unsafe impl<T: Send> ParallelIterator for IntoVec<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.buf.len()
    }

    unsafe fn get(&self, i: usize) -> T {
        debug_assert!(i < self.buf.len());
        std::ptr::read(self.buf.as_ptr().add(i))
    }
}

impl<T: Send> Drop for IntoVec<T> {
    fn drop(&mut self) {
        // Free the allocation only; the items were moved out by `get`.
        unsafe {
            let v = ManuallyDrop::take(&mut self.buf);
            let mut v = ManuallyDrop::new(v);
            drop(Vec::from_raw_parts(v.as_mut_ptr(), 0, v.capacity()));
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = ParIterMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> ParIterMut<'a, T> {
        ParIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = IntoVec<T>;
    type Item = T;
    fn into_par_iter(self) -> IntoVec<T> {
        IntoVec {
            buf: ManuallyDrop::new(self),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = ParIterMut<'a, T>;
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

unsafe impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn get(&self, i: usize) -> R {
        (self.f)(self.base.get(i))
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

unsafe impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    unsafe fn get(&self, i: usize) -> (A::Item, B::Item) {
        (self.a.get(i), self.b.get(i))
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

unsafe impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn get(&self, i: usize) -> (usize, I::Item) {
        (i, self.base.get(i))
    }
}

/// See [`ParallelIterator::filter_map`]. Yields a variable number of items
/// per chunk, so it exposes its own consumers rather than implementing the
/// indexed trait.
pub struct FilterMap<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> FilterMap<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> Option<R> + Sync,
    R: Send,
{
    /// Collects the retained items, preserving input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let chunks = drive(self.base.len(), |r| {
            r.filter_map(|i| (self.f)(unsafe { self.base.get(i) }))
                .collect::<Vec<R>>()
        });
        C::from_ordered_chunks(chunks)
    }
}

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_moves_values() {
        let v: Vec<String> = (0..257).map(|i| i.to_string()).collect();
        let out: Vec<String> = v.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out.len(), 257);
        assert_eq!(out[256], "256!");
    }

    #[test]
    fn zip_sum_matches_serial() {
        let x: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..20_000).map(|i| (i % 7) as f64).collect();
        let par: f64 = x.par_iter().zip(&y[..]).map(|(a, b)| a * b).sum();
        let ser: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        // Chunked summation can reassociate vs fully serial; both are exact
        // here because products are integers well within f64 range.
        assert_eq!(par, ser);
    }

    #[test]
    fn par_iter_mut_writes_every_slot() {
        let mut v = vec![0u64; 5000];
        v.par_iter_mut().enumerate().for_each(|(i, slot)| {
            *slot = i as u64;
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn filter_map_keeps_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v
            .into_par_iter()
            .filter_map(|x| if x % 3 == 0 { Some(x) } else { None })
            .collect();
        assert_eq!(out, (0..1000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<usize> = Vec::new();
        let out: Vec<usize> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let s: f64 = Vec::<f64>::new().into_par_iter().sum();
        assert_eq!(s, 0.0);
    }
}
