//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition API this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, groups, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`) with a simple
//! median-of-samples wall-clock measurement instead of criterion's full
//! statistical machinery. Reports are printed as plain text; no HTML.
//!
//! When invoked with `--test` (what `cargo test` passes to `harness = false`
//! targets) every benchmark body runs exactly once as a smoke test, like
//! real criterion's test mode.

use std::time::{Duration, Instant};

/// How work-per-iteration is reported.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median per-sample duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if test_mode() {
            std::hint::black_box(f());
            self.last = Some(Duration::ZERO);
            return;
        }
        // One warmup, then `samples` timed runs.
        std::hint::black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times.push(t0.elapsed());
        }
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !test_mode() {
            println!("\n== {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&id.into().id, sample_size, None, f);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        last: None,
    };
    f(&mut b);
    if test_mode() {
        println!("test-mode smoke: {id} ... ok");
        return;
    }
    match b.last {
        Some(t) => {
            let rate = throughput.map_or(String::new(), |tp| {
                let secs = t.as_secs_f64().max(1e-12);
                match tp {
                    Throughput::Elements(n) => {
                        format!("  ({:.3} Melem/s)", n as f64 / secs / 1e6)
                    }
                    Throughput::Bytes(n) => {
                        format!("  ({:.3} MiB/s)", n as f64 / secs / (1024.0 * 1024.0))
                    }
                }
            });
            println!("{id:<40} {:>12}{rate}", format_duration(t));
        }
        None => println!("{id:<40} (no measurement)"),
    }
}

/// Group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    #[allow(dead_code)]
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, tp: Throughput) {
        self.throughput = Some(tp);
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &id.into().id,
            self.criterion.sample_size,
            self.throughput,
            f,
        );
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &id.into().id,
            self.criterion.sample_size,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Ends the group (printing nothing extra in this stand-in).
    pub fn finish(self) {}
}

/// Declares a group-runner function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(100));
        let mut hits = 0u32;
        g.bench_function("inc", |b| b.iter(|| hits = hits.wrapping_add(1)));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(hits > 0);
    }
}
