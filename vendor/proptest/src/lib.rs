//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of proptest this workspace's property tests use:
//! the `proptest! { #![proptest_config(..)] fn case(x in strategy) {..} }`
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range/tuple/vec
//! strategies, `prop_map`/`prop_flat_map`, and `prop::num::{f32,f64}::NORMAL`.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! message and case number only), and value streams are deterministic per
//! test name (seeded from a hash of the test function's name) rather than
//! drawn from an OS RNG. Both are acceptable for this repo: the tests assert
//! mathematical invariants where any counterexample is already small enough
//! to debug from the assertion message.

/// Per-run configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` passing cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject(String),
        /// `prop_assert!`-style failure; abort the test.
        Fail(String),
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 stream, seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an FNV-1a hash of `name`, so every test has its own
        /// reproducible stream.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<R, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> R,
        {
            Map { base: self, f }
        }

        /// Builds a second strategy from each generated value and samples it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, F, R> Strategy for Map<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> R,
    {
        type Value = R;

        fn generate(&self, rng: &mut TestRng) -> R {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, F, S> Strategy for FlatMap<B, F>
    where
        B: Strategy,
        S: Strategy,
        F: Fn(B::Value) -> S,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.unit_f64() * (self.end as f64 - self.start as f64)) as f32
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:ident $idx:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s of `elem` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod num {
    mod imp {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniform over the *bit patterns* that decode to normal f64s
        /// (log-uniform magnitudes, both signs), like proptest's `NORMAL`.
        pub struct NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }

        /// f32 analogue of [`NormalF64`].
        pub struct NormalF32;

        impl Strategy for NormalF32 {
            type Value = f32;
            fn generate(&self, rng: &mut TestRng) -> f32 {
                loop {
                    let v = f32::from_bits(rng.next_u64() as u32);
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }

    pub mod f64 {
        pub const NORMAL: super::imp::NormalF64 = super::imp::NormalF64;
    }

    pub mod f32 {
        pub const NORMAL: super::imp::NormalF32 = super::imp::NormalF32;
    }
}

/// Namespace mirror so tests can write `prop::collection::vec` and
/// `prop::num::f64::NORMAL` after `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::num;
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __lhs = $a;
        let __rhs = $b;
        if !(__lhs == __rhs) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __lhs,
                __rhs
            )));
        }
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        // `if c {} else { .. }` rather than `if !c`: `!` on a float
        // comparison trips clippy::neg_cmp_op_on_partial_ord at every
        // call site.
        if $cond {
        } else {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Defines property tests: each `fn` runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: $crate::test_runner::TestCaseResult =
                    (move || { $body Ok(()) })();
                match __outcome {
                    Ok(()) => __passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                        __rejected += 1;
                        assert!(
                            __rejected < __config.cases.saturating_mul(256).max(4096),
                            "proptest '{}': too many prop_assume rejections ({})",
                            stringify!($name),
                            __why
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest '{}' failed after {} passing case(s): {}",
                            stringify!($name),
                            __passed,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_tuples(x in 1usize..10, (a, b) in (0u8..4, -3i32..=3)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((-3..=3).contains(&b), "b = {}", b);
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..8).prop_flat_map(|n| prop::collection::vec(0..n, 1..20))) {
            let n = *v.iter().max().unwrap() + 1;
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn normals_are_normal(x in prop::num::f64::NORMAL, y in prop::num::f32::NORMAL) {
            prop_assert!(x.is_normal());
            prop_assert!(y.is_normal());
        }

        #[test]
        fn assume_rejects(v in -10.0f64..10.0) {
            prop_assume!(v.abs() > 0.5);
            prop_assert!(v != 0.0);
        }

        #[test]
        fn map_applies(s in (0u16..100).prop_map(|v| v.to_string())) {
            prop_assert_eq!(s.parse::<u16>().unwrap() < 100, true);
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!((0..1000u32).generate(&mut a), (0..1000u32).generate(&mut b));
        }
    }
}
