//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! tiny slice of the `bytes` API it actually uses: an immutable byte buffer
//! ([`Bytes`]) and a growable builder ([`BytesMut`]) with `freeze`. Both are
//! thin wrappers over `Vec<u8>` — the zero-copy refcounting of the real
//! crate is irrelevant to how `mf-precision` uses it (append-only build,
//! then read-only random access).

use std::ops::Deref;

/// Immutable contiguous byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    buf: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no bytes are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Bytes {
        Bytes { buf }
    }
}

impl From<&[u8]> for Bytes {
    fn from(b: &[u8]) -> Bytes {
        Bytes { buf: b.to_vec() }
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no bytes are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends `src` to the buffer.
    #[inline]
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { buf: self.buf }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_read() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(&[1, 2, 3]);
        b.extend_from_slice(&[4]);
        assert_eq!(b.len(), 4);
        let f = b.freeze();
        assert_eq!(&f[1..3], &[2, 3]);
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
    }

    #[test]
    fn from_vec_roundtrip() {
        let f = Bytes::from(vec![9u8, 8]);
        assert_eq!(&f[..], &[9, 8]);
    }
}
