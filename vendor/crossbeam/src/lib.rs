//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::scope` is used in this workspace (structured fork/join in
//! `mf-solver::threaded` and `mf-gpu::deps`). Since Rust 1.63 the standard
//! library provides scoped threads, so this shim forwards to
//! [`std::thread::scope`] and mimics the crossbeam calling convention:
//! the scope closure and each spawned closure receive a `&Scope` argument,
//! and `scope` returns a `Result` (always `Ok` here; panics in child threads
//! propagate on join exactly as callers expect from `.unwrap()`).

use std::thread;

/// Scope handle passed to the `scope` closure and to spawned closures.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives this scope again so it
    /// can spawn nested work, matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let this = *self;
        self.inner.spawn(move || f(&this))
    }
}

/// Runs `f` with a scope in which threads can borrow from the enclosing
/// stack frame; joins all spawned threads before returning.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack() {
        let data = [1u64, 2, 3, 4];
        let mut left = 0u64;
        let mut right = 0u64;
        super::scope(|s| {
            let (a, b) = data.split_at(2);
            let ha = s.spawn(move |_| a.iter().sum::<u64>());
            let hb = s.spawn(move |_| b.iter().sum::<u64>());
            left = ha.join().unwrap();
            right = hb.join().unwrap();
        })
        .unwrap();
        assert_eq!(left + right, 10);
    }
}
