//! Offline stand-in for the `rand` crate.
//!
//! The matrix generators in `mf-collection` only need a seedable,
//! deterministic PRNG with uniform range/bool sampling. This shim provides
//! exactly that surface (`Rng`, `RngExt`, `SeedableRng`, `rngs::StdRng`)
//! backed by SplitMix64 — statistically solid for test-matrix generation
//! and fully reproducible from a `u64` seed. Streams do NOT match the real
//! `rand` crate bit-for-bit; everything in this workspace that depends on
//! random data derives it from fixed seeds through this one implementation,
//! so reproducibility within the workspace is what matters.

/// Core uniform random source.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that can be sampled uniformly. Implemented for half-open and
/// inclusive ranges of the integer and float types the workspace uses.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample from `range`.
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.random_range(1..=15);
            assert!((1..=15).contains(&v));
            let f: f64 = rng.random_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&f));
            let g: f32 = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&g));
            let n = rng.random_range(0usize..7);
            assert!(n < 7);
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
