#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint — all offline (the workspace vendors
# every external crate under vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --locked --offline --workspace
cargo test -q --locked --offline --workspace
cargo clippy --all-targets --workspace --locked --offline -- -D warnings
