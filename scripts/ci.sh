#!/usr/bin/env bash
# Tier-1 CI gate: format, build, test, lint — all offline (the workspace
# vendors every external crate under vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

# First-party packages only: the vendored stand-ins under vendor/ are
# workspace members but keep their upstream formatting, so fmt (and any
# other "our code" gate) must name packages instead of using --all.
MF_PACKAGES=(
    mille-feuille mf-baselines mf-bench mf-collection mf-gpu
    mf-kernels mf-precision mf-serve mf-solver mf-sparse mf-trace
)
FMT_ARGS=()
for p in "${MF_PACKAGES[@]}"; do FMT_ARGS+=(-p "$p"); done
cargo fmt "${FMT_ARGS[@]}" --check

# Debug tier. Build everything (test binaries included) *before* the test
# timeout starts: previously the debug test run cold-compiled the whole
# workspace a second time inside its 600 s budget — right after the release
# build below had already cold-compiled it once — so a slow compile could
# eat the entire window and a genuine hang had almost no budget left to be
# caught in. The hard kill now bounds test *execution* only.
cargo build --locked --offline --workspace --all-targets
# Hard timeout: the threaded engines are hang-proof by design (poison flag +
# watchdog), so a wedged test run is a regression — kill it instead of letting
# CI sit forever.
timeout --signal=KILL 600 cargo test -q --locked --offline --workspace

# Release tier: one release build (again with test binaries) serves every
# release-only tier below.
cargo build --release --locked --offline --workspace --all-targets
# The cross-engine differential harness (threaded PCG/PBiCGSTAB vs
# sequential references, bitwise) includes release-only deep sweeps that
# are ignored in debug; run them optimized, again with a hard kill so a
# wedged in-kernel SpTRSV fails fast instead of stalling CI.
timeout --signal=KILL 420 cargo test -q --locked --offline --release -p mille-feuille --test threaded_parity
# Pipelined-parity tier: the pipelined CG/PCG engines against their
# sequential references (bitwise, clean and under seeded perturbation)
# plus the explicit pipelined-vs-classic residual-drift envelope; the
# release run includes the 576-row asymmetric-warp sweep ignored in debug.
timeout --signal=KILL 420 cargo test -q --locked --offline --release -p mille-feuille --test pipelined_parity
# Fault-injection tier (release-only: the full FaultKind × engine × warp
# matrix is ignored in debug). Every plan in the suite is seed-deterministic;
# on failure the assertion message embeds the plan's Display form — a
# compilable `FaultPlan::seeded(..)` builder line — so the exact perturbation
# can be replayed. The hard kill bounds a watchdog regression (a missed wedge
# would otherwise spin forever).
if ! timeout --signal=KILL 300 cargo test -q --locked --offline --release -p mille-feuille --test fault_injection -- --include-ignored; then
    echo "fault_injection tier failed: the repro seed is the FaultPlan::seeded(..) line in the assertion above" >&2
    exit 1
fi
timeout --signal=KILL 300 cargo test -q --locked --offline --release -p mf-solver --test prop_heartbeat
# Adaptive-parity tier: the residual-driven re-tier controller across all
# four engine families (classic/pipelined × sequential/threaded) — one
# decision sequence everywhere, bitwise warp-count invariance, and bitwise
# stability under the seeded FaultPlan perturbation. Deterministic end to
# end: on failure the assertion embeds the compilable FaultPlan::seeded(..)
# builder line (where a perturbation is involved) and a plain rerun
# replays everything else.
if ! timeout --signal=KILL 300 cargo test -q --locked --offline --release -p mille-feuille --test adaptive_parity; then
    echo "adaptive_parity tier failed: fixtures and any FaultPlan are seed-deterministic — rerun the named test to replay; the FaultPlan::seeded(..) line in the assertion (if present) is the exact perturbation" >&2
    exit 1
fi
# Sharded-parity tier: the multi-device sharded CG/PCG engines against the
# single-device threaded engine, bitwise across the (matrix × precision ×
# shard-count × warp-count) grid, clean and under the seeded delay/stall
# plan. Everything is seed-deterministic: on failure the assertion message
# carries the combination's (matrix, precision, shards, warps) coordinates
# and — for the faulted grids — the compilable FaultPlan::seeded(..) repro
# line.
if ! timeout --signal=KILL 420 cargo test -q --locked --offline --release -p mille-feuille --test sharded_parity; then
    echo "sharded_parity tier failed: rerun the named test to replay; the assertion names the (matrix, precision, shards, warps) combination and any FaultPlan::seeded(..) line is the exact perturbation" >&2
    exit 1
fi
# Shard-partition property tier: partitioner row coverage, halo exactness
# and the two-level reduction's bitwise shard invariance over generated
# (n, tile_size, shards) space. Generator streams are seeded from test
# names, so a plain rerun replays a failure.
timeout --signal=KILL 300 cargo test -q --locked --offline --release -p mf-gpu --test prop_partition
# Re-tier property tier: scaled-FP8 round-trip/monotonicity envelopes and
# controller plan invariants (determinism, period alignment, monotone cap,
# ≤4 plans) over generated trajectories. The vendored proptest shim seeds
# each generator stream from the test name, so a failure replays with a
# plain rerun of the same test.
timeout --signal=KILL 300 cargo test -q --locked --offline --release -p mf-precision --test prop_retier
# Serving tier (release: the adversarial cache suite spawns seeded
# concurrent request threads across eviction boundaries — optimized builds
# give the interleavings real contention; a condvar bug shows up as a hang,
# which the hard kill converts into a fast failure).
timeout --signal=KILL 300 cargo test -q --locked --offline --release -p mf-serve
cargo clippy --all-targets --workspace --locked --offline -- -D warnings
