#!/usr/bin/env bash
# CI driver: format, build, test, lint — all offline (the workspace
# vendors every external crate under vendor/).
#
# The release test tiers are DATA, not steps: one declarative table
# (name|package|test target|budget|extra test args|repro-hint kind),
# one runner function. `.github/workflows/ci.yml` consumes the same
# table via `scripts/ci.sh --tier <name>` / `--release-tiers`, so a
# tier added here is automatically a tier added in CI.
#
# Modes:
#   (no args)        full tier-1 gate: fmt, debug build+test, release
#                    build, every release tier, clippy
#   --lint           fmt --check + clippy -D warnings only
#   --debug          debug build + debug test suite (600 s hard kill)
#   --release-tiers  every release tier from the table, in order
#   --tier NAME      one release tier (self-sufficient: builds its own
#                    test binaries if missing, so a single invocation
#                    works on a clean checkout)
#   --list-tiers     print the tier table
set -euo pipefail
cd "$(dirname "$0")/.."

# First-party packages only: the vendored stand-ins under vendor/ are
# workspace members but keep their upstream formatting, so fmt (and any
# other "our code" gate) must name packages instead of using --all.
MF_PACKAGES=(
    mille-feuille mf-baselines mf-bench mf-collection mf-gpu
    mf-kernels mf-precision mf-serve mf-solver mf-sparse mf-trace
)

# ---- The release tier table -------------------------------------------
# Field layout: name|package|test target|budget seconds|extra args|repro
#   name         tier id (used by --tier and as the log/file name)
#   package      cargo -p argument
#   test target  cargo --test argument; empty = the package's whole suite
#   budget       hard-kill budget for test *execution* (not compilation)
#   extra args   appended after `--` (e.g. --include-ignored)
#   repro        how to replay a failure:
#                  faultplan    assertion embeds a compilable
#                               FaultPlan::seeded(..) builder line
#                  ticketfaults assertion embeds a compilable
#                               TicketFaults::seeded(..) builder line
#                  rerun        fixtures/generators are seed-deterministic
#                               (test-name seeded); a plain rerun replays
#
# The hard `timeout --signal=KILL` wrappers are load-bearing: the
# threaded engines are hang-proof by design (poison flag + watchdog), so
# a wedged test run is itself the regression — kill it fast instead of
# letting CI sit forever.
TIERS=(
    "threaded_parity|mille-feuille|threaded_parity|420||rerun"
    "pipelined_parity|mille-feuille|pipelined_parity|420||rerun"
    "fault_injection|mille-feuille|fault_injection|300|--include-ignored|faultplan"
    "prop_heartbeat|mf-solver|prop_heartbeat|300||rerun"
    "serve|mf-serve||300||rerun"
    "adaptive_parity|mille-feuille|adaptive_parity|300||faultplan"
    "sharded_parity|mille-feuille|sharded_parity|420||faultplan"
    "ticketed_parity|mille-feuille|ticketed_parity|300||ticketfaults"
    "prop_partition|mf-gpu|prop_partition|300||rerun"
    "prop_ticket|mf-gpu|prop_ticket|300||rerun"
    "prop_retier|mf-precision|prop_retier|300||rerun"
)

list_tiers() {
    printf '%-18s %-14s %-18s %7s  %-18s %s\n' \
        NAME PACKAGE TARGET BUDGET "EXTRA ARGS" REPRO
    local row
    for row in "${TIERS[@]}"; do
        IFS='|' read -r name pkg target budget extra repro <<<"$row"
        printf '%-18s %-14s %-18s %6ss  %-18s %s\n' \
            "$name" "$pkg" "${target:-(package)}" "$budget" "${extra:--}" "$repro"
    done
}

# Echoes the tier's seeded-repro hint to stderr and, under GitHub
# Actions, to the job summary — uniformly for every tier, driven by the
# table's repro-hint kind.
emit_repro_hint() {
    local name="$1" pkg="$2" target="$3" repro="$4" log="$5"
    local pattern="" lines=""
    case "$repro" in
        faultplan) pattern='FaultPlan::seeded' ;;
        ticketfaults) pattern='TicketFaults::seeded' ;;
    esac
    if [[ -n "$pattern" && -f "$log" ]]; then
        lines="$(grep -h "$pattern" "$log" || true)"
    fi
    {
        echo "$name tier failed."
        if [[ -n "$pattern" ]]; then
            echo "Every perturbation is seed-deterministic: replay it with the compilable ${pattern}(..) builder line from the assertion:"
            echo "${lines:-(no ${pattern} line captured — the failure is in a clean grid; rerun the named test)}"
        else
            echo "Fixtures and generator streams are seed-deterministic (test-name seeded): rerun the named test to replay:"
        fi
        echo "  cargo test --release --locked --offline -p $pkg ${target:+--test $target}"
    } >&2
    if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
        {
            echo "## $name tier failed"
            echo
            if [[ -n "$pattern" ]]; then
                echo "Replay the exact perturbation with the \`${pattern}(..)\` builder line:"
                echo
                echo '```'
                echo "${lines:-(no ${pattern} line captured — the failure is in a clean grid; rerun the named test)}"
                echo '```'
            else
                echo 'Seed-deterministic (test-name seeded): a plain rerun replays the failure.'
            fi
            echo
            echo '```'
            echo "cargo test --release --locked --offline -p $pkg ${target:+--test $target}"
            echo '```'
        } >> "$GITHUB_STEP_SUMMARY"
    fi
}

run_tier() {
    local want="$1" row found=0
    for row in "${TIERS[@]}"; do
        IFS='|' read -r name pkg target budget extra repro <<<"$row"
        [[ "$name" == "$want" ]] || continue
        found=1
        local target_args=()
        [[ -n "$target" ]] && target_args=(--test "$target")
        local extra_args=()
        [[ -n "$extra" ]] && extra_args=(-- $extra)
        # Self-sufficient: compile the tier's test binaries *outside* the
        # execution budget, so a single `--tier` invocation works on a
        # clean checkout and a slow cold build can't eat the hang budget.
        cargo test --no-run --release --locked --offline -p "$pkg" "${target_args[@]}"
        local log="${name}.log"
        echo "== tier $name: -p $pkg ${target_args[*]:-} (${budget}s hard kill)"
        set -o pipefail
        if ! timeout --signal=KILL "$budget" \
            cargo test -q --locked --offline --release -p "$pkg" \
            "${target_args[@]}" "${extra_args[@]}" 2>&1 | tee "$log"; then
            emit_repro_hint "$name" "$pkg" "$target" "$repro" "$log"
            return 1
        fi
        return 0
    done
    if (( ! found )); then
        echo "unknown tier '$want' — available tiers:" >&2
        list_tiers >&2
        return 2
    fi
}

run_lint() {
    local fmt_args=()
    local p
    for p in "${MF_PACKAGES[@]}"; do fmt_args+=(-p "$p"); done
    cargo fmt "${fmt_args[@]}" --check
    cargo clippy --all-targets --workspace --locked --offline -- -D warnings
}

run_debug() {
    # Build everything (test binaries included) *before* the test timeout
    # starts, so the hard kill bounds test *execution* only.
    cargo build --locked --offline --workspace --all-targets
    timeout --signal=KILL 600 cargo test -q --locked --offline --workspace
}

run_release_tiers() {
    # One release build (test binaries included) serves every tier; each
    # tier's own build-if-missing step is then a no-op.
    cargo build --release --locked --offline --workspace --all-targets
    local row
    for row in "${TIERS[@]}"; do
        run_tier "${row%%|*}"
    done
}

case "${1:-}" in
    --list-tiers)
        list_tiers
        ;;
    --tier)
        [[ $# -ge 2 ]] || { echo "usage: $0 --tier NAME" >&2; exit 2; }
        run_tier "$2"
        ;;
    --lint)
        run_lint
        ;;
    --debug)
        run_debug
        ;;
    --release-tiers)
        run_release_tiers
        ;;
    "")
        # Full tier-1 gate, in the historical order: fmt, debug tier,
        # release tiers, clippy last.
        fmt_args=()
        for p in "${MF_PACKAGES[@]}"; do fmt_args+=(-p "$p"); done
        cargo fmt "${fmt_args[@]}" --check
        run_debug
        run_release_tiers
        cargo clippy --all-targets --workspace --locked --offline -- -D warnings
        ;;
    *)
        echo "usage: $0 [--lint|--debug|--release-tiers|--tier NAME|--list-tiers]" >&2
        exit 2
        ;;
esac
