#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint — all offline (the workspace vendors
# every external crate under vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --locked --offline --workspace
# Hard timeout: the threaded engines are hang-proof by design (poison flag +
# watchdog), so a wedged test run is a regression — kill it instead of letting
# CI sit forever.
timeout --signal=KILL 600 cargo test -q --locked --offline --workspace
# Release tier: the cross-engine differential harness (threaded PCG/PBiCGSTAB
# vs sequential references, bitwise) includes release-only deep sweeps that
# are ignored in debug; run them optimized, again with a hard kill so a
# wedged in-kernel SpTRSV fails fast instead of stalling CI.
timeout --signal=KILL 420 cargo test -q --locked --offline --release -p mille-feuille --test threaded_parity
cargo clippy --all-targets --workspace --locked --offline -- -D warnings
