#!/usr/bin/env bash
# Smoke-run the host SpMV scaling bench and record the perf trajectory:
# writes bench_out/spmv_scaling.csv and BENCH_spmv.json at the repo root.
#
# Knobs (see crates/bench/src/bin/spmv_scaling.rs):
#   MF_SPMV_GRID     Poisson grid side (default 320 -> 102,400 rows)
#   MF_SPMV_REPS     timed reps per thread count (default 20)
#   MF_SPMV_THREADS  comma list of thread counts (default 1,2,4,8)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --locked --offline -p mf-bench --bin spmv_scaling
./target/release/spmv_scaling
