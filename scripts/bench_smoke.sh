#!/usr/bin/env bash
# Smoke-run the perf-trajectory benches: the host SpMV scaling bench
# (bench_out/spmv_scaling.csv + BENCH_spmv.json), the trace-timeline
# bench with its recording-overhead gate (bench_out/fig_trace_timeline.csv
# + BENCH_trace.json; *fails* when tracing costs more than the gate), and
# the pipelined barrier-schedule bench (bench_out/fig_pipeline.csv +
# BENCH_pipeline.json; *fails* when pipelined CG/PCG exceed 1/2 marginal
# barrier epochs per iteration or leave the classic-vs-pipelined drift
# envelope), and the serving-layer bench (bench_out/fig_serve.csv +
# BENCH_serve.json; *fails* when the warm preprocessing cache doesn't beat
# cold p50 by 3x on the replayed small-solve trace, when one batched
# multi-RHS solve doesn't beat k independent solves on requests/sec, or
# when either amortization changes a single bit of any answer), and the
# adaptive re-tiering bench (bench_out/fig_adaptive.csv +
# BENCH_adaptive.json; *fails* when the residual-driven controller moves
# more total value bytes than the static classification on any SPD matrix,
# reaches a different termination status, or is not strictly cheaper on at
# least half the population), and the multi-device sharding bench
# (bench_out/fig_shard.csv + BENCH_shard.json; *fails* when any shard
# count changes a single bit of any solve versus the single-device
# engine, or when 4-way sharding keeps more than 0.35 of the largest grid
# matrix's packed payload on one device), and the ticketed-preprocessing
# bench (bench_out/fig_ticket.csv + BENCH_ticket.json; *fails* when any
# worker count changes a bit of the tiles or ILU(0) factors versus the
# phase-barrier reference, or when the fused ticketed schedule's modeled
# makespan exceeds the phase-barrier pipeline's on any row).
#
# After the fresh run, the **gate-regression guard** diffs every committed
# BENCH_*.json baseline against its freshly generated counterpart with
# `gate_diff`: a boolean gate field that flips true -> false fails the
# smoke even if the fresh bench itself "passed" (a gate silently dropped
# from the JSON counts as schema drift and only warns). Timing fields are
# ignored — wall-clock noise never fails the build. Set
# MF_SKIP_GATE_GUARD=1 to skip the guard (e.g. when intentionally
# regenerating baselines).
#
# Knobs (see crates/bench/src/bin/{spmv_scaling,fig_trace_timeline,fig_pipeline,fig_serve,fig_adaptive,fig_shard,fig_ticket}.rs):
#   MF_SPMV_GRID      Poisson grid side (default 320 -> 102,400 rows)
#   MF_SPMV_REPS      timed reps per thread count (default 20)
#   MF_SPMV_THREADS   comma list of thread counts (default 1,2,4,8)
#   MF_TRACE_GRID     Poisson grid side for the trace bench (default 320)
#   MF_TRACE_ITERS    fixed iteration count (default 25)
#   MF_TRACE_REPS     timed reps per config (default 3)
#   MF_TRACE_GATE_PCT overhead gate in percent (default 5)
#   MF_PIPE_GRID      Poisson grid side for the schedule bench (default 32)
#   MF_PIPE_WARPS     warp count for the traced runs (default 2)
#   MF_PIPE_BUDGET    fixed iteration budget of the density window (default 12)
#   MF_PIPE_REPS      timed reps per solve (default 2)
#   MF_PIPE_COUNT     extra suite matrices in the solve table (default 2)
#   MF_SERVE_GRID     smallest Poisson proxy side of the pool (default 20)
#   MF_SERVE_MATS     matrix pool size (default 4)
#   MF_SERVE_REQS     replayed trace length (default 96)
#   MF_SERVE_ITERS    per-request refinement budget (default 3; 0 = tolerance mode)
#   MF_SERVE_BATCH    k of the batched multi-RHS workload (default 8)
#   MF_SERVE_WARM_GATE  required cold/warm p50 ratio (default 3.0)
#   MF_ADAPT_TOL      convergence tolerance of the adaptive bench (default 1e-10)
#   MF_ADAPT_MAXITER  iteration cap of the adaptive bench (default 4000)
#   MF_ADAPT_SCALE    size multiplier on the adaptive population (default 1)
#   MF_SHARD_GRID     largest Poisson side of the sharding bench (default 96)
#   MF_SHARD_TOL      convergence tolerance of the sharding bench (default 1e-10)
#   MF_SHARD_MAXITER  iteration cap of the sharding bench (default 2000)
#   MF_SHARD_WARPS    warp cap of both engines in the sharding bench (default 4)
#   MF_SHARD_SPLIT_GATE  max per-device payload fraction at 4 shards (default 0.35)
#   MF_TICKET_GRID    Poisson grid side of the ticketed bench (default 64)
#   MF_TICKET_TILE    tile size of the ticketed bench (default 16)
#   MF_SKIP_GATE_GUARD  1 = skip the committed-baseline gate-flip guard
set -euo pipefail
cd "$(dirname "$0")/.."

# Snapshot the committed baselines before the fresh run overwrites them.
baseline_dir=""
if [[ "${MF_SKIP_GATE_GUARD:-0}" != "1" ]]; then
    baseline_dir="$(mktemp -d)"
    trap 'rm -rf "$baseline_dir"' EXIT
    cp BENCH_*.json "$baseline_dir"/ 2>/dev/null || true
fi

# Build-if-missing covers every bin this script runs: a single invocation
# works on a clean checkout.
cargo build --release --locked --offline -p mf-bench \
    --bin spmv_scaling --bin fig_trace_timeline --bin fig_pipeline --bin fig_serve \
    --bin fig_adaptive --bin fig_shard --bin fig_ticket --bin gate_diff
./target/release/spmv_scaling
./target/release/fig_trace_timeline --trace-dir bench_out/traces
./target/release/fig_pipeline
./target/release/fig_serve
./target/release/fig_adaptive
./target/release/fig_shard
./target/release/fig_ticket

# Gate-regression guard: committed baseline vs fresh, boolean gate fields
# only. gate_diff names the offending field (and writes it to the job
# summary under GitHub Actions) and exits 1 on a true -> false flip.
if [[ -n "$baseline_dir" ]]; then
    guard_failed=0
    for baseline in "$baseline_dir"/BENCH_*.json; do
        [[ -e "$baseline" ]] || continue
        fresh="$(basename "$baseline")"
        if [[ ! -f "$fresh" ]]; then
            echo "warning: committed $fresh has no freshly generated counterpart" >&2
            continue
        fi
        ./target/release/gate_diff "$baseline" "$fresh" || guard_failed=1
    done
    if (( guard_failed )); then
        echo "FAIL: bench gate regression against committed baselines (see above)" >&2
        exit 1
    fi
    echo "gate-regression guard PASS"
fi
