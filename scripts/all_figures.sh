#!/usr/bin/env bash
# Regenerates every figure and table of the paper (the analogue of the
# artifact's all_figures.sh). Output tables print to stdout; CSVs land in
# bench_out/. Scale knobs: MF_SUITE_COUNT (default 60; paper scale 230/686),
# MF_MAX_NNZ, MF_ITERS, MF_PRECOND_COUNT.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p mf-bench --bins

BIN=target/release
for fig in fig01_precision_map fig02_breakdown fig04_partial_convergence \
           fig06_dependency_trace fig07_dynamic_precision \
           fig08_vs_vendor fig09_vs_libraries fig10_preconditioned \
           fig11_mixed_precision fig12_convergence_curves fig13_memory \
           fig14_preprocessing table2_iterations \
           ablation_single_kernel ablation_granularity ablation_partial \
           ablation_tile_size; do
  echo
  echo "################ $fig ################"
  "$BIN/$fig"
done
echo
echo "All figures regenerated; CSVs in bench_out/"
