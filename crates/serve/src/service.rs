//! The request-facing service: cache-aware single solves and batched
//! multi-RHS solves.
//!
//! [`SolveService`] owns a [`MilleFeuille`] facade plus a
//! [`PreparedCache`]; requests are `(A, b)` pairs (or `(A, [b…])` batches)
//! and the service decides what preparation can be reused and which
//! execution shape to run. The determinism contract (crate docs) is
//! enforced structurally: a cache hit feeds the *same* `Preprocessed`
//! value into the *same* facade entry point a cold solve uses, and the
//! batched path's per-column arithmetic is pinned bitwise to the k = 1
//! path by `mf-solver/tests/block_parity.rs`.

use std::sync::Arc;

use mf_gpu::{CostModel, DeviceSpec};
use mf_kernels::SharedTiles;
use mf_solver::block::{run_cg_block_ws, BlockOptions, BlockWorkspace, ColumnStatus};
use mf_solver::coster::{Coster, MultiCoster, SingleCoster};
use mf_solver::report::ExecutedMode;
use mf_solver::{MilleFeuille, SolveReport, SolverConfig, SolverWorkspace};
use mf_sparse::Csr;
use mf_trace::Trace;

use crate::cache::{CacheConfig, CacheStats, PreparedCache, PreparedMatrix};

/// Configuration of the serving layer.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Device the cost model simulates.
    pub device: DeviceSpec,
    /// Solver configuration used for single solves (batched solves force
    /// `partial_convergence: false`, see [`SolveService::solve_batch`]).
    pub solver: SolverConfig,
    /// Preprocessing-cache sizing and admission knobs.
    pub cache: CacheConfig,
    /// Blocked-CG tuning (spread detach).
    pub block: BlockOptions,
    /// Also factor ILU(0) during preparation and serve single solves
    /// through the preconditioned path. The factors are cached with the
    /// tiled matrix, so warm preconditioned solves skip both the
    /// conversion *and* the factorization.
    pub precondition: bool,
    /// Largest lockstep batch; longer request groups are chunked.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            device: DeviceSpec::a100(),
            solver: SolverConfig::default(),
            cache: CacheConfig::default(),
            block: BlockOptions::default(),
            precondition: false,
            max_batch: 32,
        }
    }
}

/// A single solve's outcome, annotated with what the serving layer did.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// The full facade report (bitwise identical to a cold facade solve of
    /// the same request — `preprocess_passes` is 0 on a cache hit because
    /// this request genuinely paid no preprocessing).
    pub report: SolveReport,
    /// Whether preparation came from the cache.
    pub cache_hit: bool,
}

/// A batched request's per-right-hand-side outcome.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations this right-hand side executed.
    pub iterations: usize,
    /// Converged within tolerance?
    pub converged: bool,
    /// Final relative residual from the recurrence.
    pub final_relres: f64,
    /// `true` when the answer came out of the lockstep batch; `false` when
    /// this right-hand side ran individually (k = 1 chunk, or the column
    /// detached and was re-solved — the re-solve is the never-batched
    /// path, so the answer is still deterministic).
    pub batched: bool,
    /// Whether preparation came from the cache.
    pub cache_hit: bool,
}

/// Long-lived solver-as-a-service front end. All methods take `&self`;
/// the service is meant to be shared across request threads (the cache
/// handles cross-thread build deduplication internally).
pub struct SolveService {
    config: ServeConfig,
    solver: MilleFeuille,
    /// Facade with `partial_convergence` forced off — the configuration
    /// under which the batched core's bitwise-parity contract holds; also
    /// used for individual re-solves of detached columns so batch and
    /// fallback agree on the arithmetic.
    batch_solver: MilleFeuille,
    batch_cfg: SolverConfig,
    cache: PreparedCache,
}

impl SolveService {
    pub fn new(config: ServeConfig) -> SolveService {
        let batch_cfg = SolverConfig {
            partial_convergence: false,
            ..config.solver.clone()
        };
        let solver = MilleFeuille::new(config.device.clone(), config.solver.clone());
        let batch_solver = MilleFeuille::new(config.device.clone(), batch_cfg.clone());
        let cache = PreparedCache::new(config.cache);
        SolveService {
            config,
            solver,
            batch_solver,
            batch_cfg,
            cache,
        }
    }

    /// Looks up (or builds) the prepared state for `a`. Returns the entry
    /// and whether it was a cache hit.
    pub fn prepare(&self, a: &Csr) -> (Arc<PreparedMatrix>, bool) {
        let fp = a.fingerprint();
        self.cache.get_or_build(fp, || {
            let (pre, ilu) = if self.config.precondition {
                // Fused cold path: tiling and ILU(0) share one ticket
                // stream when host parallelism allows. A factorization
                // failure (non-square, irreparable pivot) downgrades this
                // matrix to plain CG rather than failing the request.
                let (pre, factors) = self.solver.preprocess_with_ilu0(a);
                (pre, factors.ok().map(|(f, _shifts)| f))
            } else {
                (self.solver.preprocess(a), None)
            };
            let mode = self.solver.decide_mode(&pre.tiled);
            let pipelined = self.solver.decide_pipeline(&pre.tiled, mode);
            let mut bytes = pre.tiled.memory_bytes().total();
            if let Some(f) = &ilu {
                bytes += f.l.memory_bytes() + f.u.memory_bytes();
            }
            PreparedMatrix {
                fingerprint: fp,
                pre,
                ilu,
                mode,
                pipelined,
                bytes,
            }
        })
    }

    /// Serves one solve request. Cold requests pay preprocessing once and
    /// populate the cache; warm requests reuse it. Hit or miss, the
    /// numbers are bitwise identical — the facade runs the same entry
    /// point on the same `Preprocessed` either way.
    pub fn solve(&self, a: &Csr, b: &[f64]) -> ServeReport {
        let (prepared, hit) = self.prepare(a);
        let mut report = match &prepared.ilu {
            Some(ilu) => self.solver.solve_pcg_preprocessed(a, &prepared.pre, b, ilu),
            None => {
                let mut ws = SolverWorkspace::new();
                self.solver
                    .solve_cg_preprocessed(a, &prepared.pre, b, &mut ws)
            }
        };
        if hit {
            // The modeled timeline still carges the full cold cost (it is
            // a property of the solve, not of this request); the passes
            // counter records what this request actually paid.
            report.preprocess_passes = 0;
        }
        ServeReport {
            report,
            cache_hit: hit,
        }
    }

    /// Serves a group of requests that share the matrix `a` by advancing
    /// all right-hand sides through one tile pass per iteration
    /// ([`run_cg_block_ws`]). Chunks of one, and columns the lockstep
    /// detaches (breakdown / residual spread), fall back to individual
    /// solves — the never-batched path — so every answer is bitwise
    /// independent of how requests happened to be grouped.
    ///
    /// Batched solves always run plain CG with `partial_convergence`
    /// forced off (the configuration under which per-column bitwise parity
    /// with the single-RHS core is pinned); the cached ILU factors only
    /// accelerate [`SolveService::solve`].
    ///
    /// An adaptive-precision config ([`mf_solver::SolverConfig::adaptive`])
    /// never enters the lockstep: a re-tier plan is a function of one
    /// residual trajectory, so applying any column's plan to the shared
    /// tile state would couple the batch-mates' arithmetic. Adaptive
    /// batches fall back to `k` independent single-RHS adaptive solves —
    /// bitwise what the same requests would produce unbatched.
    pub fn solve_batch(&self, a: &Csr, rhss: &[Vec<f64>]) -> Vec<BatchOutcome> {
        if rhss.is_empty() {
            return Vec::new();
        }
        let n = a.nrows;
        for b in rhss {
            assert_eq!(b.len(), n, "every right-hand side must have n entries");
        }
        let (prepared, hit) = self.prepare(a);
        if self.batch_cfg.adaptive.is_some() {
            return rhss
                .iter()
                .map(|rhs| {
                    let mut sws = SolverWorkspace::new();
                    let rep =
                        self.batch_solver
                            .solve_cg_preprocessed(a, &prepared.pre, rhs, &mut sws);
                    BatchOutcome {
                        x: rep.x,
                        iterations: rep.iterations,
                        converged: rep.converged,
                        final_relres: rep.final_relres,
                        batched: false,
                        cache_hit: hit,
                    }
                })
                .collect();
        }
        let mut out: Vec<Option<BatchOutcome>> = (0..rhss.len()).map(|_| None).collect();
        let mut bws = BlockWorkspace::new();
        let step = self.config.max_batch.max(1);
        let mut start = 0;
        while start < rhss.len() {
            let end = (start + step).min(rhss.len());
            let k = end - start;
            if k == 1 {
                out[start] = Some(self.solve_one_unbatched(a, &prepared, &rhss[start], hit));
                start = end;
                continue;
            }
            let mut b = vec![0.0f64; n * k];
            for (jj, rhs) in rhss[start..end].iter().enumerate() {
                b[jj * n..(jj + 1) * n].copy_from_slice(rhs);
            }
            let mut shared = SharedTiles::load(&prepared.pre.tiled);
            let coster = self.coster_for(&prepared);
            let res = run_cg_block_ws(
                &prepared.pre.tiled,
                &mut shared,
                &b,
                k,
                &self.batch_cfg,
                &self.config.block,
                &coster,
                &mut bws,
            );
            for (jj, c) in res.columns.iter().enumerate() {
                let i = start + jj;
                out[i] = Some(if c.status == ColumnStatus::Detached {
                    self.solve_one_unbatched(a, &prepared, &rhss[i], hit)
                } else {
                    BatchOutcome {
                        x: c.x.clone(),
                        iterations: c.iterations,
                        converged: c.status == ColumnStatus::Converged,
                        final_relres: c.final_relres,
                        batched: true,
                        cache_hit: hit,
                    }
                });
            }
            start = end;
        }
        out.into_iter()
            .map(|o| o.expect("every slot filled"))
            .collect()
    }

    /// The individual (never-batched) path: the blocked core with k = 1 —
    /// bitwise the arithmetic a lockstep column executes. If even that
    /// detaches (a genuine breakdown), the full facade takes over with its
    /// restart machinery.
    fn solve_one_unbatched(
        &self,
        a: &Csr,
        prepared: &PreparedMatrix,
        b: &[f64],
        hit: bool,
    ) -> BatchOutcome {
        let mut shared = SharedTiles::load(&prepared.pre.tiled);
        let coster = self.coster_for(prepared);
        let mut ws = BlockWorkspace::new();
        let res = run_cg_block_ws(
            &prepared.pre.tiled,
            &mut shared,
            b,
            1,
            &self.batch_cfg,
            &self.config.block,
            &coster,
            &mut ws,
        );
        let c = &res.columns[0];
        if c.status != ColumnStatus::Detached {
            return BatchOutcome {
                x: c.x.clone(),
                iterations: c.iterations,
                converged: c.status == ColumnStatus::Converged,
                final_relres: c.final_relres,
                batched: false,
                cache_hit: hit,
            };
        }
        let mut sws = SolverWorkspace::new();
        let rep = self
            .batch_solver
            .solve_cg_preprocessed(a, &prepared.pre, b, &mut sws);
        BatchOutcome {
            x: rep.x,
            iterations: rep.iterations,
            converged: rep.converged,
            final_relres: rep.final_relres,
            batched: false,
            cache_hit: hit,
        }
    }

    fn coster_for(&self, prepared: &PreparedMatrix) -> Coster {
        let cost = CostModel::new(self.config.device.clone());
        match prepared.mode {
            ExecutedMode::SingleKernel => Coster::Single(SingleCoster::new(
                cost,
                &prepared.pre.tiled,
                self.config.solver.tile_size,
            )),
            ExecutedMode::MultiKernel => {
                Coster::Multi(MultiCoster::new(cost, prepared.pre.tiled.nrows))
            }
        }
    }

    /// Aggregate cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resident cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Resident cache bytes.
    pub fn cache_bytes(&self) -> usize {
        self.cache.resident_bytes()
    }

    /// Whether `a`'s prepared state is resident right now.
    pub fn is_cached(&self, a: &Csr) -> bool {
        self.cache.contains(a.fingerprint())
    }

    /// Drains the cache-event trace (CacheHit / CacheMiss / CacheEvict).
    pub fn take_trace(&self) -> Trace {
        self.cache.take_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::Coo;

    fn poisson1d(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0);
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
                a.push(i + 1, i, -1.0);
            }
        }
        a.to_csr()
    }

    fn seeded_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn warm_solve_is_bitwise_cold_and_skips_preprocessing() {
        let svc = SolveService::new(ServeConfig::default());
        let a = poisson1d(96);
        let b = seeded_vec(96, 3);
        let cold = svc.solve(&a, &b);
        let warm = svc.solve(&a, &b);
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(cold.report.preprocess_passes, 1);
        assert_eq!(warm.report.preprocess_passes, 0);
        assert_eq!(cold.report.x, warm.report.x, "hit must be bitwise cold");
        assert_eq!(cold.report.iterations, warm.report.iterations);
        let s = svc.cache_stats();
        assert_eq!((s.hits, s.misses, s.builds), (1, 1, 1));
    }

    #[test]
    fn preconditioned_service_caches_factors() {
        let svc = SolveService::new(ServeConfig {
            precondition: true,
            ..ServeConfig::default()
        });
        let a = poisson1d(64);
        let b = seeded_vec(64, 5);
        let cold = svc.solve(&a, &b);
        let warm = svc.solve(&a, &b);
        assert!(cold.report.converged);
        assert_eq!(cold.report.x, warm.report.x);
        let (prepared, hit) = svc.prepare(&a);
        assert!(hit);
        assert!(prepared.ilu.is_some(), "ILU factors cached with the matrix");
    }

    #[test]
    fn batch_matches_individual_solves_bitwise() {
        let svc = SolveService::new(ServeConfig::default());
        let a = poisson1d(80);
        let rhss: Vec<Vec<f64>> = (0..4).map(|j| seeded_vec(80, 20 + j)).collect();
        let batched = svc.solve_batch(&a, &rhss);
        assert!(batched.iter().all(|o| o.batched && o.converged));
        for (j, rhs) in rhss.iter().enumerate() {
            let solo = svc.solve_batch(&a, std::slice::from_ref(rhs));
            assert!(!solo[0].batched, "k = 1 runs the individual path");
            assert_eq!(solo[0].x, batched[j].x, "column {j} bitwise");
            assert_eq!(solo[0].iterations, batched[j].iterations);
        }
    }

    #[test]
    fn batch_chunks_and_zero_rhs_columns() {
        let svc = SolveService::new(ServeConfig {
            max_batch: 2,
            ..ServeConfig::default()
        });
        let a = poisson1d(40);
        let mut rhss: Vec<Vec<f64>> = (0..5).map(|j| seeded_vec(40, 40 + j)).collect();
        rhss[1] = vec![0.0; 40]; // zero RHS inside a batch
        let out = svc.solve_batch(&a, &rhss);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|o| o.converged));
        assert!(out[1].x.iter().all(|&v| v == 0.0));
        assert_eq!(out[1].iterations, 0);
        // One preparation for the whole call.
        assert_eq!(svc.cache_stats().builds, 1);
        assert!(svc.solve_batch(&a, &[]).is_empty());
    }

    #[test]
    fn detached_column_falls_back_to_individual_solve() {
        // An indefinite matrix breaks CG down (pᵀAp < 0): the lockstep
        // detaches the columns and the service re-solves them
        // individually via the facade (which records the breakdown).
        let n = 24;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, if i % 2 == 0 { 2.0 } else { -2.0 });
        }
        let a = coo.to_csr();
        let rhss: Vec<Vec<f64>> = (0..2).map(|j| seeded_vec(n, 60 + j)).collect();
        let out = SolveService::new(ServeConfig::default()).solve_batch(&a, &rhss);
        assert!(out.iter().all(|o| !o.batched), "breakdown columns re-solve");
        assert!(out.iter().all(|o| !o.x.is_empty()));
    }
}
