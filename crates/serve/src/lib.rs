//! # mf-serve
//!
//! The serving layer of the Mille-feuille reproduction: a
//! [`SolveService`] that turns the one-shot facade
//! ([`mf_solver::MilleFeuille`]) into a long-lived solver-as-a-service
//! front end for streams of requests.
//!
//! Two observations drive the design (ROADMAP "solver-as-a-service"):
//!
//! 1. **Preprocessing amortizes.** A solve request is `(A, b)`, but in
//!    serving workloads the same operator `A` arrives again and again with
//!    different right-hand sides (time stepping, parameter sweeps,
//!    per-frame physics). The CSR→tiled conversion, the precision
//!    classification, the ILU(0) factorization and the kernel-mode
//!    decision depend only on `A` — [`PreparedMatrix`] captures them once,
//!    keyed by the deterministic content fingerprint
//!    ([`mf_sparse::Fingerprint`]), and an LRU + byte-budget cache
//!    ([`cache`]) reuses them across requests.
//! 2. **SpMV traffic amortizes across right-hand sides.** Requests sharing
//!    a matrix can advance `k` CG recurrences through ONE pass over the
//!    tiles per iteration ([`mf_kernels::spmm_mixed`] +
//!    [`mf_solver::block::run_cg_block_ws`]) instead of `k` passes —
//!    [`SolveService::solve_batch`].
//!
//! # Determinism contract
//!
//! Serving must never change answers:
//!
//! * a cache-**hit** solve is bitwise identical to the cold solve of the
//!   same request (the cache stores exactly what [`MilleFeuille`]'s own
//!   preprocessing would have produced — pinned by differential tests);
//! * a **batched** solve is bitwise identical, per right-hand side, to the
//!   `k` individual solves it coalesced (columns that leave the lockstep
//!   are re-solved individually, which is itself the never-batched path).
//!
//! Cache observability flows through `mf-trace`: every lookup records a
//! `CacheHit`/`CacheMiss` event and every eviction a `CacheEvict`, with
//! aggregate [`CacheStats`] counters for quick assertions.

pub mod cache;
pub mod service;

pub use cache::{CacheConfig, CacheStats, PreparedMatrix};
pub use service::{BatchOutcome, ServeConfig, ServeReport, SolveService};

// Re-export the vocabulary a service embedder needs so `mf-serve` is
// usable without naming every underlying crate.
pub use mf_solver::{MilleFeuille, SolveReport, SolverConfig};
pub use mf_sparse::{Csr, Fingerprint};
