//! The preprocessing cache: fingerprint-keyed, LRU + byte-budget bounded,
//! build-deduplicating, trace-observable.
//!
//! A [`PreparedMatrix`] is everything a solve request pays for that
//! depends only on the operator: the tiled mixed-precision matrix (CSR→
//! tiled conversion + precision classification), the optional ILU(0)
//! factorization, and the coster's execution decisions (kernel mode,
//! pipeline schedule). The cache maps [`Fingerprint`] → `Arc<PreparedMatrix>`
//! under one mutex; builds happen *outside* the lock with a `Building`
//! placeholder + condvar so concurrent misses on the same key perform
//! exactly one preprocessing pass (no thundering herd, no double build for
//! a resident key).
//!
//! Eviction is LRU over entries, additionally bounded by a total byte
//! budget; oversized entries (admission control) are never inserted — the
//! request is still served, the prepared state is just not retained.
//!
//! Observability: every lookup appends a `CacheHit`/`CacheMiss` event and
//! every eviction a `CacheEvict` event to an internal `mf-trace` ring
//! (payload `a` = low 64 bits of the fingerprint, `b` = entry bytes), and
//! aggregate [`CacheStats`] counters are readable at any time. Event
//! *payloads* are deterministic; event *order* is schedule-dependent under
//! concurrency (see the mf-trace event table).

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::{Condvar, Mutex};

use mf_kernels::Ilu0;
use mf_solver::report::ExecutedMode;
use mf_solver::solver::Preprocessed;
use mf_sparse::Fingerprint;
use mf_trace::{EventKind, Trace, WarpTracer};

/// Cache sizing and admission knobs.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Maximum resident entries (LRU beyond this).
    pub max_entries: usize,
    /// Total byte budget across resident entries (LRU beyond this).
    pub byte_budget: usize,
    /// Admission control: a prepared matrix larger than this is served but
    /// never cached (it would evict the whole working set for one tenant).
    /// Also implicitly capped by `byte_budget`.
    pub max_entry_bytes: usize,
    /// Ring capacity of the internal cache-event trace.
    pub trace_capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            max_entries: 64,
            byte_budget: 256 << 20,
            max_entry_bytes: 64 << 20,
            trace_capacity: 4096,
        }
    }
}

/// Matrix-dependent state prepared once and reused across requests.
pub struct PreparedMatrix {
    /// Content fingerprint this entry is keyed by.
    pub fingerprint: Fingerprint,
    /// Tiled matrix + modeled preprocessing cost.
    pub pre: Preprocessed,
    /// ILU(0) factors when the service preconditioned (and the
    /// factorization succeeded); `None` otherwise.
    pub ilu: Option<Ilu0>,
    /// Cached coster decision: which execution mode the solve runs in.
    pub mode: ExecutedMode,
    /// Cached coster decision: whether CG uses the pipelined schedule.
    pub pipelined: bool,
    /// Resident size used for the byte budget (tiled structure + factors).
    pub bytes: usize,
}

/// Aggregate cache counters (monotonic over the service lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups resolved from a resident entry — including requests that
    /// arrived while the entry was building and waited for it.
    pub hits: u64,
    /// Lookups that claimed the build for an absent key.
    pub misses: u64,
    /// Entries evicted by the LRU / byte-budget bound.
    pub evictions: u64,
    /// Builds rejected by admission control (served, not cached).
    pub rejected: u64,
    /// Preprocessing builds actually executed (`misses` counts intents;
    /// `builds` counts completed passes — equal unless a build panicked).
    pub builds: u64,
}

enum Slot {
    Ready(Arc<PreparedMatrix>),
    Building,
}

struct Inner {
    map: HashMap<Fingerprint, Slot>,
    /// Ready keys, least-recently-used first. `Building` keys are not in
    /// the LRU (they cannot be evicted).
    lru: Vec<Fingerprint>,
    bytes: usize,
    stats: CacheStats,
    tracer: WarpTracer,
    seq: i64,
}

impl Inner {
    fn record(&mut self, kind: EventKind, fp: Fingerprint, bytes: usize) {
        self.tracer.stamp(self.seq, 0);
        self.seq += 1;
        self.tracer.record(kind, fp.0[0], bytes as u64);
    }

    fn touch(&mut self, fp: Fingerprint) {
        if let Some(pos) = self.lru.iter().position(|k| *k == fp) {
            let k = self.lru.remove(pos);
            self.lru.push(k);
        }
    }
}

/// Removes the `Building` placeholder if the build unwinds, so waiters
/// retry instead of hanging on a slot nobody will ever fill.
struct BuildGuard<'a> {
    cache: &'a PreparedCache,
    fp: Fingerprint,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.cache.inner.lock().unwrap();
            inner.map.remove(&self.fp);
            self.cache.cond.notify_all();
        }
    }
}

/// The fingerprint-keyed preprocessing cache. All methods take `&self`;
/// the cache is `Sync` and meant to be shared across request threads.
pub struct PreparedCache {
    config: CacheConfig,
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl PreparedCache {
    pub fn new(config: CacheConfig) -> PreparedCache {
        PreparedCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: Vec::new(),
                bytes: 0,
                stats: CacheStats::default(),
                tracer: WarpTracer::new(0, config.trace_capacity),
                seq: 0,
            }),
            cond: Condvar::new(),
            config,
        }
    }

    /// Returns the prepared state for `fp`, building it with `build` on a
    /// miss. The second value is `true` on a cache hit. Exactly one caller
    /// builds per absent key; concurrent requests for the same key block
    /// until the build completes and then count as hits.
    pub fn get_or_build<F>(&self, fp: Fingerprint, build: F) -> (Arc<PreparedMatrix>, bool)
    where
        F: FnOnce() -> PreparedMatrix,
    {
        let mut inner = self.inner.lock().unwrap();
        loop {
            match inner.map.get(&fp) {
                Some(Slot::Ready(arc)) => {
                    let arc = arc.clone();
                    inner.stats.hits += 1;
                    let bytes = arc.bytes;
                    inner.record(EventKind::CacheHit, fp, bytes);
                    inner.touch(fp);
                    return (arc, true);
                }
                Some(Slot::Building) => {
                    inner = self.cond.wait(inner).unwrap();
                }
                None => break,
            }
        }
        inner.map.insert(fp, Slot::Building);
        inner.stats.misses += 1;
        inner.record(EventKind::CacheMiss, fp, 0);
        drop(inner);

        let mut guard = BuildGuard {
            cache: self,
            fp,
            armed: true,
        };
        let prepared = Arc::new(build());
        guard.armed = false;

        let mut inner = self.inner.lock().unwrap();
        inner.stats.builds += 1;
        let cap = self.config.max_entry_bytes.min(self.config.byte_budget);
        if prepared.bytes > cap {
            // Admission control: serve, don't retain.
            inner.map.remove(&fp);
            inner.stats.rejected += 1;
            self.cond.notify_all();
            return (prepared, false);
        }
        inner.bytes += prepared.bytes;
        inner.map.insert(fp, Slot::Ready(prepared.clone()));
        inner.lru.push(fp);
        while inner.lru.len() > self.config.max_entries || inner.bytes > self.config.byte_budget {
            // Never evict the entry we just inserted (it is the most
            // recent); the LRU front is the victim.
            let Some(pos) = inner.lru.iter().position(|k| *k != fp) else {
                break;
            };
            let victim = inner.lru.remove(pos);
            if let Some(Slot::Ready(old)) = inner.map.remove(&victim) {
                inner.bytes -= old.bytes;
                inner.stats.evictions += 1;
                let bytes = old.bytes;
                inner.record(EventKind::CacheEvict, victim, bytes);
            }
        }
        self.cond.notify_all();
        (prepared, false)
    }

    /// Current aggregate counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().lru.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().unwrap().bytes
    }

    /// Whether `fp` is resident (Ready) right now.
    pub fn contains(&self, fp: Fingerprint) -> bool {
        matches!(
            self.inner.lock().unwrap().map.get(&fp),
            Some(Slot::Ready(_))
        )
    }

    /// Drains the cache-event trace recorded so far, resetting the ring.
    pub fn take_trace(&self) -> Trace {
        let mut inner = self.inner.lock().unwrap();
        let tracer = std::mem::replace(
            &mut inner.tracer,
            WarpTracer::new(0, self.config.trace_capacity),
        );
        Trace::merge(vec![tracer.finish()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_gpu::DeviceSpec;
    use mf_solver::{MilleFeuille, SolverConfig};
    use mf_sparse::{Coo, Csr};

    fn diag(n: usize, v: f64) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, v);
        }
        a.to_csr()
    }

    fn prepare(a: &Csr) -> PreparedMatrix {
        let solver = MilleFeuille::new(DeviceSpec::a100(), SolverConfig::default());
        let pre = solver.preprocess(a);
        let mode = solver.decide_mode(&pre.tiled);
        let pipelined = solver.decide_pipeline(&pre.tiled, mode);
        let bytes = pre.tiled.memory_bytes().total();
        PreparedMatrix {
            fingerprint: a.fingerprint(),
            pre,
            ilu: None,
            mode,
            pipelined,
            bytes,
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = PreparedCache::new(CacheConfig::default());
        let a = diag(16, 2.0);
        let fp = a.fingerprint();
        let (_, hit) = cache.get_or_build(fp, || prepare(&a));
        assert!(!hit);
        let (_, hit) = cache.get_or_build(fp, || panic!("must not rebuild"));
        assert!(hit);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.builds), (1, 1, 1));
        assert!(cache.contains(fp));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cache = PreparedCache::new(CacheConfig {
            max_entries: 2,
            ..CacheConfig::default()
        });
        let mats: Vec<Csr> = (0..3).map(|i| diag(16, 2.0 + i as f64)).collect();
        for m in &mats {
            cache.get_or_build(m.fingerprint(), || prepare(m));
        }
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains(mats[0].fingerprint()), "oldest evicted");
        assert!(cache.contains(mats[2].fingerprint()));
        assert_eq!(cache.stats().evictions, 1);
        // Touching an entry protects it: hit 1, insert 3 → 2 is evicted.
        cache.get_or_build(mats[1].fingerprint(), || panic!("resident"));
        cache.get_or_build(mats[0].fingerprint(), || prepare(&mats[0]));
        assert!(cache.contains(mats[1].fingerprint()));
        assert!(!cache.contains(mats[2].fingerprint()));
    }

    #[test]
    fn byte_budget_bounds_and_admission_rejects() {
        let a = diag(64, 3.0);
        let entry_bytes = prepare(&a).bytes;
        // Budget fits one entry only.
        let cache = PreparedCache::new(CacheConfig {
            max_entries: 10,
            byte_budget: entry_bytes + entry_bytes / 2,
            max_entry_bytes: entry_bytes,
            ..CacheConfig::default()
        });
        let b = diag(64, 4.0);
        cache.get_or_build(a.fingerprint(), || prepare(&a));
        cache.get_or_build(b.fingerprint(), || prepare(&b));
        assert_eq!(cache.len(), 1, "byte budget holds a single entry");
        assert!(cache.contains(b.fingerprint()), "newest survives");
        assert!(cache.resident_bytes() <= entry_bytes + entry_bytes / 2);

        // An entry over max_entry_bytes is served but never cached.
        let big = diag(4096, 5.0);
        let (arc, hit) = cache.get_or_build(big.fingerprint(), || prepare(&big));
        assert!(!hit);
        assert!(arc.bytes > entry_bytes);
        assert!(!cache.contains(big.fingerprint()));
        assert_eq!(cache.stats().rejected, 1);
    }

    #[test]
    fn trace_records_cache_events() {
        let cache = PreparedCache::new(CacheConfig {
            max_entries: 1,
            ..CacheConfig::default()
        });
        let a = diag(16, 2.0);
        let b = diag(16, 3.0);
        cache.get_or_build(a.fingerprint(), || prepare(&a));
        cache.get_or_build(a.fingerprint(), || panic!("resident"));
        cache.get_or_build(b.fingerprint(), || prepare(&b)); // evicts a
        let trace = cache.take_trace();
        assert_eq!(trace.count(EventKind::CacheMiss), 2);
        assert_eq!(trace.count(EventKind::CacheHit), 1);
        assert_eq!(trace.count(EventKind::CacheEvict), 1);
        // Payload a = fingerprint low word.
        let hit = trace
            .events
            .iter()
            .find(|e| e.kind == EventKind::CacheHit)
            .unwrap();
        assert_eq!(hit.a, a.fingerprint().0[0]);
        // Drained: a fresh take sees nothing.
        assert_eq!(cache.take_trace().events.len(), 0);
    }

    #[test]
    fn failed_build_unblocks_waiters() {
        let cache = Arc::new(PreparedCache::new(CacheConfig::default()));
        let a = diag(16, 2.0);
        let fp = a.fingerprint();
        let c2 = cache.clone();
        let panicker = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_build(fp, || panic!("injected build failure"));
            }));
        });
        panicker.join().unwrap();
        // The Building placeholder was cleaned up: a new request builds.
        let (_, hit) = cache.get_or_build(fp, || prepare(&a));
        assert!(!hit);
        assert!(cache.contains(fp));
    }
}
