//! Batched serving under the adaptive precision controller v2.
//!
//! The blocked lockstep core ignores `SolverConfig::adaptive` (a re-tier
//! plan is a function of one residual trajectory; applying any column's
//! plan to the shared tile state would couple the batch-mates'
//! arithmetic), so `solve_batch` must route adaptive configs to `k`
//! independent single-RHS adaptive solves. This pins the equivalence:
//! every batched answer is bitwise the never-batched adaptive solve of
//! the same request, regardless of grouping — and the controller really
//! fires, so the equivalence is not vacuous.

use mf_serve::{ServeConfig, SolveService};
use mf_solver::{AdaptiveConfig, MilleFeuille, SolverConfig};
use mf_sparse::{Coo, Csr};

/// Diagonally dominant SPD tridiagonal with noisy values, so tiles
/// classify at full precision and the controller has demotion headroom.
fn noisy_spd(n: usize, seed: u64) -> Csr {
    let noise = seeded_vec(n, seed);
    let mut a = Coo::new(n, n);
    for (i, &w) in noise.iter().enumerate() {
        a.push(i, i, 4.0 + 0.3 * w.abs());
        if i + 1 < n {
            let v = -1.0 + 0.1 * w;
            a.push(i, i + 1, v);
            a.push(i + 1, i, v);
        }
    }
    a.to_csr()
}

fn seeded_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

#[test]
fn adaptive_batches_match_independent_adaptive_solves() {
    let n = 150;
    let a = noisy_spd(n, 11);
    let solver_cfg = SolverConfig {
        adaptive: Some(AdaptiveConfig::default()),
        ..SolverConfig::default()
    };
    let svc = SolveService::new(ServeConfig {
        solver: solver_cfg.clone(),
        ..ServeConfig::default()
    });
    let rhss: Vec<Vec<f64>> = (0..3).map(|j| seeded_vec(n, 100 + j)).collect();

    let outcomes = svc.solve_batch(&a, &rhss);
    assert_eq!(outcomes.len(), rhss.len());

    // Reference: the cold one-shot adaptive facade with the batch path's
    // config (`partial_convergence` forced off — adaptive forces it off
    // anyway, but mirror the service exactly).
    let reference = MilleFeuille::new(
        mf_gpu::DeviceSpec::a100(),
        SolverConfig {
            partial_convergence: false,
            ..solver_cfg
        },
    );
    for (i, (outcome, rhs)) in outcomes.iter().zip(&rhss).enumerate() {
        let solo = reference.solve_cg(&a, rhs);
        assert!(
            !outcome.batched,
            "request {i}: adaptive batches must take the independent path"
        );
        assert!(outcome.converged, "request {i}");
        assert_eq!(
            outcome.x, solo.x,
            "request {i}: batched adaptive answer must be bitwise the \
             never-batched adaptive solve"
        );
        assert_eq!(outcome.iterations, solo.iterations, "request {i}");
        assert!(
            !solo.retier_trail.is_empty(),
            "request {i}: the controller never fired — the equivalence \
             above is vacuous on this fixture"
        );
    }
}
