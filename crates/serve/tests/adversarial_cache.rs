//! Adversarial serving tests: seeded concurrent interleavings hammering
//! the preprocessing cache across eviction boundaries.
//!
//! The schedule perturbations reuse the `FaultPlan` machinery from
//! `mf-gpu` (the same seeded splitmix64 delay/yield streams the threaded
//! engines inject) so interesting interleavings are *reproducible*: a
//! failing seed is a repro line, not a flake.
//!
//! What must hold under every interleaving:
//!
//! * no deadlock — every request completes (the harness itself is the
//!   assertion; a condvar bug would hang the test);
//! * no double-preprocess for a resident key — concurrent misses coalesce
//!   into one build, and hammering a warm key never rebuilds it;
//! * determinism — every answer, hit or miss, batched or not, is bitwise
//!   identical to the cold one-shot facade solve of the same request;
//! * coherent accounting — counters and trace events agree, resident
//!   size respects the configured bounds.

use std::sync::{Arc, Barrier};

use mf_gpu::{FaultKind, FaultPlan};
use mf_serve::{CacheConfig, ServeConfig, SolveService};
use mf_solver::{EventKind, MilleFeuille, SolverConfig};
use mf_sparse::{Coo, Csr};

fn poisson1d(n: usize) -> Csr {
    let mut a = Coo::new(n, n);
    for i in 0..n {
        a.push(i, i, 2.0);
        if i + 1 < n {
            a.push(i, i + 1, -1.0);
            a.push(i + 1, i, -1.0);
        }
    }
    a.to_csr()
}

fn seeded_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// Busy-spin / yield according to the thread's seeded fault stream —
/// perturbs the interleaving without touching the code under test.
fn perturb(faults: &mf_gpu::WarpFaults) {
    match faults.poll() {
        mf_gpu::SpinFault::Delay(spins) => {
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
        mf_gpu::SpinFault::Yield => std::thread::yield_now(),
        mf_gpu::SpinFault::None => {}
    }
}

#[test]
fn concurrent_same_key_builds_once_and_matches_cold() {
    let n = 120;
    let a = poisson1d(n);
    let b = seeded_vec(n, 9);
    // Cold one-shot facade reference (no serving layer at all).
    let cold =
        MilleFeuille::new(mf_gpu::DeviceSpec::a100(), SolverConfig::default()).solve_cg(&a, &b);

    for seed in [1u64, 7, 42] {
        let svc = Arc::new(SolveService::new(ServeConfig::default()));
        let threads = 8;
        let start = Arc::new(Barrier::new(threads));
        let plan = FaultPlan::seeded(seed)
            .with_delay(400, 5_000)
            .with_yield(200);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let svc = svc.clone();
                let a = a.clone();
                let b = b.clone();
                let start = start.clone();
                let faults = plan.for_warp(t);
                std::thread::spawn(move || {
                    start.wait();
                    perturb(&faults);
                    let rep = svc.solve(&a, &b);
                    perturb(&faults);
                    rep
                })
            })
            .collect();
        let reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        for rep in &reports {
            assert_eq!(rep.report.x, cold.x, "seed {seed}: served ≡ cold, bitwise");
            assert_eq!(rep.report.iterations, cold.iterations);
        }
        let s = svc.cache_stats();
        assert_eq!(s.builds, 1, "seed {seed}: concurrent misses coalesce");
        assert_eq!(
            s.misses, 1,
            "seed {seed}: exactly one thread claimed the build"
        );
        assert_eq!(
            s.hits,
            threads as u64 - 1,
            "seed {seed}: everyone else waited and hit"
        );
        assert_eq!(
            reports.iter().filter(|r| !r.cache_hit).count(),
            1,
            "seed {seed}: exactly one cold request"
        );
    }
}

#[test]
fn resident_key_is_never_rebuilt_while_hammered() {
    let a = poisson1d(64);
    let b = seeded_vec(64, 3);
    let svc = Arc::new(SolveService::new(ServeConfig {
        // Big enough that the hot key is never evicted by itself.
        cache: CacheConfig {
            max_entries: 8,
            ..CacheConfig::default()
        },
        ..ServeConfig::default()
    }));
    let warm = svc.solve(&a, &b);
    assert!(!warm.cache_hit);
    let builds_before = svc.cache_stats().builds;

    let plan = FaultPlan::seeded(1234).with_yield(300);
    let start = Arc::new(Barrier::new(6));
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let svc = svc.clone();
            let a = a.clone();
            let b = b.clone();
            let start = start.clone();
            let faults = plan.for_warp(t);
            std::thread::spawn(move || {
                start.wait();
                for _ in 0..10 {
                    perturb(&faults);
                    let rep = svc.solve(&a, &b);
                    assert!(rep.cache_hit, "warm key must stay a hit");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        svc.cache_stats().builds,
        builds_before,
        "no double-preprocess for a resident key"
    );
    assert!(svc.is_cached(&a));
}

#[test]
fn seeded_interleavings_across_eviction_boundaries() {
    // 5 matrices, room for 2: every request stream crosses eviction
    // boundaries constantly. Each (matrix, rhs) answer must still be
    // bitwise the cold facade answer, under several seeded schedules.
    let sizes = [48usize, 80, 96, 112, 128];
    let mats: Vec<Csr> = sizes.iter().map(|&n| poisson1d(n)).collect();
    let rhss: Vec<Vec<f64>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| seeded_vec(n, 100 + i as u64))
        .collect();
    let facade = MilleFeuille::new(mf_gpu::DeviceSpec::a100(), SolverConfig::default());
    let cold: Vec<Vec<f64>> = mats
        .iter()
        .zip(&rhss)
        .map(|(a, b)| facade.solve_cg(a, b).x)
        .collect();

    for seed in [3u64, 17, 99] {
        let svc = Arc::new(SolveService::new(ServeConfig {
            cache: CacheConfig {
                max_entries: 2,
                ..CacheConfig::default()
            },
            ..ServeConfig::default()
        }));
        let threads = 6;
        let rounds = 8;
        let plan = FaultPlan::seeded(seed)
            .with_delay(300, 8_000)
            .with_yield(200);
        let start = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let svc = svc.clone();
                let mats = mats.clone();
                let rhss = rhss.clone();
                let cold = cold.clone();
                let start = start.clone();
                let faults = plan.for_warp(t);
                std::thread::spawn(move || {
                    // Each thread walks the matrix pool in a seeded order
                    // derived from its fault stream's warp index.
                    start.wait();
                    for round in 0..rounds {
                        let i = (t * 3 + round * 5 + seed as usize) % mats.len();
                        perturb(&faults);
                        let rep = svc.solve(&mats[i], &rhss[i]);
                        assert_eq!(
                            rep.report.x, cold[i],
                            "seed {seed} thread {t} round {round}: bitwise vs cold"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let s = svc.cache_stats();
        let lookups = (threads * rounds) as u64;
        assert_eq!(
            s.hits + s.misses,
            lookups,
            "seed {seed}: every lookup accounted"
        );
        assert!(
            s.evictions > 0,
            "seed {seed}: the pool must thrash a 2-entry cache"
        );
        assert!(svc.cache_len() <= 2, "seed {seed}: entry bound respected");

        // Trace ↔ counter coherence (ring is sized to hold everything).
        let trace = svc.take_trace();
        assert_eq!(trace.count(EventKind::CacheHit) as u64, s.hits);
        assert_eq!(trace.count(EventKind::CacheMiss) as u64, s.misses);
        assert_eq!(trace.count(EventKind::CacheEvict) as u64, s.evictions);
    }
}

#[test]
fn concurrent_batches_match_cold_facade() {
    // Batched requests racing single requests for the same matrix: the
    // batch answers must be bitwise the cold k=1 answers regardless of
    // who populated the cache first.
    let n = 72;
    let a = poisson1d(n);
    let rhss: Vec<Vec<f64>> = (0..4).map(|j| seeded_vec(n, 200 + j)).collect();

    let reference = SolveService::new(ServeConfig::default());
    let solo: Vec<Vec<f64>> = rhss
        .iter()
        .map(|b| {
            reference.solve_batch(&a, std::slice::from_ref(b))[0]
                .x
                .clone()
        })
        .collect();

    for seed in [5u64, 21] {
        let svc = Arc::new(SolveService::new(ServeConfig::default()));
        let plan = FaultPlan::seeded(seed).with_yield(250);
        let start = Arc::new(Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let svc = svc.clone();
                let a = a.clone();
                let rhss = rhss.clone();
                let start = start.clone();
                let faults = plan.for_warp(t);
                std::thread::spawn(move || {
                    start.wait();
                    perturb(&faults);
                    svc.solve_batch(&a, &rhss)
                })
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap();
            for (j, o) in out.iter().enumerate() {
                assert!(o.batched && o.converged);
                assert_eq!(o.x, solo[j], "seed {seed}: batch ≡ solo column {j}");
            }
        }
        assert_eq!(svc.cache_stats().builds, 1, "seed {seed}: one shared build");
    }
}

#[test]
fn preconditioned_hit_matches_cold_pcg_facade() {
    // Differential test for the cached-ILU path: warm service PCG solve
    // ≡ cold facade PCG solve with freshly computed factors, bitwise.
    let n = 90;
    let a = poisson1d(n);
    let b = seeded_vec(n, 77);

    let facade = MilleFeuille::new(mf_gpu::DeviceSpec::a100(), SolverConfig::default());
    let (ilu, _shifts) = mf_kernels::ilu0_boosted(&a).expect("SPD factors");
    let cold = facade.solve_pcg_with(&a, &b, &ilu);

    let svc = SolveService::new(ServeConfig {
        precondition: true,
        ..ServeConfig::default()
    });
    let first = svc.solve(&a, &b);
    let second = svc.solve(&a, &b);
    assert!(!first.cache_hit && second.cache_hit);
    assert_eq!(first.report.x, cold.x, "cold service ≡ cold facade");
    assert_eq!(second.report.x, cold.x, "warm service ≡ cold facade");
    assert_eq!(second.report.preprocess_passes, 0);
    assert_eq!(second.report.iterations, cold.iterations);
}

#[test]
fn fault_kinds_are_benign_for_the_cache() {
    // Sanity: the fault vocabulary used above is the benign subset.
    assert!(matches!(FaultKind::Delay, FaultKind::Delay));
    let plan = FaultPlan::seeded(8).with_delay(1000, 16).with_yield(1000);
    let f = plan.for_warp(0);
    // A 100%-rate stream must still make progress (bounded spins).
    for _ in 0..64 {
        perturb(&f);
    }
}
