//! Property-based pins for the ticketed sequencer/worker/committer
//! runtime: for random dependency DAGs, random per-unit work and random
//! seeded fault plans, the committed output is a pure function of
//! (units, salt) — identical at every worker count, clean or perturbed —
//! commits happen strictly in ticket order with the advertised seeds,
//! and a commit-time error surfaces the same ticket everywhere.

use mf_gpu::{run_ticketed, ticket_seed, CommitView, TicketConfig, TicketFaults, TicketStats};
use proptest::prelude::*;

/// Worker counts exercised per case: serial reference, even, odd, and
/// more workers than host cores.
const WORKER_GRID: [usize; 4] = [1, 2, 3, 7];

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random backward-pointing dependency graph: unit `i` depends on a
/// pseudo-random earlier unit (or nothing), plus a payload per unit.
fn build_graph(n: usize, seed: u64) -> (Vec<u64>, Vec<Option<usize>>) {
    let mut payloads = Vec::with_capacity(n);
    let mut deps = Vec::with_capacity(n);
    let mut s = seed | 1;
    for i in 0..n {
        s = splitmix(s);
        payloads.push(s);
        s = splitmix(s);
        // ~1/3 of units are roots; the rest chain to a random predecessor.
        deps.push(if i == 0 || s.is_multiple_of(3) {
            None
        } else {
            Some((s >> 8) as usize % i)
        });
    }
    (payloads, deps)
}

/// A fault plan derived from one seed, covering every fault class.
fn plan(seed: u64) -> TicketFaults {
    TicketFaults::seeded(seed)
        .with_delay(((seed >> 3) % 200) as u16, 1 + (seed % 16) as u32)
        .with_stall(3 + (seed % 13) as u32, 1 + ((seed >> 7) % 32) as u32)
        .with_drop(((seed >> 11) % 150) as u16)
        .with_stale(((seed >> 17) % 150) as u16)
        .with_panic(((seed >> 23) % 60) as u16)
}

/// Runs the reference compute (a hash chain through the dependency) on
/// the ticket runtime and returns the committed vector plus stats.
fn run(
    payloads: &[u64],
    deps: &[Option<usize>],
    salt: u64,
    workers: usize,
    faults: Option<&TicketFaults>,
) -> (Vec<u64>, TicketStats) {
    let dep_of = |t: usize| deps[t];
    let cfg = TicketConfig {
        workers,
        salt,
        faults,
    };
    run_ticketed(
        payloads,
        dep_of,
        cfg,
        || 0u64,
        |scratch: &mut u64, t: usize, unit: &u64, seed: u64, view: &CommitView<'_, u64>| {
            // Mix the unit payload, its seed, and the committed
            // predecessor: a result that genuinely depends on snapshot
            // reads, so stale snapshots would corrupt it if revalidation
            // ever let one through.
            *scratch = scratch.wrapping_add(1);
            let dep_val = deps[t].map_or(0, |d| *view.get(d));
            splitmix(unit ^ seed ^ dep_val.rotate_left(17))
        },
        |_t, _unit, r, _info, _view| Ok::<u64, ()>(r),
    )
    .expect("infallible commit")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The committed output is bitwise identical at every worker count,
    /// clean or under any seeded fault plan, and matches the serial
    /// reference (workers = 1, no faults).
    #[test]
    fn output_is_worker_count_and_fault_invariant(
        n in 1usize..48,
        graph_seed in 0u64..u64::MAX,
        fault_seed in 0u64..u64::MAX,
        salt in 0u64..u64::MAX,
    ) {
        let (payloads, deps) = build_graph(n, graph_seed);
        let (reference, ref_stats) = run(&payloads, &deps, salt, 1, None);
        prop_assert_eq!(ref_stats.tickets, n);
        let faults = plan(fault_seed);
        for w in WORKER_GRID {
            for f in [None, Some(&faults)] {
                let (out, stats) = run(&payloads, &deps, salt, w, f);
                prop_assert!(out == reference,
                    "diverged at workers={} faults={:?}", w, f.map(|p| p.to_string()));
                prop_assert_eq!(stats.tickets, n);
                // Every ticket was committed exactly once: either a
                // worker result survived revalidation or the committer
                // recomputed it.
                prop_assert_eq!(stats.accepted + stats.fallbacks, n);
                if w > 1 && f.is_none() {
                    // Clean runs only fall back on genuine stale
                    // snapshots, never drops.
                    prop_assert_eq!(stats.dropped, 0);
                }
            }
        }
    }

    /// Commits happen strictly in ticket order, with the advertised
    /// deterministic per-ticket seed, at every worker count.
    #[test]
    fn commits_are_ordered_with_deterministic_seeds(
        n in 1usize..32,
        graph_seed in 0u64..u64::MAX,
        fault_seed in 0u64..u64::MAX,
        salt in 0u64..u64::MAX,
    ) {
        let (payloads, deps) = build_graph(n, graph_seed);
        let faults = plan(fault_seed);
        for w in WORKER_GRID {
            let mut order = Vec::new();
            let cfg = TicketConfig { workers: w, salt, faults: Some(&faults) };
            let dep_of = |t: usize| deps[t];
            let res = run_ticketed(
                &payloads,
                dep_of,
                cfg,
                || (),
                |_s, _t, unit, seed, _view: &CommitView<'_, u64>| splitmix(*unit ^ seed),
                |t, _unit, r, info, _view| {
                    order.push((t, info.seed));
                    Ok::<u64, ()>(r)
                },
            );
            prop_assert!(res.is_ok());
            let expect: Vec<(usize, u64)> =
                (0..n).map(|t| (t, ticket_seed(salt, t))).collect();
            prop_assert!(order == expect, "workers={}", w);
        }
    }

    /// A commit-time rejection aborts with the same ticket at every
    /// worker count and fault plan — the error is part of the
    /// deterministic output, not of the schedule.
    #[test]
    fn commit_errors_surface_the_same_ticket(
        n in 2usize..32,
        graph_seed in 0u64..u64::MAX,
        fault_seed in 0u64..u64::MAX,
        bad_pick in 0u64..u64::MAX,
    ) {
        let (payloads, deps) = build_graph(n, graph_seed);
        let bad = (bad_pick as usize) % n;
        let faults = plan(fault_seed);
        for w in WORKER_GRID {
            for f in [None, Some(&faults)] {
                let cfg = TicketConfig { workers: w, salt: 9, faults: f };
                let dep_of = |t: usize| deps[t];
                let res = run_ticketed(
                    &payloads,
                    dep_of,
                    cfg,
                    || (),
                    |_s, _t, unit, seed, _view: &CommitView<'_, u64>| splitmix(*unit ^ seed),
                    |t, _unit, r, _info, _view| {
                        if t == bad {
                            Err(t)
                        } else {
                            Ok(r)
                        }
                    },
                );
                let err = res.expect_err("commit must reject");
                prop_assert!(err.ticket == bad, "workers={}", w);
                prop_assert_eq!(err.error, bad);
            }
        }
    }
}
