//! Property-based tests for the GPU execution-model substrate.

use mf_gpu::{CostModel, DeviceSpec, ShmemPlan, SpmvSchedule, VectorSchedule};
use mf_sparse::{Coo, TiledMatrix};
use proptest::prelude::*;

fn random_tiled(n: usize, extra: usize, seed: u64) -> TiledMatrix {
    let mut state = seed.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(11);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut a = Coo::new(n, n);
    for i in 0..n {
        a.push(i, i, 2.0);
    }
    for _ in 0..extra {
        let i = (next() as usize) % n;
        let j = (next() as usize) % n;
        a.push(i, j, ((next() % 16) as f64) - 8.0);
    }
    TiledMatrix::from_csr(&a.to_csr())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The roofline never prices negative or non-finite times and is
    /// monotone in both work terms.
    #[test]
    fn roofline_monotone(flops in 0.0f64..1e12, bytes in 0.0f64..1e12, warps in 1usize..10_000) {
        let m = CostModel::new(DeviceSpec::a100());
        let t = m.roofline_us(flops, bytes, warps);
        prop_assert!(t.is_finite() && t >= 0.0);
        prop_assert!(m.roofline_us(flops * 2.0, bytes, warps) >= t);
        prop_assert!(m.roofline_us(flops, bytes * 2.0, warps) >= t);
        // More warps never slows things down.
        prop_assert!(m.roofline_us(flops, bytes, warps * 2) <= t + 1e-12);
    }

    /// Kernel bodies respect the minimum-body floor.
    #[test]
    fn kernel_body_floor(flops in 0.0f64..1e9, bytes in 0.0f64..1e9, warps in 1usize..5_000) {
        let m = CostModel::new(DeviceSpec::mi210());
        prop_assert!(m.kernel_body_us(flops, bytes, warps) >= m.device.min_kernel_body_us);
    }

    /// Every SpMV schedule covers every tile exactly once, in order.
    #[test]
    fn spmv_schedule_partitions(n in 8usize..300, extra in 0usize..600, seed in 0u64..300, warps in 1usize..64) {
        let m = random_tiled(n, extra, seed);
        for s in [SpmvSchedule::build_default(&m), SpmvSchedule::for_warps(&m, warps)] {
            prop_assert_eq!(s.warp_nnz.iter().sum::<usize>(), m.nnz());
            let mut expected_start = 0;
            for &(lo, hi) in &s.warp_tiles {
                prop_assert_eq!(lo, expected_start);
                prop_assert!(hi > lo);
                expected_start = hi;
            }
            prop_assert_eq!(expected_start, m.tile_count());
            prop_assert!(s.imbalance() >= 1.0 - 1e-12);
        }
    }

    /// Vector schedules cover [0, n) exactly, contiguously.
    #[test]
    fn vector_schedule_covers(n in 1usize..10_000, seg in 1usize..64, warps in 1usize..512) {
        let v = VectorSchedule::build(n, seg, warps);
        prop_assert!(v.warp_count() >= 1);
        prop_assert!(v.warp_count() <= warps);
        let mut covered = 0usize;
        for w in 0..v.warp_count() {
            let (lo, hi) = v.warp_elems(w);
            prop_assert_eq!(lo, covered);
            covered = hi;
        }
        prop_assert_eq!(covered, n);
        prop_assert!(v.max_warp_elems() >= n.div_ceil(v.warp_count()));
    }

    /// Shared-memory plans conserve bytes and respect the budget.
    #[test]
    fn shmem_plan_conserves(n in 8usize..400, extra in 0usize..800, seed in 0u64..300) {
        let m = random_tiled(n, extra, seed);
        let plan = ShmemPlan::plan(&m, &DeviceSpec::a100());
        prop_assert!(plan.shared_bytes <= plan.budget_bytes);
        let total: usize = (0..m.tile_count()).map(|i| ShmemPlan::tile_bytes(&m, i)).sum();
        prop_assert_eq!(plan.shared_bytes + plan.global_bytes, total);
        let f = plan.resident_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }
}
