//! Property-based tests for the shard partitioner and the two-level
//! deterministic reduction behind the multi-device sharded engine.

use mf_gpu::{two_level_dot, ShardPlan};
use mf_kernels::blas1::{dot_det, dot_par};
use mf_sparse::{Coo, TiledMatrix};
use proptest::prelude::*;

fn random_spd_tiled(n: usize, extra: usize, seed: u64) -> TiledMatrix {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(7);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut a = Coo::new(n, n);
    for i in 0..n {
        a.push(i, i, 4.0 + (i % 3) as f64);
    }
    for _ in 0..extra {
        let i = (next() as usize) % n;
        let j = (next() as usize) % n;
        if i != j {
            // Symmetric off-diagonal pair keeps the pattern SPD-ish; the
            // partitioner only cares about structure.
            let v = ((next() % 8) as f64 - 4.0) * 0.125;
            a.push(i, j, v);
            a.push(j, i, v);
        }
    }
    TiledMatrix::from_csr(&a.to_csr())
}

fn seeded_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(3);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2048) as f64 - 1024.0) * 0.001
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The partitioner covers every row exactly once, contiguously and in
    /// order, for any (n, tile_size, shards) — including shards > segments.
    #[test]
    fn partition_covers_rows_exactly_once(
        n in 1usize..5_000,
        ts in 1usize..64,
        shards in 1usize..12,
    ) {
        let plan = ShardPlan::partition(n, ts, shards);
        prop_assert!(plan.shards >= 1);
        prop_assert!(plan.shards <= shards);
        let mut covered = 0usize;
        let mut segs = 0usize;
        for k in 0..plan.shards {
            let rows = plan.rows(k);
            prop_assert_eq!(rows.start, covered);
            covered = rows.end;
            // Shard boundaries sit on segment boundaries.
            prop_assert_eq!(rows.start % ts, 0);
            segs += plan.segs(k).len();
            for r in rows {
                prop_assert_eq!(plan.owner_of_row(r), k);
            }
        }
        prop_assert_eq!(covered, n);
        prop_assert_eq!(segs, n.div_ceil(ts).max(1));
    }

    /// A shard's halo is exactly the set of off-block columns its tile
    /// span references: everything the SpMV reads, nothing more.
    #[test]
    fn halo_is_exactly_off_block_references(
        n in 8usize..260,
        extra in 0usize..500,
        seed in 0u64..200,
        shards in 1usize..6,
    ) {
        let m = random_spd_tiled(n, extra, seed);
        let plan = ShardPlan::for_matrix(&m, shards);
        let tile_lo = plan.tile_bounds(&m);
        for k in 0..plan.shards {
            let own = plan.rows(k);
            let halo = plan.halo_columns_with(&m, &tile_lo, k);
            // Sorted, deduplicated, disjoint from the owned block.
            prop_assert!(halo.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(halo.iter().all(|c| !own.contains(c)));
            // Equal to the brute-force reference: walk every tile in the
            // span and collect its out-of-block column references.
            let mut expect: std::collections::BTreeSet<usize> = Default::default();
            for t in tile_lo[k]..tile_lo[k + 1] {
                let base = m.tile_colidx[t] as usize * m.tile_size;
                let nnz_lo = m.tile_nnz[t] as usize;
                let nnz_hi = m.tile_nnz[t + 1] as usize;
                for e in nnz_lo..nnz_hi {
                    let c = base + m.csr_colidx[e] as usize;
                    if !own.contains(&c) {
                        expect.insert(c);
                    }
                }
            }
            prop_assert_eq!(halo, expect.into_iter().collect::<Vec<_>>());
        }
    }

    /// With one shard, the backend's two-level reduction is bitwise the
    /// deterministic fixed-grid dot (`dot_par` ≡ `dot_det`), and adding
    /// interior shard boundaries never changes a single bit.
    #[test]
    fn two_level_dot_is_shard_invariant_and_matches_dot_par(
        n in 1usize..40_000,
        seed in 0u64..500,
        cuts in prop::collection::vec(1usize..40_000, 0..5),
    ) {
        let x = seeded_vec(n, seed);
        let y = seeded_vec(n, seed ^ 0xdead_beef);
        let single = two_level_dot(&x, &y, &[0, n]);
        prop_assert_eq!(single.to_bits(), dot_par(&x, &y).to_bits());
        prop_assert_eq!(single.to_bits(), dot_det(&x, &y).to_bits());

        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (n + 1)).collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        let sharded = two_level_dot(&x, &y, &bounds);
        prop_assert_eq!(sharded.to_bits(), single.to_bits());
    }
}
