//! Deterministic, seed-reproducible fault injection for the single-kernel
//! dependency protocol.
//!
//! The threaded engines in `mf-solver` coordinate warps exclusively through
//! atomic dependency counters (`DepArrays`, `RowDeps`). Their determinism
//! and liveness claims quantify over *all* schedules, but the host OS only
//! ever produces a few. A [`FaultPlan`] closes that gap: it perturbs the
//! schedule at the protocol's own synchronization sites — spin polls,
//! barrier entries, step boundaries — in a way that is
//!
//! * **deterministic**: every warp derives its own [splitmix64] stream from
//!   `seed`, so a failing combination replays exactly;
//! * **reproducible from the report**: the plan's `Display` form is a pure
//!   Rust builder expression, echoed in failure output as a repro line;
//! * **free when absent**: engines hold `Option<&WarpFaults>` and an empty
//!   plan never constructs one, so fault-free solves pay a single branch.
//!
//! Two fault families exist. *Benign* perturbations (delays, yields,
//! stalls, retry storms) skew the schedule without violating the protocol;
//! the engines must produce **bitwise identical** results under them.
//! *Malign* faults (panic, poison, halt) break a warp outright; the engines
//! must convert them into structured failures within the heartbeat bound —
//! never a hang.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use std::cell::Cell;
use std::fmt;
use std::time::Duration;

/// Probability knobs are expressed in per-mille (0..=1000) so plans stay
/// integer-literal and hash-stable across platforms.
pub const PER_MILLE: u64 = 1000;

/// Per-spin-poll delay injection: with probability `per_mille`/1000, burn
/// a random 1..=`max_spins` `spin_loop` hints before re-polling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelaySpec {
    /// Injection probability per poll, in per-mille.
    pub per_mille: u16,
    /// Upper bound on the injected busy-spin length.
    pub max_spins: u32,
}

/// Per-spin-poll yield injection: with probability `per_mille`/1000 the
/// polling thread calls `yield_now`, handing the core to another warp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct YieldSpec {
    /// Injection probability per poll, in per-mille.
    pub per_mille: u16,
}

/// Bounded stall at barrier entries: every `period`-th wait the warp
/// enters, it sleeps (busy, poison-aware) for `micros` microseconds before
/// starting to poll.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallSpec {
    /// Stall every `period`-th barrier entry (1 = every entry).
    pub period: u32,
    /// Stall length in microseconds.
    pub micros: u64,
}

/// Forced epoch-retry storm: every `period`-th barrier entry, the warp
/// re-reads the dependency counter `extra_polls` extra times even after it
/// is satisfied, amplifying the acquire-load traffic the protocol must
/// tolerate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryStormSpec {
    /// Storm every `period`-th barrier entry (1 = every entry).
    pub period: u32,
    /// Number of redundant counter reads injected.
    pub extra_polls: u32,
}

/// A (warp, iteration, step) coordinate for the point faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteSpec {
    /// Warp index the fault fires on.
    pub warp: usize,
    /// Iteration the fault fires at.
    pub iteration: usize,
    /// Step index within the iteration (engine-specific; see the engine's
    /// step-name table).
    pub step: usize,
}

/// Halts warps dead: after `after_barriers` barrier entries the warp stops
/// making progress forever (it still polls the poison flag and the
/// watchdog so the run can be reaped). `warp: None` halts every warp —
/// the canonical "wedge the whole solve" plan for watchdog tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HaltSpec {
    /// Which warp to halt, or `None` for all of them.
    pub warp: Option<usize>,
    /// Number of barrier entries the warp survives before halting.
    pub after_barriers: u32,
}

/// The injectable fault kinds, for test matrices that iterate over them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Benign: per-poll busy-spin delays ([`DelaySpec`]).
    Delay,
    /// Benign: per-poll scheduler yields ([`YieldSpec`]).
    Yield,
    /// Benign: bounded barrier-entry stalls ([`StallSpec`]).
    Stall,
    /// Benign: redundant epoch re-polls ([`RetryStormSpec`]).
    RetryStorm,
    /// Malign: panic at a chosen (warp, iteration, step) ([`SiteSpec`]).
    Panic,
    /// Malign: poison the run at a chosen site ([`SiteSpec`]).
    Poison,
    /// Malign: halt warps after N barrier entries ([`HaltSpec`]).
    Halt,
}

impl FaultKind {
    /// Every fault kind, in declaration order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::Delay,
        FaultKind::Yield,
        FaultKind::Stall,
        FaultKind::RetryStorm,
        FaultKind::Panic,
        FaultKind::Poison,
        FaultKind::Halt,
    ];

    /// Whether plans of this kind must leave results bitwise unchanged.
    pub fn is_benign(self) -> bool {
        matches!(
            self,
            FaultKind::Delay | FaultKind::Yield | FaultKind::Stall | FaultKind::RetryStorm
        )
    }
}

/// A deterministic schedule-perturbation plan.
///
/// Build one with [`FaultPlan::seeded`] plus the `with_*` combinators; an
/// empty (default) plan is a guaranteed no-op. The `Display` form is a
/// compilable builder expression — paste it from a failure report to
/// replay the exact perturbation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the per-warp splitmix64 streams.
    pub seed: u64,
    /// Per-poll delay injection.
    pub delay: Option<DelaySpec>,
    /// Per-poll yield injection.
    pub yields: Option<YieldSpec>,
    /// Barrier-entry stalls.
    pub stall: Option<StallSpec>,
    /// Barrier-entry retry storms.
    pub retry_storm: Option<RetryStormSpec>,
    /// Panic at a (warp, iteration, step) site.
    pub panic_at: Option<SiteSpec>,
    /// Poison at a (warp, iteration, step) site.
    pub poison_at: Option<SiteSpec>,
    /// Halt warps after N barrier entries.
    pub halt: Option<HaltSpec>,
}

impl FaultPlan {
    /// An empty plan with an RNG seed (faults added via `with_*`).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds per-poll busy-spin delays.
    pub fn with_delay(mut self, per_mille: u16, max_spins: u32) -> FaultPlan {
        self.delay = Some(DelaySpec {
            per_mille,
            max_spins: max_spins.max(1),
        });
        self
    }

    /// Adds per-poll scheduler yields.
    pub fn with_yield(mut self, per_mille: u16) -> FaultPlan {
        self.yields = Some(YieldSpec { per_mille });
        self
    }

    /// Adds a stall of `micros` µs on every `period`-th barrier entry.
    pub fn with_stall(mut self, period: u32, micros: u64) -> FaultPlan {
        self.stall = Some(StallSpec {
            period: period.max(1),
            micros,
        });
        self
    }

    /// Adds a retry storm of `extra_polls` redundant counter reads on
    /// every `period`-th barrier entry.
    pub fn with_retry_storm(mut self, period: u32, extra_polls: u32) -> FaultPlan {
        self.retry_storm = Some(RetryStormSpec {
            period: period.max(1),
            extra_polls,
        });
        self
    }

    /// Panics `warp` when it reaches (`iteration`, `step`).
    pub fn with_panic_at(mut self, warp: usize, iteration: usize, step: usize) -> FaultPlan {
        self.panic_at = Some(SiteSpec {
            warp,
            iteration,
            step,
        });
        self
    }

    /// Poisons the run when `warp` reaches (`iteration`, `step`).
    pub fn with_poison_at(mut self, warp: usize, iteration: usize, step: usize) -> FaultPlan {
        self.poison_at = Some(SiteSpec {
            warp,
            iteration,
            step,
        });
        self
    }

    /// Halts `warp` (or all warps, for `None`) after `after_barriers`
    /// barrier entries.
    pub fn with_halt(mut self, warp: Option<usize>, after_barriers: u32) -> FaultPlan {
        self.halt = Some(HaltSpec {
            warp,
            after_barriers,
        });
        self
    }

    /// Whether the plan injects nothing (engines skip hook construction).
    pub fn is_empty(&self) -> bool {
        self.delay.is_none()
            && self.yields.is_none()
            && self.stall.is_none()
            && self.retry_storm.is_none()
            && self.panic_at.is_none()
            && self.poison_at.is_none()
            && self.halt.is_none()
    }

    /// The fault kinds this plan injects, in [`FaultKind::ALL`] order.
    pub fn kinds(&self) -> Vec<FaultKind> {
        let mut out = Vec::new();
        if self.delay.is_some() {
            out.push(FaultKind::Delay);
        }
        if self.yields.is_some() {
            out.push(FaultKind::Yield);
        }
        if self.stall.is_some() {
            out.push(FaultKind::Stall);
        }
        if self.retry_storm.is_some() {
            out.push(FaultKind::RetryStorm);
        }
        if self.panic_at.is_some() {
            out.push(FaultKind::Panic);
        }
        if self.poison_at.is_some() {
            out.push(FaultKind::Poison);
        }
        if self.halt.is_some() {
            out.push(FaultKind::Halt);
        }
        out
    }

    /// Materializes the per-warp view for warp `w`: an independent RNG
    /// stream plus copies of the relevant specs.
    pub fn for_warp(&self, w: usize) -> WarpFaults {
        let stream = self
            .seed
            .wrapping_add((w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        WarpFaults {
            warp: w,
            rng: Cell::new(stream),
            delay: self.delay,
            yields: self.yields,
            stall: self.stall,
            retry_storm: self.retry_storm,
            panic_at: self.panic_at.filter(|s| s.warp == w),
            poison_at: self.poison_at.filter(|s| s.warp == w),
            halt_after: self
                .halt
                .filter(|h| h.warp.is_none() || h.warp == Some(w))
                .map(|h| h.after_barriers),
            barriers_entered: Cell::new(0),
            counts: Cell::new(FaultCounts::default()),
        }
    }
}

impl fmt::Display for FaultPlan {
    /// Emits a compilable builder expression — the repro line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FaultPlan::seeded({})", self.seed)?;
        if let Some(d) = self.delay {
            write!(f, ".with_delay({}, {})", d.per_mille, d.max_spins)?;
        }
        if let Some(y) = self.yields {
            write!(f, ".with_yield({})", y.per_mille)?;
        }
        if let Some(s) = self.stall {
            write!(f, ".with_stall({}, {})", s.period, s.micros)?;
        }
        if let Some(r) = self.retry_storm {
            write!(f, ".with_retry_storm({}, {})", r.period, r.extra_polls)?;
        }
        if let Some(p) = self.panic_at {
            write!(f, ".with_panic_at({}, {}, {})", p.warp, p.iteration, p.step)?;
        }
        if let Some(p) = self.poison_at {
            write!(
                f,
                ".with_poison_at({}, {}, {})",
                p.warp, p.iteration, p.step
            )?;
        }
        if let Some(h) = self.halt {
            match h.warp {
                Some(w) => write!(f, ".with_halt(Some({}), {})", w, h.after_barriers)?,
                None => write!(f, ".with_halt(None, {})", h.after_barriers)?,
            }
        }
        Ok(())
    }
}

/// What a spin-poll site should do before re-reading its counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpinFault {
    /// Poll normally.
    None,
    /// Burn this many `spin_loop` hints first.
    Delay(u32),
    /// Call `yield_now` first.
    Yield,
}

/// What a barrier-entry site should do before starting to wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierFault {
    /// Enter normally.
    None,
    /// Busy-sleep this long first (poison-aware at the call site).
    Stall(Duration),
    /// Re-read the counter this many redundant times.
    Retry(u32),
    /// Stop making progress forever (poll poison/watchdog only).
    Halt,
}

impl BarrierFault {
    /// Stable numeric code carried by trace `Fault` events (0 = no fault;
    /// codes are disjoint from [`StepFault::trace_code`]).
    pub fn trace_code(self) -> u64 {
        match self {
            BarrierFault::None => 0,
            BarrierFault::Stall(_) => 1,
            BarrierFault::Retry(_) => 2,
            BarrierFault::Halt => 3,
        }
    }
}

/// What a step boundary should do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepFault {
    /// Proceed.
    None,
    /// Panic this warp.
    Panic,
    /// Poison the run (warp sets the shared wedge flag and exits).
    Poison,
}

impl StepFault {
    /// Stable numeric code carried by trace `Fault` events (0 = no fault;
    /// codes are disjoint from [`BarrierFault::trace_code`]).
    pub fn trace_code(self) -> u64 {
        match self {
            StepFault::None => 0,
            StepFault::Panic => 4,
            StepFault::Poison => 5,
        }
    }
}

/// Tally of faults actually injected, per warp — merged into
/// `InjectedFaults` on the report so tests can assert the perturbation
/// really happened.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Busy-spin delays injected.
    pub delays: u64,
    /// Scheduler yields injected.
    pub yields: u64,
    /// Barrier stalls injected.
    pub stalls: u64,
    /// Retry storms injected.
    pub retries: u64,
    /// Warps halted.
    pub halts: u64,
    /// Panics fired.
    pub panics: u64,
    /// Poisons fired.
    pub poisons: u64,
}

impl FaultCounts {
    /// Element-wise sum (for merging per-warp tallies).
    pub fn merge(self, o: FaultCounts) -> FaultCounts {
        FaultCounts {
            delays: self.delays + o.delays,
            yields: self.yields + o.yields,
            stalls: self.stalls + o.stalls,
            retries: self.retries + o.retries,
            halts: self.halts + o.halts,
            panics: self.panics + o.panics,
            poisons: self.poisons + o.poisons,
        }
    }

    /// Total injected events of any kind.
    pub fn total(self) -> u64 {
        self.delays
            + self.yields
            + self.stalls
            + self.retries
            + self.halts
            + self.panics
            + self.poisons
    }
}

/// Fault telemetry attached to a report produced under a non-empty plan:
/// the repro line plus the merged injection tally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedFaults {
    /// `FaultPlan` repro line (its `Display` form).
    pub plan: String,
    /// Merged per-warp injection counts.
    pub counts: FaultCounts,
}

/// One warp's materialized view of a [`FaultPlan`]: private RNG stream,
/// spec copies, and injection tallies. Lives on the warp's own stack; all
/// interior mutability is `Cell` (never shared across threads).
#[derive(Debug)]
pub struct WarpFaults {
    warp: usize,
    rng: Cell<u64>,
    delay: Option<DelaySpec>,
    yields: Option<YieldSpec>,
    stall: Option<StallSpec>,
    retry_storm: Option<RetryStormSpec>,
    panic_at: Option<SiteSpec>,
    poison_at: Option<SiteSpec>,
    halt_after: Option<u32>,
    barriers_entered: Cell<u32>,
    counts: Cell<FaultCounts>,
}

impl WarpFaults {
    /// The warp this view belongs to.
    pub fn warp(&self) -> usize {
        self.warp
    }

    /// splitmix64 step.
    fn next(&self) -> u64 {
        let mut z = self.rng.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.rng.set(z);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn roll(&self, per_mille: u16) -> bool {
        self.next() % PER_MILLE < u64::from(per_mille)
    }

    fn bump(&self, f: impl FnOnce(&mut FaultCounts)) {
        let mut c = self.counts.get();
        f(&mut c);
        self.counts.set(c);
    }

    /// Hook for every spin-poll: maybe delay or yield before re-reading.
    pub fn poll(&self) -> SpinFault {
        if let Some(d) = self.delay {
            if self.roll(d.per_mille) {
                self.bump(|c| c.delays += 1);
                return SpinFault::Delay((self.next() % u64::from(d.max_spins)) as u32 + 1);
            }
        }
        if let Some(y) = self.yields {
            if self.roll(y.per_mille) {
                self.bump(|c| c.yields += 1);
                return SpinFault::Yield;
            }
        }
        SpinFault::None
    }

    /// Hook for every barrier/wait entry: maybe stall, storm, or halt.
    /// Halt dominates (once the entry count passes the threshold the warp
    /// never comes back), then stall, then retry storm.
    pub fn barrier_entry(&self) -> BarrierFault {
        let n = self.barriers_entered.get() + 1;
        self.barriers_entered.set(n);
        if let Some(after) = self.halt_after {
            if n > after {
                self.bump(|c| c.halts += 1);
                return BarrierFault::Halt;
            }
        }
        if let Some(s) = self.stall {
            if n.is_multiple_of(s.period) {
                self.bump(|c| c.stalls += 1);
                return BarrierFault::Stall(Duration::from_micros(s.micros));
            }
        }
        if let Some(r) = self.retry_storm {
            if n.is_multiple_of(r.period) {
                self.bump(|c| c.retries += 1);
                return BarrierFault::Retry(r.extra_polls);
            }
        }
        BarrierFault::None
    }

    /// Hook for step boundaries: fire the point faults.
    pub fn step_fault(&self, iteration: usize, step: usize) -> StepFault {
        if let Some(p) = self.panic_at {
            if p.iteration == iteration && p.step == step {
                self.bump(|c| c.panics += 1);
                return StepFault::Panic;
            }
        }
        if let Some(p) = self.poison_at {
            if p.iteration == iteration && p.step == step {
                self.bump(|c| c.poisons += 1);
                return StepFault::Poison;
            }
        }
        StepFault::None
    }

    /// The injection tally so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_displays_seed_only() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert!(p.kinds().is_empty());
        assert_eq!(p.to_string(), "FaultPlan::seeded(0)");
    }

    #[test]
    fn display_is_a_builder_roundtrip() {
        let p = FaultPlan::seeded(42)
            .with_delay(300, 64)
            .with_yield(250)
            .with_stall(5, 300)
            .with_retry_storm(3, 256)
            .with_panic_at(0, 2, 1)
            .with_poison_at(1, 0, 0)
            .with_halt(Some(2), 7);
        assert_eq!(
            p.to_string(),
            "FaultPlan::seeded(42).with_delay(300, 64).with_yield(250)\
             .with_stall(5, 300).with_retry_storm(3, 256).with_panic_at(0, 2, 1)\
             .with_poison_at(1, 0, 0).with_halt(Some(2), 7)"
        );
        assert_eq!(p.kinds(), FaultKind::ALL.to_vec());
    }

    #[test]
    fn warp_streams_are_deterministic_and_independent() {
        let p = FaultPlan::seeded(7).with_delay(500, 32);
        let a1 = p.for_warp(0);
        let a2 = p.for_warp(0);
        let b = p.for_warp(1);
        let s1: Vec<SpinFault> = (0..64).map(|_| a1.poll()).collect();
        let s2: Vec<SpinFault> = (0..64).map(|_| a2.poll()).collect();
        let s3: Vec<SpinFault> = (0..64).map(|_| b.poll()).collect();
        assert_eq!(s1, s2, "same warp, same seed, same stream");
        assert_ne!(s1, s3, "different warps draw different streams");
        assert!(a1.counts().delays > 0, "500 per-mille over 64 polls fires");
    }

    #[test]
    fn point_faults_target_their_warp_only() {
        let p = FaultPlan::seeded(1)
            .with_panic_at(2, 3, 1)
            .with_poison_at(0, 0, 0);
        assert_eq!(p.for_warp(2).step_fault(3, 1), StepFault::Panic);
        assert_eq!(p.for_warp(1).step_fault(3, 1), StepFault::None);
        assert_eq!(p.for_warp(0).step_fault(0, 0), StepFault::Poison);
        assert_eq!(p.for_warp(0).step_fault(1, 0), StepFault::None);
    }

    #[test]
    fn halt_fires_after_threshold_and_dominates() {
        let p = FaultPlan::seeded(3).with_halt(None, 2).with_stall(1, 10);
        let w = p.for_warp(5);
        assert_ne!(w.barrier_entry(), BarrierFault::Halt); // entry 1
        assert_ne!(w.barrier_entry(), BarrierFault::Halt); // entry 2
        assert_eq!(w.barrier_entry(), BarrierFault::Halt); // entry 3
        assert_eq!(w.barrier_entry(), BarrierFault::Halt);
        let scoped = FaultPlan::seeded(3).with_halt(Some(1), 0);
        assert_eq!(scoped.for_warp(1).barrier_entry(), BarrierFault::Halt);
        assert_eq!(scoped.for_warp(0).barrier_entry(), BarrierFault::None);
    }

    #[test]
    fn stall_and_retry_respect_period() {
        let p = FaultPlan::seeded(9)
            .with_stall(2, 50)
            .with_retry_storm(3, 8);
        let w = p.for_warp(0);
        let faults: Vec<BarrierFault> = (0..6).map(|_| w.barrier_entry()).collect();
        assert_eq!(
            faults,
            vec![
                BarrierFault::None,
                BarrierFault::Stall(Duration::from_micros(50)),
                BarrierFault::Retry(8),
                BarrierFault::Stall(Duration::from_micros(50)),
                BarrierFault::None,
                BarrierFault::Stall(Duration::from_micros(50)), // stall wins on lcm entries
            ]
        );
        let c = w.counts();
        assert_eq!((c.stalls, c.retries), (3, 1));
    }
}
