//! Execution-backend seam: [`Device`] / [`DeviceBuffer`] traits, the
//! simulated single-device implementor, and the inter-device
//! [`Interconnect`] spec.
//!
//! Modeled on the wasi-parallel `Device`/`Buffer` pair (SNIPPETS.md
//! snippet 2): a device names itself (`kind()`, `name()`), owns opaque
//! buffers (`alloc` → [`BufferId`], contents reached only through
//! [`DeviceBuffer`]), and accounts every modeled operation against its own
//! [`Timeline`]. The solvers in `mf-solver` drive devices exclusively
//! through `dyn Device`, so a future real backend (SIMD host, wgpu) plugs
//! in underneath the solvers without touching them.
//!
//! The first implementor is [`SimDevice`]: host `Vec<f64>` buffers plus the
//! existing [`DeviceSpec`]/[`CostModel`] roofline pricing — i.e. the
//! single-device simulated engine the rest of the repository already uses,
//! now sitting behind the trait. The sharded engine
//! (`mf_solver::sharded`) instantiates N of these and charges the
//! per-iteration halo exchange to an explicit [`Interconnect`].
//!
//! # Two-level reductions
//!
//! Dots/norms that span devices must stay bitwise invariant in both warp
//! count *and* shard count. Two deterministic layouts exist:
//!
//! * the **solver engines'** layout — per-segment (`tile_size`-element)
//!   single-writer partials, combined by a left-to-right fold in global
//!   segment order. Shards own contiguous segment runs, so concatenating
//!   the shards' partial lists in shard order reproduces the global
//!   segment order exactly: level 1 (intra-device) computes the partials,
//!   level 2 (inter-device) folds them in fixed order, and the result is
//!   bit-identical to a single device at any warp count;
//! * the **backend primitive** [`two_level_dot`] — the global
//!   [`TWO_LEVEL_CHUNK`]-element chunk grid with a pairwise tree over the
//!   chunk partials, matching `mf_kernels::blas1::dot_par` bit-for-bit.
//!   Each chunk is computed wholly by the shard owning its first element
//!   (reading up to a chunk of halo), so the partial list — and therefore
//!   the tree — is a function of the input length alone, never of the
//!   shard count.

use crate::cost::CostModel;
use crate::device::DeviceSpec;
use crate::timeline::{Phase, Timeline};

/// Opaque handle to a buffer owned by one [`Device`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufferId(pub usize);

/// What kind of executor a [`Device`] is backed by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Host-simulated device (the cost-model executor).
    Sim,
}

impl BackendKind {
    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
        }
    }
}

/// One device-resident vector of `f64` values.
///
/// The simulation executes arithmetic on the host against these slices;
/// a real backend would keep the storage device-side and surface staging
/// copies here.
pub trait DeviceBuffer {
    /// Element count.
    fn len(&self) -> usize;
    /// `len() == 0`.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Read access to the contents.
    fn as_slice(&self) -> &[f64];
    /// Write access to the contents.
    fn as_mut_slice(&mut self) -> &mut [f64];
}

/// An execution backend: identity, buffer ownership, and cost accounting.
///
/// Everything the sharded engine does to a device goes through this trait;
/// [`SimDevice`] is the reference implementor.
pub trait Device: Send {
    /// Backend family.
    fn kind(&self) -> BackendKind;
    /// Human-readable device name (stable; used in traces and reports).
    fn name(&self) -> &str;
    /// The hardware model being simulated/driven.
    fn spec(&self) -> &DeviceSpec;

    /// Allocates a zero-initialized buffer of `len` elements.
    fn alloc(&mut self, len: usize) -> BufferId;
    /// Borrows a buffer.
    fn buffer(&self, id: BufferId) -> &dyn DeviceBuffer;
    /// Mutably borrows a buffer.
    fn buffer_mut(&mut self, id: BufferId) -> &mut dyn DeviceBuffer;

    /// Host → device copy into `[offset, offset + data.len())`, charged to
    /// [`Phase::Transfer`] over the device's host link.
    fn upload(&mut self, id: BufferId, offset: usize, data: &[f64]);
    /// Device → host copy of `[offset, offset + out.len())`, charged to
    /// [`Phase::Transfer`] over the device's host link.
    fn download(&mut self, id: BufferId, offset: usize, out: &mut [f64]);

    /// Adds `us` modeled microseconds to `phase` on this device's ledger.
    fn charge(&mut self, phase: Phase, us: f64);
    /// Prices one kernel-shaped operation (`flops` FP64-equivalents,
    /// `bytes` of traffic, `warps` in flight) on the device's roofline and
    /// charges it to `phase`. Returns the modeled microseconds.
    fn charge_kernel(&mut self, phase: Phase, flops: f64, bytes: f64, warps: usize) -> f64;
    /// The accumulated per-phase ledger.
    fn timeline(&self) -> &Timeline;
}

/// Buffer of the simulated backend: a host vector.
#[derive(Clone, Debug, Default)]
pub struct SimBuffer {
    data: Vec<f64>,
}

impl DeviceBuffer for SimBuffer {
    fn len(&self) -> usize {
        self.data.len()
    }
    fn as_slice(&self) -> &[f64] {
        &self.data
    }
    fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// The simulated single-device backend: host memory + roofline pricing.
///
/// This is the existing single-device simulated engine repackaged as the
/// first [`Device`] implementor — same [`DeviceSpec`] presets, same
/// [`CostModel`] arithmetic, same [`Timeline`] phases the figure harness
/// already reads.
#[derive(Clone, Debug)]
pub struct SimDevice {
    name: String,
    spec: DeviceSpec,
    cost: CostModel,
    host_link: Interconnect,
    timeline: Timeline,
    buffers: Vec<SimBuffer>,
}

impl SimDevice {
    /// A simulated device named `name` modeling `spec`, with host
    /// transfers charged over PCIe 4.0.
    pub fn new(name: impl Into<String>, spec: DeviceSpec) -> SimDevice {
        SimDevice {
            name: name.into(),
            cost: CostModel::new(spec.clone()),
            spec,
            host_link: Interconnect::pcie4(),
            timeline: Timeline::new(),
            buffers: Vec::new(),
        }
    }

    /// Replaces the host link used to price `upload`/`download`.
    pub fn with_host_link(mut self, link: Interconnect) -> SimDevice {
        self.host_link = link;
        self
    }

    /// The roofline price list of this device.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }
}

impl Device for SimDevice {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    fn alloc(&mut self, len: usize) -> BufferId {
        self.buffers.push(SimBuffer {
            data: vec![0.0; len],
        });
        BufferId(self.buffers.len() - 1)
    }

    fn buffer(&self, id: BufferId) -> &dyn DeviceBuffer {
        &self.buffers[id.0]
    }

    fn buffer_mut(&mut self, id: BufferId) -> &mut dyn DeviceBuffer {
        &mut self.buffers[id.0]
    }

    fn upload(&mut self, id: BufferId, offset: usize, data: &[f64]) {
        let us = self.host_link.transfer_us(8 * data.len() as u64);
        self.buffers[id.0].data[offset..offset + data.len()].copy_from_slice(data);
        self.timeline.add(Phase::Transfer, us);
    }

    fn download(&mut self, id: BufferId, offset: usize, out: &mut [f64]) {
        let us = self.host_link.transfer_us(8 * out.len() as u64);
        out.copy_from_slice(&self.buffers[id.0].data[offset..offset + out.len()]);
        self.timeline.add(Phase::Transfer, us);
    }

    fn charge(&mut self, phase: Phase, us: f64) {
        self.timeline.add(phase, us);
    }

    fn charge_kernel(&mut self, phase: Phase, flops: f64, bytes: f64, warps: usize) -> f64 {
        let us = self.cost.roofline_us(flops, bytes, warps);
        self.timeline.add(phase, us);
        us
    }

    fn timeline(&self) -> &Timeline {
        &self.timeline
    }
}

/// Inter-device link model: a transfer of `b` bytes costs
/// `link_latency_us + b / (link_gbs · 10³)` microseconds (1 GB/s moves
/// 10³ bytes per µs). The sharded engine charges every halo message and
/// every reduction combine through one of these.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interconnect {
    /// Unidirectional link bandwidth in GB/s.
    pub link_gbs: f64,
    /// Per-message latency in µs (launch + routing, paid once per message).
    pub link_latency_us: f64,
}

impl Interconnect {
    /// NVLink 3.0-class link: 50 GB/s per direction, ~1.3 µs latency.
    pub fn nvlink3() -> Interconnect {
        Interconnect {
            link_gbs: 50.0,
            link_latency_us: 1.3,
        }
    }

    /// PCIe 4.0 x16-class link: 25 GB/s effective, ~2.5 µs latency.
    pub fn pcie4() -> Interconnect {
        Interconnect {
            link_gbs: 25.0,
            link_latency_us: 2.5,
        }
    }

    /// Modeled microseconds to move `bytes` over this link as one message.
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        assert!(self.link_gbs > 0.0, "zero-bandwidth interconnect");
        self.link_latency_us + bytes as f64 / (self.link_gbs * 1e3)
    }
}

impl Default for Interconnect {
    fn default() -> Interconnect {
        Interconnect::nvlink3()
    }
}

/// Chunk width of the backend two-level reduction — the same fixed grid as
/// `mf_kernels::blas1::DETERMINISTIC_CHUNK`, re-stated here because the
/// dependency points the other way (`mf-kernels` → `mf-gpu`). The
/// cross-crate equality is pinned by `crates/gpu/tests/prop_partition.rs`.
pub const TWO_LEVEL_CHUNK: usize = 4_096;

/// Pairwise midpoint-split sum in index order — the inter-device combine
/// of [`two_level_dot`]. Grouping depends only on `p.len()`.
fn tree_sum(p: &[f64]) -> f64 {
    match p.len() {
        0 => 0.0,
        1 => p[0],
        n => {
            let mid = n / 2;
            tree_sum(&p[..mid]) + tree_sum(&p[mid..])
        }
    }
}

/// Two-level dot product `(x, y)` across shard element ranges.
///
/// Level 1 (intra-device): each shard computes the left-to-right partial
/// of every [`TWO_LEVEL_CHUNK`]-aligned chunk whose *first element* it
/// owns (a chunk straddling a shard boundary is still summed whole by its
/// owner, which reads up to one chunk of halo — splitting a left-to-right
/// sum at the boundary would change the grouping and therefore the bits).
/// Level 2 (inter-device): the chunk partials, concatenated in global
/// chunk order, are combined by the fixed pairwise tree.
///
/// The partial list and the tree are functions of `x.len()` alone, so the
/// result is bitwise identical for any `elem_lo` — including the
/// single-shard `[0, n]`, where it reproduces
/// `mf_kernels::blas1::dot_par`/`dot_det` exactly.
pub fn two_level_dot(x: &[f64], y: &[f64], elem_lo: &[usize]) -> f64 {
    assert_eq!(x.len(), y.len());
    assert!(elem_lo.len() >= 2, "need at least one shard range");
    assert_eq!(*elem_lo.first().unwrap(), 0);
    assert_eq!(*elem_lo.last().unwrap(), x.len());
    let mut partials: Vec<f64> = Vec::with_capacity(x.len().div_ceil(TWO_LEVEL_CHUNK));
    for w in elem_lo.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        assert!(lo <= hi, "shard bounds must be non-decreasing");
        // Chunks whose first element falls in [lo, hi) belong to this shard.
        let mut start = lo.next_multiple_of(TWO_LEVEL_CHUNK);
        while start < hi {
            let end = (start + TWO_LEVEL_CHUNK).min(x.len());
            let part: f64 = x[start..end]
                .iter()
                .zip(&y[start..end])
                .map(|(a, b)| a * b)
                .sum();
            partials.push(part);
            start += TWO_LEVEL_CHUNK;
        }
    }
    tree_sum(&partials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_device_buffers_round_trip() {
        let mut d = SimDevice::new("sim:0", DeviceSpec::a100());
        let id = d.alloc(8);
        assert_eq!(d.buffer(id).len(), 8);
        d.upload(id, 2, &[1.0, 2.0, 3.0]);
        let mut out = [0.0; 3];
        d.download(id, 2, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert!(d.timeline().get(Phase::Transfer) > 0.0);
        assert_eq!(d.kind(), BackendKind::Sim);
        assert_eq!(d.name(), "sim:0");
    }

    #[test]
    fn charge_kernel_prices_roofline() {
        let mut d = SimDevice::new("sim:0", DeviceSpec::a100());
        let us = d.charge_kernel(Phase::Spmv, 1e6, 1e6, 32);
        assert!(us > 0.0);
        assert_eq!(d.timeline().get(Phase::Spmv), us);
    }

    #[test]
    fn interconnect_prices_latency_plus_bandwidth() {
        let link = Interconnect {
            link_gbs: 10.0,
            link_latency_us: 2.0,
        };
        // 10 GB/s = 1e4 bytes/µs → 1e4 bytes take 1 µs + 2 µs latency.
        assert!((link.transfer_us(10_000) - 3.0).abs() < 1e-12);
        assert_eq!(link.transfer_us(0), 2.0);
        assert!(Interconnect::nvlink3().transfer_us(1 << 20) > 0.0);
        assert!(Interconnect::pcie4().transfer_us(1 << 20) > 0.0);
    }

    #[test]
    fn two_level_dot_is_shard_count_invariant() {
        let n = 10_001;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let whole = two_level_dot(&x, &y, &[0, n]);
        for bounds in [
            vec![0, 5_000, n],
            vec![0, 16, 4_096, 9_000, n],
            vec![0, 1, 2, 3, n],
        ] {
            assert_eq!(
                two_level_dot(&x, &y, &bounds).to_bits(),
                whole.to_bits(),
                "bounds {bounds:?}"
            );
        }
    }
}
