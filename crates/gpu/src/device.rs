//! Device specifications (paper Table I).
//!
//! Architectural constants come from the vendors' published datasheets; the
//! latency-type constants (kernel launch + synchronization, device-to-host
//! scalar copy, global atomic update) are order-of-magnitude figures from the
//! usual microbenchmark literature, calibrated so the *baseline* runtime
//! breakdown matches the paper's Fig. 2 (synchronization often >30% of a
//! multi-kernel CG iteration, >50% for small matrices). EXPERIMENTS.md
//! documents the calibration.

/// GPU vendor (only affects labeling and a few schedule defaults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vendor {
    /// NVIDIA (CUDA execution model, 32-thread warps).
    Nvidia,
    /// AMD (HIP/ROCm execution model, 64-thread wavefronts).
    Amd,
}

/// A GPU device model.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"NVIDIA A100 PCIe"`.
    pub name: String,
    /// Vendor.
    pub vendor: Vendor,
    /// Number of streaming multiprocessors (NVIDIA) / compute units (AMD).
    pub sm_count: usize,
    /// Threads per warp/wavefront.
    pub warp_size: usize,
    /// Maximum resident warps per SM (occupancy ceiling).
    pub max_warps_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak FP64 vector throughput in GFLOP/s.
    pub fp64_gflops: f64,
    /// Peak HBM bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Usable shared memory (LDS) per SM in bytes.
    pub shared_mem_per_sm: usize,
    /// Device memory capacity in bytes.
    pub global_mem_bytes: usize,
    /// Kernel launch + implicit inter-kernel synchronization latency in µs.
    /// This is the overhead Finding 2 targets: a multi-kernel CG iteration
    /// pays it ~6 times, the single-kernel scheme once per solve.
    pub kernel_launch_us: f64,
    /// Minimum wall time of any kernel body in µs (ramp-up/drain — even an
    /// empty kernel is not free).
    pub min_kernel_body_us: f64,
    /// Device-to-host transfer latency for a scalar (residual check) in µs.
    pub d2h_scalar_us: f64,
    /// Cost of one global-memory atomic update in µs (amortized, contended).
    pub atomic_us: f64,
    /// Per-step cost of the busy-wait polling loop in the single-kernel
    /// scheme, in µs (threadfence + flag re-read until the last warp lands).
    pub spin_poll_us: f64,
    /// Warp count at which compute throughput saturates (utilization model).
    pub warps_for_peak_compute: usize,
    /// Warp count at which memory bandwidth saturates.
    pub warps_for_peak_bw: usize,
}

impl DeviceSpec {
    /// NVIDIA A100 PCIe 40 GB (Ampere) — paper Table I entry (1).
    pub fn a100() -> DeviceSpec {
        DeviceSpec {
            name: "NVIDIA A100 PCIe".into(),
            vendor: Vendor::Nvidia,
            sm_count: 108,
            warp_size: 32,
            max_warps_per_sm: 64,
            clock_ghz: 1.41,
            fp64_gflops: 9_700.0,
            mem_bw_gbs: 1_555.0,
            shared_mem_per_sm: 164 * 1024,
            global_mem_bytes: 40 * 1024 * 1024 * 1024,
            kernel_launch_us: 6.5,
            min_kernel_body_us: 2.5,
            d2h_scalar_us: 16.0,
            atomic_us: 0.0008,
            spin_poll_us: 2.2,
            warps_for_peak_compute: 108 * 8,
            warps_for_peak_bw: 108 * 16,
        }
    }

    /// AMD MI210 PCIe 64 GB (CDNA2) — paper Table I entry (2).
    ///
    /// The MI210 has higher FP64 peak and slightly higher bandwidth than the
    /// A100, and hipSPARSE's per-kernel overhead is a touch lower in the
    /// paper's measurements (speedups on MI210 are consistently ~0.9× the
    /// A100 speedups, e.g. 2.68× vs 3.03× in CG).
    pub fn mi210() -> DeviceSpec {
        DeviceSpec {
            name: "AMD MI210 PCIe".into(),
            vendor: Vendor::Amd,
            sm_count: 104,
            warp_size: 64,
            max_warps_per_sm: 32,
            clock_ghz: 1.70,
            fp64_gflops: 22_600.0,
            mem_bw_gbs: 1_638.0,
            shared_mem_per_sm: 64 * 1024,
            global_mem_bytes: 64 * 1024 * 1024 * 1024,
            kernel_launch_us: 5.5,
            min_kernel_body_us: 2.8,
            d2h_scalar_us: 14.0,
            atomic_us: 0.001,
            spin_poll_us: 2.6,
            warps_for_peak_compute: 104 * 8,
            warps_for_peak_bw: 104 * 16,
        }
    }

    /// Maximum number of warps that can be resident on the whole device.
    pub fn max_resident_warps(&self) -> usize {
        self.sm_count * self.max_warps_per_sm
    }

    /// Total shared memory across the device in bytes — the budget the
    /// single-kernel scheme has for keeping the matrix on-chip.
    pub fn total_shared_mem(&self) -> usize {
        self.sm_count * self.shared_mem_per_sm
    }

    /// Peak FP64 throughput in FLOP/µs.
    #[inline]
    pub fn flops_per_us(&self) -> f64 {
        self.fp64_gflops * 1e3
    }

    /// Peak bandwidth in bytes/µs.
    #[inline]
    pub fn bytes_per_us(&self) -> f64 {
        self.mem_bw_gbs * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let a = DeviceSpec::a100();
        assert_eq!(a.sm_count, 108);
        assert_eq!(a.warp_size, 32);
        assert!((a.clock_ghz - 1.41).abs() < 1e-9);
        assert!((a.mem_bw_gbs - 1555.0).abs() < 1e-9);
        let m = DeviceSpec::mi210();
        assert_eq!(m.warp_size, 64);
        assert!((m.mem_bw_gbs - 1638.0).abs() < 1e-9);
        assert_eq!(m.vendor, Vendor::Amd);
    }

    #[test]
    fn derived_quantities() {
        let a = DeviceSpec::a100();
        assert_eq!(a.max_resident_warps(), 108 * 64);
        assert_eq!(a.total_shared_mem(), 108 * 164 * 1024);
        assert!((a.flops_per_us() - 9.7e6).abs() < 1.0);
        assert!((a.bytes_per_us() - 1.555e6).abs() < 1.0);
    }

    #[test]
    fn launch_overhead_dominates_small_kernels() {
        // The premise of Finding 2: launching a kernel costs multiple µs,
        // more than the body of a small SpMV.
        let a = DeviceSpec::a100();
        assert!(a.kernel_launch_us > a.min_kernel_body_us);
        assert!(a.kernel_launch_us > 1.0);
    }

    #[test]
    fn mi210_has_higher_fp64_peak() {
        // CDNA2 doubles FP64 vector rate versus Ampere's non-tensor path;
        // the cost model relies on the relative ordering.
        assert!(DeviceSpec::mi210().fp64_gflops > DeviceSpec::a100().fp64_gflops);
    }
}
