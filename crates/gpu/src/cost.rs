//! Roofline cost model.
//!
//! Wall time of a kernel body is modeled as
//! `max(flops / compute_rate, bytes / bandwidth)`, where both rates are
//! de-rated when too few warps are in flight to saturate the device (small
//! matrices cannot hide latency — this produces the flat left side of the
//! paper's time-vs-nnz plots, Figs. 8–10). FLOPs are expressed in *FP64
//! equivalents*: a FLOP executed in precision `p` counts `p.flop_cost()`
//! (0.125 for FP8 … 1.0 for FP64), which is how tile-grained mixed precision
//! earns its compute-side speedup; the memory side is charged the actual
//! byte counts of the packed tile storage.
//!
//! Fixed latencies (kernel launch + sync, D2H scalar copies, atomics, spin
//! polls) come from the [`DeviceSpec`] and are charged by the solver engines,
//! not here — this module prices kernel *bodies* only, so that the same body
//! prices feed both the multi-kernel baselines (which add 6–10 launches per
//! iteration) and the single-kernel scheme (which adds atomics instead).

use crate::device::DeviceSpec;

/// Prices kernel bodies on a given device.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// The device being modeled.
    pub device: DeviceSpec,
}

/// Elements each warp of a BLAS-1 kernel processes (grid-stride loop).
const ELEMS_PER_WARP_BLAS1: usize = 256;
/// Nonzeros each warp of the baseline CSR SpMV processes on average.
const NNZ_PER_WARP_SPMV: usize = 128;

impl CostModel {
    /// Creates a cost model for `device`.
    pub fn new(device: DeviceSpec) -> CostModel {
        CostModel { device }
    }

    /// Compute-rate utilization for `warps` warps in flight.
    #[inline]
    fn util(&self, warps: usize, warps_for_peak: usize) -> f64 {
        let w = warps.max(1) as f64;
        (w / warps_for_peak as f64).clamp(1.0 / warps_for_peak as f64, 1.0)
    }

    /// Generic roofline: `flops` FP64-equivalent FLOPs and `bytes` of global
    /// memory traffic executed by `warps` concurrent warps. Returns µs.
    pub fn roofline_us(&self, flops: f64, bytes: f64, warps: usize) -> f64 {
        let cu = self.util(warps, self.device.warps_for_peak_compute);
        let bu = self.util(warps, self.device.warps_for_peak_bw);
        let t_compute = flops / (self.device.flops_per_us() * cu);
        let t_mem = bytes / (self.device.bytes_per_us() * bu);
        t_compute.max(t_mem)
    }

    /// Same as [`CostModel::roofline_us`] but with the minimum-kernel-body
    /// floor applied — use for *standalone* kernel launches (the multi-kernel
    /// path). Steps inside the single kernel have no such floor.
    pub fn kernel_body_us(&self, flops: f64, bytes: f64, warps: usize) -> f64 {
        self.roofline_us(flops, bytes, warps)
            .max(self.device.min_kernel_body_us)
    }

    /// Launch + inter-kernel synchronization overhead of one kernel call.
    #[inline]
    pub fn launch_us(&self) -> f64 {
        self.device.kernel_launch_us
    }

    /// Device-to-host scalar transfer (residual / dot result readback).
    #[inline]
    pub fn d2h_us(&self) -> f64 {
        self.device.d2h_scalar_us
    }

    /// Cost of `n` global atomic updates.
    #[inline]
    pub fn atomics_us(&self, n: usize) -> f64 {
        n as f64 * self.device.atomic_us
    }

    /// One busy-wait barrier poll step of the single-kernel scheme.
    #[inline]
    pub fn spin_us(&self) -> f64 {
        self.device.spin_poll_us
    }

    /// One global barrier epoch of the single-kernel scheme: every warp
    /// bumps the shared epoch counter (one atomic each) and busy-waits for
    /// the count to reach the warp total (one poll step charged; further
    /// polls overlap the stragglers' remaining work). This is the unit the
    /// pipelined schedules minimize — classic CG passes ~4 such epochs per
    /// iteration, pipelined CG exactly one.
    #[inline]
    pub fn barrier_us(&self, warps: usize) -> f64 {
        self.atomics_us(warps) + self.spin_us()
    }

    /// Number of warps a BLAS-1 kernel over `n` elements puts in flight.
    pub fn blas1_warps(&self, n: usize) -> usize {
        n.div_ceil(ELEMS_PER_WARP_BLAS1)
            .clamp(1, self.device.max_resident_warps())
    }

    /// Number of warps the baseline CSR SpMV puts in flight.
    pub fn spmv_warps(&self, nnz: usize) -> usize {
        nnz.div_ceil(NNZ_PER_WARP_SPMV)
            .clamp(1, self.device.max_resident_warps())
    }

    /// Kernel body of the FP64 CSR SpMV as the cuSPARSE baseline runs it:
    /// 2 FLOPs per nonzero; traffic = 12 B/nnz (colidx + value) + 8 B/nnz
    /// gathered `x` + 12 B/row (`rowptr` + streamed `y`).
    pub fn spmv_csr_us(&self, nnz: usize, nrows: usize) -> f64 {
        let flops = 2.0 * nnz as f64;
        let bytes = 20.0 * nnz as f64 + 12.0 * nrows as f64;
        self.kernel_body_us(flops, bytes, self.spmv_warps(nnz))
    }

    /// Kernel body of a dot product over `n` elements (2 loads per element,
    /// 2 FLOPs, reduction traffic negligible).
    pub fn dot_us(&self, n: usize) -> f64 {
        let flops = 2.0 * n as f64;
        let bytes = 16.0 * n as f64;
        self.kernel_body_us(flops, bytes, self.blas1_warps(n))
    }

    /// Kernel body of an AXPY over `n` elements (2 loads + 1 store, 2 FLOPs).
    pub fn axpy_us(&self, n: usize) -> f64 {
        let flops = 2.0 * n as f64;
        let bytes = 24.0 * n as f64;
        self.kernel_body_us(flops, bytes, self.blas1_warps(n))
    }

    /// Kernel body of a sparse triangular solve with `nnz` nonzeros over `n`
    /// rows executed in `levels` dependency levels. Each level is a
    /// device-wide round trip (that is why SpTRSV is so much slower than
    /// SpMV), plus the roofline body of the touched data.
    pub fn sptrsv_us(&self, nnz: usize, n: usize, levels: usize) -> f64 {
        let body = self.roofline_us(
            2.0 * nnz as f64,
            20.0 * nnz as f64 + 20.0 * n as f64,
            self.spmv_warps(nnz),
        );
        let level_cost = levels as f64 * 0.8; // µs per dependency level sweep
        (body + level_cost).max(self.device.min_kernel_body_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn model() -> CostModel {
        CostModel::new(DeviceSpec::a100())
    }

    #[test]
    fn small_kernels_hit_the_floor() {
        let m = model();
        // A 100-element dot cannot beat the minimum kernel body time.
        assert_eq!(m.dot_us(100), m.device.min_kernel_body_us);
        assert_eq!(m.axpy_us(1), m.device.min_kernel_body_us);
    }

    #[test]
    fn large_spmv_is_bandwidth_bound() {
        let m = model();
        let nnz = 50_000_000;
        let us = m.spmv_csr_us(nnz, 1_000_000);
        // At full utilization: 20 B/nnz + 12 B/row over 1.555 TB/s.
        let expect = (20.0 * nnz as f64 + 12.0 * 1_000_000.0) / m.device.bytes_per_us();
        assert!((us - expect).abs() / expect < 1e-9, "{us} vs {expect}");
    }

    #[test]
    fn cost_scales_monotonically() {
        let m = model();
        let mut last = 0.0;
        for k in [1_000, 10_000, 100_000, 1_000_000, 10_000_000] {
            let us = m.spmv_csr_us(k, k / 5);
            assert!(us >= last, "not monotone at nnz={k}");
            last = us;
        }
    }

    #[test]
    fn mixed_precision_reduces_cost() {
        let m = model();
        // Same logical SpMV, FP8 values: 1 B/value instead of 8, FLOPs at
        // 1/8 weight — the roofline must price it lower.
        let nnz = 10_000_000usize;
        let fp64 = m.roofline_us(2.0 * nnz as f64, 20.0 * nnz as f64, m.spmv_warps(nnz));
        let fp8 = m.roofline_us(0.25 * nnz as f64, 13.0 * nnz as f64, m.spmv_warps(nnz));
        assert!(fp8 < fp64 * 0.8, "fp8 {fp8} vs fp64 {fp64}");
    }

    #[test]
    fn utilization_derates_small_work() {
        let m = model();
        // The same flops executed by 1 warp vs many warps is far slower.
        let one = m.roofline_us(1e6, 0.0, 1);
        let many = m.roofline_us(1e6, 0.0, m.device.warps_for_peak_compute);
        assert!(one > many * 100.0);
    }

    #[test]
    fn sptrsv_levels_dominate_for_sequential_matrices() {
        let m = model();
        // A bidiagonal matrix has n levels: SpTRSV cost is latency-bound.
        let serial = m.sptrsv_us(2_000, 1_000, 1_000);
        let parallel = m.sptrsv_us(2_000, 1_000, 4);
        assert!(serial > parallel * 10.0);
    }

    #[test]
    fn launch_and_sync_costs_exposed() {
        let m = model();
        assert_eq!(m.launch_us(), m.device.kernel_launch_us);
        assert_eq!(m.atomics_us(100), 100.0 * m.device.atomic_us);
        assert!(m.d2h_us() > 0.0);
        assert!(m.spin_us() > 0.0);
        // A barrier epoch is the atomic bumps plus one poll, and it grows
        // with the warp count (more counter traffic to serialize).
        assert_eq!(m.barrier_us(8), m.atomics_us(8) + m.spin_us());
        assert!(m.barrier_us(32) > m.barrier_us(2));
    }

    #[test]
    fn finding2_premise_holds() {
        // For a small matrix (the bcsstm22 scale: n=138, nnz=138), the six
        // kernel launches of a multi-kernel CG iteration cost more than the
        // kernel bodies themselves -> sync share > 50%, matching Fig. 2.
        let m = model();
        let n = 138;
        let body = m.spmv_csr_us(n, n) + 2.0 * m.dot_us(n) + 3.0 * m.axpy_us(n);
        let sync = 6.0 * m.launch_us() + 2.0 * m.d2h_us();
        assert!(sync > body, "sync {sync} vs body {body}");
    }
}
