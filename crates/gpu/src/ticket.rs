//! Ticketed deterministic parallel execution (sequencer / workers /
//! committer).
//!
//! The host-side preprocessing pipeline — CSR→tile conversion, per-tile
//! precision classification, ILU(0)/IC(0) factorization — is a chain of
//! barrier-shaped phases: every stage waits for the slowest unit of the
//! previous one. This module provides the alternative concurrency
//! substrate named in ROADMAP ("Ticketed deterministic parallelism for
//! the host engines", after SNIPPETS.md snippet 3):
//!
//! * a **sequencer** assigns each work unit a monotonic *ticket* (here:
//!   the unit's index in a pre-planned order) and a deterministic
//!   per-ticket seed derived from `(salt, ticket)` by [splitmix64] —
//!   never from thread identity or time;
//! * N **workers** claim tickets in order from a shared cursor and
//!   compute against an immutable snapshot: the unit itself plus the
//!   prefix of *committed* results visible through a [`CommitView`].
//!   A unit may declare one predecessor ticket ([`dep`]); the worker
//!   blocks until that ticket has committed, which — because commits
//!   are strictly ordered — implies *every* earlier ticket has too;
//! * a single-threaded **committer** (the caller's thread) applies
//!   results strictly in ticket order. Each worker result carries the
//!   watermark it observed; the committer *revalidates* it (was the
//!   declared dependency really committed when the worker read it?) and
//!   falls back to recomputing the unit serially when the result is
//!   stale, dropped, or the worker panicked. The committed sequence is
//!   therefore a pure function of `(units, seeds)` — bitwise identical
//!   at every worker count, which is what `tests/ticketed_parity.rs`
//!   pins.
//!
//! [`TicketFaults`] perturbs the worker side (delays, stalls, dropped /
//! stale results, planted panics) the same way [`FaultPlan`] perturbs
//! the solver engines: seeded, reproducible from the `Display` repro
//! line, and required *not* to change a single output bit — only the
//! (schedule-dependent) [`TicketStats`] fallback counters.
//!
//! The module also carries a deterministic **schedule model**
//! ([`simulate_ticketed`] / [`simulate_barrier_pipeline`]) used by
//! `fig_ticket` to gate utilization on hosts where wall-clock speedup
//! is physically unavailable (the CI container exposes one core).
//!
//! [`dep`]: UnitSpec::dep
//! [`FaultPlan`]: crate::FaultPlan
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Probability knobs are expressed in per-mille (0..=1000) so plans stay
/// integer-literal and hash-stable across platforms (same convention as
/// [`crate::faults::PER_MILLE`]).
pub const TICKET_PER_MILLE: u64 = 1000;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-ticket seed: a pure function of `(salt, ticket)`.
///
/// Workers receive this seed with the unit; nothing downstream may draw
/// randomness from thread identity, claim order, or time, so replaying a
/// run with any worker count reproduces the exact per-unit streams.
#[must_use]
pub fn ticket_seed(salt: u64, ticket: usize) -> u64 {
    let mut s = salt ^ (ticket as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    splitmix64(&mut s)
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Seeded, reproducible perturbation of the ticketed runtime's *worker*
/// side. Mirrors [`crate::FaultPlan`]: per-worker [splitmix64] streams,
/// `Display` is a compilable builder repro line, and an empty plan costs
/// one branch.
///
/// All kinds are *benign for the output*: dropped / stale / panicking
/// workers merely push tickets onto the committer's serial-fallback
/// path. The determinism claim quantifies over all of them.
///
/// [splitmix64]: https://prng.di.unimi.it/splitmix64.c
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TicketFaults {
    seed: u64,
    /// Per-claim busy-spin: with probability `delay_per_mille`/1000 burn
    /// 1..=`delay_max_spins` `spin_loop` hints before computing.
    delay_per_mille: u16,
    delay_max_spins: u32,
    /// Every `stall_period`-th claim, busy-wait `stall_spins` hints.
    stall_period: u32,
    stall_spins: u32,
    /// Per ticket: publish no result (worker "loses" it).
    drop_per_mille: u16,
    /// Per ticket: publish a corrupted observed-watermark of 0, forcing
    /// commit-time revalidation to reject the result.
    stale_per_mille: u16,
    /// Per ticket: panic inside the compute closure.
    panic_per_mille: u16,
}

impl TicketFaults {
    /// An empty plan with a fixed seed; add faults with the `with_*`
    /// builders.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        TicketFaults {
            seed,
            delay_per_mille: 0,
            delay_max_spins: 0,
            stall_period: 0,
            stall_spins: 0,
            drop_per_mille: 0,
            stale_per_mille: 0,
            panic_per_mille: 0,
        }
    }

    /// Per-claim busy-spin delays.
    #[must_use]
    pub fn with_delay(mut self, per_mille: u16, max_spins: u32) -> Self {
        self.delay_per_mille = per_mille.min(1000);
        self.delay_max_spins = max_spins.max(1);
        self
    }

    /// Bounded stall every `period`-th claim.
    #[must_use]
    pub fn with_stall(mut self, period: u32, spins: u32) -> Self {
        self.stall_period = period.max(1);
        self.stall_spins = spins;
        self
    }

    /// Workers lose the result of a ticket with the given probability.
    #[must_use]
    pub fn with_drop(mut self, per_mille: u16) -> Self {
        self.drop_per_mille = per_mille.min(1000);
        self
    }

    /// Workers publish a stale (watermark-0) result with the given
    /// probability.
    #[must_use]
    pub fn with_stale(mut self, per_mille: u16) -> Self {
        self.stale_per_mille = per_mille.min(1000);
        self
    }

    /// Workers panic inside compute with the given probability.
    #[must_use]
    pub fn with_panic(mut self, per_mille: u16) -> Self {
        self.panic_per_mille = per_mille.min(1000);
        self
    }

    /// True when no fault kind is armed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.delay_per_mille == 0
            && self.stall_period == 0
            && self.drop_per_mille == 0
            && self.stale_per_mille == 0
            && self.panic_per_mille == 0
    }

    /// The per-worker fault stream. Worker `w`'s stream depends only on
    /// `(seed, w)`, so a failing run replays exactly.
    #[must_use]
    pub fn for_worker(&self, worker: usize) -> WorkerTicketFaults {
        let mut s = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul((worker as u64) | 1)
            ^ 0x5851_F42D_4C95_7F2D;
        let state = splitmix64(&mut s);
        WorkerTicketFaults {
            plan: *self,
            rng: Cell::new(state),
            claims: Cell::new(0),
        }
    }
}

impl fmt::Display for TicketFaults {
    /// A compilable repro line, echoed by failing tests.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TicketFaults::seeded(0x{:x})", self.seed)?;
        if self.delay_per_mille > 0 {
            write!(
                f,
                ".with_delay({}, {})",
                self.delay_per_mille, self.delay_max_spins
            )?;
        }
        if self.stall_period > 0 {
            write!(
                f,
                ".with_stall({}, {})",
                self.stall_period, self.stall_spins
            )?;
        }
        if self.drop_per_mille > 0 {
            write!(f, ".with_drop({})", self.drop_per_mille)?;
        }
        if self.stale_per_mille > 0 {
            write!(f, ".with_stale({})", self.stale_per_mille)?;
        }
        if self.panic_per_mille > 0 {
            write!(f, ".with_panic({})", self.panic_per_mille)?;
        }
        Ok(())
    }
}

/// One worker's view of a [`TicketFaults`] plan (single-threaded; holds
/// the worker's private RNG stream).
pub struct WorkerTicketFaults {
    plan: TicketFaults,
    rng: Cell<u64>,
    claims: Cell<u64>,
}

impl WorkerTicketFaults {
    fn draw(&self) -> u64 {
        let mut s = self.rng.get();
        let v = splitmix64(&mut s);
        self.rng.set(s);
        v
    }

    fn roll(&self, per_mille: u16) -> bool {
        per_mille > 0 && self.draw() % TICKET_PER_MILLE < u64::from(per_mille)
    }

    /// Called once per claimed ticket, before computing: injects the
    /// benign delay / stall perturbations.
    pub fn on_claim(&self) {
        let c = self.claims.get() + 1;
        self.claims.set(c);
        if self.plan.delay_per_mille > 0 && self.roll(self.plan.delay_per_mille) {
            let spins = self.draw() % u64::from(self.plan.delay_max_spins) + 1;
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
        if self.plan.stall_period > 0 && c.is_multiple_of(u64::from(self.plan.stall_period)) {
            for _ in 0..self.plan.stall_spins {
                std::hint::spin_loop();
            }
            std::thread::yield_now();
        }
    }

    /// Should this ticket's result be lost before publication?
    pub fn drop_result(&self) -> bool {
        self.roll(self.plan.drop_per_mille)
    }

    /// Should this ticket publish a corrupted observed-watermark?
    pub fn stale_result(&self) -> bool {
        self.roll(self.plan.stale_per_mille)
    }

    /// Should the compute closure panic on this ticket?
    pub fn panic_now(&self) -> bool {
        self.roll(self.plan.panic_per_mille)
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Read-only window over the committed prefix of results.
///
/// `get(t)` is only legal for tickets below the current watermark; the
/// runtime guarantees a worker that waited for its declared dependency
/// sees every ticket up to it (commits are strictly ordered).
pub struct CommitView<'a, R> {
    slots: &'a [OnceLock<R>],
    watermark: &'a AtomicUsize,
}

impl<R> CommitView<'_, R> {
    /// Number of committed tickets (watermark). Tickets `0..committed()`
    /// are readable.
    #[must_use]
    pub fn committed(&self) -> usize {
        self.watermark.load(Ordering::Acquire)
    }

    /// The committed result of `ticket`. Panics if it has not committed
    /// yet — readers must wait on their declared dependency first.
    #[must_use]
    pub fn get(&self, ticket: usize) -> &R {
        let w = self.committed();
        assert!(
            ticket < w,
            "CommitView::get({ticket}) ahead of watermark {w}"
        );
        self.slots[ticket]
            .get()
            .expect("slot published before watermark advance")
    }
}

/// Worker / committer configuration for [`run_ticketed`].
#[derive(Clone, Copy)]
pub struct TicketConfig<'a> {
    /// Worker thread count; `<= 1` runs the whole pipeline serially on
    /// the caller thread (no spawns, faults ignored).
    pub workers: usize,
    /// Salt for [`ticket_seed`]; pin it per pipeline so seeds are stable
    /// across runs.
    pub salt: u64,
    /// Optional worker-side perturbation plan.
    pub faults: Option<&'a TicketFaults>,
}

/// Schedule-dependent observability counters for one ticketed run.
///
/// The committed *outputs* are deterministic; these counters are not
/// (they depend on thread interleaving and the fault plan) — treat them
/// as diagnostics, never as inputs to numerics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TicketStats {
    /// Total tickets committed.
    pub tickets: usize,
    /// Worker threads used (0 = serial caller-thread path).
    pub workers: usize,
    /// Tickets whose worker result was accepted as-is.
    pub accepted: usize,
    /// Tickets recomputed serially by the committer (any reason).
    pub fallbacks: usize,
    /// ... of which: the worker published nothing (drop fault, panic).
    pub dropped: usize,
    /// ... of which: revalidation rejected a stale observed-watermark.
    pub stale: usize,
}

/// Metadata the committer hands to the commit closure.
#[derive(Clone, Copy, Debug)]
pub struct CommitInfo {
    /// The ticket's deterministic seed (same value the worker received).
    pub seed: u64,
    /// Worker that produced the committed result; `None` when the
    /// committer recomputed it (serial fallback) or on the serial path.
    pub worker: Option<usize>,
    /// True when this result came from the serial-fallback recompute.
    pub fallback: bool,
}

/// A commit-closure error, annotated with the ticket it fired on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TicketError<E> {
    /// Ticket whose commit failed.
    pub ticket: usize,
    /// The commit closure's error.
    pub error: E,
}

/// What a worker publishes for one ticket.
struct WorkerOut<R> {
    /// `None` when the result was lost (drop fault or worker panic).
    value: Option<R>,
    /// Watermark the worker observed before computing (0 under the
    /// stale fault) — revalidated against the unit's dependency at
    /// commit time.
    observed: usize,
    worker: usize,
}

/// Run `units` through the sequencer / worker / committer pipeline.
///
/// * `dep_of(t)` names the single predecessor ticket unit `t` reads
///   through the [`CommitView`] (must be `< t`), or `None`. Because
///   commits are strictly ordered, waiting on the *maximum* predecessor
///   suffices even when a unit reads several.
/// * `make_worker()` builds per-thread scratch state (one per worker
///   plus one for the committer's fallback path).
/// * `compute(state, ticket, unit, seed, view)` must be a pure function
///   of its arguments — it runs on an arbitrary thread at an arbitrary
///   time after the dependency committed.
/// * `commit(ticket, unit, result, info, view)` runs on the caller
///   thread, strictly in ticket order; its `Ok` value is what dependents
///   observe. An `Err` aborts the run (workers drain and exit).
///
/// Returns the committed results in ticket order plus the run's
/// [`TicketStats`]. The result vector is **bitwise identical for every
/// `workers` value and every fault plan** — the property pinned by
/// `tests/ticketed_parity.rs` and `crates/gpu/tests/prop_ticket.rs`.
pub fn run_ticketed<U, R, W, E>(
    units: &[U],
    dep_of: impl Fn(usize) -> Option<usize> + Sync,
    cfg: TicketConfig<'_>,
    make_worker: impl Fn() -> W + Sync,
    compute: impl Fn(&mut W, usize, &U, u64, &CommitView<'_, R>) -> R + Sync,
    mut commit: impl FnMut(usize, &U, R, &CommitInfo, &CommitView<'_, R>) -> Result<R, E>,
) -> Result<(Vec<R>, TicketStats), TicketError<E>>
where
    U: Sync,
    R: Send + Sync,
{
    let n = units.len();
    let committed: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    let watermark = AtomicUsize::new(0);
    let mut stats = TicketStats {
        tickets: n,
        ..TicketStats::default()
    };

    // Debug-time contract check: dependencies must point strictly
    // backwards, otherwise the wait protocol deadlocks.
    debug_assert!((0..n).all(|t| dep_of(t).is_none_or(|d| d < t)));

    if cfg.workers <= 1 || n == 0 {
        // Serial path: committer computes and commits in one loop. This
        // *is* the reference semantics the parallel path must match.
        let mut state = make_worker();
        for (t, unit) in units.iter().enumerate() {
            let seed = ticket_seed(cfg.salt, t);
            let view = CommitView {
                slots: &committed,
                watermark: &watermark,
            };
            let r = compute(&mut state, t, unit, seed, &view);
            let info = CommitInfo {
                seed,
                worker: None,
                fallback: false,
            };
            match commit(t, unit, r, &info, &view) {
                Ok(r) => {
                    let _ = committed[t].set(r);
                    watermark.store(t + 1, Ordering::Release);
                    stats.accepted += 1;
                }
                Err(error) => return Err(TicketError { ticket: t, error }),
            }
        }
        let out = committed
            .into_iter()
            .map(|c| c.into_inner().expect("all tickets committed"))
            .collect();
        return Ok((out, stats));
    }

    stats.workers = cfg.workers;
    let results: Vec<std::sync::Mutex<Option<WorkerOut<R>>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0); // the sequencer: monotonic claims
    let abort = AtomicBool::new(false);

    let mut commit_err: Option<TicketError<E>> = None;
    std::thread::scope(|s| {
        for w in 0..cfg.workers {
            let results = &results;
            let committed = &committed;
            let watermark = &watermark;
            let cursor = &cursor;
            let abort = &abort;
            let dep_of = &dep_of;
            let make_worker = &make_worker;
            let compute = &compute;
            let faults = cfg.faults.map(|f| f.for_worker(w));
            s.spawn(move || {
                let mut state = make_worker();
                loop {
                    let t = cursor.fetch_add(1, Ordering::Relaxed);
                    if t >= n || abort.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Some(f) = &faults {
                        f.on_claim();
                    }
                    if let Some(d) = dep_of(t) {
                        while watermark.load(Ordering::Acquire) <= d {
                            if abort.load(Ordering::Relaxed) {
                                return;
                            }
                            std::hint::spin_loop();
                            // The CI host exposes one core; never spin
                            // without handing it back.
                            std::thread::yield_now();
                        }
                    }
                    let mut observed = watermark.load(Ordering::Acquire);
                    let seed = ticket_seed(cfg.salt, t);
                    let view = CommitView {
                        slots: committed,
                        watermark,
                    };
                    let planted_panic = faults.as_ref().is_some_and(|f| f.panic_now());
                    let value = catch_unwind(AssertUnwindSafe(|| {
                        if planted_panic {
                            panic!("TicketFaults planted panic on ticket {t}");
                        }
                        compute(&mut state, t, &units[t], seed, &view)
                    }))
                    .ok();
                    let value = match &faults {
                        Some(f) if f.drop_result() => None,
                        _ => value,
                    };
                    if faults.as_ref().is_some_and(|f| f.stale_result()) {
                        observed = 0;
                    }
                    *results[t].lock().expect("worker slot lock") = Some(WorkerOut {
                        value,
                        observed,
                        worker: w,
                    });
                }
            });
        }

        // The committer: strictly in ticket order, on the caller thread.
        let mut fallback_state: Option<W> = None;
        for (t, unit) in units.iter().enumerate() {
            let out = loop {
                if let Some(o) = results[t].lock().expect("worker slot lock").take() {
                    break o;
                }
                std::hint::spin_loop();
                std::thread::yield_now();
            };
            let seed = ticket_seed(cfg.salt, t);
            // Revalidate: did the worker really see the dependency
            // committed? (The stale fault corrupts `observed` to 0.)
            let valid = dep_of(t).is_none_or(|d| out.observed > d);
            let view = CommitView {
                slots: &committed,
                watermark: &watermark,
            };
            let (r, info) = match (out.value, valid) {
                (Some(r), true) => {
                    stats.accepted += 1;
                    (
                        r,
                        CommitInfo {
                            seed,
                            worker: Some(out.worker),
                            fallback: false,
                        },
                    )
                }
                (maybe, _) => {
                    // Serial fallback: recompute on the committer's own
                    // state. Deterministic — same (unit, seed, deps).
                    stats.fallbacks += 1;
                    if maybe.is_none() {
                        stats.dropped += 1;
                    } else {
                        stats.stale += 1;
                    }
                    let state = fallback_state.get_or_insert_with(&make_worker);
                    let r = compute(state, t, unit, seed, &view);
                    (
                        r,
                        CommitInfo {
                            seed,
                            worker: None,
                            fallback: true,
                        },
                    )
                }
            };
            match commit(t, unit, r, &info, &view) {
                Ok(r) => {
                    let _ = committed[t].set(r);
                    watermark.store(t + 1, Ordering::Release);
                }
                Err(error) => {
                    abort.store(true, Ordering::Relaxed);
                    commit_err = Some(TicketError { ticket: t, error });
                    break;
                }
            }
        }
        // Scope joins the workers; `abort` unblocks any dep-waiters.
        if commit_err.is_some() {
            abort.store(true, Ordering::Relaxed);
        }
    });

    if let Some(e) = commit_err {
        return Err(e);
    }
    let out = committed
        .into_iter()
        .map(|c| c.into_inner().expect("all tickets committed"))
        .collect();
    Ok((out, stats))
}

// ---------------------------------------------------------------------------
// Schedule model
// ---------------------------------------------------------------------------

/// One unit's modeled costs for the schedule simulators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnitSpec {
    /// Predecessor ticket (must be `<` this unit's index), or `None`.
    pub dep: Option<usize>,
    /// Modeled worker compute cost (abstract cost units; callers use
    /// nnz-proportional charges).
    pub compute_cost: u64,
    /// Modeled committer cost (serial by construction).
    pub commit_cost: u64,
}

/// Modeled makespan of the ticketed pipeline at `workers` workers.
///
/// Deterministic list schedule: tickets are claimed in order by the
/// earliest-free worker (ties to the lowest index), a claim may not
/// start computing before its dependency's commit, and commits are
/// serialized in ticket order on a dedicated committer.
#[must_use]
pub fn simulate_ticketed(units: &[UnitSpec], workers: usize) -> u64 {
    let workers = workers.max(1);
    let mut free = vec![0u64; workers];
    let mut commit_time = vec![0u64; units.len()];
    let mut prev_commit = 0u64;
    for (t, u) in units.iter().enumerate() {
        let (w, _) = free
            .iter()
            .enumerate()
            .min_by_key(|&(i, &f)| (f, i))
            .expect("workers >= 1");
        let ready = u.dep.map_or(0, |d| commit_time[d]);
        let start = free[w].max(ready);
        let done = start + u.compute_cost;
        free[w] = done;
        prev_commit = done.max(prev_commit) + u.commit_cost;
        commit_time[t] = prev_commit;
    }
    prev_commit
}

/// Modeled makespan of the phase-barrier pipeline the ticketed flow
/// replaces: `parallel` units compute under a list schedule at
/// `workers` workers and commit serially *after the barrier*; `serial`
/// units then run compute+commit one after another (this mirrors the
/// real path — rayon classification, serial tile assembly, serial
/// row-by-row factorization).
#[must_use]
pub fn simulate_barrier_pipeline(
    parallel: &[UnitSpec],
    serial: &[UnitSpec],
    workers: usize,
) -> u64 {
    let workers = workers.max(1);
    let mut free = vec![0u64; workers];
    for u in parallel {
        let (w, _) = free
            .iter()
            .enumerate()
            .min_by_key(|&(i, &f)| (f, i))
            .expect("workers >= 1");
        free[w] += u.compute_cost;
    }
    let barrier = free.iter().copied().max().unwrap_or(0);
    let assembled = barrier + parallel.iter().map(|u| u.commit_cost).sum::<u64>();
    assembled
        + serial
            .iter()
            .map(|u| u.compute_cost + u.commit_cost)
            .sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = ticket_seed(7, 0);
        let b = ticket_seed(7, 1);
        assert_eq!(a, ticket_seed(7, 0));
        assert_ne!(a, b);
        assert_ne!(a, ticket_seed(8, 0));
    }

    /// Prefix-sum chain: unit t = t + value(t-1); every worker count and
    /// fault plan must commit the identical sequence.
    fn chain(workers: usize, faults: Option<&TicketFaults>) -> Vec<u64> {
        let units: Vec<u64> = (0..64).collect();
        let cfg = TicketConfig {
            workers,
            salt: 0xC0FFEE,
            faults,
        };
        let (out, stats) = run_ticketed(
            &units,
            |t| t.checked_sub(1),
            cfg,
            || (),
            |_, t, u, seed, view: &CommitView<'_, u64>| {
                let prev = if t == 0 { 0 } else { *view.get(t - 1) };
                prev + *u + (seed & 1)
            },
            |_, _, r, _, _| Ok::<u64, ()>(r),
        )
        .expect("no commit errors");
        assert_eq!(stats.tickets, 64);
        out
    }

    #[test]
    fn worker_counts_commit_identical_sequences() {
        let serial = chain(1, None);
        for w in [2usize, 3, 7] {
            assert_eq!(chain(w, None), serial, "workers={w}");
        }
    }

    #[test]
    fn faults_change_stats_not_outputs() {
        let serial = chain(1, None);
        let plan = TicketFaults::seeded(0x51ED)
            .with_delay(400, 64)
            .with_stall(3, 128)
            .with_drop(250)
            .with_stale(250)
            .with_panic(120);
        assert_eq!(chain(4, Some(&plan)), serial, "{plan}");
    }

    #[test]
    fn commit_error_aborts_with_ticket() {
        let units: Vec<u64> = (0..32).collect();
        let cfg = TicketConfig {
            workers: 4,
            salt: 1,
            faults: None,
        };
        let err = run_ticketed(
            &units,
            |_| None,
            cfg,
            || (),
            |_, _, u, _, _: &CommitView<'_, u64>| *u,
            |t, _, r, _, _| if t == 9 { Err("boom") } else { Ok(r) },
        )
        .expect_err("ticket 9 fails");
        assert_eq!(err.ticket, 9);
        assert_eq!(err.error, "boom");
    }

    #[test]
    fn repro_line_is_compilable_builder() {
        let plan = TicketFaults::seeded(0xAB).with_drop(10).with_stale(20);
        assert_eq!(
            plan.to_string(),
            "TicketFaults::seeded(0xab).with_drop(10).with_stale(20)"
        );
    }

    #[test]
    fn ticketed_model_never_loses_to_barrier_model() {
        // Tile-like parallel units followed by a serial dependency chain
        // of row units — the preprocessing shape.
        let tiles: Vec<UnitSpec> = (0..40)
            .map(|i| UnitSpec {
                dep: None,
                compute_cost: 50 + (i as u64 * 13) % 90,
                commit_cost: 5,
            })
            .collect();
        let rows: Vec<UnitSpec> = (0..80)
            .map(|i| UnitSpec {
                dep: if i == 0 { None } else { Some(40 + i - 1) },
                compute_cost: 20,
                commit_cost: 4,
            })
            .collect();
        let mut fused = tiles.clone();
        fused.extend(rows.iter().map(|u| UnitSpec { ..*u }));
        for w in [1usize, 2, 4, 8] {
            let t = simulate_ticketed(&fused, w);
            let b = simulate_barrier_pipeline(&tiles, &rows, w);
            assert!(t <= b, "workers={w}: ticketed {t} > barrier {b}");
        }
    }
}
