//! Shared-memory capacity planning (paper §III-C).
//!
//! The single-kernel scheme loads the matrix into shared memory once and
//! reuses it across all iterations. Three regimes exist:
//!
//! 1. Everything fits — all tiles are resident, iterations touch HBM only
//!    for vectors.
//! 2. Partial fit — tiles are placed greedily until the budget runs out;
//!    the rest stays in global memory ("we utilize an array to track the
//!    number of tiles loaded into shared memory within each warp").
//! 3. Mostly global — the single-kernel scheme loses to the classic
//!    multi-kernel path, so the solver falls back (the paper switches at
//!    ~10⁶ nonzeros in Figs. 8–9).

use crate::device::DeviceSpec;
use mf_sparse::TiledMatrix;

/// Fraction of physical shared memory the plan may occupy (the kernel also
/// needs scratch for reductions and the `vis_flag` machinery).
pub const USABLE_SHMEM_FRACTION: f64 = 0.75;

/// The paper's single-kernel nnz threshold: beyond this the solver reverts
/// to the multi-kernel path (Figs. 8–9 mark it on the x-axis).
pub const SINGLE_KERNEL_NNZ_THRESHOLD: usize = 1_000_000;

/// Placement decision for every tile of a matrix.
#[derive(Clone, Debug)]
pub struct ShmemPlan {
    /// `in_shared[i]` — tile `i` is resident in shared memory.
    pub in_shared: Vec<bool>,
    /// Bytes of tile data placed in shared memory.
    pub shared_bytes: usize,
    /// Bytes of tile data left in global memory.
    pub global_bytes: usize,
    /// The device budget the plan was made against.
    pub budget_bytes: usize,
}

impl ShmemPlan {
    /// Plans tile placement for `matrix` on `device`.
    ///
    /// Tiles are taken in storage order (row-major over tiles) and admitted
    /// while the running footprint — packed values plus intra-tile indices —
    /// stays within the usable budget.
    #[allow(clippy::needless_range_loop)] // i is a tile id used with several accessors
    pub fn plan(matrix: &TiledMatrix, device: &DeviceSpec) -> ShmemPlan {
        let budget = (device.total_shared_mem() as f64 * USABLE_SHMEM_FRACTION) as usize;
        let t = matrix.tile_count();
        let mut in_shared = vec![false; t];
        let mut shared = 0usize;
        let mut global = 0usize;
        for i in 0..t {
            let bytes = Self::tile_bytes(matrix, i);
            if shared + bytes <= budget {
                in_shared[i] = true;
                shared += bytes;
            } else {
                global += bytes;
            }
        }
        ShmemPlan {
            in_shared,
            shared_bytes: shared,
            global_bytes: global,
            budget_bytes: budget,
        }
    }

    /// On-chip footprint of one tile: packed values + 1-byte column indices
    /// + the non-empty-row bookkeeping.
    pub fn tile_bytes(matrix: &TiledMatrix, i: usize) -> usize {
        let nnz = (matrix.tile_nnz[i + 1] - matrix.tile_nnz[i]) as usize;
        let rows = (matrix.nonrow[i + 1] - matrix.nonrow[i]) as usize;
        nnz * matrix.tile_prec[i].bytes() // values at tile precision
            + nnz                          // csr_colidx (u8)
            + rows * 5 // row_index (u8) + csr_rowptr (u32)
    }

    /// `true` when every tile fits on-chip.
    pub fn fits_fully(&self) -> bool {
        self.global_bytes == 0
    }

    /// Fraction of tile bytes resident in shared memory.
    pub fn resident_fraction(&self) -> f64 {
        let total = self.shared_bytes + self.global_bytes;
        if total == 0 {
            1.0
        } else {
            self.shared_bytes as f64 / total as f64
        }
    }

    /// The solver's mode decision (paper §III-C): run the single-kernel
    /// scheme when the matrix is small enough that on-chip reuse wins;
    /// otherwise fall back to the multi-kernel path.
    pub fn use_single_kernel(matrix: &TiledMatrix, device: &DeviceSpec) -> bool {
        if matrix.nnz() > SINGLE_KERNEL_NNZ_THRESHOLD {
            return false;
        }
        let plan = Self::plan(matrix, device);
        // "When ... most of which must be stored in global memory, and the
        // overhead of the global memory accesses outweighs the performance
        // benefits of a single kernel, we revert back to multi-kernel."
        plan.resident_fraction() >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::{Coo, TiledMatrix};

    fn diag_matrix(n: usize) -> TiledMatrix {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0);
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
                a.push(i + 1, i, -1.0);
            }
        }
        TiledMatrix::from_csr(&a.to_csr())
    }

    #[test]
    fn small_matrix_fits_fully() {
        let m = diag_matrix(1000);
        let plan = ShmemPlan::plan(&m, &DeviceSpec::a100());
        assert!(plan.fits_fully());
        assert_eq!(plan.resident_fraction(), 1.0);
        assert!(plan.shared_bytes > 0);
        assert!(ShmemPlan::use_single_kernel(&m, &DeviceSpec::a100()));
    }

    #[test]
    fn budget_respected() {
        let m = diag_matrix(5000);
        let dev = DeviceSpec::a100();
        let plan = ShmemPlan::plan(&m, &dev);
        assert!(plan.shared_bytes <= plan.budget_bytes);
        let sum: usize = (0..m.tile_count())
            .map(|i| ShmemPlan::tile_bytes(&m, i))
            .sum();
        assert_eq!(plan.shared_bytes + plan.global_bytes, sum);
    }

    #[test]
    fn tiny_device_overflows() {
        let m = diag_matrix(3000);
        let mut dev = DeviceSpec::a100();
        dev.sm_count = 1;
        dev.shared_mem_per_sm = 1024;
        let plan = ShmemPlan::plan(&m, &dev);
        assert!(!plan.fits_fully());
        assert!(plan.resident_fraction() < 0.5);
        assert!(!ShmemPlan::use_single_kernel(&m, &dev));
    }

    #[test]
    fn nnz_threshold_forces_multi_kernel() {
        // Even if it would fit, past the threshold the solver goes
        // multi-kernel (tridiagonal with >1e6 nnz).
        let m = diag_matrix(400_000); // ~1.2M nnz
        assert!(m.nnz() > SINGLE_KERNEL_NNZ_THRESHOLD);
        assert!(!ShmemPlan::use_single_kernel(&m, &DeviceSpec::a100()));
    }

    #[test]
    fn tile_bytes_accounts_precision() {
        // FP8 tiles cost 2 bytes/nnz (value + colidx), FP64 tiles 9.
        let m = diag_matrix(64); // values 2.0/-1.0 -> FP8
        let b = ShmemPlan::tile_bytes(&m, 0);
        let nnz = (m.tile_nnz[1] - m.tile_nnz[0]) as usize;
        let rows = (m.nonrow[1] - m.nonrow[0]) as usize;
        assert_eq!(b, nnz * 2 + rows * 5);
    }

    #[test]
    fn empty_matrix_plan() {
        let m = TiledMatrix::from_csr(&Coo::new(8, 8).to_csr());
        let plan = ShmemPlan::plan(&m, &DeviceSpec::a100());
        assert!(plan.fits_fully());
        assert_eq!(plan.shared_bytes, 0);
    }
}
