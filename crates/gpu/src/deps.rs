//! The global-memory dependency arrays of the single-kernel scheme
//! (paper Fig. 6 and Algorithm 3).
//!
//! Three arrays coordinate the four steps of a CG iteration without any
//! kernel boundary:
//!
//! * `d_s[row_tile]` — remaining tiles whose SpMV must land before the dot
//!   product on that row-tile's result segment can start (Step A → B).
//! * `d_d` — warps still working on the current dot product
//!   (Step B → C and C → D use it in down/up-counting phases).
//! * `d_a` — warps still working on the AXPY tail of the iteration
//!   (Step D → next iteration's Step A).
//!
//! This module provides the *real atomic* implementation used by the
//! threaded single-kernel engine: warps decrement with `fetch_sub(1,
//! AcqRel)` and busy-wait with `spin_loop` until the counter drains, exactly
//! the `atomicSub` / `while (...) threadfence()` pattern of Algorithm 3.
//! The deterministic sequential engine doesn't spin, but it uses the same
//! initial-value computation ([`DepArrays::init_ds`]) and charges the atomic
//! traffic to the timeline.

use mf_sparse::TiledMatrix;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Atomic dependency arrays shared by all warps of the single kernel.
#[derive(Debug)]
pub struct DepArrays {
    /// Per row-tile: tiles remaining in Step A (`d_s` in the paper).
    pub d_s: Vec<AtomicI64>,
    /// Warps remaining in the current dot phase (`d_d`).
    pub d_d: AtomicI64,
    /// Warps remaining in the AXPY phase (`d_a`).
    pub d_a: AtomicI64,
    /// Snapshot of the initial `d_s` values for cheap per-iteration reset.
    ds_init: Vec<i64>,
    /// Warp count the scalar counters reset to.
    warp_count: i64,
}

impl DepArrays {
    /// Computes the initial `d_s` values for a matrix: the number of
    /// non-empty tiles in each tile row (Fig. 6 initializes
    /// `d_s = [1, 2, 2]` for a matrix with 1/2/2 tiles in its row tiles).
    pub fn init_ds(m: &TiledMatrix) -> Vec<i64> {
        let mut counts = vec![0i64; m.tile_rows];
        for &tr in &m.tile_rowidx {
            counts[tr as usize] += 1;
        }
        counts
    }

    /// Creates dependency arrays for `m` solved by `warp_count` warps.
    pub fn new(m: &TiledMatrix, warp_count: usize) -> DepArrays {
        let ds_init = Self::init_ds(m);
        DepArrays {
            d_s: ds_init.iter().map(|&v| AtomicI64::new(v)).collect(),
            d_d: AtomicI64::new(warp_count as i64),
            d_a: AtomicI64::new(warp_count as i64),
            ds_init,
            warp_count: warp_count as i64,
        }
    }

    /// Number of warps the scalar counters track.
    #[inline]
    pub fn warp_count(&self) -> usize {
        self.warp_count as usize
    }

    /// Resets all counters for the next iteration. Must only be called when
    /// every warp has passed the Step-D barrier (single-threaded moment).
    pub fn reset(&self) {
        for (a, &v) in self.d_s.iter().zip(&self.ds_init) {
            a.store(v, Ordering::Release);
        }
        self.d_d.store(self.warp_count, Ordering::Release);
        self.d_a.store(self.warp_count, Ordering::Release);
    }

    /// Step A completion: one tile of `row_tile` finished its SpMV
    /// (`atomicSub(d_s[TileRowidx[i]], 1)`).
    #[inline]
    pub fn complete_tile(&self, row_tile: usize) {
        self.d_s[row_tile].fetch_sub(1, Ordering::AcqRel);
    }

    /// Busy-waits until all tiles of `row_tile` have completed Step A
    /// (`while d_s[warp_id] != 0 do threadfence()`). Returns the number of
    /// polls performed (the modeled `Wait` cost is proportional).
    pub fn wait_row_tile(&self, row_tile: usize) -> usize {
        let mut polls = 0usize;
        while self.d_s[row_tile].load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
            polls += 1;
            if polls.is_multiple_of(1024) {
                std::thread::yield_now(); // stay live even when oversubscribed
            }
        }
        polls
    }

    /// Dot-phase completion (`atomicSub(d_d, 1)`).
    #[inline]
    pub fn complete_dot(&self) {
        self.d_d.fetch_sub(1, Ordering::AcqRel);
    }

    /// Busy-waits for the dot phase to drain. Returns poll count.
    pub fn wait_dot(&self) -> usize {
        let mut polls = 0usize;
        while self.d_d.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
            polls += 1;
            if polls.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
        polls
    }

    /// Re-arms the dot counter for the second dot product of the iteration
    /// (Step C counts back up in the paper; re-arming down-counting is
    /// equivalent and keeps one code path). Must be called by exactly one
    /// warp while all others are between the B and C barriers — the solver
    /// uses a dedicated leader warp.
    #[inline]
    pub fn rearm_dot(&self) {
        self.d_d.store(self.warp_count, Ordering::Release);
    }

    /// AXPY-phase completion (`atomicSub(d_a, 1)`).
    #[inline]
    pub fn complete_axpy(&self) {
        self.d_a.fetch_sub(1, Ordering::AcqRel);
    }

    /// Busy-waits for the AXPY phase to drain. Returns poll count.
    pub fn wait_axpy(&self) -> usize {
        let mut polls = 0usize;
        while self.d_a.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
            polls += 1;
            if polls.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
        polls
    }

    /// Total atomic operations one full CG iteration performs: one per tile
    /// (Step A) plus two dot completions and one AXPY completion per warp.
    /// Used by the sequential engine to charge `Phase::Atomic`.
    pub fn atomics_per_iteration(&self, tile_count: usize) -> usize {
        tile_count + 3 * self.warp_count()
    }
}

/// Shared progress heartbeat for the progress-based watchdog.
///
/// The wall-clock watchdog (PR 2) bounds the *whole solve*, so a slow but
/// healthy run on a huge matrix trips it spuriously. The heartbeat instead
/// bounds the *gap between progress events*: every warp calls
/// [`Heartbeat::beat`] at step boundaries (publishing its packed
/// iteration × step position) and [`Heartbeat::pulse`] whenever it clears a
/// wait, and [`Heartbeat::stalled`] fires only when **no** warp has
/// advanced for the configured interval. A wedged dependency chain stops
/// all beats, so the deadline still fires; a merely slow schedule keeps
/// ticking and never does.
///
/// Concurrency: `ticks` is a global monotone event counter. `stalled()`
/// keeps a (tick-count, timestamp) snapshot; whenever the counter moved
/// since the snapshot it re-snapshots and reports liveness, and it only
/// fires when the counter has provably sat still for a full interval. The
/// snapshot pair is published timestamp-first with a `Release` store on
/// the tick half, so an `Acquire` reader never pairs a fresh tick count
/// with a stale timestamp; racing re-snapshots can only *delay* firing
/// (conservative), never fire early.
#[derive(Debug)]
pub struct Heartbeat {
    interval_ns: u64,
    start: Instant,
    ticks: AtomicU64,
    snap_ticks: AtomicU64,
    snap_at_ns: AtomicU64,
    progress: Vec<AtomicU64>,
}

impl Heartbeat {
    /// A heartbeat for `warps` warps that fires after `interval` without
    /// any progress event.
    pub fn new(interval: Duration, warps: usize) -> Heartbeat {
        Heartbeat {
            interval_ns: interval.as_nanos().min(u128::from(u64::MAX)) as u64,
            start: Instant::now(),
            ticks: AtomicU64::new(0),
            snap_ticks: AtomicU64::new(0),
            snap_at_ns: AtomicU64::new(0),
            progress: (0..warps).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Packs an (iteration, step) coordinate for [`Heartbeat::beat`]:
    /// biased so 0 remains "not started yet".
    #[inline]
    pub fn pack(iteration: usize, step: usize) -> u64 {
        ((iteration as u64 + 1) << 8) | (step as u64 & 0xFF)
    }

    /// Inverse of [`Heartbeat::pack`]; `None` for a warp that never beat.
    #[inline]
    pub fn unpack(v: u64) -> Option<(usize, usize)> {
        if v == 0 {
            None
        } else {
            Some((((v >> 8) - 1) as usize, (v & 0xFF) as usize))
        }
    }

    /// A step boundary: publish the warp's position and tick the global
    /// progress counter.
    #[inline]
    pub fn beat(&self, warp: usize, packed: u64) {
        self.progress[warp].store(packed, Ordering::Relaxed);
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// A progress event without a position change (e.g. a cleared wait or
    /// a completed tile inside a step).
    #[inline]
    pub fn pulse(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// True when no warp has produced a progress event for a full
    /// interval. Cheap enough to call from spin loops (two relaxed loads
    /// on the live path).
    pub fn stalled(&self) -> bool {
        let cur = self.ticks.load(Ordering::Relaxed);
        let snap = self.snap_ticks.load(Ordering::Acquire);
        let now_ns = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        if cur != snap {
            // Progress since the last snapshot: re-snapshot, timestamp
            // first (see the struct docs for the ordering argument).
            self.snap_at_ns.store(now_ns, Ordering::Relaxed);
            self.snap_ticks.store(cur, Ordering::Release);
            return false;
        }
        now_ns.saturating_sub(self.snap_at_ns.load(Ordering::Relaxed)) > self.interval_ns
    }

    /// Snapshot of every warp's last published packed position.
    pub fn snapshot(&self) -> Vec<u64> {
        self.progress
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of warps tracked.
    pub fn warps(&self) -> usize {
        self.progress.len()
    }
}

/// Per-row dependency counters for in-kernel SpTRSV.
///
/// The preconditioned solvers run the ILU(0) triangular solves *inside*
/// the fused kernel: a warp may only combine `x[c]` into row `r` once the
/// warp owning row `c` has finished it. On the GPU this is the same
/// `atomicAdd` + busy-wait pattern as [`DepArrays`], but at **row**
/// granularity and — like the threaded engine's barriers — counting *up
/// monotonically* instead of resetting between preconditioner
/// applications: after the `e`-th application of the factor, `done[r] ==
/// e` for every row, so a consumer in application `e` waits for
/// `done[c] >= e`. No reset step exists to race with, and a stale read
/// can only under-estimate the counter (the wait is conservative, never
/// unsound).
#[derive(Debug)]
pub struct RowDeps {
    done: Vec<AtomicI64>,
}

impl RowDeps {
    /// Counters for an `n`-row triangular factor, all starting at zero
    /// (no application has completed yet).
    pub fn new(n: usize) -> RowDeps {
        RowDeps {
            done: (0..n).map(|_| AtomicI64::new(0)).collect(),
        }
    }

    /// Number of rows tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// True when no rows are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Publishes that `row` finished its current application
    /// (`atomicAdd(done[row], 1)`); the store of `x[row]` must happen
    /// before this call. Returns the new epoch.
    #[inline]
    pub fn complete(&self, row: usize) -> i64 {
        self.done[row].fetch_add(1, Ordering::AcqRel) + 1
    }

    /// True once `row` has completed application `epoch` (1-based).
    #[inline]
    pub fn is_done(&self, row: usize, epoch: i64) -> bool {
        self.done[row].load(Ordering::Acquire) >= epoch
    }

    /// The raw counter for `row`, for spin loops that interleave the wait
    /// with poison/watchdog checks (the threaded engine polls through
    /// its `WarpSync` so a wedged dependency chain fails as `Wedged`
    /// instead of hanging).
    #[inline]
    pub fn counter(&self, row: usize) -> &AtomicI64 {
        &self.done[row]
    }

    /// Plain busy-wait until `row` reaches `epoch`; returns the poll
    /// count. Test/model use only — production spin loops must poll a
    /// poison flag as well.
    pub fn wait_row(&self, row: usize, epoch: i64) -> usize {
        let mut polls = 0usize;
        while !self.is_done(row, epoch) {
            std::hint::spin_loop();
            polls += 1;
            if polls.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
        polls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_precision::ClassifyOptions;
    use mf_sparse::Coo;
    use std::sync::atomic::AtomicUsize;

    fn sample_matrix() -> TiledMatrix {
        // The Fig. 6 example: 6x6, five tiles in three tile rows (1/2/2).
        let mut a = Coo::new(6, 6);
        for &(r, c) in &[
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 3),
            (2, 4),
            (3, 5),
            (4, 0),
            (5, 1),
            (4, 4),
            (5, 5),
        ] {
            a.push(r, c, 1.0);
        }
        TiledMatrix::from_csr_with(&a.to_csr(), 2, &ClassifyOptions::default())
    }

    #[test]
    fn init_ds_counts_tiles_per_row_tile() {
        let m = sample_matrix();
        let ds = DepArrays::init_ds(&m);
        assert_eq!(ds, vec![1, 2, 2]);
    }

    #[test]
    fn sequential_protocol_drains() {
        let m = sample_matrix();
        let deps = DepArrays::new(&m, 3);
        // Step A: complete all five tiles.
        for i in 0..m.tile_count() {
            deps.complete_tile(m.tile_rowidx[i] as usize);
        }
        for rt in 0..3 {
            assert_eq!(deps.wait_row_tile(rt), 0);
        }
        // Step B: all three warps finish their dots.
        for _ in 0..3 {
            deps.complete_dot();
        }
        assert_eq!(deps.wait_dot(), 0);
        deps.rearm_dot();
        for _ in 0..3 {
            deps.complete_dot();
        }
        assert_eq!(deps.wait_dot(), 0);
        // Step D.
        for _ in 0..3 {
            deps.complete_axpy();
        }
        assert_eq!(deps.wait_axpy(), 0);
        // Reset re-arms everything.
        deps.reset();
        assert_eq!(deps.d_s[1].load(Ordering::Acquire), 2);
        assert_eq!(deps.d_d.load(Ordering::Acquire), 3);
        assert_eq!(deps.d_a.load(Ordering::Acquire), 3);
    }

    #[test]
    fn atomics_accounting() {
        let m = sample_matrix();
        let deps = DepArrays::new(&m, 3);
        assert_eq!(deps.atomics_per_iteration(m.tile_count()), 5 + 9);
    }

    #[test]
    fn threaded_barrier_works() {
        // N threads play "warps": each completes a dot, then waits; all must
        // get through — deadlock would hang the test (run under the harness
        // timeout).
        let m = sample_matrix();
        let warps = 8;
        let deps = DepArrays::new(&m, warps);
        let through = AtomicUsize::new(0);
        crossbeam::scope(|s| {
            for _ in 0..warps {
                s.spawn(|_| {
                    deps.complete_dot();
                    deps.wait_dot();
                    through.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(through.load(Ordering::SeqCst), warps);
        assert_eq!(deps.d_d.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn threaded_step_a_ordering() {
        // One producer thread completes SpMV tiles with delays; consumer
        // threads must observe d_s reach zero before proceeding.
        let m = sample_matrix();
        let deps = DepArrays::new(&m, 3);
        let observed = AtomicUsize::new(0);
        crossbeam::scope(|s| {
            for rt in 0..3usize {
                let deps = &deps;
                let observed = &observed;
                s.spawn(move |_| {
                    deps.wait_row_tile(rt);
                    observed.fetch_add(1, Ordering::SeqCst);
                });
            }
            s.spawn(|_| {
                for i in 0..m.tile_count() {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    deps.complete_tile(m.tile_rowidx[i] as usize);
                }
            });
        })
        .unwrap();
        assert_eq!(observed.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn repeated_iterations_with_reset() {
        let m = sample_matrix();
        let deps = DepArrays::new(&m, 2);
        for _ in 0..5 {
            for i in 0..m.tile_count() {
                deps.complete_tile(m.tile_rowidx[i] as usize);
            }
            for rt in 0..m.tile_rows {
                deps.wait_row_tile(rt);
            }
            deps.complete_dot();
            deps.complete_dot();
            deps.wait_dot();
            deps.complete_axpy();
            deps.complete_axpy();
            deps.wait_axpy();
            deps.reset();
        }
        assert_eq!(deps.d_a.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn row_deps_monotone_epochs() {
        let deps = RowDeps::new(4);
        assert_eq!(deps.len(), 4);
        assert!(!deps.is_empty());
        assert!(!deps.is_done(2, 1));
        assert_eq!(deps.complete(2), 1);
        assert!(deps.is_done(2, 1));
        assert!(!deps.is_done(2, 2));
        // A second application pushes the epoch, never resets it.
        assert_eq!(deps.complete(2), 2);
        assert!(deps.is_done(2, 1));
        assert!(deps.is_done(2, 2));
        assert_eq!(deps.wait_row(2, 2), 0);
    }

    #[test]
    fn heartbeat_pack_roundtrip() {
        assert_eq!(Heartbeat::unpack(0), None);
        for (it, st) in [(0usize, 0usize), (3, 2), (917, 255)] {
            assert_eq!(Heartbeat::unpack(Heartbeat::pack(it, st)), Some((it, st)));
        }
    }

    #[test]
    fn heartbeat_fires_only_without_progress() {
        let hb = Heartbeat::new(Duration::from_millis(40), 2);
        assert!(!hb.stalled(), "first call snapshots, never fires");
        // Keep beating for > interval: never stalls.
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(90) {
            hb.beat(0, Heartbeat::pack(1, 0));
            std::thread::sleep(Duration::from_millis(5));
            assert!(!hb.stalled(), "progress within the interval");
        }
        // Now stop beating: must fire within a bounded wait.
        let t0 = Instant::now();
        while !hb.stalled() {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "heartbeat never fired"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(hb.snapshot()[0], Heartbeat::pack(1, 0));
        assert_eq!(hb.snapshot()[1], 0, "warp 1 never started");
        assert_eq!(hb.warps(), 2);
    }

    #[test]
    fn heartbeat_pulse_counts_as_progress() {
        let hb = Heartbeat::new(Duration::from_millis(40), 1);
        assert!(!hb.stalled());
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(90) {
            hb.pulse();
            std::thread::sleep(Duration::from_millis(5));
            assert!(!hb.stalled(), "pulses are progress too");
        }
        // Position snapshot stays "never started" without beats.
        assert_eq!(hb.snapshot(), vec![0]);
    }

    #[test]
    fn row_deps_cross_thread_chain() {
        // A strict chain 0 → 1 → 2 executed by three threads completing
        // out of spawn order still resolves: each waits for its
        // predecessor's epoch before completing its own row.
        let deps = RowDeps::new(3);
        crossbeam::scope(|scope| {
            for r in (0..3).rev() {
                let deps = &deps;
                scope.spawn(move |_| {
                    if r > 0 {
                        deps.wait_row(r - 1, 1);
                    }
                    deps.complete(r);
                });
            }
        })
        .unwrap();
        for r in 0..3 {
            assert!(deps.is_done(r, 1));
        }
    }
}
