//! The global-memory dependency arrays of the single-kernel scheme
//! (paper Fig. 6 and Algorithm 3).
//!
//! Three arrays coordinate the four steps of a CG iteration without any
//! kernel boundary:
//!
//! * `d_s[row_tile]` — remaining tiles whose SpMV must land before the dot
//!   product on that row-tile's result segment can start (Step A → B).
//! * `d_d` — warps still working on the current dot product
//!   (Step B → C and C → D use it in down/up-counting phases).
//! * `d_a` — warps still working on the AXPY tail of the iteration
//!   (Step D → next iteration's Step A).
//!
//! This module provides the *real atomic* implementation used by the
//! threaded single-kernel engine: warps decrement with `fetch_sub(1,
//! AcqRel)` and busy-wait with `spin_loop` until the counter drains, exactly
//! the `atomicSub` / `while (...) threadfence()` pattern of Algorithm 3.
//! The deterministic sequential engine doesn't spin, but it uses the same
//! initial-value computation ([`DepArrays::init_ds`]) and charges the atomic
//! traffic to the timeline.

use mf_sparse::TiledMatrix;
use std::sync::atomic::{AtomicI64, Ordering};

/// Atomic dependency arrays shared by all warps of the single kernel.
#[derive(Debug)]
pub struct DepArrays {
    /// Per row-tile: tiles remaining in Step A (`d_s` in the paper).
    pub d_s: Vec<AtomicI64>,
    /// Warps remaining in the current dot phase (`d_d`).
    pub d_d: AtomicI64,
    /// Warps remaining in the AXPY phase (`d_a`).
    pub d_a: AtomicI64,
    /// Snapshot of the initial `d_s` values for cheap per-iteration reset.
    ds_init: Vec<i64>,
    /// Warp count the scalar counters reset to.
    warp_count: i64,
}

impl DepArrays {
    /// Computes the initial `d_s` values for a matrix: the number of
    /// non-empty tiles in each tile row (Fig. 6 initializes
    /// `d_s = [1, 2, 2]` for a matrix with 1/2/2 tiles in its row tiles).
    pub fn init_ds(m: &TiledMatrix) -> Vec<i64> {
        let mut counts = vec![0i64; m.tile_rows];
        for &tr in &m.tile_rowidx {
            counts[tr as usize] += 1;
        }
        counts
    }

    /// Creates dependency arrays for `m` solved by `warp_count` warps.
    pub fn new(m: &TiledMatrix, warp_count: usize) -> DepArrays {
        let ds_init = Self::init_ds(m);
        DepArrays {
            d_s: ds_init.iter().map(|&v| AtomicI64::new(v)).collect(),
            d_d: AtomicI64::new(warp_count as i64),
            d_a: AtomicI64::new(warp_count as i64),
            ds_init,
            warp_count: warp_count as i64,
        }
    }

    /// Number of warps the scalar counters track.
    #[inline]
    pub fn warp_count(&self) -> usize {
        self.warp_count as usize
    }

    /// Resets all counters for the next iteration. Must only be called when
    /// every warp has passed the Step-D barrier (single-threaded moment).
    pub fn reset(&self) {
        for (a, &v) in self.d_s.iter().zip(&self.ds_init) {
            a.store(v, Ordering::Release);
        }
        self.d_d.store(self.warp_count, Ordering::Release);
        self.d_a.store(self.warp_count, Ordering::Release);
    }

    /// Step A completion: one tile of `row_tile` finished its SpMV
    /// (`atomicSub(d_s[TileRowidx[i]], 1)`).
    #[inline]
    pub fn complete_tile(&self, row_tile: usize) {
        self.d_s[row_tile].fetch_sub(1, Ordering::AcqRel);
    }

    /// Busy-waits until all tiles of `row_tile` have completed Step A
    /// (`while d_s[warp_id] != 0 do threadfence()`). Returns the number of
    /// polls performed (the modeled `Wait` cost is proportional).
    pub fn wait_row_tile(&self, row_tile: usize) -> usize {
        let mut polls = 0usize;
        while self.d_s[row_tile].load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
            polls += 1;
            if polls.is_multiple_of(1024) {
                std::thread::yield_now(); // stay live even when oversubscribed
            }
        }
        polls
    }

    /// Dot-phase completion (`atomicSub(d_d, 1)`).
    #[inline]
    pub fn complete_dot(&self) {
        self.d_d.fetch_sub(1, Ordering::AcqRel);
    }

    /// Busy-waits for the dot phase to drain. Returns poll count.
    pub fn wait_dot(&self) -> usize {
        let mut polls = 0usize;
        while self.d_d.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
            polls += 1;
            if polls.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
        polls
    }

    /// Re-arms the dot counter for the second dot product of the iteration
    /// (Step C counts back up in the paper; re-arming down-counting is
    /// equivalent and keeps one code path). Must be called by exactly one
    /// warp while all others are between the B and C barriers — the solver
    /// uses a dedicated leader warp.
    #[inline]
    pub fn rearm_dot(&self) {
        self.d_d.store(self.warp_count, Ordering::Release);
    }

    /// AXPY-phase completion (`atomicSub(d_a, 1)`).
    #[inline]
    pub fn complete_axpy(&self) {
        self.d_a.fetch_sub(1, Ordering::AcqRel);
    }

    /// Busy-waits for the AXPY phase to drain. Returns poll count.
    pub fn wait_axpy(&self) -> usize {
        let mut polls = 0usize;
        while self.d_a.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
            polls += 1;
            if polls.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
        polls
    }

    /// Total atomic operations one full CG iteration performs: one per tile
    /// (Step A) plus two dot completions and one AXPY completion per warp.
    /// Used by the sequential engine to charge `Phase::Atomic`.
    pub fn atomics_per_iteration(&self, tile_count: usize) -> usize {
        tile_count + 3 * self.warp_count()
    }
}

/// Per-row dependency counters for in-kernel SpTRSV.
///
/// The preconditioned solvers run the ILU(0) triangular solves *inside*
/// the fused kernel: a warp may only combine `x[c]` into row `r` once the
/// warp owning row `c` has finished it. On the GPU this is the same
/// `atomicAdd` + busy-wait pattern as [`DepArrays`], but at **row**
/// granularity and — like the threaded engine's barriers — counting *up
/// monotonically* instead of resetting between preconditioner
/// applications: after the `e`-th application of the factor, `done[r] ==
/// e` for every row, so a consumer in application `e` waits for
/// `done[c] >= e`. No reset step exists to race with, and a stale read
/// can only under-estimate the counter (the wait is conservative, never
/// unsound).
#[derive(Debug)]
pub struct RowDeps {
    done: Vec<AtomicI64>,
}

impl RowDeps {
    /// Counters for an `n`-row triangular factor, all starting at zero
    /// (no application has completed yet).
    pub fn new(n: usize) -> RowDeps {
        RowDeps {
            done: (0..n).map(|_| AtomicI64::new(0)).collect(),
        }
    }

    /// Number of rows tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// True when no rows are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Publishes that `row` finished its current application
    /// (`atomicAdd(done[row], 1)`); the store of `x[row]` must happen
    /// before this call. Returns the new epoch.
    #[inline]
    pub fn complete(&self, row: usize) -> i64 {
        self.done[row].fetch_add(1, Ordering::AcqRel) + 1
    }

    /// True once `row` has completed application `epoch` (1-based).
    #[inline]
    pub fn is_done(&self, row: usize, epoch: i64) -> bool {
        self.done[row].load(Ordering::Acquire) >= epoch
    }

    /// The raw counter for `row`, for spin loops that interleave the wait
    /// with poison/watchdog checks (the threaded engine polls through
    /// its `WarpSync` so a wedged dependency chain fails as `Wedged`
    /// instead of hanging).
    #[inline]
    pub fn counter(&self, row: usize) -> &AtomicI64 {
        &self.done[row]
    }

    /// Plain busy-wait until `row` reaches `epoch`; returns the poll
    /// count. Test/model use only — production spin loops must poll a
    /// poison flag as well.
    pub fn wait_row(&self, row: usize, epoch: i64) -> usize {
        let mut polls = 0usize;
        while !self.is_done(row, epoch) {
            std::hint::spin_loop();
            polls += 1;
            if polls.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
        polls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_precision::ClassifyOptions;
    use mf_sparse::Coo;
    use std::sync::atomic::AtomicUsize;

    fn sample_matrix() -> TiledMatrix {
        // The Fig. 6 example: 6x6, five tiles in three tile rows (1/2/2).
        let mut a = Coo::new(6, 6);
        for &(r, c) in &[
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 3),
            (2, 4),
            (3, 5),
            (4, 0),
            (5, 1),
            (4, 4),
            (5, 5),
        ] {
            a.push(r, c, 1.0);
        }
        TiledMatrix::from_csr_with(&a.to_csr(), 2, &ClassifyOptions::default())
    }

    #[test]
    fn init_ds_counts_tiles_per_row_tile() {
        let m = sample_matrix();
        let ds = DepArrays::init_ds(&m);
        assert_eq!(ds, vec![1, 2, 2]);
    }

    #[test]
    fn sequential_protocol_drains() {
        let m = sample_matrix();
        let deps = DepArrays::new(&m, 3);
        // Step A: complete all five tiles.
        for i in 0..m.tile_count() {
            deps.complete_tile(m.tile_rowidx[i] as usize);
        }
        for rt in 0..3 {
            assert_eq!(deps.wait_row_tile(rt), 0);
        }
        // Step B: all three warps finish their dots.
        for _ in 0..3 {
            deps.complete_dot();
        }
        assert_eq!(deps.wait_dot(), 0);
        deps.rearm_dot();
        for _ in 0..3 {
            deps.complete_dot();
        }
        assert_eq!(deps.wait_dot(), 0);
        // Step D.
        for _ in 0..3 {
            deps.complete_axpy();
        }
        assert_eq!(deps.wait_axpy(), 0);
        // Reset re-arms everything.
        deps.reset();
        assert_eq!(deps.d_s[1].load(Ordering::Acquire), 2);
        assert_eq!(deps.d_d.load(Ordering::Acquire), 3);
        assert_eq!(deps.d_a.load(Ordering::Acquire), 3);
    }

    #[test]
    fn atomics_accounting() {
        let m = sample_matrix();
        let deps = DepArrays::new(&m, 3);
        assert_eq!(deps.atomics_per_iteration(m.tile_count()), 5 + 9);
    }

    #[test]
    fn threaded_barrier_works() {
        // N threads play "warps": each completes a dot, then waits; all must
        // get through — deadlock would hang the test (run under the harness
        // timeout).
        let m = sample_matrix();
        let warps = 8;
        let deps = DepArrays::new(&m, warps);
        let through = AtomicUsize::new(0);
        crossbeam::scope(|s| {
            for _ in 0..warps {
                s.spawn(|_| {
                    deps.complete_dot();
                    deps.wait_dot();
                    through.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(through.load(Ordering::SeqCst), warps);
        assert_eq!(deps.d_d.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn threaded_step_a_ordering() {
        // One producer thread completes SpMV tiles with delays; consumer
        // threads must observe d_s reach zero before proceeding.
        let m = sample_matrix();
        let deps = DepArrays::new(&m, 3);
        let observed = AtomicUsize::new(0);
        crossbeam::scope(|s| {
            for rt in 0..3usize {
                let deps = &deps;
                let observed = &observed;
                s.spawn(move |_| {
                    deps.wait_row_tile(rt);
                    observed.fetch_add(1, Ordering::SeqCst);
                });
            }
            s.spawn(|_| {
                for i in 0..m.tile_count() {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    deps.complete_tile(m.tile_rowidx[i] as usize);
                }
            });
        })
        .unwrap();
        assert_eq!(observed.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn repeated_iterations_with_reset() {
        let m = sample_matrix();
        let deps = DepArrays::new(&m, 2);
        for _ in 0..5 {
            for i in 0..m.tile_count() {
                deps.complete_tile(m.tile_rowidx[i] as usize);
            }
            for rt in 0..m.tile_rows {
                deps.wait_row_tile(rt);
            }
            deps.complete_dot();
            deps.complete_dot();
            deps.wait_dot();
            deps.complete_axpy();
            deps.complete_axpy();
            deps.wait_axpy();
            deps.reset();
        }
        assert_eq!(deps.d_a.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn row_deps_monotone_epochs() {
        let deps = RowDeps::new(4);
        assert_eq!(deps.len(), 4);
        assert!(!deps.is_empty());
        assert!(!deps.is_done(2, 1));
        assert_eq!(deps.complete(2), 1);
        assert!(deps.is_done(2, 1));
        assert!(!deps.is_done(2, 2));
        // A second application pushes the epoch, never resets it.
        assert_eq!(deps.complete(2), 2);
        assert!(deps.is_done(2, 1));
        assert!(deps.is_done(2, 2));
        assert_eq!(deps.wait_row(2, 2), 0);
    }

    #[test]
    fn row_deps_cross_thread_chain() {
        // A strict chain 0 → 1 → 2 executed by three threads completing
        // out of spawn order still resolves: each waits for its
        // predecessor's epoch before completing its own row.
        let deps = RowDeps::new(3);
        crossbeam::scope(|scope| {
            for r in (0..3).rev() {
                let deps = &deps;
                scope.spawn(move |_| {
                    if r > 0 {
                        deps.wait_row(r - 1, 1);
                    }
                    deps.complete(r);
                });
            }
        })
        .unwrap();
        for r in 0..3 {
            assert!(deps.is_done(r, 1));
        }
    }
}
