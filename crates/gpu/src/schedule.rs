//! Warp workload partitioning (paper §III-C).
//!
//! Two schedules exist, exactly as the paper describes:
//!
//! * **SpMV** — tiles are walked in storage order and assigned to the
//!   current warp while neither the per-warp nonzero cap nor the per-warp
//!   tile cap is exceeded; otherwise a new warp is opened. This bounds the
//!   straggler (the slowest warp determines when Step A's dependencies
//!   resolve).
//! * **Vector ops (dot/AXPY)** — the vector is cut into segments of
//!   `tile_size` elements (aligned with the tile columns, which the
//!   partial-convergence retrieval of §III-D relies on). When segments ≤
//!   warps each warp owns one segment; otherwise warps own contiguous runs
//!   of segments.

use mf_sparse::TiledMatrix;

/// Default per-warp nonzero cap for the SpMV schedule.
pub const MAX_NNZ_PER_WARP: usize = 1024;
/// Default per-warp tile cap for the SpMV schedule.
pub const MAX_TILES_PER_WARP: usize = 64;

/// Assignment of tiles to warps for the SpMV step.
#[derive(Clone, Debug)]
pub struct SpmvSchedule {
    /// Per warp: contiguous `[start, end)` range of tile indices.
    pub warp_tiles: Vec<(usize, usize)>,
    /// Per warp: total nonzeros assigned.
    pub warp_nnz: Vec<usize>,
}

impl SpmvSchedule {
    /// The paper's greedy builder with explicit caps.
    pub fn build(m: &TiledMatrix, max_nnz: usize, max_tiles: usize) -> SpmvSchedule {
        assert!(max_nnz > 0 && max_tiles > 0);
        let t = m.tile_count();
        let mut warp_tiles = Vec::new();
        let mut warp_nnz = Vec::new();
        let mut start = 0usize;
        let mut nnz_acc = 0usize;
        for i in 0..t {
            let tile_nnz = (m.tile_nnz[i + 1] - m.tile_nnz[i]) as usize;
            let tiles_acc = i - start;
            if tiles_acc > 0 && (nnz_acc + tile_nnz > max_nnz || tiles_acc >= max_tiles) {
                warp_tiles.push((start, i));
                warp_nnz.push(nnz_acc);
                start = i;
                nnz_acc = 0;
            }
            nnz_acc += tile_nnz;
        }
        if start < t {
            warp_tiles.push((start, t));
            warp_nnz.push(nnz_acc);
        }
        SpmvSchedule {
            warp_tiles,
            warp_nnz,
        }
    }

    /// Greedy builder with the paper-default caps.
    pub fn build_default(m: &TiledMatrix) -> SpmvSchedule {
        SpmvSchedule::build(m, MAX_NNZ_PER_WARP, MAX_TILES_PER_WARP)
    }

    /// Partitions tiles into at most `warps` contiguous groups with balanced
    /// nonzero counts (used when the greedy schedule would exceed the number
    /// of warps the kernel actually launches).
    pub fn for_warps(m: &TiledMatrix, warps: usize) -> SpmvSchedule {
        assert!(warps > 0);
        let t = m.tile_count();
        let total = m.nnz();
        if t == 0 {
            return SpmvSchedule {
                warp_tiles: Vec::new(),
                warp_nnz: Vec::new(),
            };
        }
        let target = (total as f64 / warps as f64).max(1.0);
        let mut warp_tiles = Vec::with_capacity(warps);
        let mut warp_nnz = Vec::with_capacity(warps);
        let mut start = 0usize;
        let mut acc = 0usize;
        for i in 0..t {
            let tile_nnz = (m.tile_nnz[i + 1] - m.tile_nnz[i]) as usize;
            acc += tile_nnz;
            let groups_left = warps - warp_tiles.len();
            let tiles_left = t - i - 1;
            // Close the group when we reached the target, unless doing so
            // would leave more groups than tiles.
            if (acc as f64 >= target && groups_left > 1 && tiles_left + 1 >= groups_left)
                || tiles_left + 1 == groups_left
            {
                warp_tiles.push((start, i + 1));
                warp_nnz.push(acc);
                start = i + 1;
                acc = 0;
            }
        }
        if start < t {
            warp_tiles.push((start, t));
            warp_nnz.push(acc);
        }
        SpmvSchedule {
            warp_tiles,
            warp_nnz,
        }
    }

    /// Number of warps in the schedule.
    #[inline]
    pub fn warp_count(&self) -> usize {
        self.warp_tiles.len()
    }

    /// Load imbalance: max warp nonzeros over mean warp nonzeros (≥ 1).
    pub fn imbalance(&self) -> f64 {
        if self.warp_nnz.is_empty() {
            return 1.0;
        }
        let max = *self.warp_nnz.iter().max().unwrap() as f64;
        let mean = self.warp_nnz.iter().sum::<usize>() as f64 / self.warp_nnz.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Assignment of vector segments to warps for dot/AXPY steps.
#[derive(Clone, Debug)]
pub struct VectorSchedule {
    /// Vector length.
    pub n: usize,
    /// Segment length (= tile size, §III-D alignment).
    pub segment_len: usize,
    /// Number of segments (`ceil(n / segment_len)`).
    pub num_segments: usize,
    /// Per warp: contiguous `[start, end)` range of segment indices.
    pub warp_segments: Vec<(usize, usize)>,
}

impl VectorSchedule {
    /// Builds a schedule for a length-`n` vector cut into `segment_len`
    /// segments over at most `max_warps` warps.
    pub fn build(n: usize, segment_len: usize, max_warps: usize) -> VectorSchedule {
        assert!(segment_len > 0 && max_warps > 0);
        let num_segments = n.div_ceil(segment_len);
        let warps = num_segments.min(max_warps);
        let mut warp_segments = Vec::with_capacity(warps);
        #[allow(clippy::manual_checked_ops)]
        // the zero guard covers the whole split block, not just the division
        if warps > 0 {
            // Even contiguous split of segments over warps.
            let base = num_segments / warps;
            let extra = num_segments % warps;
            let mut s = 0usize;
            for w in 0..warps {
                let len = base + usize::from(w < extra);
                warp_segments.push((s, s + len));
                s += len;
            }
            debug_assert_eq!(s, num_segments);
        }
        VectorSchedule {
            n,
            segment_len,
            num_segments,
            warp_segments,
        }
    }

    /// Number of warps in the schedule.
    #[inline]
    pub fn warp_count(&self) -> usize {
        self.warp_segments.len()
    }

    /// Element range `[start, end)` of segment `s`.
    #[inline]
    pub fn segment_elems(&self, s: usize) -> (usize, usize) {
        let lo = s * self.segment_len;
        let hi = ((s + 1) * self.segment_len).min(self.n);
        (lo, hi)
    }

    /// Elements owned by warp `w`.
    pub fn warp_elems(&self, w: usize) -> (usize, usize) {
        let (s0, s1) = self.warp_segments[w];
        let lo = s0 * self.segment_len;
        let hi = (s1 * self.segment_len).min(self.n);
        (lo, hi)
    }

    /// Max elements any warp owns (the straggler of a vector step).
    pub fn max_warp_elems(&self) -> usize {
        (0..self.warp_count())
            .map(|w| {
                let (lo, hi) = self.warp_elems(w);
                hi - lo
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::Coo;

    fn tridiag(n: usize, ts: usize) -> TiledMatrix {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
            }
        }
        TiledMatrix::from_csr_with(&a.to_csr(), ts, &mf_precision::ClassifyOptions::default())
    }

    #[test]
    fn greedy_respects_caps() {
        let m = tridiag(2000, 16);
        let s = SpmvSchedule::build(&m, 100, 8);
        for (w, &(lo, hi)) in s.warp_tiles.iter().enumerate() {
            assert!(hi > lo);
            assert!(hi - lo <= 8, "warp {w} has {} tiles", hi - lo);
            // nnz cap can be exceeded only by a single oversized tile.
            if hi - lo > 1 {
                assert!(s.warp_nnz[w] <= 100 + 48);
            }
        }
        // Every tile assigned exactly once, in order.
        assert_eq!(s.warp_tiles[0].0, 0);
        for i in 1..s.warp_count() {
            assert_eq!(s.warp_tiles[i].0, s.warp_tiles[i - 1].1);
        }
        assert_eq!(s.warp_tiles.last().unwrap().1, m.tile_count());
        assert_eq!(s.warp_nnz.iter().sum::<usize>(), m.nnz());
    }

    #[test]
    fn for_warps_exact_partition() {
        let m = tridiag(1000, 16);
        for warps in [1, 2, 3, 7, 16, 64] {
            let s = SpmvSchedule::for_warps(&m, warps);
            assert!(s.warp_count() <= warps);
            assert!(s.warp_count() >= 1);
            assert_eq!(s.warp_nnz.iter().sum::<usize>(), m.nnz());
            assert_eq!(s.warp_tiles.last().unwrap().1, m.tile_count());
        }
    }

    #[test]
    fn for_warps_more_warps_than_tiles() {
        let m = tridiag(30, 16); // 2x2 tile grid, few tiles
        let s = SpmvSchedule::for_warps(&m, 100);
        assert!(s.warp_count() <= m.tile_count());
        assert_eq!(s.warp_nnz.iter().sum::<usize>(), m.nnz());
    }

    #[test]
    fn imbalance_reasonable_for_uniform_matrix() {
        let m = tridiag(5000, 16);
        let s = SpmvSchedule::for_warps(&m, 32);
        assert!(s.imbalance() < 1.5, "imbalance {}", s.imbalance());
    }

    #[test]
    fn empty_matrix_schedule() {
        let m = TiledMatrix::from_csr(&Coo::new(4, 4).to_csr());
        let s = SpmvSchedule::build_default(&m);
        assert_eq!(s.warp_count(), 0);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn vector_one_warp_per_segment_when_few() {
        let v = VectorSchedule::build(64, 16, 100);
        assert_eq!(v.num_segments, 4);
        assert_eq!(v.warp_count(), 4);
        for w in 0..4 {
            assert_eq!(v.warp_segments[w], (w, w + 1));
        }
        assert_eq!(v.warp_elems(3), (48, 64));
    }

    #[test]
    fn vector_distributes_when_many_segments() {
        let v = VectorSchedule::build(10_000, 16, 8);
        assert_eq!(v.warp_count(), 8);
        assert_eq!(v.num_segments, 625);
        // All segments covered, contiguous.
        assert_eq!(v.warp_segments[0].0, 0);
        for w in 1..8 {
            assert_eq!(v.warp_segments[w].0, v.warp_segments[w - 1].1);
        }
        assert_eq!(v.warp_segments[7].1, 625);
        // Balanced within one segment.
        let sizes: Vec<usize> = (0..8)
            .map(|w| v.warp_segments[w].1 - v.warp_segments[w].0)
            .collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn ragged_tail_segment() {
        let v = VectorSchedule::build(20, 16, 4);
        assert_eq!(v.num_segments, 2);
        assert_eq!(v.segment_elems(1), (16, 20));
        assert_eq!(v.max_warp_elems(), 16);
    }

    #[test]
    fn single_element_vector() {
        let v = VectorSchedule::build(1, 16, 4);
        assert_eq!(v.num_segments, 1);
        assert_eq!(v.warp_count(), 1);
        assert_eq!(v.warp_elems(0), (0, 1));
    }
}
