//! Phase-tagged time ledger.
//!
//! Every modeled operation reports its cost to a [`Timeline`]; the harness
//! reads back per-phase totals to regenerate the paper's runtime-breakdown
//! figure (Fig. 2: SpMV / dot / AXPY / synchronization) and the
//! preprocessing-proportion figure (Fig. 14).

use std::fmt;

/// Execution phases accounted separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Sparse matrix–vector products.
    Spmv,
    /// Dot products (including block reductions).
    Dot,
    /// AXPY / vector updates.
    Axpy,
    /// Sparse triangular solves (preconditioned variants).
    SpTrsv,
    /// Kernel launch + inter-kernel synchronization (the Finding-2 overhead).
    Sync,
    /// Device-to-host transfers (residual checks).
    Transfer,
    /// Atomic operations of the single-kernel dependency scheme.
    Atomic,
    /// Busy-wait time in the single-kernel dependency scheme.
    Wait,
    /// Format conversion, schedule construction, precision assignment.
    Preprocess,
    /// Preconditioner factorization (ILU0/IC0).
    Factorize,
    /// Adaptive re-tiering: tile requantization + residual refresh
    /// bookkeeping (controller v2).
    Retier,
}

impl Phase {
    /// All phases in display order.
    pub const ALL: [Phase; 11] = [
        Phase::Spmv,
        Phase::Dot,
        Phase::Axpy,
        Phase::SpTrsv,
        Phase::Sync,
        Phase::Transfer,
        Phase::Atomic,
        Phase::Wait,
        Phase::Preprocess,
        Phase::Factorize,
        Phase::Retier,
    ];

    #[inline]
    fn index(self) -> usize {
        match self {
            Phase::Spmv => 0,
            Phase::Dot => 1,
            Phase::Axpy => 2,
            Phase::SpTrsv => 3,
            Phase::Sync => 4,
            Phase::Transfer => 5,
            Phase::Atomic => 6,
            Phase::Wait => 7,
            Phase::Preprocess => 8,
            Phase::Factorize => 9,
            Phase::Retier => 10,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Spmv => "spmv",
            Phase::Dot => "dot",
            Phase::Axpy => "axpy",
            Phase::SpTrsv => "sptrsv",
            Phase::Sync => "sync",
            Phase::Transfer => "transfer",
            Phase::Atomic => "atomic",
            Phase::Wait => "wait",
            Phase::Preprocess => "preprocess",
            Phase::Factorize => "factorize",
            Phase::Retier => "retier",
        }
    }
}

/// Accumulated modeled time per phase, in microseconds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timeline {
    totals: [f64; 11],
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Adds `us` microseconds to `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, us: f64) {
        debug_assert!(us >= 0.0 && us.is_finite(), "bad cost {us} for {phase:?}");
        self.totals[phase.index()] += us;
    }

    /// Total of one phase in µs.
    #[inline]
    pub fn get(&self, phase: Phase) -> f64 {
        self.totals[phase.index()]
    }

    /// Grand total in µs.
    pub fn total_us(&self) -> f64 {
        self.totals.iter().sum()
    }

    /// Total excluding preprocessing and factorization (the per-iteration
    /// solve time the paper reports separately from Fig. 14's preprocessing).
    pub fn solve_us(&self) -> f64 {
        self.total_us() - self.get(Phase::Preprocess) - self.get(Phase::Factorize)
    }

    /// Merges another timeline into this one.
    pub fn merge(&mut self, other: &Timeline) {
        for (a, b) in self.totals.iter_mut().zip(&other.totals) {
            *a += b;
        }
    }

    /// `(phase, µs, fraction-of-total)` rows for reporting, skipping zeros.
    pub fn breakdown(&self) -> Vec<(Phase, f64, f64)> {
        let total = self.total_us().max(f64::MIN_POSITIVE);
        Phase::ALL
            .iter()
            .filter(|p| self.get(**p) > 0.0)
            .map(|&p| (p, self.get(p), self.get(p) / total))
            .collect()
    }

    /// The synchronization share of the total — the quantity Fig. 2 plots
    /// (`Sync` + `Transfer` for the multi-kernel baselines; `Atomic` + `Wait`
    /// for the single-kernel scheme).
    pub fn sync_fraction(&self) -> f64 {
        let s = self.get(Phase::Sync)
            + self.get(Phase::Transfer)
            + self.get(Phase::Atomic)
            + self.get(Phase::Wait);
        if self.total_us() == 0.0 {
            0.0
        } else {
            s / self.total_us()
        }
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total {:.2} µs [", self.total_us())?;
        let mut first = true;
        for (p, us, frac) in self.breakdown() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{} {:.2}µs ({:.0}%)", p.label(), us, frac * 100.0)?;
            first = false;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_phase() {
        let mut t = Timeline::new();
        t.add(Phase::Spmv, 10.0);
        t.add(Phase::Spmv, 5.0);
        t.add(Phase::Sync, 15.0);
        assert_eq!(t.get(Phase::Spmv), 15.0);
        assert_eq!(t.get(Phase::Dot), 0.0);
        assert_eq!(t.total_us(), 30.0);
    }

    #[test]
    fn sync_fraction_matches_finding2() {
        // A small multi-kernel iteration: 6 launches at 6.5 µs dominate.
        let mut t = Timeline::new();
        t.add(Phase::Sync, 6.0 * 6.5);
        t.add(Phase::Spmv, 8.0);
        t.add(Phase::Dot, 4.0);
        t.add(Phase::Axpy, 6.0);
        assert!(t.sync_fraction() > 0.5);
    }

    #[test]
    fn solve_excludes_preprocess() {
        let mut t = Timeline::new();
        t.add(Phase::Preprocess, 100.0);
        t.add(Phase::Spmv, 50.0);
        t.add(Phase::Factorize, 25.0);
        assert_eq!(t.solve_us(), 50.0);
        assert_eq!(t.total_us(), 175.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = Timeline::new();
        a.add(Phase::Dot, 1.0);
        let mut b = Timeline::new();
        b.add(Phase::Dot, 2.0);
        b.add(Phase::Wait, 3.0);
        a.merge(&b);
        assert_eq!(a.get(Phase::Dot), 3.0);
        assert_eq!(a.get(Phase::Wait), 3.0);
    }

    #[test]
    fn breakdown_skips_zero_phases() {
        let mut t = Timeline::new();
        t.add(Phase::Axpy, 2.0);
        let rows = t.breakdown();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, Phase::Axpy);
        assert!((rows[0].2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let mut t = Timeline::new();
        t.add(Phase::Spmv, 1.0);
        let s = format!("{t}");
        assert!(s.contains("spmv"));
    }

    #[test]
    fn empty_timeline_is_sane() {
        let t = Timeline::new();
        assert_eq!(t.total_us(), 0.0);
        assert_eq!(t.sync_fraction(), 0.0);
        assert!(t.breakdown().is_empty());
    }
}
