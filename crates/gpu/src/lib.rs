//! # mf-gpu
//!
//! GPU execution-model substrate for the Mille-feuille reproduction.
//!
//! The paper runs on an NVIDIA A100 and an AMD MI210. This crate replaces the
//! physical devices with an explicit *model* of the parts of GPU execution
//! the paper's findings depend on:
//!
//! * [`device`] — device specifications (SM/CU count, clock, HBM bandwidth,
//!   per-precision throughput, kernel launch/synchronization latency, shared
//!   memory capacity) with presets for the paper's two GPUs (Table I).
//! * [`cost`] — a roofline cost model: every kernel-level operation costs
//!   `max(flops/throughput, bytes/bandwidth)`, de-rated for partial
//!   occupancy, plus fixed launch overheads. This is what turns the *exact*
//!   numerics computed by `mf-kernels` into modeled GPU runtimes.
//! * [`timeline`] — a phase-tagged time ledger (SpMV/dot/AXPY/sync/…)
//!   used to regenerate the paper's runtime-breakdown figure (Fig. 2).
//! * [`sharedmem`] — the shared-memory capacity planner deciding which tiles
//!   stay on-chip across iterations (§III-C) and whether the single-kernel
//!   scheme applies at all (the ≈10⁶-nnz fallback).
//! * [`schedule`] — the warp workload partitioner: load-balanced tile
//!   assignment for SpMV (bounded nonzeros *and* tiles per warp) and
//!   segment-based assignment for vector operations (§III-C).
//! * [`deps`] — the `d_s`/`d_d`/`d_a` dependency arrays of Fig. 6, with a
//!   real atomic implementation used by the threaded single-kernel engine
//!   and helpers for the modeled sequential engine, plus the progress
//!   [`Heartbeat`] backing the adaptive watchdog.
//! * [`faults`] — deterministic, seed-reproducible schedule perturbation
//!   and fault injection ([`FaultPlan`]) for stress-testing the
//!   dependency protocol's determinism and liveness claims.
//! * [`ticket`] — the sequencer/worker/committer "Ticketed Parallel
//!   Execution" runtime: deterministic per-ticket seeds, strict
//!   commit-order replay with revalidation and serial fallback, seeded
//!   [`TicketFaults`] perturbation, and the schedule model behind
//!   `fig_ticket`. The concurrency substrate for host-side
//!   preprocessing in `mf-solver`.
//! * [`backend`] — the [`Device`]/[`DeviceBuffer`] execution-backend trait
//!   pair (modeled on the wasi-parallel device abstraction), the simulated
//!   single-device implementor, the [`Interconnect`] link model, and the
//!   shard-invariant [`two_level_dot`] reduction.
//! * [`shard`] — deterministic row-block domain decomposition
//!   ([`ShardPlan`]) with halo-column extraction, the partitioning layer
//!   under the multi-device sharded engine in `mf-solver`.

pub mod backend;
pub mod cost;
pub mod deps;
pub mod device;
pub mod faults;
pub mod schedule;
pub mod shard;
pub mod sharedmem;
pub mod ticket;
pub mod timeline;

pub use backend::{
    two_level_dot, BackendKind, BufferId, Device, DeviceBuffer, Interconnect, SimBuffer, SimDevice,
    TWO_LEVEL_CHUNK,
};
pub use cost::CostModel;
pub use deps::{DepArrays, Heartbeat, RowDeps};
pub use device::{DeviceSpec, Vendor};
pub use faults::{
    BarrierFault, FaultCounts, FaultKind, FaultPlan, InjectedFaults, SpinFault, StepFault,
    WarpFaults,
};
pub use schedule::{SpmvSchedule, VectorSchedule};
pub use shard::ShardPlan;
pub use sharedmem::ShmemPlan;
pub use ticket::{
    run_ticketed, simulate_barrier_pipeline, simulate_ticketed, ticket_seed, CommitInfo,
    CommitView, TicketConfig, TicketError, TicketFaults, TicketStats, UnitSpec,
};
pub use timeline::{Phase, Timeline};
