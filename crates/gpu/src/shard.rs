//! Deterministic row-block domain decomposition of a [`TiledMatrix`]
//! across N devices.
//!
//! The partition is the same arithmetic the threaded engine uses to hand
//! segments to warps (`base`/`extra` contiguous split), applied one level
//! up: shard boundaries land on *segment* boundaries (a segment is
//! `tile_size` consecutive rows, the single-writer unit of every engine),
//! so a shard owns whole tile-rows. Because tiles are sorted by
//! `(tile_row, tile_col)`, each shard's tiles form one contiguous span of
//! the tile arrays, and running `tile_matvec_span` over that span touches
//! exactly the shard's rows — the per-device SpMV is bit-identical to the
//! same rows of the global SpMV.
//!
//! The plan is a pure function of `(nrows, tile_size, shards)`: the same
//! inputs always produce the same decomposition, which is what lets the
//! sharded engine promise bitwise reproducibility.

use mf_sparse::{Csr, TiledMatrix};
use std::ops::Range;

/// A deterministic row-block partition of `n` rows into `shards`
/// contiguous blocks aligned to `tile_size`-row segment boundaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of matrix rows.
    pub n: usize,
    /// Segment length (= tile edge length of the matrix).
    pub tile_size: usize,
    /// Number of segments (`ceil(n / tile_size)`, min 1).
    pub segments: usize,
    /// Effective shard count: `min(requested, segments).max(1)` — a shard
    /// with zero segments would be a device with no work.
    pub shards: usize,
    /// Segment boundary of each shard, length `shards + 1`
    /// (`seg_lo[0] = 0`, `seg_lo[shards] = segments`).
    pub seg_lo: Vec<usize>,
    /// Row boundary of each shard, length `shards + 1`
    /// (`row_lo[k] = min(seg_lo[k] · tile_size, n)`).
    pub row_lo: Vec<usize>,
}

impl ShardPlan {
    /// Partitions `n` rows in `tile_size`-row segments across `shards`
    /// blocks, mirroring the engines' `segment_bounds` split: every shard
    /// gets `segments / shards` segments and the first `segments % shards`
    /// shards get one extra.
    pub fn partition(n: usize, tile_size: usize, shards: usize) -> ShardPlan {
        assert!(tile_size > 0, "tile_size must be positive");
        let segments = n.div_ceil(tile_size).max(1);
        let shards = shards.min(segments).max(1);
        let base = segments / shards;
        let extra = segments % shards;
        let mut seg_lo = Vec::with_capacity(shards + 1);
        seg_lo.push(0usize);
        for k in 0..shards {
            let prev = *seg_lo.last().unwrap();
            seg_lo.push(prev + base + usize::from(k < extra));
        }
        let row_lo = seg_lo.iter().map(|&s| (s * tile_size).min(n)).collect();
        ShardPlan {
            n,
            tile_size,
            segments,
            shards,
            seg_lo,
            row_lo,
        }
    }

    /// Partition matching a tiled matrix's row/tile geometry.
    pub fn for_matrix(m: &TiledMatrix, shards: usize) -> ShardPlan {
        Self::partition(m.nrows, m.tile_size, shards)
    }

    /// Rows owned by shard `k`.
    pub fn rows(&self, k: usize) -> Range<usize> {
        self.row_lo[k]..self.row_lo[k + 1]
    }

    /// Segments owned by shard `k`.
    pub fn segs(&self, k: usize) -> Range<usize> {
        self.seg_lo[k]..self.seg_lo[k + 1]
    }

    /// The shard owning row `r`.
    pub fn owner_of_row(&self, r: usize) -> usize {
        assert!(r < self.n, "row {r} out of range for n = {}", self.n);
        // row_lo is non-decreasing with row_lo[shards] = n, so the owner is
        // the last shard whose lower bound is <= r.
        match self.row_lo.binary_search(&r) {
            Ok(k) => k.min(self.shards - 1),
            Err(k) => k - 1,
        }
    }

    /// Tile-span boundaries per shard, length `shards + 1`: shard `k` owns
    /// tiles `tile_lo[k]..tile_lo[k + 1]`. Contiguous because tiles are
    /// sorted by `(tile_row, tile_col)` and shards own whole tile-row runs.
    pub fn tile_bounds(&self, m: &TiledMatrix) -> Vec<usize> {
        assert_eq!(m.nrows, self.n, "plan built for a different matrix");
        assert_eq!(m.tile_size, self.tile_size, "tile size mismatch");
        let mut tile_lo = Vec::with_capacity(self.shards + 1);
        let mut t = 0usize;
        for k in 0..self.shards {
            tile_lo.push(t);
            let seg_hi = self.seg_lo[k + 1] as u32;
            while t < m.tile_count() && m.tile_rowidx[t] < seg_hi {
                t += 1;
            }
        }
        tile_lo.push(t);
        debug_assert_eq!(t, m.tile_count());
        tile_lo
    }

    /// The halo of shard `k`: the sorted, deduplicated set of column
    /// indices its tiles reference that lie *outside* its own row block.
    /// These are exactly the remote `p`-vector entries the shard must
    /// receive each iteration before its SpMV.
    pub fn halo_columns(&self, m: &TiledMatrix, k: usize) -> Vec<usize> {
        let tile_lo = self.tile_bounds(m);
        self.halo_columns_with(m, &tile_lo, k)
    }

    /// [`Self::halo_columns`] with precomputed [`Self::tile_bounds`].
    pub fn halo_columns_with(&self, m: &TiledMatrix, tile_lo: &[usize], k: usize) -> Vec<usize> {
        let own = self.rows(k);
        let mut halo = std::collections::BTreeSet::new();
        for i in tile_lo[k]..tile_lo[k + 1] {
            let base_col = m.tile_colidx[i] as usize * m.tile_size;
            // A tile whose column block is wholly inside the shard's own
            // rows cannot contribute halo columns.
            if own.start <= base_col && base_col + m.tile_size <= own.end {
                continue;
            }
            for ri in m.nonrow[i] as usize..m.nonrow[i + 1] as usize {
                for idx in m.csr_rowptr[ri] as usize..m.csr_rowptr[ri + 1] as usize {
                    let col = base_col + m.csr_colidx[idx] as usize;
                    if !own.contains(&col) {
                        halo.insert(col);
                    }
                }
            }
        }
        halo.into_iter().collect()
    }

    /// Halo of shard `k` against a CSR matrix (used for the triangular
    /// ILU(0) factors, which are not tiled): columns referenced by the
    /// shard's rows that lie outside its row block. Sorted, deduplicated.
    pub fn csr_halo_columns(&self, a: &Csr, k: usize) -> Vec<usize> {
        assert_eq!(a.nrows, self.n, "plan built for a different matrix");
        let own = self.rows(k);
        let mut halo = std::collections::BTreeSet::new();
        for r in own.clone() {
            for (c, _) in a.row(r) {
                if !own.contains(&c) {
                    halo.insert(c);
                }
            }
        }
        halo.into_iter().collect()
    }

    /// Packed value bytes of the tiles owned by shard `k` — the matrix
    /// payload a device must hold, and the quantity `fig_shard` gates on
    /// (per-shard bytes ≈ total / shards).
    pub fn value_bytes(&self, m: &TiledMatrix, tile_lo: &[usize], k: usize) -> usize {
        let (lo, hi) = (tile_lo[k], tile_lo[k + 1]);
        if lo == hi {
            return 0;
        }
        let end = if hi == m.tile_count() {
            m.vals_raw().len()
        } else {
            m.val_offsets[hi]
        };
        end - m.val_offsets[lo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::Coo;

    fn laplace1d(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
            }
        }
        a.to_csr()
    }

    #[test]
    fn partition_covers_rows_exactly_once() {
        for (n, ts, s) in [(100, 8, 3), (1, 16, 4), (64, 16, 4), (65, 16, 9)] {
            let p = ShardPlan::partition(n, ts, s);
            assert_eq!(p.row_lo[0], 0);
            assert_eq!(*p.row_lo.last().unwrap(), n);
            let total: usize = (0..p.shards).map(|k| p.rows(k).len()).sum();
            assert_eq!(total, n);
            for r in 0..n {
                let k = p.owner_of_row(r);
                assert!(p.rows(k).contains(&r), "row {r} owner {k}");
            }
        }
    }

    #[test]
    fn shards_clamped_to_segments() {
        let p = ShardPlan::partition(20, 16, 8);
        assert_eq!(p.segments, 2);
        assert_eq!(p.shards, 2);
        let p = ShardPlan::partition(20, 16, 0);
        assert_eq!(p.shards, 1);
    }

    #[test]
    fn tile_bounds_and_halo_on_tridiagonal() {
        let a = laplace1d(64);
        let m = TiledMatrix::from_csr(&a);
        let p = ShardPlan::for_matrix(&m, 2);
        let tl = p.tile_bounds(&m);
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[2], m.tile_count());
        // Tridiagonal with ts = 16: shard 0 owns rows 0..32 and references
        // only column 32 beyond them; shard 1 references only column 31.
        assert_eq!(p.halo_columns_with(&m, &tl, 0), vec![32]);
        assert_eq!(p.halo_columns_with(&m, &tl, 1), vec![31]);
        assert_eq!(p.csr_halo_columns(&a, 0), vec![32]);
        assert_eq!(p.csr_halo_columns(&a, 1), vec![31]);
        let total: usize = (0..2).map(|k| p.value_bytes(&m, &tl, k)).sum();
        assert_eq!(total, m.vals_raw().len());
    }
}
