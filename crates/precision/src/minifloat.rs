//! Generic minifloat encode/decode used by both FP8 variants.
//!
//! A minifloat is described by its exponent width, mantissa width, bias and
//! overflow behaviour. Encoding performs a single round-to-nearest-even from
//! `f64`, matching GPU conversion instructions (`cvt.rn.e4m3x2.f32` etc.).

/// Static description of a minifloat format (at most 8 bits total here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MiniFormat {
    /// Number of exponent bits.
    pub exp_bits: u32,
    /// Number of mantissa bits.
    pub man_bits: u32,
    /// Exponent bias.
    pub bias: i32,
    /// `true` if the format reserves the all-ones exponent for Inf/NaN
    /// (IEEE-like, e.g. E5M2); `false` if only the all-ones code is NaN and
    /// the rest of the top binade is finite (E4M3 per the OCP FP8 spec).
    pub ieee_inf: bool,
}

/// OCP FP8 E4M3: bias 7, no infinities, `S.1111.111` is NaN, max finite 448.
pub const E4M3: MiniFormat = MiniFormat {
    exp_bits: 4,
    man_bits: 3,
    bias: 7,
    ieee_inf: false,
};

/// OCP FP8 E5M2: bias 15, IEEE-style Inf/NaN, max finite 57344.
pub const E5M2: MiniFormat = MiniFormat {
    exp_bits: 5,
    man_bits: 2,
    bias: 15,
    ieee_inf: true,
};

impl MiniFormat {
    /// Code of the sign bit.
    #[inline]
    pub const fn sign_mask(&self) -> u8 {
        1 << (self.exp_bits + self.man_bits)
    }

    #[inline]
    const fn man_mask(&self) -> u8 {
        (1 << self.man_bits) - 1
    }

    #[inline]
    const fn exp_field_max(&self) -> i32 {
        (1 << self.exp_bits) - 1
    }

    /// Largest finite magnitude representable.
    pub fn max_finite(&self) -> f64 {
        if self.ieee_inf {
            // top binade reserved: exponent exp_field_max-1, full mantissa
            let e = self.exp_field_max() - 1 - self.bias;
            let m = 1.0 + (self.man_mask() as f64) / (1u32 << self.man_bits) as f64;
            m * 2f64.powi(e)
        } else {
            // all-ones exponent is finite except the all-ones mantissa (NaN)
            let e = self.exp_field_max() - self.bias;
            let m = 1.0 + ((self.man_mask() - 1) as f64) / (1u32 << self.man_bits) as f64;
            m * 2f64.powi(e)
        }
    }

    /// Smallest positive normal magnitude.
    pub fn min_normal(&self) -> f64 {
        2f64.powi(1 - self.bias)
    }

    /// Smallest positive subnormal magnitude (the quantum of the format).
    pub fn min_subnormal(&self) -> f64 {
        2f64.powi(1 - self.bias - self.man_bits as i32)
    }

    /// The canonical NaN code (positive sign).
    pub fn nan_code(&self) -> u8 {
        if self.ieee_inf {
            // Inf code + a mantissa bit.
            let inf = (self.exp_field_max() as u8) << self.man_bits;
            inf | 1 << (self.man_bits - 1)
        } else {
            // all ones in exponent and mantissa
            ((self.exp_field_max() as u8) << self.man_bits) | self.man_mask()
        }
    }

    /// The positive-infinity code for IEEE-style formats; the max-finite code
    /// otherwise (E4M3 has no infinity — overflow saturates, see [`MiniFormat::encode`]).
    pub fn inf_or_max_code(&self) -> u8 {
        if self.ieee_inf {
            (self.exp_field_max() as u8) << self.man_bits
        } else {
            (((self.exp_field_max() as u8) << self.man_bits) | self.man_mask()) - 1
        }
    }

    /// Encodes an `f64` into this format with round-to-nearest-even.
    ///
    /// Overflow behaviour: IEEE-style formats produce infinity; E4M3-style
    /// formats *saturate* to the maximum finite value (the behaviour of
    /// `cvt.rn.satfinite`, and the only sane choice inside a solver — a NaN
    /// in the matrix would poison the whole Krylov iteration).
    pub fn encode(&self, v: f64) -> u8 {
        let sign = if v.is_sign_negative() {
            self.sign_mask()
        } else {
            0
        };
        if v.is_nan() {
            return sign | self.nan_code();
        }
        let a = v.abs();
        if a == 0.0 {
            return sign;
        }
        if v.is_infinite() {
            return sign | self.inf_or_max_code();
        }

        let min_normal = self.min_normal();
        let quantum = self.min_subnormal();

        if a < min_normal {
            // Subnormal target: round a/quantum to an integer. The division
            // is by a power of two, hence exact in f64 for our ranges.
            let m = (a / quantum).round_ties_even();
            let m = m as u64;
            if m == 0 {
                return sign; // underflow to (signed) zero
            }
            if m < (1u64 << self.man_bits) {
                return sign | m as u8;
            }
            // Rounded up to the smallest normal.
            return sign | (1 << self.man_bits);
        }

        // Normal target. Take the unbiased exponent from the f64 bits (a is
        // normal in f64 whenever it reaches this branch for FP8 ranges).
        let mut e = ((a.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        // Round the mantissa to man_bits fractional bits:
        // m = round(a / 2^(e - man_bits)) in [2^man_bits, 2^(man_bits+1)].
        let scale = 2f64.powi(e - self.man_bits as i32);
        let mut m = (a / scale).round_ties_even() as u64;
        if m == 1u64 << (self.man_bits + 1) {
            m >>= 1;
            e += 1;
        }

        let exp_field = e + self.bias;
        let overflow = if self.ieee_inf {
            exp_field >= self.exp_field_max()
        } else {
            exp_field > self.exp_field_max()
                || (exp_field == self.exp_field_max()
                    && (m & self.man_mask() as u64) == self.man_mask() as u64)
        };
        if overflow {
            return sign | self.inf_or_max_code();
        }
        sign | ((exp_field as u8) << self.man_bits) | (m as u8 & self.man_mask())
    }

    /// Decodes a code of this format to `f64` (exact).
    pub fn decode(&self, code: u8) -> f64 {
        let sign = if code & self.sign_mask() != 0 {
            -1.0
        } else {
            1.0
        };
        let body = code & (self.sign_mask() - 1);
        let exp_field = (body >> self.man_bits) as i32;
        let man = (body & self.man_mask()) as f64;
        let man_scale = (1u32 << self.man_bits) as f64;

        if exp_field == 0 {
            return sign * man * self.min_subnormal();
        }
        if exp_field == self.exp_field_max() {
            if self.ieee_inf {
                return if man == 0.0 {
                    sign * f64::INFINITY
                } else {
                    f64::NAN
                };
            }
            if body == self.nan_code() {
                return f64::NAN;
            }
        }
        sign * (1.0 + man / man_scale) * 2f64.powi(exp_field - self.bias)
    }

    /// Round-trips an `f64` through this format (`decode(encode(v))`).
    #[inline]
    pub fn quantize(&self, v: f64) -> f64 {
        self.decode(self.encode(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4m3_limits() {
        assert_eq!(E4M3.max_finite(), 448.0);
        assert_eq!(E4M3.min_normal(), 2f64.powi(-6));
        assert_eq!(E4M3.min_subnormal(), 2f64.powi(-9));
        assert_eq!(E4M3.nan_code(), 0x7f);
        assert_eq!(E4M3.inf_or_max_code(), 0x7e);
    }

    #[test]
    fn e5m2_limits() {
        assert_eq!(E5M2.max_finite(), 57344.0);
        assert_eq!(E5M2.min_normal(), 2f64.powi(-14));
        assert_eq!(E5M2.min_subnormal(), 2f64.powi(-16));
        assert_eq!(E5M2.inf_or_max_code(), 0x7c);
    }

    #[test]
    fn e4m3_exact_values() {
        for v in [0.0, 1.0, -1.0, 2.0, 0.5, 448.0, -448.0, 0.125, 240.0] {
            assert_eq!(E4M3.quantize(v), v, "{v} must be exact in E4M3");
        }
    }

    #[test]
    fn e4m3_saturates_no_nan_on_overflow() {
        assert_eq!(E4M3.quantize(1e9), 448.0);
        assert_eq!(E4M3.quantize(-1e9), -448.0);
        assert_eq!(E4M3.quantize(f64::INFINITY), 448.0);
        // 464 is the midpoint between 448 and the nonexistent 480 code.
        assert_eq!(E4M3.quantize(464.0), 448.0);
        assert_eq!(E4M3.quantize(463.9), 448.0);
    }

    #[test]
    fn e5m2_overflow_to_infinity() {
        assert_eq!(E5M2.quantize(1e9), f64::INFINITY);
        assert_eq!(E5M2.quantize(-1e9), f64::NEG_INFINITY);
        assert_eq!(E5M2.quantize(57344.0), 57344.0);
    }

    #[test]
    fn rne_ties() {
        // E4M3 around 1.0: spacing 1/8. Midpoint 1.0625 ties to 1.0 (even).
        assert_eq!(E4M3.quantize(1.0625), 1.0);
        // Midpoint 1.1875 between 1.125 (odd) and 1.25 (even) ties up.
        assert_eq!(E4M3.quantize(1.1875), 1.25);
        assert_eq!(E4M3.quantize(1.06), 1.0);
        assert_eq!(E4M3.quantize(1.07), 1.125);
    }

    #[test]
    fn subnormal_rounding() {
        let q = E4M3.min_subnormal();
        assert_eq!(E4M3.quantize(q), q);
        assert_eq!(E4M3.quantize(q * 0.5), 0.0); // tie to even (zero)
        assert_eq!(E4M3.quantize(q * 0.51), q);
        assert_eq!(E4M3.quantize(q * 1.5), 2.0 * q); // tie to even
        assert_eq!(E4M3.quantize(q * 2.5), 2.0 * q); // tie to even
    }

    #[test]
    fn subnormal_to_normal_carry() {
        // Just below min_normal rounds up into the normal range.
        let mn = E4M3.min_normal();
        let just_below = mn - E4M3.min_subnormal() * 0.25;
        assert_eq!(E4M3.quantize(just_below), mn);
    }

    #[test]
    fn signed_zero_and_nan() {
        assert!(E4M3.quantize(f64::NAN).is_nan());
        assert!(E5M2.quantize(f64::NAN).is_nan());
        let nz = E4M3.encode(-0.0);
        assert_eq!(nz, 0x80);
        assert_eq!(E4M3.decode(nz), 0.0);
        assert!(E4M3.decode(nz).is_sign_negative() || E4M3.decode(nz) == 0.0);
    }

    #[test]
    fn exhaustive_roundtrip_e4m3() {
        for code in 0u8..=0xff {
            let v = E4M3.decode(code);
            if v.is_nan() {
                assert!(E4M3.decode(E4M3.encode(v)).is_nan());
                continue;
            }
            let back = E4M3.encode(v);
            // -0.0 and 0.0 both legal; compare decoded values.
            assert_eq!(E4M3.decode(back), v, "code {code:#04x}");
        }
    }

    #[test]
    fn exhaustive_roundtrip_e5m2() {
        for code in 0u8..=0xff {
            let v = E5M2.decode(code);
            if v.is_nan() {
                continue;
            }
            assert_eq!(E5M2.decode(E5M2.encode(v)), v, "code {code:#04x}");
        }
    }

    #[test]
    fn quantization_error_bound() {
        // Relative error of normal-range quantization is at most 2^-(man_bits+1).
        let mut v = 0.07;
        while v < 400.0 {
            let q = E4M3.quantize(v);
            let rel = ((q - v) / v).abs();
            assert!(rel <= 2f64.powi(-4) + 1e-12, "rel err {rel} at {v}");
            v *= 1.317;
        }
    }

    #[test]
    fn monotone_quantization() {
        // Quantization must be monotone non-decreasing.
        let mut prev = f64::NEG_INFINITY;
        let mut v = -500.0;
        while v < 500.0 {
            let q = E4M3.quantize(v);
            assert!(q >= prev, "not monotone at {v}");
            prev = q;
            v += 0.37;
        }
    }
}
