//! Residual-driven adaptive re-tiering (controller v2).
//!
//! The tiled format classifies every tile's precision once, at
//! preprocessing, by the round-trip criterion of [`crate::classify`]; the
//! partial-convergence strategy then only ever *lowers* tiles one-way as
//! their `p`-segments shrink. This module adds the adaptive scheme of
//! Guo/de Sturler/Warburton (arXiv:2505.04155): while the residual is still
//! orders of magnitude above the target tolerance, the operator does not
//! need anywhere near its classification-time accuracy, so *all* tiles can
//! run in a narrow storage tier — including **scaled FP8**, where a
//! per-tile power-of-two scaling factor ([`crate::fp8::pick_scale_exp`])
//! lets even wide-magnitude tiles use the 8-bit format. As convergence
//! tightens, the [`PrecisionController`] widens the tier cap back until the
//! final iterations run at full classification-time precision.
//!
//! Every decision is a **pure function** of `(iteration, canonical
//! residual decade, the controller's own tier state)`. No wall-clock, no
//! thread identity, no measured byte counters feed the decision — projected
//! traffic is derived from the tier vector itself (which equals what
//! `MixedSpmvStats::bytes_by_precision` reports for one full pass), so a
//! sequential engine, a 7-warp threaded engine and a pipelined engine
//! replay the exact same decision sequence. That determinism is pinned by
//! `tests/adaptive_parity.rs` in the solver crate.

use crate::fp8::{pick_scale_exp, quantize_scaled_e4m3};
use crate::precision::Precision;

/// The storage tier of a tile under adaptive re-tiering: one of the four
/// classification precisions, or scaled FP8 (E4M3 bytes plus a per-tile
/// power-of-two scaling exponent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TileTier {
    /// Plain storage in one of the four classification precisions.
    Full(Precision),
    /// Scaled FP8: byte `E4M3(v / 2^scale_exp)`, decoded by multiplying the
    /// widened value back by `2^scale_exp`.
    ScaledFp8 {
        /// Per-tile scaling exponent from [`pick_scale_exp`].
        scale_exp: i16,
    },
}

impl TileTier {
    /// Storage bytes per nonzero value in this tier (the per-tile scale
    /// factor of [`TileTier::ScaledFp8`] is amortized over the tile).
    #[inline]
    pub const fn bytes(self) -> usize {
        match self {
            TileTier::Full(p) => p.bytes(),
            TileTier::ScaledFp8 { .. } => 1,
        }
    }

    /// The [`Precision`] whose execution pipe and byte width this tier
    /// uses — scaled FP8 moves and computes exactly like plain FP8, so the
    /// per-precision SpMV statistics account it under `Fp8`.
    #[inline]
    pub const fn storage(self) -> Precision {
        match self {
            TileTier::Full(p) => p,
            TileTier::ScaledFp8 { .. } => Precision::Fp8,
        }
    }

    /// Quantizes `v` exactly as storing it in this tier would.
    #[inline]
    pub fn quantize(self, v: f64) -> f64 {
        match self {
            TileTier::Full(p) => p.quantize(v),
            TileTier::ScaledFp8 { scale_exp } => quantize_scaled_e4m3(v, scale_exp),
        }
    }

    /// Quantizes a slice in place.
    pub fn quantize_slice(self, vals: &mut [f64]) {
        if self == TileTier::Full(Precision::Fp64) {
            return;
        }
        for v in vals {
            *v = self.quantize(*v);
        }
    }

    /// Stable code for trace payloads: 0–3 are [`Precision::tile_code`]
    /// (0 = FP64 … 3 = FP8), 4 is scaled FP8. Append-only.
    #[inline]
    pub const fn trace_code(self) -> u8 {
        match self {
            TileTier::Full(p) => p.tile_code(),
            TileTier::ScaledFp8 { .. } => 4,
        }
    }
}

impl std::fmt::Display for TileTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileTier::Full(p) => write!(f, "{p}"),
            TileTier::ScaledFp8 { scale_exp } => write!(f, "sFP8(2^{scale_exp})"),
        }
    }
}

/// The controller's global tier cap — the narrowest storage any tile is
/// *allowed* to use at the current convergence stage. A tile's effective
/// tier is the narrower of its classification-time precision and the cap
/// (re-tiering never promotes a tile above what classification assigned).
/// Ordered narrow → wide; the cap only ever widens after the initial
/// demotion, which is what guarantees the decision sequence terminates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TierCap {
    /// Everything runs as (scaled) FP8.
    Scaled8,
    /// Cap at FP16.
    Half,
    /// Cap at FP32.
    Single,
    /// No cap: classification-time tiers.
    Full,
}

impl TierCap {
    /// All caps, narrowest first.
    pub const ALL: [TierCap; 4] = [
        TierCap::Scaled8,
        TierCap::Half,
        TierCap::Single,
        TierCap::Full,
    ];

    /// Stable code for trace payloads (0 = Scaled8 … 3 = Full).
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// The next wider cap (saturates at [`TierCap::Full`]).
    #[inline]
    pub const fn widened(self) -> TierCap {
        match self {
            TierCap::Scaled8 => TierCap::Half,
            TierCap::Half => TierCap::Single,
            TierCap::Single | TierCap::Full => TierCap::Full,
        }
    }
}

/// One tile's re-tier instruction within a [`RetierDecision`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetierAction {
    /// Tile index in the tiled matrix's tile order.
    pub tile: u32,
    /// Tier before the plan is applied.
    pub from: TileTier,
    /// Tier after the plan is applied.
    pub to: TileTier,
}

/// A deterministic re-tier plan, emitted at a convergence check and applied
/// by every engine at the same barrier-aligned epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct RetierDecision {
    /// Iteration at which the plan was decided (and applied).
    pub iteration: usize,
    /// Canonical residual decade `⌊log10 relres⌋` that drove the decision.
    pub decade: i64,
    /// The cap this plan moves the solve to.
    pub cap: TierCap,
    /// Per-tile actions, in tile order; never empty.
    pub actions: Vec<RetierAction>,
}

impl RetierDecision {
    /// Net change in projected bytes moved per matrix pass (negative =
    /// demotion saves traffic), from the tile sizes recorded by the
    /// controller.
    pub fn bytes_delta(&self, tiles: &[TileInfo]) -> i64 {
        self.actions
            .iter()
            .map(|a| {
                let nnz = tiles[a.tile as usize].nnz as i64;
                nnz * (a.to.bytes() as i64 - a.from.bytes() as i64)
            })
            .sum()
    }
}

/// Static, per-tile facts the controller needs — captured once when the
/// controller is built (all derivable deterministically from the tiled
/// matrix, independent of engine or schedule).
#[derive(Clone, Copy, Debug)]
pub struct TileInfo {
    /// Stored nonzeros in the tile.
    pub nnz: usize,
    /// Classification-time precision (the tile never re-tiers above it).
    pub initial: Precision,
    /// Largest magnitude among the tile's decoded values; seeds
    /// [`pick_scale_exp`] for the scaled-FP8 tier.
    pub max_abs: f64,
}

/// Tuning knobs of the adaptive controller. The defaults are the pinned
/// configuration the `fig_adaptive` gate runs with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// Decisions are evaluated every `period` iterations (at iterations
    /// `period, 2·period, …`). Also the horizon of the projected-savings
    /// guard.
    pub period: usize,
    /// Don't run capped within this many decades of the target tolerance:
    /// once `relres ≤ tolerance · 10^margin_decades` the cap widens to
    /// [`TierCap::Full`] so the end-game runs at classification precision.
    pub margin_decades: f64,
    /// The initial demotion only fires when the projected byte savings over
    /// one period exceed this many full matrix passes (a re-tier costs a
    /// residual-refresh pass, so tiny matrices or all-FP8-classified
    /// matrices stay static).
    pub min_savings_passes: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            period: 8,
            margin_decades: 2.0,
            min_savings_passes: 2.0,
        }
    }
}

/// The residual-driven re-tier controller.
///
/// Feed it the recurrence relative residual at the end of every iteration
/// via [`PrecisionController::observe`]; when it returns a
/// [`RetierDecision`], the engine must (a) requantize every listed tile
/// from its *classification-time stored values* (never from an already
/// re-tiered copy — requantizing a quantized copy would compound rounding
/// and make the result depend on the plan history's storage, not the plan)
/// and (b) refresh the recurrence from the true residual `r = b − A·x`
/// against the re-tiered operator, at a barrier-aligned epoch.
///
/// ### Decision function
///
/// At iterations divisible by [`AdaptiveConfig::period`]:
///
/// 1. the residual decade `d = ⌊log10 relres⌋` selects a target cap —
///    `d ≥ −1` ⇒ scaled FP8, `d ≥ −3` ⇒ FP16, `d ≥ −6` ⇒ FP32, else
///    full — overridden to Full inside the `margin_decades` end-game
///    window;
/// 2. **stagnation ratchet**: if the decade did not improve since the
///    previous check while a cap is active, the cap widens one step —
///    this is what detects each tier's residual floor (≈6e−2 for FP8,
///    ≈5e−4 for FP16, ≈6e−8 for FP32) without modeling it;
/// 3. after the first applied plan the cap is **monotone widening** —
///    combined with the per-tile "never above classification" clamp this
///    bounds every solve to at most 4 re-tier plans and makes the
///    monotonicity property `prop_retier.rs` proves;
/// 4. the initial demotion must clear the projected-savings guard
///    ([`AdaptiveConfig::min_savings_passes`]).
pub struct PrecisionController {
    cfg: AdaptiveConfig,
    tiles: Vec<TileInfo>,
    tiers: Vec<TileTier>,
    cap: TierCap,
    decided: bool,
    last_decade: Option<i64>,
}

impl PrecisionController {
    /// Builds a controller over `tiles`; every tile starts at its
    /// classification-time tier ([`TierCap::Full`]).
    pub fn new(cfg: AdaptiveConfig, tiles: Vec<TileInfo>) -> PrecisionController {
        let tiers = tiles.iter().map(|t| TileTier::Full(t.initial)).collect();
        PrecisionController {
            cfg,
            tiles,
            tiers,
            cap: TierCap::Full,
            decided: false,
            last_decade: None,
        }
    }

    /// Current tier of every tile, in tile order.
    pub fn tiers(&self) -> &[TileTier] {
        &self.tiers
    }

    /// Current cap.
    pub fn cap(&self) -> TierCap {
        self.cap
    }

    /// Projected value-bytes one full matrix pass moves under the current
    /// tier vector (equals `MixedSpmvStats::bytes_by_precision` summed for
    /// a bypass-free pass).
    pub fn bytes_per_pass(&self) -> u64 {
        Self::project_bytes(&self.tiles, &self.tiers)
    }

    fn project_bytes(tiles: &[TileInfo], tiers: &[TileTier]) -> u64 {
        tiles
            .iter()
            .zip(tiers)
            .map(|(t, tier)| t.nnz as u64 * tier.bytes() as u64)
            .sum()
    }

    /// The tier a tile runs at under `cap`: the narrower of the cap and the
    /// tile's classification precision. Scaled FP8 is only used for tiles
    /// classified *wider* than FP8 — a tile whose values already round-trip
    /// in plain FP8 gains nothing from a scale factor.
    fn tile_target(info: &TileInfo, cap: TierCap) -> TileTier {
        match cap {
            TierCap::Full => TileTier::Full(info.initial),
            TierCap::Single => TileTier::Full(info.initial.min(Precision::Fp32)),
            TierCap::Half => TileTier::Full(info.initial.min(Precision::Fp16)),
            TierCap::Scaled8 => {
                if info.initial == Precision::Fp8 {
                    TileTier::Full(Precision::Fp8)
                } else {
                    TileTier::ScaledFp8 {
                        scale_exp: pick_scale_exp(info.max_abs),
                    }
                }
            }
        }
    }

    /// The cap the residual decade alone asks for.
    fn decade_target(decade: i64) -> TierCap {
        if decade >= -1 {
            TierCap::Scaled8
        } else if decade >= -3 {
            TierCap::Half
        } else if decade >= -6 {
            TierCap::Single
        } else {
            TierCap::Full
        }
    }

    /// Feeds one end-of-iteration residual to the controller. Returns a
    /// plan exactly when the engine must re-tier (and refresh) before the
    /// next iteration's matrix pass.
    pub fn observe(
        &mut self,
        iteration: usize,
        relres: f64,
        tolerance: f64,
    ) -> Option<RetierDecision> {
        let period = self.cfg.period.max(1);
        if iteration == 0 || !iteration.is_multiple_of(period) {
            return None;
        }
        if !(relres.is_finite() && relres > 0.0) {
            return None;
        }
        let decade = relres.log10().floor() as i64;
        let prev = self.last_decade.replace(decade);

        let endgame = relres <= tolerance * 10f64.powf(self.cfg.margin_decades);
        let mut target = if endgame {
            TierCap::Full
        } else {
            Self::decade_target(decade)
        };
        if let Some(prev) = prev {
            if self.decided && self.cap < TierCap::Full && decade >= prev {
                // Stagnating at the current cap's residual floor: widen.
                target = target.max(self.cap.widened());
            }
        }
        let new_cap = if self.decided {
            self.cap.max(target)
        } else {
            target
        };
        if self.decided && new_cap == self.cap {
            return None;
        }

        let new_tiers: Vec<TileTier> = self
            .tiles
            .iter()
            .map(|t| Self::tile_target(t, new_cap))
            .collect();
        let actions: Vec<RetierAction> = self
            .tiers
            .iter()
            .zip(&new_tiers)
            .enumerate()
            .filter(|(_, (from, to))| from != to)
            .map(|(i, (from, to))| RetierAction {
                tile: i as u32,
                from: *from,
                to: *to,
            })
            .collect();
        if actions.is_empty() {
            // Vacuous cap move (e.g. every tile already classified at or
            // below the cap): record the cap, emit nothing.
            self.cap = new_cap;
            self.decided = true;
            return None;
        }

        if !self.decided {
            // Initial demotion: only worth a refresh pass when the
            // projected savings over one period clear the guard.
            let old_bytes = Self::project_bytes(&self.tiles, &self.tiers) as f64;
            let new_bytes = Self::project_bytes(&self.tiles, &new_tiers) as f64;
            if (old_bytes - new_bytes) * (period as f64) < self.cfg.min_savings_passes * old_bytes {
                return None;
            }
        }

        self.tiers = new_tiers;
        self.cap = new_cap;
        self.decided = true;
        Some(RetierDecision {
            iteration,
            decade,
            cap: new_cap,
            actions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiles(n: usize, initial: Precision) -> Vec<TileInfo> {
        (0..n)
            .map(|i| TileInfo {
                nnz: 100,
                initial,
                max_abs: 1.0 + i as f64,
            })
            .collect()
    }

    fn drive(ctrl: &mut PrecisionController, relres: &[(usize, f64)]) -> Vec<RetierDecision> {
        relres
            .iter()
            .filter_map(|&(it, r)| ctrl.observe(it, r, 1e-10))
            .collect()
    }

    #[test]
    fn demotes_then_widens_with_convergence() {
        let mut c = PrecisionController::new(AdaptiveConfig::default(), tiles(10, Precision::Fp64));
        let ds = drive(
            &mut c,
            &[
                (8, 2e-1),  // decade -1 → scaled FP8
                (16, 3e-2), // improving, stays
                (24, 4e-3), // decade -3 → FP16
                (32, 5e-5), // decade -5 → FP32
                (40, 2e-9), // endgame window (≤ 1e-8) → full
            ],
        );
        let caps: Vec<TierCap> = ds.iter().map(|d| d.cap).collect();
        assert_eq!(
            caps,
            [
                TierCap::Scaled8,
                TierCap::Half,
                TierCap::Single,
                TierCap::Full
            ]
        );
        assert!(matches!(ds[0].actions[0].to, TileTier::ScaledFp8 { .. }));
        assert_eq!(ds[3].actions[0].to, TileTier::Full(Precision::Fp64));
        assert_eq!(c.cap(), TierCap::Full);
    }

    #[test]
    fn stagnation_ratchet_escapes_tier_floor() {
        let mut c = PrecisionController::new(AdaptiveConfig::default(), tiles(4, Precision::Fp64));
        let ds = drive(
            &mut c,
            &[
                (8, 2e-1),    // demote to scaled FP8
                (16, 1.5e-1), // decade -1 again: stagnating → widen to FP16
                (24, 1.2e-1), // still -1: stagnating → widen to FP32
            ],
        );
        let caps: Vec<TierCap> = ds.iter().map(|d| d.cap).collect();
        assert_eq!(caps, [TierCap::Scaled8, TierCap::Half, TierCap::Single]);
    }

    #[test]
    fn never_promotes_above_classification_tier() {
        let mut c = PrecisionController::new(AdaptiveConfig::default(), tiles(6, Precision::Fp16));
        let ds = drive(&mut c, &[(8, 5e-1), (16, 1e-4), (24, 1e-9)]);
        for d in &ds {
            for a in &d.actions {
                assert!(
                    a.to.storage() <= Precision::Fp16,
                    "tile promoted above classification: {:?}",
                    a
                );
            }
        }
        // The widening plan restores exactly the classification tier.
        let last = ds.last().unwrap();
        assert!(last
            .actions
            .iter()
            .all(|a| a.to == TileTier::Full(Precision::Fp16)));
    }

    #[test]
    fn fp8_classified_matrix_stays_static() {
        // Everything already FP8: no cap produces actions, no plan ever.
        let mut c = PrecisionController::new(AdaptiveConfig::default(), tiles(8, Precision::Fp8));
        let ds = drive(&mut c, &[(8, 5e-1), (16, 1e-3), (24, 1e-7), (32, 1e-9)]);
        assert!(ds.is_empty());
    }

    #[test]
    fn savings_guard_blocks_trivial_demotions() {
        // FP32-classified tiles demoting within two decades of nothing:
        // 4 → 1 bytes saves 75% per pass; with period 8 that's 6 passes
        // of savings ≥ 2 passes, so it fires...
        let mut c = PrecisionController::new(AdaptiveConfig::default(), tiles(4, Precision::Fp32));
        assert!(c.observe(8, 1e-1, 1e-10).is_some());
        // ...but an Fp64→Fp32 move under a 1-iteration period cannot pay
        // for its refresh: (8-4)/8 × 1 < 2.
        let cfg = AdaptiveConfig {
            period: 1,
            ..AdaptiveConfig::default()
        };
        let mut c = PrecisionController::new(cfg, tiles(4, Precision::Fp64));
        assert!(c.observe(1, 1e-5, 1e-10).is_none());
        assert!(c.observe(2, 1e-5, 1e-10).is_none());
    }

    #[test]
    fn decisions_are_replayable() {
        // Two controllers fed the same trajectory emit identical plans —
        // the determinism contract the differential harness relies on.
        let traj: Vec<(usize, f64)> = (1..=64)
            .map(|i| (i, 10f64.powf(-(i as f64) / 6.0)))
            .collect();
        let mk = || PrecisionController::new(AdaptiveConfig::default(), tiles(12, Precision::Fp64));
        let (mut a, mut b) = (mk(), mk());
        let da = drive(&mut a, &traj);
        let db = drive(&mut b, &traj);
        assert_eq!(da, db);
        assert!(!da.is_empty());
    }

    #[test]
    fn observe_only_fires_on_period_boundaries() {
        let mut c = PrecisionController::new(AdaptiveConfig::default(), tiles(4, Precision::Fp64));
        for it in [1, 2, 3, 7, 9, 15] {
            assert!(c.observe(it, 1e-1, 1e-10).is_none());
        }
        assert!(c.observe(16, 1e-1, 1e-10).is_some());
        // Non-finite or zero residuals never decide.
        assert!(c.observe(24, f64::NAN, 1e-10).is_none());
        assert!(c.observe(32, 0.0, 1e-10).is_none());
    }

    #[test]
    fn bytes_delta_matches_projection() {
        let infos = tiles(3, Precision::Fp64);
        let mut c = PrecisionController::new(AdaptiveConfig::default(), infos.clone());
        let before = c.bytes_per_pass();
        let d = c.observe(8, 2e-1, 1e-10).unwrap();
        let after = c.bytes_per_pass();
        assert_eq!(after as i64 - before as i64, d.bytes_delta(&infos));
        assert!(after < before);
    }
}
