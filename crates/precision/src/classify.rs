//! The paper's "enough good" initial-precision criterion (§II-A, Fig. 1).
//!
//! > "We first store each nonzero in four data types, and compute the loss
//! > between three lower precisions (i.e., FP32, FP16 and FP8) and the FP64.
//! > If the losses of FP32, FP16 and FP8 are less than 1e-15 (i.e., the
//! > decimal digits of precision of FP64), it indicates that the precision
//! > FP32, FP16 or FP8 is 'good enough' to store the nonzero. [...] the
//! > nonzero will be stored in the lowest possible precision."
//!
//! With a `1e-15` relative threshold the criterion effectively selects values
//! that are *exactly representable* in the narrow type (ordinary FP32
//! rounding already loses ~1e-8 relative). This is why mass/stencil/FEM
//! matrices whose entries are small integers or dyadic rationals classify
//! heavily to FP8/FP16 in the paper's Fig. 1, while matrices with generic
//! real entries stay FP64.

use crate::precision::Precision;
use crate::ENOUGH_GOOD_LOSS;

/// Options for the classification criterion.
#[derive(Clone, Copy, Debug)]
pub struct ClassifyOptions {
    /// Relative-loss threshold below which a narrower precision is accepted.
    /// The paper uses `1e-15`.
    pub loss_threshold: f64,
    /// Floor applied to the denominator of the relative loss so that
    /// classification of exact zeros and denormals is well defined.
    pub denom_floor: f64,
}

impl Default for ClassifyOptions {
    fn default() -> Self {
        ClassifyOptions {
            loss_threshold: ENOUGH_GOOD_LOSS,
            denom_floor: f64::MIN_POSITIVE,
        }
    }
}

/// Relative round-trip loss of storing `v` in precision `p`:
/// `|v - quantize_p(v)| / max(|v|, floor)`.
///
/// A non-finite quantization (FP8 overflow would saturate, FP16 can
/// overflow to infinity) is treated as infinite loss.
pub fn roundtrip_loss(v: f64, p: Precision, opts: &ClassifyOptions) -> f64 {
    let q = p.quantize(v);
    if !q.is_finite() && v.is_finite() {
        return f64::INFINITY;
    }
    (v - q).abs() / v.abs().max(opts.denom_floor)
}

/// Classifies one nonzero to the *lowest* precision whose loss is below the
/// threshold (paper §II-A). Always returns `Fp64` as a fallback.
pub fn classify_value(v: f64, opts: &ClassifyOptions) -> Precision {
    // Lowest-first so the narrowest acceptable precision wins.
    for p in [Precision::Fp8, Precision::Fp16, Precision::Fp32] {
        if roundtrip_loss(v, p, opts) < opts.loss_threshold {
            return p;
        }
    }
    Precision::Fp64
}

/// Classifies a tile (or any group of nonzeros): the tile must be stored in
/// the *widest* precision any of its members needs (paper §III-B assigns one
/// `TilePrec` per tile).
pub fn classify_group(vals: &[f64], opts: &ClassifyOptions) -> Precision {
    let mut need = Precision::Fp8;
    for &v in vals {
        let p = classify_value(v, opts);
        if p > need {
            need = p;
        }
        if need == Precision::Fp64 {
            break; // cannot get wider
        }
    }
    need
}

/// Histogram of per-nonzero classifications, indexed `[FP64, FP32, FP16, FP8]`
/// like the paper's Fig. 1 legend. Returns counts.
pub fn classification_histogram(vals: &[f64], opts: &ClassifyOptions) -> [usize; 4] {
    let mut h = [0usize; 4];
    for &v in vals {
        h[classify_value(v, opts).tile_code() as usize] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ClassifyOptions {
        ClassifyOptions::default()
    }

    #[test]
    fn small_integers_classify_to_fp8() {
        for v in [0.0, 1.0, -1.0, 2.0, 4.0, -8.0, 0.5, 0.25, 448.0] {
            assert_eq!(classify_value(v, &opts()), Precision::Fp8, "value {v}");
        }
    }

    #[test]
    fn fp16_exact_values_classify_to_fp16() {
        // 1 + 2^-10 is exact in binary16 but not in E4M3.
        let v = 1.0 + 2f64.powi(-10);
        assert_eq!(classify_value(v, &opts()), Precision::Fp16);
        // 2048 + 2 = 2050 exact in fp16, not fp8 (fp8 max 448).
        assert_eq!(classify_value(2050.0, &opts()), Precision::Fp16);
    }

    #[test]
    fn fp32_exact_values_classify_to_fp32() {
        let v = 1.0 + 2f64.powi(-20); // exact in f32, not f16
        assert_eq!(classify_value(v, &opts()), Precision::Fp32);
        // 1e8 is exactly representable in f32 (< 2^27 granularity at that scale? 1e8 = 100000000, f32 spacing at 1e8 is 8 -> 1e8 divisible by 8? 1e8 = 12500000*8 yes).
        assert_eq!(classify_value(1e8, &opts()), Precision::Fp32);
    }

    #[test]
    fn generic_reals_stay_fp64() {
        for v in [0.1, 1.0 / 3.0, std::f64::consts::PI, 1.234_567_890_123e-7] {
            assert_eq!(classify_value(v, &opts()), Precision::Fp64, "value {v}");
        }
    }

    #[test]
    fn overflowing_values_stay_wide() {
        // 1e30 overflows FP16 and FP8 but is exact-enough in... not exact in
        // f32 either (1e30 rounds in f32), so FP64.
        assert_eq!(classify_value(1e30, &opts()), Precision::Fp64);
        // 2^100 is exact in f32.
        assert_eq!(classify_value(2f64.powi(100), &opts()), Precision::Fp32);
        // 2^100 must NOT classify to FP16/FP8 (saturation is lossy).
        assert!(classify_value(2f64.powi(100), &opts()) < Precision::Fp64);
    }

    #[test]
    fn group_takes_widest_need() {
        let g = [1.0, 2.0, 0.5]; // all FP8
        assert_eq!(classify_group(&g, &opts()), Precision::Fp8);
        let g = [1.0, 0.1]; // 0.1 needs FP64
        assert_eq!(classify_group(&g, &opts()), Precision::Fp64);
        let g = [1.0, 2050.0]; // 2050 needs FP16
        assert_eq!(classify_group(&g, &opts()), Precision::Fp16);
    }

    #[test]
    fn empty_group_is_fp8() {
        assert_eq!(classify_group(&[], &opts()), Precision::Fp8);
    }

    #[test]
    fn histogram_sums_to_len() {
        let vals = [1.0, 0.1, 2050.0, 1.0 + 2f64.powi(-20), 0.0, -4.0];
        let h = classification_histogram(&vals, &opts());
        assert_eq!(h.iter().sum::<usize>(), vals.len());
        assert_eq!(h[0], 1); // 0.1 -> FP64
        assert_eq!(h[1], 1); // 1+2^-20 -> FP32
        assert_eq!(h[2], 1); // 2050 -> FP16
        assert_eq!(h[3], 3); // 1.0, 0.0, -4.0 -> FP8
    }

    #[test]
    fn loss_is_zero_for_exact() {
        assert_eq!(roundtrip_loss(1.0, Precision::Fp8, &opts()), 0.0);
        assert_eq!(roundtrip_loss(0.0, Precision::Fp8, &opts()), 0.0);
    }

    #[test]
    fn loss_is_infinite_on_overflow_to_inf() {
        // FP16 overflows to infinity above 65520.
        assert_eq!(roundtrip_loss(1e6, Precision::Fp16, &opts()), f64::INFINITY);
    }

    #[test]
    fn custom_threshold_relaxes_classification() {
        // With a sloppy 1e-2 threshold, 0.1 is "good enough" in FP16
        // (relative error ~2.4e-5) and even FP8 (~2.5e-2 > 1e-2, so FP16).
        let o = ClassifyOptions {
            loss_threshold: 1e-2,
            ..ClassifyOptions::default()
        };
        assert_eq!(classify_value(0.1, &o), Precision::Fp16);
        let o = ClassifyOptions {
            loss_threshold: 0.1,
            ..ClassifyOptions::default()
        };
        assert_eq!(classify_value(0.1, &o), Precision::Fp8);
    }
}
