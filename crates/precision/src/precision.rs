//! The four storage precisions of the Mille-feuille tiled format.

use crate::fp16::Fp16;
use crate::fp8::Fp8E4M3;
use std::fmt;

/// Storage precision of a tile (paper §II-A / Fig. 5 `TilePrec`).
///
/// Ordered by *width*: `Fp8 < Fp16 < Fp32 < Fp64`. The dynamic strategy of
/// §III-D only ever moves a tile *down* this order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Precision {
    /// 8-bit minifloat (OCP E4M3).
    Fp8,
    /// IEEE binary16.
    Fp16,
    /// IEEE binary32.
    Fp32,
    /// IEEE binary64.
    Fp64,
}

impl Precision {
    /// All precisions from narrowest to widest.
    pub const ALL: [Precision; 4] = [
        Precision::Fp8,
        Precision::Fp16,
        Precision::Fp32,
        Precision::Fp64,
    ];

    /// Storage size of one value in bytes.
    #[inline]
    pub const fn bytes(self) -> usize {
        match self {
            Precision::Fp8 => 1,
            Precision::Fp16 => 2,
            Precision::Fp32 => 4,
            Precision::Fp64 => 8,
        }
    }

    /// Relative arithmetic cost of one FLOP in this precision, normalised to
    /// FP64 = 1. GPUs execute narrower types at proportionally higher
    /// throughput (2× per halving on A100/MI210 vector pipes), which is the
    /// compute-side benefit Finding 1 exploits.
    #[inline]
    pub const fn flop_cost(self) -> f64 {
        match self {
            Precision::Fp8 => 0.125,
            Precision::Fp16 => 0.25,
            Precision::Fp32 => 0.5,
            Precision::Fp64 => 1.0,
        }
    }

    /// Quantizes a value: rounds it to this precision and widens back to
    /// `f64`. This is the exact perturbation a value suffers when stored in a
    /// tile of this precision.
    #[inline]
    pub fn quantize(self, v: f64) -> f64 {
        match self {
            Precision::Fp8 => Fp8E4M3::from_f64(v).to_f64(),
            Precision::Fp16 => Fp16::from_f64(v).to_f64(),
            Precision::Fp32 => v as f32 as f64,
            Precision::Fp64 => v,
        }
    }

    /// Quantizes a slice in place.
    pub fn quantize_slice(self, vals: &mut [f64]) {
        if self == Precision::Fp64 {
            return;
        }
        for v in vals {
            *v = self.quantize(*v);
        }
    }

    /// The next narrower precision, if any.
    #[inline]
    pub const fn narrower(self) -> Option<Precision> {
        match self {
            Precision::Fp64 => Some(Precision::Fp32),
            Precision::Fp32 => Some(Precision::Fp16),
            Precision::Fp16 => Some(Precision::Fp8),
            Precision::Fp8 => None,
        }
    }

    /// The next wider precision, if any.
    #[inline]
    pub const fn wider(self) -> Option<Precision> {
        match self {
            Precision::Fp8 => Some(Precision::Fp16),
            Precision::Fp16 => Some(Precision::Fp32),
            Precision::Fp32 => Some(Precision::Fp64),
            Precision::Fp64 => None,
        }
    }

    /// Returns the narrower of `self` and `other` (used when the dynamic
    /// strategy lowers a tile: the effective precision is the minimum of the
    /// initial tile precision and the `vis_flag` demand, paper Alg. 5).
    #[inline]
    pub fn min(self, other: Precision) -> Precision {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Stable index used by the tiled format's `TilePrec` array
    /// (0 = FP64 … 3 = FP8, matching the paper's figures).
    #[inline]
    pub const fn tile_code(self) -> u8 {
        match self {
            Precision::Fp64 => 0,
            Precision::Fp32 => 1,
            Precision::Fp16 => 2,
            Precision::Fp8 => 3,
        }
    }

    /// Inverse of [`Precision::tile_code`].
    #[inline]
    pub const fn from_tile_code(code: u8) -> Option<Precision> {
        match code {
            0 => Some(Precision::Fp64),
            1 => Some(Precision::Fp32),
            2 => Some(Precision::Fp16),
            3 => Some(Precision::Fp8),
            _ => None,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Precision::Fp8 => "FP8",
            Precision::Fp16 => "FP16",
            Precision::Fp32 => "FP32",
            Precision::Fp64 => "FP64",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_ordering() {
        assert!(Precision::Fp8 < Precision::Fp16);
        assert!(Precision::Fp16 < Precision::Fp32);
        assert!(Precision::Fp32 < Precision::Fp64);
    }

    #[test]
    fn bytes_and_cost() {
        assert_eq!(Precision::Fp64.bytes(), 8);
        assert_eq!(Precision::Fp8.bytes(), 1);
        assert_eq!(Precision::Fp64.flop_cost(), 1.0);
        assert_eq!(Precision::Fp16.flop_cost(), 0.25);
    }

    #[test]
    fn quantize_identity_for_representable() {
        for p in Precision::ALL {
            assert_eq!(p.quantize(1.0), 1.0);
            assert_eq!(p.quantize(0.0), 0.0);
            assert_eq!(p.quantize(-0.5), -0.5);
        }
    }

    #[test]
    fn quantize_error_decreases_with_width() {
        let v = 0.123456789;
        let mut last = f64::INFINITY;
        for p in Precision::ALL {
            let err = (p.quantize(v) - v).abs();
            assert!(err <= last, "{p}: {err} > {last}");
            last = err;
        }
        assert_eq!(Precision::Fp64.quantize(v), v);
    }

    #[test]
    fn narrower_wider_chain() {
        assert_eq!(Precision::Fp64.narrower(), Some(Precision::Fp32));
        assert_eq!(Precision::Fp8.narrower(), None);
        assert_eq!(Precision::Fp8.wider(), Some(Precision::Fp16));
        assert_eq!(Precision::Fp64.wider(), None);
    }

    #[test]
    fn tile_codes_roundtrip() {
        for p in Precision::ALL {
            assert_eq!(Precision::from_tile_code(p.tile_code()), Some(p));
        }
        assert_eq!(Precision::from_tile_code(9), None);
    }

    #[test]
    fn min_takes_narrower() {
        assert_eq!(Precision::Fp64.min(Precision::Fp16), Precision::Fp16);
        assert_eq!(Precision::Fp8.min(Precision::Fp64), Precision::Fp8);
    }

    #[test]
    fn quantize_slice_applies() {
        let mut v = vec![0.1, 1.0, std::f64::consts::PI];
        Precision::Fp16.quantize_slice(&mut v);
        assert_eq!(v[1], 1.0);
        assert_ne!(v[0], 0.1);
        assert!((v[0] - 0.1).abs() < 1e-3);
    }
}
