//! Byte-packed value storage.
//!
//! The tiled format stores each tile's nonzero values in the tile's own
//! precision (paper Fig. 5, the `Val` array). To keep memory accounting
//! honest (Fig. 13 compares the tiled format's footprint against 3-array
//! CSR), values are physically packed into a byte buffer — one, two, four or
//! eight bytes per value depending on the owning tile's `TilePrec` — rather
//! than kept as `f64` with a virtual size.
//!
//! A [`PackedValuesBuilder`] appends runs of values, each run with its own
//! precision; the finished [`PackedValues`] supports random-access decoding
//! given `(byte_offset, precision)`, which the tiled format derives from its
//! per-tile metadata.

use crate::fp16::Fp16;
use crate::fp8::Fp8E4M3;
use crate::precision::Precision;
use bytes::{Bytes, BytesMut};

/// Immutable packed value buffer.
#[derive(Clone, Debug, Default)]
pub struct PackedValues {
    buf: Bytes,
}

/// Builder that appends precision-tagged runs of values.
#[derive(Debug, Default)]
pub struct PackedValuesBuilder {
    buf: BytesMut,
}

impl PackedValuesBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `bytes` bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        PackedValuesBuilder {
            buf: BytesMut::with_capacity(bytes),
        }
    }

    /// Current length in bytes — the offset at which the next run will start.
    #[inline]
    pub fn offset(&self) -> usize {
        self.buf.len()
    }

    /// Appends `vals`, each encoded in `prec`, and returns the byte offset at
    /// which the run starts.
    pub fn push_run(&mut self, vals: &[f64], prec: Precision) -> usize {
        let start = self.buf.len();
        match prec {
            Precision::Fp64 => {
                for &v in vals {
                    self.buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            Precision::Fp32 => {
                for &v in vals {
                    self.buf.extend_from_slice(&(v as f32).to_le_bytes());
                }
            }
            Precision::Fp16 => {
                for &v in vals {
                    self.buf
                        .extend_from_slice(&Fp16::from_f64(v).to_bits().to_le_bytes());
                }
            }
            Precision::Fp8 => {
                for &v in vals {
                    self.buf
                        .extend_from_slice(&[Fp8E4M3::from_f64(v).to_bits()]);
                }
            }
        }
        start
    }

    /// Appends `vals` encoded as *scaled* FP8 (E4M3 of `v / 2^scale_exp`,
    /// one byte per value — the per-tile `scale_exp` is metadata the caller
    /// stores alongside the offset, exactly like the precision tag of
    /// [`PackedValuesBuilder::push_run`]). Returns the starting byte
    /// offset. This is the storage codec of the adaptive re-tiering path's
    /// [`crate::retier::TileTier::ScaledFp8`] tier.
    pub fn push_run_scaled(&mut self, vals: &[f64], scale_exp: i16) -> usize {
        let start = self.buf.len();
        let s = 2f64.powi(scale_exp as i32);
        for &v in vals {
            self.buf
                .extend_from_slice(&[Fp8E4M3::from_f64(v / s).to_bits()]);
        }
        start
    }

    /// Finishes the builder.
    pub fn finish(self) -> PackedValues {
        PackedValues {
            buf: self.buf.freeze(),
        }
    }
}

impl PackedValues {
    /// Total size in bytes (this is the number Fig. 13 accounts for `Val`).
    #[inline]
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// `true` if no values are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Decodes the `idx`-th value of a run starting at `byte_offset` whose
    /// values are encoded in `prec`.
    ///
    /// # Panics
    /// Panics if the access runs past the end of the buffer.
    #[inline]
    pub fn get(&self, byte_offset: usize, prec: Precision, idx: usize) -> f64 {
        let at = byte_offset + idx * prec.bytes();
        match prec {
            Precision::Fp64 => {
                let b: [u8; 8] = self.buf[at..at + 8].try_into().unwrap();
                f64::from_le_bytes(b)
            }
            Precision::Fp32 => {
                let b: [u8; 4] = self.buf[at..at + 4].try_into().unwrap();
                f32::from_le_bytes(b) as f64
            }
            Precision::Fp16 => {
                let b: [u8; 2] = self.buf[at..at + 2].try_into().unwrap();
                Fp16::from_bits(u16::from_le_bytes(b)).to_f64()
            }
            Precision::Fp8 => Fp8E4M3::from_bits(self.buf[at]).to_f64(),
        }
    }

    /// Decodes a whole run of `n` values into `out` (must have length `n`).
    pub fn decode_run(&self, byte_offset: usize, prec: Precision, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.get(byte_offset, prec, i);
        }
    }

    /// The raw encoded bytes (for serialization).
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Rebuilds a buffer from raw encoded bytes (the inverse of
    /// [`PackedValues::as_bytes`]; the caller is responsible for pairing the
    /// bytes with the correct offsets/precisions).
    pub fn from_bytes(bytes: Vec<u8>) -> PackedValues {
        PackedValues {
            buf: Bytes::from(bytes),
        }
    }

    /// Decodes a whole run of `n` values into a fresh vector.
    pub fn decode_run_vec(&self, byte_offset: usize, prec: Precision, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        self.decode_run(byte_offset, prec, &mut out);
        out
    }

    /// Decodes the `idx`-th value of a *scaled* FP8 run written by
    /// [`PackedValuesBuilder::push_run_scaled`] with the same `scale_exp`.
    #[inline]
    pub fn get_scaled(&self, byte_offset: usize, scale_exp: i16, idx: usize) -> f64 {
        Fp8E4M3::from_bits(self.buf[byte_offset + idx]).to_f64() * 2f64.powi(scale_exp as i32)
    }

    /// Decodes a whole scaled-FP8 run into `out` (must have length `n`).
    pub fn decode_run_scaled(&self, byte_offset: usize, scale_exp: i16, out: &mut [f64]) {
        let s = 2f64.powi(scale_exp as i32);
        for (i, o) in out.iter_mut().enumerate() {
            *o = Fp8E4M3::from_bits(self.buf[byte_offset + i]).to_f64() * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fp64_run() {
        let mut b = PackedValuesBuilder::new();
        let vals = [1.0, -2.5, 0.1, 1e300];
        let off = b.push_run(&vals, Precision::Fp64);
        let p = b.finish();
        assert_eq!(off, 0);
        assert_eq!(p.len_bytes(), 32);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(p.get(off, Precision::Fp64, i), v);
        }
    }

    #[test]
    fn mixed_runs_pack_tightly() {
        let mut b = PackedValuesBuilder::new();
        let o64 = b.push_run(&[0.1, 0.2], Precision::Fp64); // 16 bytes
        let o32 = b.push_run(&[1.5, 2.5, 3.5], Precision::Fp32); // 12 bytes
        let o16 = b.push_run(&[1.0], Precision::Fp16); // 2 bytes
        let o8 = b.push_run(&[2.0, -4.0], Precision::Fp8); // 2 bytes
        let p = b.finish();
        assert_eq!((o64, o32, o16, o8), (0, 16, 28, 30));
        assert_eq!(p.len_bytes(), 32);
        assert_eq!(p.get(o64, Precision::Fp64, 1), 0.2);
        assert_eq!(p.get(o32, Precision::Fp32, 2), 3.5);
        assert_eq!(p.get(o16, Precision::Fp16, 0), 1.0);
        assert_eq!(p.get(o8, Precision::Fp8, 1), -4.0);
    }

    #[test]
    fn encoding_applies_quantization() {
        let mut b = PackedValuesBuilder::new();
        let off = b.push_run(&[0.1], Precision::Fp16);
        let p = b.finish();
        let got = p.get(off, Precision::Fp16, 0);
        assert_eq!(got, Precision::Fp16.quantize(0.1));
        assert_ne!(got, 0.1);
    }

    #[test]
    fn decode_run_matches_get() {
        let mut b = PackedValuesBuilder::new();
        let vals = [1.0, 2.0, 3.0, 4.0, 5.0];
        let off = b.push_run(&vals, Precision::Fp8);
        let p = b.finish();
        let out = p.decode_run_vec(off, Precision::Fp8, vals.len());
        assert_eq!(out, vals);
    }

    #[test]
    fn with_capacity_builder() {
        let mut b = PackedValuesBuilder::with_capacity(64);
        b.push_run(&[1.0; 8], Precision::Fp64);
        assert_eq!(b.offset(), 64);
        assert_eq!(b.finish().len_bytes(), 64);
    }

    #[test]
    fn scaled_run_round_trips_through_bytes() {
        use crate::fp8::{pick_scale_exp, quantize_scaled_e4m3};
        let vals = [1.5e6, -2.0e5, 0.0, 7.25e4, 9.9e5];
        let e = pick_scale_exp(1.5e6);
        let mut b = PackedValuesBuilder::new();
        let off = b.push_run_scaled(&vals, e);
        let p = b.finish();
        assert_eq!(p.len_bytes(), vals.len()); // one byte per value
        let mut out = vec![0.0; vals.len()];
        p.decode_run_scaled(off, e, &mut out);
        for (i, (&v, &d)) in vals.iter().zip(&out).enumerate() {
            assert_eq!(d, p.get_scaled(off, e, i));
            // The byte codec applies exactly the scaled-quantization model.
            assert_eq!(d, quantize_scaled_e4m3(v, e));
        }
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let mut b = PackedValuesBuilder::new();
        b.push_run(&[1.0], Precision::Fp8);
        let p = b.finish();
        p.get(0, Precision::Fp8, 5);
    }
}
