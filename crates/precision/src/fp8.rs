//! 8-bit minifloat wrapper types.
//!
//! The paper (§II-A) uses an 8-bit "minifloat" as its narrowest storage
//! precision. We provide both OCP FP8 variants; the solver uses **E4M3**
//! (more mantissa, the common choice for storing values rather than
//! gradients), and E5M2 is available for experimentation.

use crate::minifloat::{E4M3, E5M2};
use std::cmp::Ordering;
use std::fmt;

/// OCP FP8 E4M3 value (1 sign, 4 exponent, 3 mantissa bits, bias 7).
///
/// No infinities; overflow saturates to ±448 (the `satfinite` conversion
/// mode). `S.1111.111` is NaN.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Fp8E4M3(pub u8);

/// OCP FP8 E5M2 value (1 sign, 5 exponent, 2 mantissa bits, bias 15).
///
/// IEEE-style Inf/NaN in the top binade; max finite 57344.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Fp8E5M2(pub u8);

macro_rules! impl_fp8 {
    ($ty:ident, $fmt:expr, $name:literal) => {
        impl $ty {
            /// Positive zero.
            pub const ZERO: $ty = $ty(0);

            /// Builds a value from its raw 8-bit code.
            #[inline]
            pub const fn from_bits(bits: u8) -> Self {
                $ty(bits)
            }

            /// Returns the raw 8-bit code.
            #[inline]
            pub const fn to_bits(self) -> u8 {
                self.0
            }

            /// Converts from `f64` with round-to-nearest-even.
            pub fn from_f64(v: f64) -> Self {
                $ty($fmt.encode(v))
            }

            /// Converts from `f32` with round-to-nearest-even.
            pub fn from_f32(v: f32) -> Self {
                // f32 -> f64 widening is exact, so a single rounding happens.
                $ty($fmt.encode(v as f64))
            }

            /// Widens to `f64` (exact).
            pub fn to_f64(self) -> f64 {
                $fmt.decode(self.0)
            }

            /// Widens to `f32` (exact — all FP8 values fit in f32).
            pub fn to_f32(self) -> f32 {
                self.to_f64() as f32
            }

            /// Largest finite magnitude of the format.
            pub fn max_finite() -> f64 {
                $fmt.max_finite()
            }

            /// Smallest positive normal magnitude.
            pub fn min_normal() -> f64 {
                $fmt.min_normal()
            }

            /// Smallest positive subnormal magnitude.
            pub fn min_subnormal() -> f64 {
                $fmt.min_subnormal()
            }

            /// `true` for any NaN code.
            pub fn is_nan(self) -> bool {
                self.to_f64().is_nan()
            }

            /// `true` when finite (not NaN, not infinite).
            pub fn is_finite(self) -> bool {
                self.to_f64().is_finite()
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                $ty(self.0 & 0x7f)
            }

            /// Negation (sign-bit flip).
            #[allow(clippy::should_implement_trait)] // bitwise IEEE negate; `Neg` is also implemented
            pub fn neg(self) -> Self {
                $ty(self.0 ^ 0x80)
            }
        }

        impl std::ops::Neg for $ty {
            type Output = $ty;
            fn neg(self) -> $ty {
                $ty(self.0 ^ 0x80)
            }
        }

        impl From<f64> for $ty {
            fn from(v: f64) -> Self {
                Self::from_f64(v)
            }
        }

        impl From<f32> for $ty {
            fn from(v: f32) -> Self {
                Self::from_f32(v)
            }
        }

        impl From<$ty> for f64 {
            fn from(v: $ty) -> f64 {
                v.to_f64()
            }
        }

        impl From<$ty> for f32 {
            fn from(v: $ty) -> f32 {
                v.to_f32()
            }
        }

        impl PartialOrd for $ty {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                self.to_f64().partial_cmp(&other.to_f64())
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($name, "({})"), self.to_f64())
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.to_f64(), f)
            }
        }
    };
}

impl_fp8!(Fp8E4M3, E4M3, "Fp8E4M3");
impl_fp8!(Fp8E5M2, E5M2, "Fp8E5M2");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4m3_basics() {
        assert_eq!(Fp8E4M3::from_f64(1.0).to_f64(), 1.0);
        assert_eq!(Fp8E4M3::from_f64(-2.0).to_f64(), -2.0);
        assert_eq!(Fp8E4M3::from_f64(1000.0).to_f64(), 448.0);
        assert_eq!(Fp8E4M3::max_finite(), 448.0);
        assert!(Fp8E4M3::from_bits(0x7f).is_nan());
    }

    #[test]
    fn e5m2_basics() {
        assert_eq!(Fp8E5M2::from_f64(1.0).to_f64(), 1.0);
        assert_eq!(Fp8E5M2::from_f64(1e9).to_f64(), f64::INFINITY);
        assert_eq!(Fp8E5M2::max_finite(), 57344.0);
    }

    #[test]
    fn neg_abs() {
        let v = Fp8E4M3::from_f64(-3.5);
        assert_eq!(v.abs().to_f64(), 3.5);
        assert_eq!(v.neg().to_f64(), 3.5);
    }

    #[test]
    fn f32_and_f64_paths_agree() {
        let vals = [0.0f32, 1.0, -1.5, 0.07, 300.0, 1e-3, -0.125];
        for &v in &vals {
            assert_eq!(
                Fp8E4M3::from_f32(v).to_bits(),
                Fp8E4M3::from_f64(v as f64).to_bits()
            );
            assert_eq!(
                Fp8E5M2::from_f32(v).to_bits(),
                Fp8E5M2::from_f64(v as f64).to_bits()
            );
        }
    }

    #[test]
    fn ordering_on_finites() {
        assert!(Fp8E4M3::from_f64(1.0) < Fp8E4M3::from_f64(2.0));
        assert!(Fp8E4M3::from_f64(-448.0) < Fp8E4M3::from_f64(448.0));
    }
}
