//! 8-bit minifloat wrapper types.
//!
//! The paper (§II-A) uses an 8-bit "minifloat" as its narrowest storage
//! precision. We provide both OCP FP8 variants; the solver uses **E4M3**
//! (more mantissa, the common choice for storing values rather than
//! gradients), and E5M2 is available for experimentation.

use crate::minifloat::{E4M3, E5M2};
use std::cmp::Ordering;
use std::fmt;

/// OCP FP8 E4M3 value (1 sign, 4 exponent, 3 mantissa bits, bias 7).
///
/// No infinities; overflow saturates to ±448 (the `satfinite` conversion
/// mode). `S.1111.111` is NaN.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Fp8E4M3(pub u8);

/// OCP FP8 E5M2 value (1 sign, 5 exponent, 2 mantissa bits, bias 15).
///
/// IEEE-style Inf/NaN in the top binade; max finite 57344.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Fp8E5M2(pub u8);

macro_rules! impl_fp8 {
    ($ty:ident, $fmt:expr, $name:literal) => {
        impl $ty {
            /// Positive zero.
            pub const ZERO: $ty = $ty(0);

            /// Builds a value from its raw 8-bit code.
            #[inline]
            pub const fn from_bits(bits: u8) -> Self {
                $ty(bits)
            }

            /// Returns the raw 8-bit code.
            #[inline]
            pub const fn to_bits(self) -> u8 {
                self.0
            }

            /// Converts from `f64` with round-to-nearest-even.
            pub fn from_f64(v: f64) -> Self {
                $ty($fmt.encode(v))
            }

            /// Converts from `f32` with round-to-nearest-even.
            pub fn from_f32(v: f32) -> Self {
                // f32 -> f64 widening is exact, so a single rounding happens.
                $ty($fmt.encode(v as f64))
            }

            /// Widens to `f64` (exact).
            pub fn to_f64(self) -> f64 {
                $fmt.decode(self.0)
            }

            /// Widens to `f32` (exact — all FP8 values fit in f32).
            pub fn to_f32(self) -> f32 {
                self.to_f64() as f32
            }

            /// Largest finite magnitude of the format.
            pub fn max_finite() -> f64 {
                $fmt.max_finite()
            }

            /// Smallest positive normal magnitude.
            pub fn min_normal() -> f64 {
                $fmt.min_normal()
            }

            /// Smallest positive subnormal magnitude.
            pub fn min_subnormal() -> f64 {
                $fmt.min_subnormal()
            }

            /// `true` for any NaN code.
            pub fn is_nan(self) -> bool {
                self.to_f64().is_nan()
            }

            /// `true` when finite (not NaN, not infinite).
            pub fn is_finite(self) -> bool {
                self.to_f64().is_finite()
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                $ty(self.0 & 0x7f)
            }

            /// Negation (sign-bit flip).
            #[allow(clippy::should_implement_trait)] // bitwise IEEE negate; `Neg` is also implemented
            pub fn neg(self) -> Self {
                $ty(self.0 ^ 0x80)
            }
        }

        impl std::ops::Neg for $ty {
            type Output = $ty;
            fn neg(self) -> $ty {
                $ty(self.0 ^ 0x80)
            }
        }

        impl From<f64> for $ty {
            fn from(v: f64) -> Self {
                Self::from_f64(v)
            }
        }

        impl From<f32> for $ty {
            fn from(v: f32) -> Self {
                Self::from_f32(v)
            }
        }

        impl From<$ty> for f64 {
            fn from(v: $ty) -> f64 {
                v.to_f64()
            }
        }

        impl From<$ty> for f32 {
            fn from(v: $ty) -> f32 {
                v.to_f32()
            }
        }

        impl PartialOrd for $ty {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                self.to_f64().partial_cmp(&other.to_f64())
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($name, "({})"), self.to_f64())
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.to_f64(), f)
            }
        }
    };
}

impl_fp8!(Fp8E4M3, E4M3, "Fp8E4M3");
impl_fp8!(Fp8E5M2, E5M2, "Fp8E5M2");

/// Picks the per-tile scaling exponent for *scaled* FP8 storage: the
/// smallest `e` such that `max_abs / 2^e` fits E4M3's finite range, so the
/// tile's largest magnitude lands in the format's top binade and the whole
/// tile uses as much of the 8-bit dynamic range as possible. Negative `e`
/// scales small-magnitude tiles *up*, recovering resolution plain FP8
/// would waste on empty headroom.
///
/// Deterministic by construction: a pure function of `max_abs` computed
/// with exact power-of-two arithmetic (the `log2` seed is verified and
/// corrected by exact comparisons). Returns 0 for zero / non-finite input.
pub fn pick_scale_exp(max_abs: f64) -> i16 {
    if !(max_abs.is_finite() && max_abs > 0.0) {
        return 0;
    }
    let cap = Fp8E4M3::max_finite();
    let mut e = (max_abs / cap).log2().ceil() as i32;
    e = e.clamp(-1100, 1100);
    // Guard the floating-point seed with exact checks: 2^e is exact, and
    // division by a power of two is exact, so both comparisons are exact.
    while e < 1100 && max_abs / 2f64.powi(e) > cap {
        e += 1;
    }
    while e > -1100 && max_abs / 2f64.powi(e - 1) <= cap {
        e -= 1;
    }
    e as i16
}

/// Quantizes `v` through scaled E4M3 storage with scaling exponent
/// `scale_exp`: the stored byte is `E4M3(v / 2^e)` and the decoded value is
/// `E4M3(v / 2^e) * 2^e`. Both scalings are exact (powers of two), so the
/// only rounding is the E4M3 conversion itself; the round-trip error is
/// bounded by `max(|v| * 2^-4, 2^(e-10))` (half-ULP of a normal, half the
/// scaled subnormal step).
#[inline]
pub fn quantize_scaled_e4m3(v: f64, scale_exp: i16) -> f64 {
    let s = 2f64.powi(scale_exp as i32);
    Fp8E4M3::from_f64(v / s).to_f64() * s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4m3_basics() {
        assert_eq!(Fp8E4M3::from_f64(1.0).to_f64(), 1.0);
        assert_eq!(Fp8E4M3::from_f64(-2.0).to_f64(), -2.0);
        assert_eq!(Fp8E4M3::from_f64(1000.0).to_f64(), 448.0);
        assert_eq!(Fp8E4M3::max_finite(), 448.0);
        assert!(Fp8E4M3::from_bits(0x7f).is_nan());
    }

    #[test]
    fn e5m2_basics() {
        assert_eq!(Fp8E5M2::from_f64(1.0).to_f64(), 1.0);
        assert_eq!(Fp8E5M2::from_f64(1e9).to_f64(), f64::INFINITY);
        assert_eq!(Fp8E5M2::max_finite(), 57344.0);
    }

    #[test]
    fn neg_abs() {
        let v = Fp8E4M3::from_f64(-3.5);
        assert_eq!(v.abs().to_f64(), 3.5);
        assert_eq!(v.neg().to_f64(), 3.5);
    }

    #[test]
    fn f32_and_f64_paths_agree() {
        let vals = [0.0f32, 1.0, -1.5, 0.07, 300.0, 1e-3, -0.125];
        for &v in &vals {
            assert_eq!(
                Fp8E4M3::from_f32(v).to_bits(),
                Fp8E4M3::from_f64(v as f64).to_bits()
            );
            assert_eq!(
                Fp8E5M2::from_f32(v).to_bits(),
                Fp8E5M2::from_f64(v as f64).to_bits()
            );
        }
    }

    #[test]
    fn ordering_on_finites() {
        assert!(Fp8E4M3::from_f64(1.0) < Fp8E4M3::from_f64(2.0));
        assert!(Fp8E4M3::from_f64(-448.0) < Fp8E4M3::from_f64(448.0));
    }

    #[test]
    fn scale_exp_is_minimal_and_sufficient() {
        for &m in &[1e-30, 1e-6, 0.07, 1.0, 448.0, 449.0, 1e4, 1e12, 1e300] {
            let e = pick_scale_exp(m) as i32;
            assert!(m / 2f64.powi(e) <= 448.0, "max_abs {m} exp {e}");
            if e > -126 {
                assert!(m / 2f64.powi(e - 1) > 448.0, "exp {e} not minimal for {m}");
            }
        }
        assert_eq!(pick_scale_exp(0.0), 0);
        assert_eq!(pick_scale_exp(f64::NAN), 0);
        assert_eq!(pick_scale_exp(f64::INFINITY), 0);
        // In-range magnitudes need no scaling or scale *up*.
        assert!(pick_scale_exp(448.0) <= 0);
        assert!(pick_scale_exp(1e-6) < 0);
    }

    #[test]
    fn scaled_quantize_round_trip_envelope() {
        let e = pick_scale_exp(1e6);
        for &v in &[1e6, -7.3e5, 1234.5, 0.0, -1e6] {
            let q = quantize_scaled_e4m3(v, e);
            let bound = (v.abs() * 2f64.powi(-4)).max(2f64.powi(e as i32 - 10));
            assert!((q - v).abs() <= bound, "v {v} q {q} bound {bound}");
        }
        // scale_exp = 0 degenerates to plain E4M3.
        assert_eq!(
            quantize_scaled_e4m3(0.1, 0),
            Fp8E4M3::from_f64(0.1).to_f64()
        );
    }
}
