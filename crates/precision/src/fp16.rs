//! IEEE 754 binary16 ("half") implemented in software.
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
//! All conversions use round-to-nearest-even, matching the default GPU
//! rounding mode for `__float2half_rn` / HIP `__float2half`.

use std::cmp::Ordering;
use std::fmt;

/// A 16-bit IEEE 754 binary16 value stored as its raw bit pattern.
///
/// `Fp16` is a *storage* type: arithmetic is performed by widening to `f32`
/// or `f64` (exact — every binary16 value is exactly representable in both)
/// and narrowing the result back, which is precisely how scalar half-precision
/// code behaves on GPUs that accumulate in a wider type.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Fp16(pub u16);

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7c00;
const MAN_MASK: u16 = 0x03ff;

impl Fp16 {
    /// Positive zero.
    pub const ZERO: Fp16 = Fp16(0x0000);
    /// One.
    pub const ONE: Fp16 = Fp16(0x3c00);
    /// Largest finite value, `65504.0`.
    pub const MAX: Fp16 = Fp16(0x7bff);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: Fp16 = Fp16(0x0400);
    /// Smallest positive subnormal value, `2^-24`.
    pub const MIN_SUBNORMAL: Fp16 = Fp16(0x0001);
    /// Positive infinity.
    pub const INFINITY: Fp16 = Fp16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: Fp16 = Fp16(0xfc00);
    /// A quiet NaN.
    pub const NAN: Fp16 = Fp16(0x7e00);
    /// Machine epsilon (`2^-10`).
    pub const EPSILON: Fp16 = Fp16(0x1400);

    /// Builds a value from raw binary16 bits.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Fp16(bits)
    }

    /// Returns the raw binary16 bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Self {
        Fp16(f32_to_f16_bits(x))
    }

    /// Converts an `f64` with round-to-nearest-even.
    ///
    /// Double rounding through `f32` would be incorrect for values where the
    /// `f32` rounding lands exactly on a binary16 tie, so this converts from
    /// the `f64` bit pattern directly.
    pub fn from_f64(x: f64) -> Self {
        Fp16(f64_to_f16_bits(x))
    }

    /// Widens to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Widens to `f64` (exact).
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// `true` for positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0 & !SIGN_MASK == EXP_MASK
    }

    /// `true` for any NaN payload.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// `true` when the value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// `true` for subnormal values (zero is not subnormal).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// `true` for +0.0 and -0.0.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 & !SIGN_MASK == 0
    }

    /// Sign bit as a bool (`true` = negative).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & SIGN_MASK != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        Fp16(self.0 & !SIGN_MASK)
    }

    /// Negation (flips the sign bit, including for NaN/zero, per IEEE 754).
    #[inline]
    #[allow(clippy::should_implement_trait)] // bitwise IEEE negate; `Neg` is also implemented
    pub fn neg(self) -> Self {
        Fp16(self.0 ^ SIGN_MASK)
    }
}

impl std::ops::Neg for Fp16 {
    type Output = Fp16;
    fn neg(self) -> Fp16 {
        Fp16(self.0 ^ SIGN_MASK)
    }
}

impl From<f32> for Fp16 {
    fn from(x: f32) -> Self {
        Fp16::from_f32(x)
    }
}

impl From<f64> for Fp16 {
    fn from(x: f64) -> Self {
        Fp16::from_f64(x)
    }
}

impl From<Fp16> for f32 {
    fn from(h: Fp16) -> f32 {
        h.to_f32()
    }
}

impl From<Fp16> for f64 {
    fn from(h: Fp16) -> f64 {
        h.to_f64()
    }
}

impl PartialOrd for Fp16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for Fp16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp16({})", self.to_f32())
    }
}

impl fmt::Display for Fp16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

/// Converts `f32` bits to binary16 bits with round-to-nearest-even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;

    if exp == 0xff {
        return if man == 0 {
            sign | EXP_MASK // infinity
        } else {
            // NaN: force quiet, keep the top payload bits.
            sign | EXP_MASK | 0x0200 | ((man >> 13) as u16 & MAN_MASK)
        };
    }

    // Re-bias the exponent for binary16.
    let e = exp - 127 + 15;

    if e >= 0x1f {
        // Overflow: round-to-nearest-even maps anything at or above the
        // overflow threshold to infinity.
        return sign | EXP_MASK;
    }

    if e <= 0 {
        // Result is subnormal (or underflows to zero).
        if e < -10 {
            // Even the largest mantissa rounds to zero below 2^-25.
            return sign;
        }
        let m = man | 0x0080_0000; // add the implicit leading one
        let shift = (14 - e) as u32; // 14..=24
        let half = 1u32 << (shift - 1);
        let rem = m & ((1u32 << shift) - 1);
        let mut v = m >> shift;
        if rem > half || (rem == half && (v & 1) == 1) {
            v += 1; // may carry into the exponent: 0x0400 == smallest normal, still correct
        }
        return sign | v as u16;
    }

    // Normal result: keep top 10 mantissa bits, round the 13 dropped bits.
    let mut v = ((e as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    if rem > 0x1000 || (rem == 0x1000 && (v & 1) == 1) {
        v += 1; // carry into exponent is correct (e.g. 2047.5 -> 2048)
    }
    if v >= 0x7c00 {
        return sign | EXP_MASK; // rounded up into infinity
    }
    sign | v as u16
}

/// Converts `f64` bits to binary16 bits with a single round-to-nearest-even.
pub fn f64_to_f16_bits(x: f64) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 48) & 0x8000) as u16;
    let exp = ((bits >> 52) & 0x7ff) as i32;
    let man = bits & 0x000f_ffff_ffff_ffff;

    if exp == 0x7ff {
        return if man == 0 {
            sign | EXP_MASK
        } else {
            sign | EXP_MASK | 0x0200 | ((man >> 42) as u16 & MAN_MASK)
        };
    }

    let e = exp - 1023 + 15;

    if e >= 0x1f {
        return sign | EXP_MASK;
    }

    if e <= 0 {
        if e < -10 {
            return sign;
        }
        let m = man | 0x0010_0000_0000_0000; // implicit one at bit 52
        let shift = (43 - e) as u32; // aligns so that shift for e==0 keeps 10 bits + guard
        let half = 1u64 << (shift - 1);
        let rem = m & ((1u64 << shift) - 1);
        let mut v = m >> shift;
        if rem > half || (rem == half && (v & 1) == 1) {
            v += 1;
        }
        return sign | v as u16;
    }

    let mut v = ((e as u64) << 10) | (man >> 42);
    let rem = man & 0x3ff_ffff_ffff;
    let half = 0x200_0000_0000u64;
    if rem > half || (rem == half && (v & 1) == 1) {
        v += 1;
    }
    if v >= 0x7c00 {
        return sign | EXP_MASK;
    }
    sign | v as u16
}

/// Widens binary16 bits to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & SIGN_MASK) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & MAN_MASK) as u32;

    let bits = if exp == 0 {
        if man == 0 {
            sign // signed zero
        } else {
            // Subnormal: normalize into f32. value = man * 2^-24.
            let lz = man.leading_zeros() - 22; // shifts needed to bring msb to bit 9
            let man_norm = (man << (lz + 1)) & MAN_MASK as u32; // drop the leading one
            let e = 113 - (lz + 1); // f32 biased exponent
            sign | (e << 23) | (man_norm << 13)
        }
    } else if exp == 0x1f {
        if man == 0 {
            sign | 0x7f80_0000
        } else {
            sign | 0x7fc0_0000 | (man << 13)
        }
    } else {
        sign | ((exp + 112) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_roundtrip() {
        assert_eq!(Fp16::ZERO.to_f32(), 0.0);
        assert_eq!(Fp16::ONE.to_f32(), 1.0);
        assert_eq!(Fp16::MAX.to_f32(), 65504.0);
        assert_eq!(Fp16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(Fp16::MIN_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(Fp16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(Fp16::INFINITY.is_infinite());
        assert!(Fp16::NAN.is_nan());
    }

    #[test]
    fn exact_small_integers() {
        for i in -2048i32..=2048 {
            let h = Fp16::from_f32(i as f32);
            assert_eq!(h.to_f32(), i as f32, "integer {i} must be exact");
        }
    }

    #[test]
    fn rounding_ties_to_even() {
        // 2049 is exactly between 2048 and 2050 in binary16 (spacing 2).
        assert_eq!(Fp16::from_f32(2049.0).to_f32(), 2048.0);
        // 2051 is between 2050 and 2052; ties to 2052 (even mantissa).
        assert_eq!(Fp16::from_f32(2051.0).to_f32(), 2052.0);
        assert_eq!(Fp16::from_f32(2050.5).to_f32(), 2050.0);
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(Fp16::from_f32(65520.0).is_infinite()); // above the RNE threshold
        assert_eq!(Fp16::from_f32(65519.0).to_f32(), 65504.0); // below, saturates to MAX by rounding
        assert!(Fp16::from_f32(1e9).is_infinite());
        assert!(Fp16::from_f32(-1e9).is_infinite());
        assert!(Fp16::from_f32(-1e9).is_sign_negative());
    }

    #[test]
    fn underflow_and_subnormals() {
        let tiny = 2.0f32.powi(-24);
        assert_eq!(Fp16::from_f32(tiny).to_f32(), tiny);
        assert!(Fp16::from_f32(tiny).is_subnormal());
        // Half of the smallest subnormal rounds to zero (tie to even).
        assert!(Fp16::from_f32(tiny / 2.0).is_zero());
        // Just above half rounds up to the smallest subnormal.
        assert_eq!(Fp16::from_f32(tiny * 0.75).to_f32(), tiny);
        // 1.5x smallest subnormal ties to 2x (even).
        assert_eq!(Fp16::from_f32(tiny * 1.5).to_f32(), tiny * 2.0);
    }

    #[test]
    fn signed_zero_preserved() {
        let nz = Fp16::from_f32(-0.0);
        assert!(nz.is_zero());
        assert!(nz.is_sign_negative());
        assert_eq!(nz.to_f32().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn nan_propagates() {
        assert!(Fp16::from_f32(f32::NAN).is_nan());
        assert!(Fp16::from_f64(f64::NAN).is_nan());
        assert!(Fp16::NAN.to_f32().is_nan());
    }

    #[test]
    fn f64_conversion_matches_f32_when_safe() {
        // For values exactly representable in f32, f64->f16 must equal f32->f16.
        let vals = [
            0.1f32,
            1.0,
            -3.5,
            1234.56,
            65504.0,
            1e-5,
            -2.0e-7,
            0.333_333_34,
        ];
        for &v in &vals {
            assert_eq!(
                Fp16::from_f64(v as f64).to_bits(),
                Fp16::from_f32(v).to_bits(),
                "mismatch at {v}"
            );
        }
    }

    #[test]
    fn f64_single_rounding_beats_double_rounding() {
        // Construct an f64 that lies just above a binary16 tie midpoint but
        // rounds *down* to the midpoint in f32 first. Direct f64->f16 must
        // round up; the double-rounded path would round to even (down).
        // Midpoint between 1.0 and 1+2^-10 is 1+2^-11.
        let mid = 1.0 + 2f64.powi(-11);
        let just_above = mid + 2f64.powi(-40);
        assert_eq!(Fp16::from_f64(mid).to_f64(), 1.0); // tie -> even
        assert_eq!(Fp16::from_f64(just_above).to_f64(), 1.0 + 2f64.powi(-10));
    }

    #[test]
    fn exhaustive_f16_f32_roundtrip() {
        // Every finite binary16 value must survive f16 -> f32 -> f16 exactly.
        for bits in 0u16..=0xffff {
            let h = Fp16::from_bits(bits);
            if h.is_nan() {
                assert!(Fp16::from_f32(h.to_f32()).is_nan());
                continue;
            }
            let back = Fp16::from_f32(h.to_f32());
            assert_eq!(
                back.to_bits(),
                bits,
                "roundtrip failed for bits {bits:#06x}"
            );
        }
    }

    #[test]
    fn widening_is_monotonic() {
        // Over all positive finite values, to_f32 must be strictly increasing
        // with the bit pattern (IEEE ordering property).
        let mut prev = f32::NEG_INFINITY;
        for bits in 0u16..0x7c00 {
            let v = Fp16::from_bits(bits).to_f32();
            assert!(v > prev, "not monotonic at bits {bits:#06x}");
            prev = v;
        }
    }

    #[test]
    fn abs_neg() {
        let h = Fp16::from_f32(-2.5);
        assert_eq!(h.abs().to_f32(), 2.5);
        assert_eq!(h.neg().to_f32(), 2.5);
        assert_eq!(h.neg().neg().to_f32(), -2.5);
    }

    #[test]
    fn ordering() {
        assert!(Fp16::from_f32(1.0) < Fp16::from_f32(2.0));
        assert!(Fp16::from_f32(-1.0) < Fp16::from_f32(0.5));
        assert!(Fp16::NAN.partial_cmp(&Fp16::ONE).is_none());
    }
}
