//! # mf-precision
//!
//! Floating-point substrate for the Mille-feuille solver (SC'24).
//!
//! The paper stores sparse-matrix tiles in one of four precisions — FP64,
//! FP32, FP16 and FP8 — and decides the *initial* precision of every tile by
//! an "enough good" criterion (paper §II-A): a nonzero may be stored in a
//! narrower type when the round-trip loss against its FP64 value is below
//! `1e-15`. During the solve, tiles are further *lowered* (FP32 → FP16 → FP8
//! → bypass) as the corresponding entries of the search direction `p_j`
//! partially converge (paper §III-D).
//!
//! GPUs provide FP16/FP8 in hardware; on the CPU we implement both from the
//! bit layout up so that storing a value in a narrow tile applies *exactly*
//! the rounding the GPU would apply. This keeps the convergence behaviour of
//! the reproduction honest (Table II and Fig. 12 of the paper are genuine
//! numerical measurements, not models).
//!
//! Contents:
//!
//! * [`Fp16`] — IEEE 754 binary16, round-to-nearest-even conversions.
//! * [`Fp8E4M3`] / [`Fp8E5M2`] — OCP 8-bit minifloats (the paper's "FP8").
//! * [`Precision`] — the four storage precisions with quantization helpers.
//! * [`classify`] — the paper's `1e-15`-loss initial-precision criterion.
//! * [`packed`] — byte-packed value buffers (one encoding per tile precision)
//!   used by the tiled sparse format for honest memory accounting.
//! * [`retier`] — the residual-driven adaptive re-tier controller
//!   (controller v2): deterministic per-solve tier plans, including scaled
//!   FP8 with per-tile scaling factors.

pub mod classify;
pub mod fp16;
pub mod fp8;
pub mod minifloat;
pub mod packed;
pub mod precision;
pub mod retier;

pub use classify::{
    classification_histogram, classify_group, classify_value, roundtrip_loss, ClassifyOptions,
};
pub use fp16::Fp16;
pub use fp8::{pick_scale_exp, quantize_scaled_e4m3, Fp8E4M3, Fp8E5M2};
pub use packed::{PackedValues, PackedValuesBuilder};
pub use precision::Precision;
pub use retier::{
    AdaptiveConfig, PrecisionController, RetierAction, RetierDecision, TierCap, TileInfo, TileTier,
};

/// The loss threshold of the paper's "enough good" criterion (§II-A):
/// a nonzero can be stored in a narrower precision when the relative
/// round-trip loss against FP64 is below this value ("the decimal digits of
/// precision of FP64").
pub const ENOUGH_GOOD_LOSS: f64 = 1e-15;
