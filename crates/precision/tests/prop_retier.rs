//! Property-based tests for the adaptive re-tier controller v2 and its
//! scaled-FP8 substrate.
//!
//! Two families of properties:
//!
//! * **scaled FP8** — for any value and any per-tile scale produced by
//!   [`pick_scale_exp`], the round-trip stays inside the documented
//!   envelope `|q(v) − v| ≤ max(|v|·2⁻⁴, 2^(e−10))`, quantization is
//!   idempotent, odd, and monotone, and the picked exponent is the
//!   minimal sufficient one;
//! * **re-tier plans** — over arbitrary residual trajectories the
//!   controller is deterministic (same trajectory ⇒ same plans), never
//!   promotes a tile above its classification-time tier, widens its cap
//!   monotonically after the first applied plan (which bounds every solve
//!   to at most 4 plans), and only fires on period boundaries.

use mf_precision::{
    pick_scale_exp, quantize_scaled_e4m3, AdaptiveConfig, Fp8E4M3, Precision, PrecisionController,
    RetierDecision, TileInfo,
};
use proptest::prelude::*;

/// A random tile census: `(nnz, precision code, max |value|)` triples.
fn tiles_strategy() -> impl Strategy<Value = Vec<TileInfo>> {
    prop::collection::vec((1usize..400, 0u8..4, 1e-8f64..1e8), 1..32).prop_map(|raw| {
        raw.into_iter()
            .map(|(nnz, p, max_abs)| TileInfo {
                nnz,
                initial: Precision::from_tile_code(p).unwrap(),
                max_abs,
            })
            .collect()
    })
}

/// A random residual trajectory: relres per iteration, spanning converging,
/// stagnating and diverging stretches (the controller must behave under
/// all of them).
fn trajectory_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0u8..8, -14f64..1.0, 1e-2f64..1.0), 1..120).prop_map(|raw| {
        raw.into_iter()
            .map(|(pick, exp, band)| match pick {
                0..=3 => 10f64.powf(exp), // anything from 1e-14 to 10
                4 | 5 => band,            // stagnation band (ratchet territory)
                6 => f64::NAN,            // non-finite observations are skipped
                _ => 0.0,                 // exact zero is skipped
            })
            .collect()
    })
}

fn drive(ctrl: &mut PrecisionController, traj: &[f64], tol: f64) -> Vec<RetierDecision> {
    traj.iter()
        .enumerate()
        .filter_map(|(i, &r)| ctrl.observe(i + 1, r, tol))
        .collect()
}

proptest! {
    /// Scaled-FP8 round-trip error stays inside the documented envelope
    /// for any value covered by the tile's scale (|v| ≤ max_abs, the
    /// invariant [`pick_scale_exp`]'s caller maintains).
    #[test]
    fn scaled_fp8_round_trip_within_envelope(
        v in -1e10f64..1e10,
        headroom in 1.0f64..1e4,
    ) {
        prop_assume!(v != 0.0);
        let max_abs = v.abs() * headroom;
        prop_assume!(max_abs.is_finite());
        let e = pick_scale_exp(max_abs);
        let q = quantize_scaled_e4m3(v, e);
        let bound = (v.abs() * 2f64.powi(-4)).max(2f64.powi(e as i32 - 10));
        prop_assert!(
            (q - v).abs() <= bound * (1.0 + 1e-12),
            "v {v} scale 2^{e} q {q} err {:e} bound {bound:e}",
            (q - v).abs()
        );
    }

    /// Scaled quantization is idempotent and odd for any in-range scale.
    #[test]
    fn scaled_fp8_idempotent_and_odd(v in -1e8f64..1e8, e in -60i16..60) {
        let q = quantize_scaled_e4m3(v, e);
        if q.is_finite() {
            prop_assert_eq!(quantize_scaled_e4m3(q, e), q);
        }
        prop_assert_eq!(quantize_scaled_e4m3(-v, e), -q);
    }

    /// Scaled quantization at a fixed scale is monotone.
    #[test]
    fn scaled_fp8_monotone(a in -1e8f64..1e8, b in -1e8f64..1e8, e in -60i16..60) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantize_scaled_e4m3(lo, e) <= quantize_scaled_e4m3(hi, e));
    }

    /// The picked exponent is sufficient (the tile's max lands in range)
    /// and minimal (one step tighter would overflow) — exact power-of-two
    /// arithmetic, so both comparisons are exact.
    #[test]
    fn picked_scale_is_minimal_sufficient(max_abs in 1e-300f64..1e300) {
        let cap = Fp8E4M3::max_finite();
        let e = pick_scale_exp(max_abs) as i32;
        prop_assert!(max_abs / 2f64.powi(e) <= cap, "exp {e} insufficient");
        prop_assert!(max_abs / 2f64.powi(e - 1) > cap, "exp {e} not minimal");
    }

    /// Over any residual trajectory: plans are deterministic, fire only on
    /// period boundaries in strictly increasing order, never promote a
    /// tile above its classification tier, widen the cap monotonically
    /// after the first applied plan, and number at most 4.
    #[test]
    fn plans_are_deterministic_monotone_and_bounded(
        tiles in tiles_strategy(),
        traj in trajectory_strategy(),
        period in 1usize..12,
        tol_exp in -12i32..-6,
    ) {
        let cfg = AdaptiveConfig { period, ..AdaptiveConfig::default() };
        let tol = 10f64.powi(tol_exp);

        let mut a = PrecisionController::new(cfg, tiles.clone());
        let mut b = PrecisionController::new(cfg, tiles.clone());
        let ds = drive(&mut a, &traj, tol);
        let replay = drive(&mut b, &traj, tol);
        prop_assert_eq!(&ds, &replay);

        prop_assert!(ds.len() <= 4, "unbounded plan count: {}", ds.len());
        for d in &ds {
            prop_assert_eq!(d.iteration % period, 0);
            prop_assert!(!d.actions.is_empty(), "empty plan");
            for act in &d.actions {
                let info = &tiles[act.tile as usize];
                prop_assert!(
                    act.to.storage() <= info.initial,
                    "tile {} promoted above classification {:?}: {:?}",
                    act.tile, info.initial, act
                );
                prop_assert!(act.from != act.to, "no-op action");
            }
        }
        for w in ds.windows(2) {
            prop_assert!(w[0].iteration < w[1].iteration, "non-increasing iterations");
            prop_assert!(
                w[0].cap <= w[1].cap,
                "cap narrowed after the first applied plan: {:?} then {:?}",
                w[0].cap, w[1].cap
            );
        }
        // The controller's final cap is the last plan's cap (or widened
        // without actions, which never narrows it).
        if let Some(last) = ds.last() {
            prop_assert!(a.cap() >= last.cap);
        } else {
            // No plan ⇒ tier vector untouched: every tile still at its
            // classification tier.
            prop_assert!(a
                .tiers()
                .iter()
                .zip(&tiles)
                .all(|(t, info)| t.storage() == info.initial));
        }
    }

    /// The savings guard scales with the period: a demotion that cannot
    /// recoup its refresh pass within one period never fires, so with the
    /// projected savings fraction `f` the first plan requires
    /// `f · period ≥ min_savings_passes`.
    #[test]
    fn savings_guard_respects_period(period in 1usize..64) {
        let cfg = AdaptiveConfig { period, ..AdaptiveConfig::default() };
        // Uniform FP64 census demoting to scaled FP8 saves 7/8 per pass.
        let tiles: Vec<TileInfo> = (0..8)
            .map(|i| TileInfo { nnz: 64, initial: Precision::Fp64, max_abs: 1.0 + i as f64 })
            .collect();
        let mut c = PrecisionController::new(cfg, tiles);
        let fired = c.observe(period, 0.5, 1e-10).is_some();
        let should_fire = (7.0 / 8.0) * period as f64 >= cfg.min_savings_passes;
        prop_assert!(fired == should_fire, "period {}: fired {}", period, fired);
    }
}
