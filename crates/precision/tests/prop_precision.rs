//! Property-based tests for the floating-point substrate.

use mf_precision::fp16::{f32_to_f16_bits, f64_to_f16_bits};
use mf_precision::minifloat::{E4M3, E5M2};
use mf_precision::{
    classify_value, ClassifyOptions, Fp16, Fp8E4M3, PackedValuesBuilder, Precision,
};
use proptest::prelude::*;

proptest! {
    /// Quantization is idempotent: quantizing twice equals quantizing once.
    #[test]
    fn quantize_idempotent(v in prop::num::f64::NORMAL, p in 0u8..4) {
        let p = Precision::from_tile_code(p).unwrap();
        let q1 = p.quantize(v);
        if q1.is_finite() {
            prop_assert_eq!(p.quantize(q1), q1);
        }
    }

    /// Quantization error of binary16 on in-range values obeys the unit
    /// roundoff bound: |v - q| <= 2^-11 * |v| for normal-range results.
    #[test]
    fn fp16_error_bound(v in -60000.0f64..60000.0) {
        prop_assume!(v.abs() >= 2f64.powi(-14)); // stay in the normal range
        let q = Fp16::from_f64(v).to_f64();
        prop_assert!((v - q).abs() <= v.abs() * 2f64.powi(-11) * (1.0 + 1e-12));
    }

    /// E4M3 error bound: half ulp = 2^-4 relative on normal-range values.
    #[test]
    fn e4m3_error_bound(v in -440.0f64..440.0) {
        prop_assume!(v.abs() >= 2f64.powi(-6));
        let q = E4M3.quantize(v);
        prop_assert!((v - q).abs() <= v.abs() * 2f64.powi(-4) * (1.0 + 1e-12));
    }

    /// FP16 conversion from f64 agrees with conversion from f32 whenever the
    /// value is exactly representable in f32.
    #[test]
    fn fp16_f32_f64_paths_agree(v in prop::num::f32::NORMAL) {
        prop_assert_eq!(f32_to_f16_bits(v), f64_to_f16_bits(v as f64));
    }

    /// Quantization is monotone: v <= w implies q(v) <= q(w).
    #[test]
    fn quantize_monotone(a in -1e4f64..1e4, b in -1e4f64..1e4, p in 0u8..4) {
        let p = Precision::from_tile_code(p).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(p.quantize(lo) <= p.quantize(hi));
    }

    /// Sign symmetry: q(-v) == -q(v).
    #[test]
    fn quantize_odd_function(v in -1e6f64..1e6, p in 0u8..4) {
        let p = Precision::from_tile_code(p).unwrap();
        prop_assert_eq!(p.quantize(-v), -p.quantize(v));
    }

    /// E5M2 decode(encode(v)) never increases the magnitude ordering versus
    /// another value (joint monotonicity of the minifloat path).
    #[test]
    fn e5m2_monotone(a in -5e4f64..5e4, b in -5e4f64..5e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(E5M2.quantize(lo) <= E5M2.quantize(hi));
    }

    /// The classification always accepts its own quantization: a value that
    /// classifies to precision P must round-trip through P exactly (that is
    /// the definition, but it checks the plumbing end-to-end).
    #[test]
    fn classified_precision_is_lossless(v in prop::num::f64::NORMAL) {
        let opts = ClassifyOptions::default();
        let p = classify_value(v, &opts);
        if p != Precision::Fp64 {
            let rel = (v - p.quantize(v)).abs() / v.abs().max(f64::MIN_POSITIVE);
            prop_assert!(rel < 1e-15);
        }
    }

    /// Packed storage: pushing a run in precision P and decoding returns
    /// exactly quantize_P of each input.
    #[test]
    fn packed_roundtrip(vals in prop::collection::vec(-1e5f64..1e5, 1..64), p in 0u8..4) {
        let p = Precision::from_tile_code(p).unwrap();
        let mut b = PackedValuesBuilder::new();
        let off = b.push_run(&vals, p);
        let packed = b.finish();
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(packed.get(off, p, i), p.quantize(v));
        }
        prop_assert_eq!(packed.len_bytes(), vals.len() * p.bytes());
    }

    /// Fp16 widening then narrowing is the identity on all finite halves.
    #[test]
    fn fp16_roundtrip_random_bits(bits in 0u16..0x7c00) {
        let h = Fp16::from_bits(bits);
        prop_assert_eq!(Fp16::from_f64(h.to_f64()).to_bits(), bits);
    }

    /// Fp8 E4M3 roundtrip over all finite codes (shrunken via proptest).
    #[test]
    fn fp8_roundtrip_random_bits(bits in 0u8..0x7e) {
        let v = Fp8E4M3::from_bits(bits);
        prop_assert_eq!(Fp8E4M3::from_f64(v.to_f64()).to_bits(), bits);
    }
}
