//! Property-based tests for the computational kernels.

use mf_kernels::{
    blas1, ilu0, level_schedule, spmv_csr, spmv_csr_par, spmv_mixed, spmv_mixed_par, spmv_tiled,
    spmv_tiled_par, sptrsv_lower, sptrsv_lower_recursive, sptrsv_upper, sptrsv_upper_recursive,
    SharedTiles, VisFlag,
};
use mf_precision::ClassifyOptions;
use mf_sparse::{Coo, Csr, TiledMatrix};
use proptest::prelude::*;

fn coo_strategy(max_n: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0..n, -8i32..=8), 0..max_nnz).prop_map(move |entries| {
            let mut a = Coo::new(n, n);
            for i in 0..n {
                a.push(i, i, 20.0); // dominant diagonal
            }
            for (r, c, v) in entries {
                if r != c && v != 0 {
                    a.push(r, c, v as f64 / 2.0);
                }
            }
            a.to_csr()
        })
    })
}

/// Like [`coo_strategy`] but with values spread over many magnitudes, so
/// precision lowering is genuinely lossy and per-tile classification picks
/// different precisions — the interesting regime for bitwise-identity tests.
fn varied_coo_strategy(max_n: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0..n, 1i32..=2000), 0..max_nnz).prop_map(move |entries| {
            let mut a = Coo::new(n, n);
            for i in 0..n {
                a.push(i, i, 20.0 + (i % 7) as f64 * 0.013);
            }
            for (r, c, v) in entries {
                if r != c {
                    let mag = 10f64.powi((v % 11) - 5);
                    a.push(r, c, v as f64 / 777.0 * mag);
                }
            }
            a.to_csr()
        })
    })
}

/// Deterministic value vector for the fused-kernel equivalence tests: mostly
/// finite values across magnitudes, with NaN and ±Inf mixed in (1-in-16 slots
/// each) so the fused pass is proven to propagate non-finite data exactly
/// like the unfused sequence.
fn special_vec(n: usize, seed: u64, salt: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64 * 131 + salt);
            match h % 16 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                k => ((h >> 8) as f64 / (1u64 << 40) as f64 - 8.0) * 10f64.powi(k as i32 - 8),
            }
        })
        .collect()
}

/// Bitwise comparison that treats every NaN payload as equal (the unfused
/// reference can produce a differently-signed NaN from `-alpha * inf`-style
/// intermediates on some orderings; the contract is "NaN where NaN").
fn bits_match(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

const FLAG_CHOICES: [VisFlag; 5] = [
    VisFlag::Bypass,
    VisFlag::Fp16,
    VisFlag::Fp8,
    VisFlag::Fp32,
    VisFlag::Keep,
];

/// Deterministic pseudo-random flag pattern for `tile_cols` column segments.
fn flag_pattern(tile_cols: usize, seed: u64, round: u64) -> Vec<VisFlag> {
    (0..tile_cols)
        .map(|c| {
            let h = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(c as u64 * 97 + round * 131);
            FLAG_CHOICES[(h % FLAG_CHOICES.len() as u64) as usize]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mixed SpMV with all-Keep flags equals CSR SpMV (values here are
    /// exactly representable at every classified precision).
    #[test]
    fn mixed_spmv_matches_csr(a in coo_strategy(60, 250)) {
        let t = TiledMatrix::from_csr(&a);
        let mut shared = SharedTiles::load(&t);
        let flags = vec![VisFlag::Keep; t.tile_cols];
        let x: Vec<f64> = (0..a.ncols).map(|i| ((i * 3 + 1) % 7) as f64 - 3.0).collect();
        let mut y1 = vec![0.0; a.nrows];
        let mut y2 = vec![0.0; a.nrows];
        spmv_csr(&a, &x, &mut y1);
        let stats = spmv_mixed(&t, &mut shared, &flags, &x, &mut y2);
        for i in 0..a.nrows {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-9 * y1[i].abs().max(1.0));
        }
        prop_assert_eq!(stats.nnz_total(), a.nnz());
    }

    /// Bypassing a column set equals zeroing those x entries.
    #[test]
    fn bypass_equals_zeroed_input(a in coo_strategy(50, 200), bypass_col in 0usize..4) {
        let t = TiledMatrix::from_csr(&a);
        if t.tile_cols == 0 { return Ok(()); }
        let bc = bypass_col % t.tile_cols;
        let mut shared = SharedTiles::load(&t);
        let mut flags = vec![VisFlag::Keep; t.tile_cols];
        flags[bc] = VisFlag::Bypass;
        let x: Vec<f64> = (0..a.ncols).map(|i| (i % 5) as f64 + 1.0).collect();
        let mut y1 = vec![0.0; a.nrows];
        spmv_mixed(&t, &mut shared, &flags, &x, &mut y1);
        // Oracle: zero the bypassed columns.
        let mut x2 = x.clone();
        for (i, e) in x2.iter_mut().enumerate() {
            if i / t.tile_size == bc {
                *e = 0.0;
            }
        }
        let mut y2 = vec![0.0; a.nrows];
        spmv_csr(&a, &x2, &mut y2);
        for i in 0..a.nrows {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-9 * y2[i].abs().max(1.0));
        }
    }

    /// Triangular solves invert the triangle: L·x == b after solving.
    #[test]
    fn lower_solve_inverts(a in coo_strategy(50, 200)) {
        let l = a.lower_triangle();
        let b: Vec<f64> = (0..l.nrows).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let x = sptrsv_lower(&l, &b, false);
        let mut back = vec![0.0; l.nrows];
        l.matvec(&x, &mut back);
        for i in 0..l.nrows {
            prop_assert!((back[i] - b[i]).abs() < 1e-8 * b[i].abs().max(1.0));
        }
    }

    /// Recursive and plain solves agree at arbitrary leaf sizes, both ways.
    #[test]
    fn recursive_solves_agree(a in coo_strategy(60, 250), leaf in 1usize..80) {
        let l = a.lower_triangle();
        let u = a.upper_triangle();
        let b: Vec<f64> = (0..l.nrows).map(|i| (i as f64 * 0.37).sin()).collect();
        let p1 = sptrsv_lower(&l, &b, false);
        let (r1, _) = sptrsv_lower_recursive(&l, &b, false, leaf);
        let p2 = sptrsv_upper(&u, &b, false);
        let (r2, _) = sptrsv_upper_recursive(&u, &b, false, leaf);
        for i in 0..l.nrows {
            prop_assert!((p1[i] - r1[i]).abs() < 1e-9 * p1[i].abs().max(1.0));
            prop_assert!((p2[i] - r2[i]).abs() < 1e-9 * p2[i].abs().max(1.0));
        }
    }

    /// ILU(0) preconditioning: applying M⁻¹ never produces NaN on dominant
    /// systems, and M⁻¹·(A·x) ≈ x for tridiagonal-like patterns where the
    /// factorization is exact.
    #[test]
    fn ilu_apply_is_finite(a in coo_strategy(50, 200)) {
        let f = ilu0(&a).unwrap();
        let b: Vec<f64> = (0..a.nrows).map(|i| (i as f64).cos()).collect();
        let z = f.apply(&b);
        prop_assert!(z.iter().all(|v| v.is_finite()));
        let (z2, _) = f.apply_recursive(&b, 16);
        for i in 0..a.nrows {
            prop_assert!((z[i] - z2[i]).abs() < 1e-9 * z[i].abs().max(1.0));
        }
    }

    /// Level schedules are valid topological orders: every dependency of a
    /// row sits in a strictly earlier level.
    #[test]
    fn level_schedule_is_topological(a in coo_strategy(60, 250)) {
        let l = a.lower_triangle();
        let s = level_schedule(&l, true);
        for r in 0..l.nrows {
            for (c, _) in l.row(r) {
                if c < r {
                    prop_assert!(s.level_of[c] < s.level_of[r]);
                }
            }
        }
        prop_assert_eq!(s.level_sizes.iter().sum::<usize>(), l.nrows);
    }

    /// The stripe-parallel mixed SpMV is bitwise-identical to the serial
    /// engine — outputs, stats, arena bits, and precision state — across
    /// random matrices, tile sizes, thread counts, and flag patterns,
    /// including mid-run precision lowering and bypass (two rounds with
    /// different demands against the *same* shared-tile state).
    #[test]
    fn par_mixed_spmv_bitwise_equals_serial(
        a in varied_coo_strategy(80, 400),
        tile_pick in 0usize..5,
        threads in 2usize..9,
        flag_seed in 0u64..1_000_000,
    ) {
        let tile = [2usize, 4, 8, 16, 32][tile_pick];
        let t = TiledMatrix::from_csr_with(&a, tile, &ClassifyOptions::default());
        let x: Vec<f64> = (0..a.ncols)
            .map(|i| ((i * 13 + 5) % 29) as f64 * 0.37 - 4.0)
            .collect();
        let mut sh_s = SharedTiles::load(&t);
        let mut sh_p = SharedTiles::load(&t);
        for round in 0..2u64 {
            let flags = flag_pattern(t.tile_cols, flag_seed, round);
            let mut y_s = vec![0.0; a.nrows];
            let mut y_p = vec![0.0; a.nrows];
            let st_s = spmv_mixed(&t, &mut sh_s, &flags, &x, &mut y_s);
            let st_p = spmv_mixed_par(&t, &mut sh_p, &flags, &x, &mut y_p, threads);
            prop_assert_eq!(st_s, st_p);
            for i in 0..a.nrows {
                prop_assert_eq!(y_s[i].to_bits(), y_p[i].to_bits());
            }
        }
        // Shared state after both rounds: identical lowered values (bitwise)
        // and identical per-tile precision records.
        prop_assert_eq!(sh_s.arena.len(), sh_p.arena.len());
        for k in 0..sh_s.arena.len() {
            prop_assert_eq!(sh_s.arena[k].to_bits(), sh_p.arena[k].to_bits());
        }
        prop_assert_eq!(&sh_s.current_prec, &sh_p.current_prec);
    }

    /// BLAS-1 identities: dot linearity and axpy/xpay consistency.
    #[test]
    fn blas1_identities(v in prop::collection::vec(-100.0f64..100.0, 1..200), alpha in -10.0f64..10.0) {
        let n = v.len();
        let w: Vec<f64> = v.iter().map(|x| x * 0.5 + 1.0).collect();
        // dot(v, w) == dot(w, v)
        prop_assert!((blas1::dot(&v, &w) - blas1::dot(&w, &v)).abs() < 1e-9);
        // axpy then subtract recovers the original.
        let mut y = w.clone();
        blas1::axpy(alpha, &v, &mut y);
        blas1::axpy(-alpha, &v, &mut y);
        for i in 0..n {
            prop_assert!((y[i] - w[i]).abs() < 1e-9 * w[i].abs().max(1.0));
        }
        // waxpy(x, a, y) == x + a*y elementwise.
        let mut z = vec![0.0; n];
        blas1::waxpy(&v, alpha, &w, &mut z);
        for i in 0..n {
            prop_assert!((z[i] - (v[i] + alpha * w[i])).abs() < 1e-12 * z[i].abs().max(1.0));
        }
    }

    /// The fused pipelined-CG update applied per random segment is bitwise
    /// identical to the unfused whole-vector xpay/axpy sequence — over random
    /// values (including NaN/Inf), scalars, and segment splits. This is the
    /// exact claim the threaded engines rely on: fusing five kernels into one
    /// pass, cut at arbitrary owner-segment boundaries, changes no bits.
    #[test]
    fn fused_cg_update_bitwise_equals_unfused(
        n in 1usize..300,
        seed in 0u64..u64::MAX,
        alpha_raw in -100.0f64..100.0,
        alpha_kind in 0u8..10,
        beta in -100.0f64..100.0,
    ) {
        // 1-in-5 cases drive a non-finite alpha through the fused pass.
        let alpha = match alpha_kind {
            8 => f64::INFINITY,
            9 => f64::NAN,
            _ => alpha_raw,
        };
        let mk = |salt: u64| special_vec(n, seed, salt);
        let q = mk(1);
        let (p0, s0, z0, x0, r0, w0) = (mk(2), mk(3), mk(7), mk(4), mk(5), mk(6));

        // Unfused reference over the whole vector.
        let (mut p1, mut s1, mut z1, mut x1, mut r1, mut w1) = (
            p0.clone(), s0.clone(), z0.clone(), x0.clone(), r0.clone(), w0.clone(),
        );
        blas1::xpay(&r1.clone(), beta, &mut p1);
        blas1::xpay(&w1.clone(), beta, &mut s1);
        blas1::xpay(&q, beta, &mut z1);
        blas1::axpy(alpha, &p1, &mut x1);
        blas1::axpy(-alpha, &s1, &mut r1);
        blas1::axpy(-alpha, &z1, &mut w1);

        // Fused pass over random contiguous segments (cut points from the
        // same seed), mimicking arbitrary owner-warp boundaries.
        let mut bounds: Vec<usize> = (0..(seed % 5) as usize)
            .map(|k| (seed.wrapping_mul(k as u64 * 2 + 3) % (n as u64 + 1)) as usize)
            .collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        bounds.dedup();
        let (mut p2, mut s2, mut z2, mut x2, mut r2, mut w2) = (
            p0.clone(), s0.clone(), z0.clone(), x0.clone(), r0.clone(), w0.clone(),
        );
        for win in bounds.windows(2) {
            let (lo, hi) = (win[0], win[1]);
            blas1::cg_pipelined_update(
                alpha, beta, &q[lo..hi],
                &mut p2[lo..hi], &mut s2[lo..hi], &mut z2[lo..hi],
                &mut x2[lo..hi], &mut r2[lo..hi], &mut w2[lo..hi],
            );
        }
        for i in 0..n {
            prop_assert!(bits_match(p1[i], p2[i]), "p[{i}]: {:e} vs {:e}", p1[i], p2[i]);
            prop_assert!(bits_match(s1[i], s2[i]), "s[{i}]: {:e} vs {:e}", s1[i], s2[i]);
            prop_assert!(bits_match(z1[i], z2[i]), "z[{i}]: {:e} vs {:e}", z1[i], z2[i]);
            prop_assert!(bits_match(x1[i], x2[i]), "x[{i}]: {:e} vs {:e}", x1[i], x2[i]);
            prop_assert!(bits_match(r1[i], r2[i]), "r[{i}]: {:e} vs {:e}", r1[i], r2[i]);
            prop_assert!(bits_match(w1[i], w2[i]), "w[{i}]: {:e} vs {:e}", w1[i], w2[i]);
        }
    }

    /// Same claim for the eight-way fused pipelined-PCG update.
    #[test]
    fn fused_pcg_update_bitwise_equals_unfused(
        n in 1usize..250,
        seed in 0u64..u64::MAX,
        alpha in -50.0f64..50.0,
        beta_raw in -50.0f64..50.0,
        beta_kind in 0u8..9,
        cut in 0usize..250,
    ) {
        let beta = if beta_kind == 8 { f64::NEG_INFINITY } else { beta_raw };
        let m_vals = special_vec(n, seed, 21);
        let nn_vals = special_vec(n, seed, 22);
        let m = &m_vals[..];
        let nn = &nn_vals[..];
        let mk = |k: f64| -> Vec<f64> { (0..n).map(|i| ((i as f64) * k).sin() * 1e2).collect() };
        let (p0, s0, q0, zz0) = (mk(0.1), mk(0.2), mk(0.3), mk(0.4));
        let (x0, r0, u0, w0) = (mk(0.5), mk(0.6), mk(0.8), mk(1.1));

        let (mut p1, mut s1, mut q1, mut zz1) = (p0.clone(), s0.clone(), q0.clone(), zz0.clone());
        let (mut x1, mut r1, mut u1, mut w1) = (x0.clone(), r0.clone(), u0.clone(), w0.clone());
        blas1::xpay(&u1.clone(), beta, &mut p1);
        blas1::xpay(&w1.clone(), beta, &mut s1);
        blas1::xpay(m, beta, &mut q1);
        blas1::xpay(nn, beta, &mut zz1);
        blas1::axpy(alpha, &p1, &mut x1);
        blas1::axpy(-alpha, &s1, &mut r1);
        blas1::axpy(-alpha, &q1, &mut u1);
        blas1::axpy(-alpha, &zz1, &mut w1);

        let (mut p2, mut s2, mut q2, mut zz2) = (p0.clone(), s0.clone(), q0.clone(), zz0.clone());
        let (mut x2, mut r2, mut u2, mut w2) = (x0.clone(), r0.clone(), u0.clone(), w0.clone());
        let c = cut.min(n);
        for (lo, hi) in [(0, c), (c, n)] {
            blas1::pcg_pipelined_update(
                alpha, beta, &m[lo..hi], &nn[lo..hi],
                &mut p2[lo..hi], &mut s2[lo..hi], &mut q2[lo..hi], &mut zz2[lo..hi],
                &mut x2[lo..hi], &mut r2[lo..hi], &mut u2[lo..hi], &mut w2[lo..hi],
            );
        }
        for i in 0..n {
            prop_assert!(bits_match(p1[i], p2[i]));
            prop_assert!(bits_match(s1[i], s2[i]));
            prop_assert!(bits_match(q1[i], q2[i]));
            prop_assert!(bits_match(zz1[i], zz2[i]));
            prop_assert!(bits_match(x1[i], x2[i]));
            prop_assert!(bits_match(r1[i], r2[i]));
            prop_assert!(bits_match(u1[i], u2[i]));
            prop_assert!(bits_match(w1[i], w2[i]));
        }
    }

    /// The fused dot pair returns exactly the bits of two separate dots.
    #[test]
    fn dot2_bitwise_equals_two_dots(
        x1 in prop::collection::vec(-1.0e8f64..1.0e8, 1..400),
        seed in 0u64..u64::MAX,
    ) {
        let n = x1.len();
        let x2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7 + seed as f64 * 1e-12).cos()).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 13 + 7) % 101) as f64 * 1e-3 - 0.05).collect();
        let (a, b) = blas1::dot2(&x1, &x2, &y);
        prop_assert_eq!(a.to_bits(), blas1::dot(&x1, &y).to_bits());
        prop_assert_eq!(b.to_bits(), blas1::dot(&x2, &y).to_bits());
    }

    /// Both consumers of the shared `DETERMINISTIC_CHUNK` constant — the
    /// blas1 fixed-chunk reduction tree and the SpMV parallel/serial gate —
    /// stay bitwise-identical to their serial references across the chunk
    /// boundary (lengths straddling 4 096) and any rayon thread count.
    #[test]
    fn deterministic_chunk_paths_bitwise_equal_serial(
        delta in 0usize..64,
        seed in 0u64..1_000_000,
        extra in prop::collection::vec((0usize..4_160, 0usize..4_160, 1i32..=100), 0..200),
    ) {
        let n = blas1::DETERMINISTIC_CHUNK - 32 + delta; // straddles the gate
        // blas1 reduction: par vs serial fixed-chunk reference, magnitudes
        // spread so reassociation would change bits.
        let x: Vec<f64> = (0..n)
            .map(|i| ((i as u64 * 31 + seed) % 97) as f64 * 10f64.powi((i % 13) as i32 - 6))
            .collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        prop_assert_eq!(blas1::dot_par(&x, &y).to_bits(), blas1::dot_det(&x, &y).to_bits());
        prop_assert_eq!(blas1::norm2_par(&x).to_bits(), blas1::dot_det(&x, &x).sqrt().to_bits());

        // SpMV gate: par vs serial, bitwise, on a matrix the same size.
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 20.0 + (i % 5) as f64 * 0.017);
        }
        for (r, c, v) in extra {
            if r < n && c < n && r != c {
                coo.push(r, c, v as f64 * 10f64.powi((v % 9) - 4));
            }
        }
        let a = coo.to_csr();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        spmv_csr(&a, &x, &mut y1);
        spmv_csr_par(&a, &x, &mut y2);
        for i in 0..n {
            prop_assert_eq!(y1[i].to_bits(), y2[i].to_bits());
        }
        let t = TiledMatrix::from_csr(&a);
        let mut y3 = vec![0.0; n];
        let mut y4 = vec![0.0; n];
        spmv_tiled(&t, &x, &mut y3);
        spmv_tiled_par(&t, &x, &mut y4);
        for i in 0..n {
            prop_assert_eq!(y3[i].to_bits(), y4[i].to_bits());
        }
    }
}
