//! Property-based tests for the computational kernels.

use mf_kernels::{
    blas1, ilu0, level_schedule, spmv_csr, spmv_mixed, spmv_mixed_par, sptrsv_lower,
    sptrsv_lower_recursive, sptrsv_upper, sptrsv_upper_recursive, SharedTiles, VisFlag,
};
use mf_precision::ClassifyOptions;
use mf_sparse::{Coo, Csr, TiledMatrix};
use proptest::prelude::*;

fn coo_strategy(max_n: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0..n, -8i32..=8), 0..max_nnz).prop_map(move |entries| {
            let mut a = Coo::new(n, n);
            for i in 0..n {
                a.push(i, i, 20.0); // dominant diagonal
            }
            for (r, c, v) in entries {
                if r != c && v != 0 {
                    a.push(r, c, v as f64 / 2.0);
                }
            }
            a.to_csr()
        })
    })
}

/// Like [`coo_strategy`] but with values spread over many magnitudes, so
/// precision lowering is genuinely lossy and per-tile classification picks
/// different precisions — the interesting regime for bitwise-identity tests.
fn varied_coo_strategy(max_n: usize, max_nnz: usize) -> impl Strategy<Value = Csr> {
    (2..max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0..n, 1i32..=2000), 0..max_nnz).prop_map(move |entries| {
            let mut a = Coo::new(n, n);
            for i in 0..n {
                a.push(i, i, 20.0 + (i % 7) as f64 * 0.013);
            }
            for (r, c, v) in entries {
                if r != c {
                    let mag = 10f64.powi((v % 11) - 5);
                    a.push(r, c, v as f64 / 777.0 * mag);
                }
            }
            a.to_csr()
        })
    })
}

const FLAG_CHOICES: [VisFlag; 5] = [
    VisFlag::Bypass,
    VisFlag::Fp16,
    VisFlag::Fp8,
    VisFlag::Fp32,
    VisFlag::Keep,
];

/// Deterministic pseudo-random flag pattern for `tile_cols` column segments.
fn flag_pattern(tile_cols: usize, seed: u64, round: u64) -> Vec<VisFlag> {
    (0..tile_cols)
        .map(|c| {
            let h = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(c as u64 * 97 + round * 131);
            FLAG_CHOICES[(h % FLAG_CHOICES.len() as u64) as usize]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mixed SpMV with all-Keep flags equals CSR SpMV (values here are
    /// exactly representable at every classified precision).
    #[test]
    fn mixed_spmv_matches_csr(a in coo_strategy(60, 250)) {
        let t = TiledMatrix::from_csr(&a);
        let mut shared = SharedTiles::load(&t);
        let flags = vec![VisFlag::Keep; t.tile_cols];
        let x: Vec<f64> = (0..a.ncols).map(|i| ((i * 3 + 1) % 7) as f64 - 3.0).collect();
        let mut y1 = vec![0.0; a.nrows];
        let mut y2 = vec![0.0; a.nrows];
        spmv_csr(&a, &x, &mut y1);
        let stats = spmv_mixed(&t, &mut shared, &flags, &x, &mut y2);
        for i in 0..a.nrows {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-9 * y1[i].abs().max(1.0));
        }
        prop_assert_eq!(stats.nnz_total(), a.nnz());
    }

    /// Bypassing a column set equals zeroing those x entries.
    #[test]
    fn bypass_equals_zeroed_input(a in coo_strategy(50, 200), bypass_col in 0usize..4) {
        let t = TiledMatrix::from_csr(&a);
        if t.tile_cols == 0 { return Ok(()); }
        let bc = bypass_col % t.tile_cols;
        let mut shared = SharedTiles::load(&t);
        let mut flags = vec![VisFlag::Keep; t.tile_cols];
        flags[bc] = VisFlag::Bypass;
        let x: Vec<f64> = (0..a.ncols).map(|i| (i % 5) as f64 + 1.0).collect();
        let mut y1 = vec![0.0; a.nrows];
        spmv_mixed(&t, &mut shared, &flags, &x, &mut y1);
        // Oracle: zero the bypassed columns.
        let mut x2 = x.clone();
        for (i, e) in x2.iter_mut().enumerate() {
            if i / t.tile_size == bc {
                *e = 0.0;
            }
        }
        let mut y2 = vec![0.0; a.nrows];
        spmv_csr(&a, &x2, &mut y2);
        for i in 0..a.nrows {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-9 * y2[i].abs().max(1.0));
        }
    }

    /// Triangular solves invert the triangle: L·x == b after solving.
    #[test]
    fn lower_solve_inverts(a in coo_strategy(50, 200)) {
        let l = a.lower_triangle();
        let b: Vec<f64> = (0..l.nrows).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let x = sptrsv_lower(&l, &b, false);
        let mut back = vec![0.0; l.nrows];
        l.matvec(&x, &mut back);
        for i in 0..l.nrows {
            prop_assert!((back[i] - b[i]).abs() < 1e-8 * b[i].abs().max(1.0));
        }
    }

    /// Recursive and plain solves agree at arbitrary leaf sizes, both ways.
    #[test]
    fn recursive_solves_agree(a in coo_strategy(60, 250), leaf in 1usize..80) {
        let l = a.lower_triangle();
        let u = a.upper_triangle();
        let b: Vec<f64> = (0..l.nrows).map(|i| (i as f64 * 0.37).sin()).collect();
        let p1 = sptrsv_lower(&l, &b, false);
        let (r1, _) = sptrsv_lower_recursive(&l, &b, false, leaf);
        let p2 = sptrsv_upper(&u, &b, false);
        let (r2, _) = sptrsv_upper_recursive(&u, &b, false, leaf);
        for i in 0..l.nrows {
            prop_assert!((p1[i] - r1[i]).abs() < 1e-9 * p1[i].abs().max(1.0));
            prop_assert!((p2[i] - r2[i]).abs() < 1e-9 * p2[i].abs().max(1.0));
        }
    }

    /// ILU(0) preconditioning: applying M⁻¹ never produces NaN on dominant
    /// systems, and M⁻¹·(A·x) ≈ x for tridiagonal-like patterns where the
    /// factorization is exact.
    #[test]
    fn ilu_apply_is_finite(a in coo_strategy(50, 200)) {
        let f = ilu0(&a).unwrap();
        let b: Vec<f64> = (0..a.nrows).map(|i| (i as f64).cos()).collect();
        let z = f.apply(&b);
        prop_assert!(z.iter().all(|v| v.is_finite()));
        let (z2, _) = f.apply_recursive(&b, 16);
        for i in 0..a.nrows {
            prop_assert!((z[i] - z2[i]).abs() < 1e-9 * z[i].abs().max(1.0));
        }
    }

    /// Level schedules are valid topological orders: every dependency of a
    /// row sits in a strictly earlier level.
    #[test]
    fn level_schedule_is_topological(a in coo_strategy(60, 250)) {
        let l = a.lower_triangle();
        let s = level_schedule(&l, true);
        for r in 0..l.nrows {
            for (c, _) in l.row(r) {
                if c < r {
                    prop_assert!(s.level_of[c] < s.level_of[r]);
                }
            }
        }
        prop_assert_eq!(s.level_sizes.iter().sum::<usize>(), l.nrows);
    }

    /// The stripe-parallel mixed SpMV is bitwise-identical to the serial
    /// engine — outputs, stats, arena bits, and precision state — across
    /// random matrices, tile sizes, thread counts, and flag patterns,
    /// including mid-run precision lowering and bypass (two rounds with
    /// different demands against the *same* shared-tile state).
    #[test]
    fn par_mixed_spmv_bitwise_equals_serial(
        a in varied_coo_strategy(80, 400),
        tile_pick in 0usize..5,
        threads in 2usize..9,
        flag_seed in 0u64..1_000_000,
    ) {
        let tile = [2usize, 4, 8, 16, 32][tile_pick];
        let t = TiledMatrix::from_csr_with(&a, tile, &ClassifyOptions::default());
        let x: Vec<f64> = (0..a.ncols)
            .map(|i| ((i * 13 + 5) % 29) as f64 * 0.37 - 4.0)
            .collect();
        let mut sh_s = SharedTiles::load(&t);
        let mut sh_p = SharedTiles::load(&t);
        for round in 0..2u64 {
            let flags = flag_pattern(t.tile_cols, flag_seed, round);
            let mut y_s = vec![0.0; a.nrows];
            let mut y_p = vec![0.0; a.nrows];
            let st_s = spmv_mixed(&t, &mut sh_s, &flags, &x, &mut y_s);
            let st_p = spmv_mixed_par(&t, &mut sh_p, &flags, &x, &mut y_p, threads);
            prop_assert_eq!(st_s, st_p);
            for i in 0..a.nrows {
                prop_assert_eq!(y_s[i].to_bits(), y_p[i].to_bits());
            }
        }
        // Shared state after both rounds: identical lowered values (bitwise)
        // and identical per-tile precision records.
        prop_assert_eq!(sh_s.arena.len(), sh_p.arena.len());
        for k in 0..sh_s.arena.len() {
            prop_assert_eq!(sh_s.arena[k].to_bits(), sh_p.arena[k].to_bits());
        }
        prop_assert_eq!(&sh_s.current_prec, &sh_p.current_prec);
    }

    /// BLAS-1 identities: dot linearity and axpy/xpay consistency.
    #[test]
    fn blas1_identities(v in prop::collection::vec(-100.0f64..100.0, 1..200), alpha in -10.0f64..10.0) {
        let n = v.len();
        let w: Vec<f64> = v.iter().map(|x| x * 0.5 + 1.0).collect();
        // dot(v, w) == dot(w, v)
        prop_assert!((blas1::dot(&v, &w) - blas1::dot(&w, &v)).abs() < 1e-9);
        // axpy then subtract recovers the original.
        let mut y = w.clone();
        blas1::axpy(alpha, &v, &mut y);
        blas1::axpy(-alpha, &v, &mut y);
        for i in 0..n {
            prop_assert!((y[i] - w[i]).abs() < 1e-9 * w[i].abs().max(1.0));
        }
        // waxpy(x, a, y) == x + a*y elementwise.
        let mut z = vec![0.0; n];
        blas1::waxpy(&v, alpha, &w, &mut z);
        for i in 0..n {
            prop_assert!((z[i] - (v[i] + alpha * w[i])).abs() < 1e-12 * z[i].abs().max(1.0));
        }
    }
}
