//! Convergent-elements retrieval (paper §III-D, Algorithm 4).
//!
//! Each iteration, the vector `p_j` is scanned segment by segment (segment
//! length = tile size, aligned to the tile columns). A segment whose
//! elements have *all* dropped below a threshold demands lower precision
//! from every tile in the corresponding tile column — or bypasses those
//! tiles entirely:
//!
//! | all `|p_i|` in segment below | demand |
//! |---|---|
//! | `ε·10⁻³` | bypass the tiles |
//! | `ε·10⁻²` | FP8 |
//! | `ε·10⁻¹` | FP16 |
//! | `ε`      | FP32 |
//! | otherwise | keep the tile's initial precision |

use mf_precision::Precision;

/// Per-column-segment precision demand (the paper's `vis_flag`, which
/// encodes 0–4 = FP64/keep, bypass, FP32, FP16, FP8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VisFlag {
    /// No reduction demanded — use the tile's initial precision.
    Keep,
    /// Skip the tiles of this column entirely.
    Bypass,
    /// Compute the column's tiles in at most FP32.
    Fp32,
    /// Compute the column's tiles in at most FP16.
    Fp16,
    /// Compute the column's tiles in at most FP8.
    Fp8,
}

impl VisFlag {
    /// The paper's integer encoding (0–4).
    pub fn code(self) -> u8 {
        match self {
            VisFlag::Keep => 0,
            VisFlag::Bypass => 1,
            VisFlag::Fp32 => 2,
            VisFlag::Fp16 => 3,
            VisFlag::Fp8 => 4,
        }
    }

    /// The precision ceiling this flag demands (`None` for `Keep`/`Bypass`).
    pub fn demanded(self) -> Option<Precision> {
        match self {
            VisFlag::Keep | VisFlag::Bypass => None,
            VisFlag::Fp32 => Some(Precision::Fp32),
            VisFlag::Fp16 => Some(Precision::Fp16),
            VisFlag::Fp8 => Some(Precision::Fp8),
        }
    }
}

/// Algorithm 4: scans `p` in segments of `segment_len` and returns one
/// [`VisFlag`] per segment. `eps` is the convergence threshold ε; the four
/// interval bounds are `ε·10⁻³`, `ε·10⁻²`, `ε·10⁻¹`, `ε`.
///
/// Writes into `flags` (resized to the segment count) to avoid per-iteration
/// allocation, mirroring the in-kernel `vis_flag` array.
///
/// ```
/// use mf_kernels::{retrieve_vis_flags, VisFlag};
///
/// let eps = 1e-10;
/// let p = [1.0, 1.0, 1e-21, 1e-22]; // second segment fully below eps*1e-3
/// let mut flags = Vec::new();
/// retrieve_vis_flags(&p, 2, eps, &mut flags);
/// assert_eq!(flags, vec![VisFlag::Keep, VisFlag::Bypass]);
/// ```
pub fn retrieve_vis_flags(p: &[f64], segment_len: usize, eps: f64, flags: &mut Vec<VisFlag>) {
    assert!(segment_len > 0);
    assert!(eps > 0.0);
    let nseg = p.len().div_ceil(segment_len);
    flags.clear();
    flags.reserve(nseg);
    let thresholds = [eps * 1e-3, eps * 1e-2, eps * 1e-1, eps];

    for s in 0..nseg {
        let lo = s * segment_len;
        let hi = ((s + 1) * segment_len).min(p.len());
        // flag[u] counts elements below thresholds[u] (paper lines 4-11).
        let mut flag = [0usize; 4];
        for &v in &p[lo..hi] {
            let a = v.abs();
            for (u, &t) in thresholds.iter().enumerate() {
                if a < t {
                    flag[u] += 1;
                }
            }
        }
        // First threshold interval that covers the whole segment wins
        // (paper lines 12-17; `tilesize` there is the segment length).
        let len = hi - lo;
        let mut vf = VisFlag::Keep;
        for (u, &c) in flag.iter().enumerate() {
            if c == len {
                vf = match u {
                    0 => VisFlag::Bypass,
                    1 => VisFlag::Fp8,
                    2 => VisFlag::Fp16,
                    _ => VisFlag::Fp32,
                };
                break;
            }
        }
        flags.push(vf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    fn flags_of(p: &[f64], seg: usize) -> Vec<VisFlag> {
        let mut f = Vec::new();
        retrieve_vis_flags(p, seg, EPS, &mut f);
        f
    }

    #[test]
    fn large_elements_keep() {
        assert_eq!(flags_of(&[1.0, 2.0], 2), vec![VisFlag::Keep]);
        assert_eq!(flags_of(&[EPS * 2.0, 1e-3], 2), vec![VisFlag::Keep]);
    }

    #[test]
    fn tiny_elements_bypass() {
        let v = EPS * 1e-4;
        assert_eq!(flags_of(&[v, -v, 0.0], 3), vec![VisFlag::Bypass]);
    }

    #[test]
    fn interval_boundaries() {
        // Just inside each interval.
        assert_eq!(flags_of(&[EPS * 0.5e-3], 1), vec![VisFlag::Bypass]);
        assert_eq!(flags_of(&[EPS * 0.5e-2], 1), vec![VisFlag::Fp8]);
        assert_eq!(flags_of(&[EPS * 0.5e-1], 1), vec![VisFlag::Fp16]);
        assert_eq!(flags_of(&[EPS * 0.5], 1), vec![VisFlag::Fp32]);
        assert_eq!(flags_of(&[EPS * 2.0], 1), vec![VisFlag::Keep]);
        // Exact boundary: strictly-less comparison keeps the wider class.
        assert_eq!(flags_of(&[EPS], 1), vec![VisFlag::Keep]);
        assert_eq!(flags_of(&[EPS * 1e-3], 1), vec![VisFlag::Fp8]);
    }

    #[test]
    fn one_large_element_blocks_the_segment() {
        // All 16 must be below the threshold; one big value spoils it.
        let mut p = vec![EPS * 1e-5; 16];
        p[7] = 1.0;
        assert_eq!(flags_of(&p, 16), vec![VisFlag::Keep]);
    }

    #[test]
    fn mixed_interval_takes_widest_needed() {
        // Some elements bypass-small, some only FP16-small -> FP16.
        let p = vec![EPS * 1e-5, EPS * 0.05];
        assert_eq!(flags_of(&p, 2), vec![VisFlag::Fp16]);
    }

    #[test]
    fn multiple_segments_independent() {
        let mut p = vec![1.0; 4];
        p[2] = EPS * 1e-5;
        p[3] = EPS * 1e-5;
        assert_eq!(flags_of(&p, 2), vec![VisFlag::Keep, VisFlag::Bypass]);
    }

    #[test]
    fn ragged_tail_segment() {
        let p = vec![EPS * 1e-5; 5]; // segments of 4: [4 elems][1 elem]
        assert_eq!(flags_of(&p, 4), vec![VisFlag::Bypass, VisFlag::Bypass]);
    }

    #[test]
    fn negative_values_use_magnitude() {
        assert_eq!(flags_of(&[-EPS * 1e-5], 1), vec![VisFlag::Bypass]);
    }

    #[test]
    fn reuses_buffer() {
        let mut f = vec![VisFlag::Keep; 100];
        retrieve_vis_flags(&[1.0, 1.0], 1, EPS, &mut f);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn codes_match_paper_encoding() {
        assert_eq!(VisFlag::Keep.code(), 0);
        assert_eq!(VisFlag::Bypass.code(), 1);
        assert_eq!(VisFlag::Fp32.code(), 2);
        assert_eq!(VisFlag::Fp16.code(), 3);
        assert_eq!(VisFlag::Fp8.code(), 4);
    }

    #[test]
    fn demanded_precisions() {
        assert_eq!(VisFlag::Keep.demanded(), None);
        assert_eq!(VisFlag::Bypass.demanded(), None);
        assert_eq!(VisFlag::Fp8.demanded(), Some(Precision::Fp8));
        assert_eq!(VisFlag::Fp32.demanded(), Some(Precision::Fp32));
    }
}
