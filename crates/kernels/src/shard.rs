//! Per-shard kernel views for the multi-device sharded engine.
//!
//! A [`ShardView`] is one device's slice of the problem: its contiguous
//! tile span, its row block, and its **halo** — the off-block columns its
//! tiles reference, i.e. the remote vector entries that must arrive before
//! its SpMV can run. The view executes against a *full-length* input
//! vector in which only `rows ∪ halo_cols` entries are meaningful; keeping
//! the global indexing means every kernel below is literally the same
//! arithmetic, in the same order, as its single-device counterpart
//! restricted to the shard's rows — which is what makes sharded solves
//! bitwise-reproducible at any shard count.
//!
//! Triangular solves cannot be sharded independently (row `r` needs every
//! `x[c]`, `c < r`), so [`sptrsv_lower_span`] / [`sptrsv_upper_span`] run
//! the shards *sequentially* — shard 0 → N−1 for `L`, N−1 → 0 for `U` —
//! with each shard importing the cross-shard entries its rows reference.
//! Substitution visits rows in the same order and combines each row's
//! entries in CSR order exactly like [`crate::sptrsv::sptrsv_lower_into`],
//! so the chained result is bit-identical to the unsharded solve.

use mf_gpu::ShardPlan;
use mf_sparse::{Csr, TiledMatrix};
use std::ops::Range;

/// One shard's view of a tiled matrix: tile span, row block, halo.
#[derive(Clone, Debug)]
pub struct ShardView {
    /// Shard index in `0..plan.shards`.
    pub shard: usize,
    /// Rows owned by this shard.
    pub rows: Range<usize>,
    /// Contiguous tile span of this shard (tiles sorted by tile row).
    pub tiles: Range<usize>,
    /// Sorted off-block columns referenced by `tiles` — the `p`-vector
    /// entries to receive from peer shards each iteration.
    pub halo_cols: Vec<usize>,
    /// Packed value bytes of the shard's tiles (its matrix payload).
    pub value_bytes: usize,
}

impl ShardView {
    /// Builds every shard's view of `m` under `plan`.
    pub fn build_all(m: &TiledMatrix, plan: &ShardPlan) -> Vec<ShardView> {
        let tile_lo = plan.tile_bounds(m);
        (0..plan.shards)
            .map(|k| ShardView {
                shard: k,
                rows: plan.rows(k),
                tiles: tile_lo[k]..tile_lo[k + 1],
                halo_cols: plan.halo_columns_with(m, &tile_lo, k),
                value_bytes: plan.value_bytes(m, &tile_lo, k),
            })
            .collect()
    }

    /// Bytes of one halo exchange for this shard (f64 payload).
    pub fn halo_bytes(&self) -> u64 {
        8 * self.halo_cols.len() as u64
    }

    /// The shard's SpMV: `y ← (A p)[rows]`, with `p` full-length (owned +
    /// halo entries populated) and `y.len() == rows.len()`. Tiles are
    /// visited in global order and each row combines its nonzeros in CSR
    /// order, so concatenating every shard's `y` reproduces
    /// [`TiledMatrix::matvec`] bit-for-bit.
    pub fn spmv(&self, m: &TiledMatrix, p: &[f64], y: &mut [f64]) {
        assert_eq!(p.len(), m.ncols);
        assert_eq!(y.len(), self.rows.len());
        y.fill(0.0);
        m.tile_matvec_span(self.tiles.clone(), p, y, self.rows.start);
    }
}

/// Forward-substitution span: solves rows `rows` of `L x = b` into the
/// full-length `x`, assuming every `x[c]` with `c < rows.start` that these
/// rows reference is already present (shards must run in ascending order).
/// Bitwise ≡ the same rows of [`crate::sptrsv::sptrsv_lower_into`].
pub fn sptrsv_lower_span(l: &Csr, b: &[f64], x: &mut [f64], unit_diag: bool, rows: Range<usize>) {
    assert_eq!(l.nrows, l.ncols);
    assert_eq!(b.len(), l.nrows);
    assert_eq!(x.len(), l.nrows);
    assert!(rows.end <= l.nrows);
    for r in rows {
        let mut sum = 0.0;
        let mut diag = if unit_diag { 1.0 } else { 0.0 };
        for (c, v) in l.row(r) {
            if c < r {
                sum += v * x[c];
            } else if c == r && !unit_diag {
                diag = v;
            }
        }
        debug_assert!(diag != 0.0, "zero diagonal at row {r}");
        x[r] = (b[r] - sum) / diag;
    }
}

/// Backward-substitution span: solves rows `rows` of `U x = b` into the
/// full-length `x`, assuming every `x[c]` with `c >= rows.end` that these
/// rows reference is already present (shards must run in descending
/// order). Bitwise ≡ the same rows of [`crate::sptrsv::sptrsv_upper_into`].
pub fn sptrsv_upper_span(u: &Csr, b: &[f64], x: &mut [f64], unit_diag: bool, rows: Range<usize>) {
    assert_eq!(u.nrows, u.ncols);
    assert_eq!(b.len(), u.nrows);
    assert_eq!(x.len(), u.nrows);
    assert!(rows.end <= u.nrows);
    for r in rows.rev() {
        let mut sum = 0.0;
        let mut diag = if unit_diag { 1.0 } else { 0.0 };
        for (c, v) in u.row(r) {
            if c > r {
                sum += v * x[c];
            } else if c == r && !unit_diag {
                diag = v;
            }
        }
        debug_assert!(diag != 0.0, "zero diagonal at row {r}");
        x[r] = (b[r] - sum) / diag;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sptrsv::{sptrsv_lower_into, sptrsv_upper_into};
    use mf_sparse::Coo;

    fn poisson1d(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.5 + (i % 4) as f64 * 0.25);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
            }
        }
        a.to_csr()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn sharded_spmv_concatenates_to_matvec() {
        let a = poisson1d(77);
        let m = TiledMatrix::from_csr(&a);
        let p: Vec<f64> = (0..77).map(|i| (i as f64 * 0.21).sin() + 0.5).collect();
        let mut whole = vec![0.0; 77];
        m.matvec(&p, &mut whole);
        for shards in [1, 2, 3, 4] {
            let plan = ShardPlan::for_matrix(&m, shards);
            let views = ShardView::build_all(&m, &plan);
            let mut pieced = vec![0.0; 77];
            for v in &views {
                let mut y = vec![0.0; v.rows.len()];
                v.spmv(&m, &p, &mut y);
                pieced[v.rows.clone()].copy_from_slice(&y);
            }
            assert_eq!(bits(&pieced), bits(&whole), "{shards} shards");
        }
    }

    #[test]
    fn halo_is_only_what_spmv_needs() {
        let a = poisson1d(64);
        let m = TiledMatrix::from_csr(&a);
        let plan = ShardPlan::for_matrix(&m, 4);
        let views = ShardView::build_all(&m, &plan);
        let p: Vec<f64> = (0..64).map(|i| 1.0 + i as f64).collect();
        let mut whole = vec![0.0; 64];
        m.matvec(&p, &mut whole);
        for v in &views {
            // Poison every entry that is neither owned nor halo: the
            // shard's SpMV must not read them.
            let mut masked = vec![f64::NAN; 64];
            for r in v.rows.clone() {
                masked[r] = p[r];
            }
            for &c in &v.halo_cols {
                masked[c] = p[c];
            }
            let mut y = vec![0.0; v.rows.len()];
            v.spmv(&m, &masked, &mut y);
            assert_eq!(bits(&y), bits(&whole[v.rows.clone()]), "shard {}", v.shard);
        }
    }

    #[test]
    fn trsv_spans_chain_to_full_solve() {
        let a = poisson1d(50);
        let l = a.lower_triangle();
        let u = a.upper_triangle();
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.4).cos()).collect();

        let mut y_full = vec![0.0; 50];
        sptrsv_lower_into(&l, &b, &mut y_full, true);
        let mut z_full = vec![0.0; 50];
        sptrsv_upper_into(&u, &y_full, &mut z_full, false);

        for shards in [1, 2, 3, 5] {
            let plan = ShardPlan::partition(50, 16, shards);
            let mut y = vec![0.0; 50];
            for k in 0..plan.shards {
                sptrsv_lower_span(&l, &b, &mut y, true, plan.rows(k));
            }
            assert_eq!(bits(&y), bits(&y_full), "lower, {shards} shards");
            let mut z = vec![0.0; 50];
            for k in (0..plan.shards).rev() {
                sptrsv_upper_span(&u, &y, &mut z, false, plan.rows(k));
            }
            assert_eq!(bits(&z), bits(&z_full), "upper, {shards} shards");
        }
    }
}
