//! # mf-kernels
//!
//! Computational kernels for the Mille-feuille reproduction. All numerics
//! here are *exact* (the modeled GPU time lives in `mf-gpu`): these are the
//! operations the GPU kernels would perform, bit-faithful with respect to
//! the storage precisions involved.
//!
//! * [`blas1`] — dot, AXPY and friends (sequential and rayon-parallel).
//! * [`spmv`] — CSR SpMV, tiled SpMV, and the **mixed-precision SpMV with
//!   tile bypass** of paper Algorithm 5 operating on the "shared memory"
//!   copy of the tiles.
//! * [`spmm`] — blocked multi-right-hand-side variants (SpMM + per-column
//!   BLAS1) that amortize one tile pass across `k` vectors for the serving
//!   layer, bitwise identical per column to the single-vector kernels.
//! * [`visflag`] — the convergent-elements retrieval of paper Algorithm 4
//!   producing the per-column-segment `vis_flag` demands.
//! * [`sptrsv`] — sparse triangular solves: naive, level-scheduled analysis,
//!   and the recursive-block algorithm (paper §III-C, ref. \[41\]) used by the
//!   preconditioned solvers.
//! * [`ilu`] — ILU(0) and IC(0) factorizations for the PCG/PBiCGSTAB
//!   variants.
//! * [`shard`] — per-shard tile views with halo columns and the
//!   sequential-span triangular solves used by the multi-device sharded
//!   engine.

pub mod blas1;
pub mod block_jacobi;
pub mod ilu;
pub mod shard;
pub mod spmm;
pub mod spmv;
pub mod sptrsv;
pub mod visflag;

pub use block_jacobi::BlockJacobi;
pub use ilu::{
    diag_shifted, ic0, ic0_row, ilu0, ilu0_boosted, ilu0_row, initial_boost_shift, CholRowsView,
    FactorError, FactorRow, FactorRowsView, Ic0, Ic0Rows, Ic0Scratch, Ilu0, Ilu0Rows, IluScratch,
    MAX_FACTOR_SHIFTS,
};
pub use shard::{sptrsv_lower_span, sptrsv_upper_span, ShardView};
pub use spmm::{axpy_block, col, col_mut, dot_block, spmm_mixed, xpay_block};
pub use spmv::{
    spmv_csr, spmv_csr_par, spmv_mixed, spmv_mixed_par, spmv_tiled, spmv_tiled_par, MixedSpmvStats,
    SharedTiles,
};
pub use sptrsv::{
    level_schedule, sptrsv_lower, sptrsv_lower_into, sptrsv_lower_recursive,
    sptrsv_lower_recursive_into, sptrsv_upper, sptrsv_upper_into, sptrsv_upper_recursive,
    sptrsv_upper_recursive_into, LevelSchedule, RecursiveTrsvStats,
};
pub use visflag::{retrieve_vis_flags, VisFlag};
