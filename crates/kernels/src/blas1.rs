//! Vector (BLAS-1) kernels.
//!
//! The CG/BiCGSTAB loops use exactly these: dot products, `y ± αx` updates,
//! `p = r + βp` recurrences and 2-norms. Sequential versions are the
//! reference; `*_par` versions use rayon and are exercised by the suite-level
//! experiment fan-out (per the hpc-parallel guides, parallel iterators are
//! the idiomatic CPU analogue of the GPU grid).
//!
//! # Determinism of the parallel reductions
//!
//! Floating-point addition is not associative, so a reduction whose grouping
//! depends on the thread count would return different bits for different
//! `RAYON_NUM_THREADS`. [`dot_par`] (and [`norm2_par`]/[`norm2_sq_par`] built
//! on it) therefore use a **fixed reduction layout** that never looks at the
//! thread count: the input is cut into fixed-size [`DET_CHUNK`]-element
//! chunks, each chunk is summed left-to-right, and the per-chunk partials are
//! combined by a pairwise tree walked in index order. Threads only decide
//! *who computes which chunk*, never *how the sums are grouped*, so the
//! result is bitwise identical for any thread count (including 1). This
//! mirrors the GPU situation, where a fixed block/warp reduction tree gives
//! run-to-run reproducible dot products regardless of SM scheduling.

use rayon::prelude::*;

/// Threshold below which the parallel versions fall back to sequential
/// (rayon task overhead dwarfs tiny vectors).
const PAR_THRESHOLD: usize = 8_192;

/// Fixed chunk width shared by every deterministic parallel kernel in this
/// crate: the blas1 reduction tree below *and* the SpMV row-count gates in
/// `spmv.rs` (which previously duplicated the literal). The reduction tree /
/// stripe layout is a function of the input length and this constant only —
/// never of the thread count.
pub const DETERMINISTIC_CHUNK: usize = 4_096;

/// Historical name of [`DETERMINISTIC_CHUNK`], kept as an alias so existing
/// callers and tests keep compiling.
pub const DET_CHUNK: usize = DETERMINISTIC_CHUNK;

/// Pairwise ("tree") sum of `p` in index order: split at the midpoint,
/// recurse, add left + right. The grouping depends only on `p.len()`.
fn tree_sum(p: &[f64]) -> f64 {
    match p.len() {
        0 => 0.0,
        1 => p[0],
        n => {
            let mid = n / 2;
            tree_sum(&p[..mid]) + tree_sum(&p[mid..])
        }
    }
}

/// Dot product over one fixed chunk, summed left-to-right.
fn dot_chunk(x: &[f64], y: &[f64], start: usize) -> f64 {
    let end = (start + DET_CHUNK).min(x.len());
    x[start..end]
        .iter()
        .zip(&y[start..end])
        .map(|(a, b)| a * b)
        .sum()
}

/// Dot product `(x, y)`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Parallel dot product with a thread-count-independent reduction tree
/// (see the module docs): bitwise identical for any `RAYON_NUM_THREADS`.
pub fn dot_par(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        return dot_det(x, y);
    }
    let starts: Vec<usize> = (0..x.len()).step_by(DET_CHUNK).collect();
    let partials: Vec<f64> = starts.par_iter().map(|&s| dot_chunk(x, y, s)).collect();
    tree_sum(&partials)
}

/// Serial reference for the deterministic reduction: same fixed chunks, same
/// pairwise tree, no threads. `dot_par` returns exactly these bits.
pub fn dot_det(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let partials: Vec<f64> = (0..x.len())
        .step_by(DET_CHUNK)
        .map(|s| dot_chunk(x, y, s))
        .collect();
    tree_sum(&partials)
}

/// Squared 2-norm.
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// 2-norm.
pub fn norm2(x: &[f64]) -> f64 {
    norm2_sq(x).sqrt()
}

/// Parallel squared 2-norm (deterministic, see [`dot_par`]).
pub fn norm2_sq_par(x: &[f64]) -> f64 {
    dot_par(x, x)
}

/// Parallel 2-norm (deterministic, see [`dot_par`]).
pub fn norm2_par(x: &[f64]) -> f64 {
    norm2_sq_par(x).sqrt()
}

/// `y += alpha * x` (classic AXPY).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Parallel AXPY.
pub fn axpy_par(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        return axpy(alpha, x, y);
    }
    y.par_iter_mut().zip(x).for_each(|(yi, xi)| {
        *yi += alpha * xi;
    });
}

/// `y = x + alpha * y` (XPAY — the `p = r + βp` recurrence of CG line 10).
pub fn xpay(x: &[f64], alpha: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + alpha * *yi;
    }
}

/// `z = x + alpha * y` written into `z`.
pub fn waxpy(x: &[f64], alpha: f64, y: &[f64], z: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), z.len());
    for i in 0..x.len() {
        z[i] = x[i] + alpha * y[i];
    }
}

/// `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// `y = x`.
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// The BiCGSTAB direction update `p = r + beta * (p - omega * mu)`
/// (Algorithm 2 line 13), fused as one pass.
pub fn bicgstab_p_update(r: &[f64], beta: f64, omega: f64, mu: &[f64], p: &mut [f64]) {
    debug_assert_eq!(r.len(), p.len());
    debug_assert_eq!(mu.len(), p.len());
    for i in 0..p.len() {
        p[i] = r[i] + beta * (p[i] - omega * mu[i]);
    }
}

/// Fused dot-product pair `((x1, y), (x2, y))` in one pass over the data —
/// the pipelined-CG reduction `γ' = (r, r), δ' = (w, r)` costs one sweep
/// instead of two. Each accumulator sums left-to-right in index order, so
/// either component is bitwise identical to the corresponding [`dot`] call.
pub fn dot2(x1: &[f64], x2: &[f64], y: &[f64]) -> (f64, f64) {
    debug_assert_eq!(x1.len(), y.len());
    debug_assert_eq!(x2.len(), y.len());
    let (mut a, mut b) = (0.0, 0.0);
    for i in 0..y.len() {
        a += x1[i] * y[i];
        b += x2[i] * y[i];
    }
    (a, b)
}

/// The fused pipelined-CG vector update (Ghysels–Vanroose recurrence), one
/// pass instead of six kernels. `q = A·w` is this iteration's SpMV output;
/// the auxiliary recurrences maintain `s = A·p` and `z = A·s` without extra
/// SpMVs:
///
/// ```text
/// p = r + β p;  s = w + β s;  z = q + β z;
/// x += α p;  r -= α s;  w -= α z
/// ```
///
/// Per element the six updates are evaluated in exactly this order, and no
/// element reads another element's state, so the fused pass is bitwise
/// identical to the unfused `xpay`/`axpy` sequence for any segment split.
#[allow(clippy::too_many_arguments)]
pub fn cg_pipelined_update(
    alpha: f64,
    beta: f64,
    q: &[f64],
    p: &mut [f64],
    s: &mut [f64],
    z: &mut [f64],
    x: &mut [f64],
    r: &mut [f64],
    w: &mut [f64],
) {
    let n = q.len();
    debug_assert!([p.len(), s.len(), z.len(), x.len(), r.len(), w.len()]
        .iter()
        .all(|&l| l == n));
    for i in 0..n {
        p[i] = r[i] + beta * p[i];
        s[i] = w[i] + beta * s[i];
        z[i] = q[i] + beta * z[i];
        x[i] += alpha * p[i];
        r[i] -= alpha * s[i];
        w[i] -= alpha * z[i];
    }
}

/// The fused pipelined-PCG vector update, one pass instead of eight kernels:
///
/// ```text
/// p = u + β p;  s = w + β s;  q = m + β q;  zz = n + β zz;
/// x += α p;  r -= α s;  u -= α q;  w -= α zz
/// ```
///
/// Same bitwise-equivalence argument as [`cg_pipelined_update`]: per-element
/// order is fixed and elements are independent.
#[allow(clippy::too_many_arguments)]
pub fn pcg_pipelined_update(
    alpha: f64,
    beta: f64,
    m: &[f64],
    n: &[f64],
    p: &mut [f64],
    s: &mut [f64],
    q: &mut [f64],
    zz: &mut [f64],
    x: &mut [f64],
    r: &mut [f64],
    u: &mut [f64],
    w: &mut [f64],
) {
    let len = m.len();
    debug_assert!([
        n.len(),
        p.len(),
        s.len(),
        q.len(),
        zz.len(),
        x.len(),
        r.len(),
        u.len(),
        w.len()
    ]
    .iter()
    .all(|&l| l == len));
    for i in 0..len {
        p[i] = u[i] + beta * p[i];
        s[i] = w[i] + beta * s[i];
        q[i] = m[i] + beta * q[i];
        zz[i] = n[i] + beta * zz[i];
        x[i] += alpha * p[i];
        r[i] -= alpha * s[i];
        u[i] -= alpha * q[i];
        w[i] -= alpha * zz[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basics() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_par_matches_serial() {
        let n = 20_000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let s = dot(&x, &y);
        let p = dot_par(&x, &y);
        assert!((s - p).abs() < 1e-9 * s.abs().max(1.0));
    }

    #[test]
    fn dot_par_is_bitwise_deterministic() {
        // dot_par must return exactly the bits of the serial fixed-chunk
        // reference, whatever the thread count happens to be. Sweep lengths
        // around the chunk/threshold boundaries, with values spread across
        // magnitudes so reassociation would actually change the bits.
        for n in [
            0,
            1,
            DET_CHUNK - 1,
            DET_CHUNK,
            DET_CHUNK + 1,
            3 * DET_CHUNK + 17,
            8 * DET_CHUNK + 1,
        ] {
            let x: Vec<f64> = (0..n)
                .map(|i| (i as f64).sin() * 10f64.powi((i % 13) as i32 - 6))
                .collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            let par = dot_par(&x, &y);
            let det = dot_det(&x, &y);
            assert_eq!(
                par.to_bits(),
                det.to_bits(),
                "n={n}: par={par:e} det={det:e}"
            );
        }
    }

    #[test]
    fn tree_sum_layout_depends_only_on_length() {
        // Same data, asked twice → same bits; and the norm wrappers agree.
        let n = 6 * DET_CHUNK + 5;
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 31 % 97) as f64 - 48.0) * 1e-3)
            .collect();
        assert_eq!(dot_par(&x, &x).to_bits(), dot_par(&x, &x).to_bits());
        assert_eq!(norm2_sq_par(&x).to_bits(), dot_det(&x, &x).to_bits());
        assert_eq!(norm2_par(&x).to_bits(), dot_det(&x, &x).sqrt().to_bits());
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm2_par(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2_sq_par(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn axpy_par_matches_serial() {
        let n = 20_000;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut y1 = vec![1.0; n];
        let mut y2 = vec![1.0; n];
        axpy(0.5, &x, &mut y1);
        axpy_par(0.5, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn xpay_is_cg_p_update() {
        // p = r + beta p
        let mut p = vec![1.0, 2.0];
        xpay(&[10.0, 20.0], 0.5, &mut p);
        assert_eq!(p, vec![10.5, 21.0]);
    }

    #[test]
    fn waxpy_writes_output() {
        let mut z = vec![0.0; 2];
        waxpy(&[1.0, 2.0], 3.0, &[10.0, 20.0], &mut z);
        assert_eq!(z, vec![31.0, 62.0]);
    }

    #[test]
    fn scale_and_copy() {
        let mut x = vec![1.0, -2.0];
        scale(-2.0, &mut x);
        assert_eq!(x, vec![-2.0, 4.0]);
        let mut y = vec![0.0; 2];
        copy(&x, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn dot2_matches_two_dots_bitwise() {
        let n = 3 * DET_CHUNK + 7;
        let x1: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 1e3).collect();
        let x2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos() * 1e-4).collect();
        let y: Vec<f64> = (0..n).map(|i| (i * 7 % 31) as f64 - 15.0).collect();
        let (a, b) = dot2(&x1, &x2, &y);
        assert_eq!(a.to_bits(), dot(&x1, &y).to_bits());
        assert_eq!(b.to_bits(), dot(&x2, &y).to_bits());
    }

    #[test]
    fn cg_pipelined_update_matches_unfused_sequence() {
        let n = 257;
        let q: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).sin()).collect();
        let mk = |k: f64| -> Vec<f64> { (0..n).map(|i| ((i as f64) * k).cos()).collect() };
        let (alpha, beta) = (0.37, -1.25);

        let (mut p, mut s, mut z, mut x, mut r, mut w) =
            (mk(0.1), mk(0.2), mk(0.15), mk(0.3), mk(0.4), mk(0.5));
        cg_pipelined_update(
            alpha, beta, &q, &mut p, &mut s, &mut z, &mut x, &mut r, &mut w,
        );

        let (mut p2, mut s2, mut z2, mut x2, mut r2, mut w2) =
            (mk(0.1), mk(0.2), mk(0.15), mk(0.3), mk(0.4), mk(0.5));
        xpay(&r2.clone(), beta, &mut p2);
        xpay(&w2.clone(), beta, &mut s2);
        xpay(&q, beta, &mut z2);
        axpy(alpha, &p2, &mut x2);
        axpy(-alpha, &s2, &mut r2);
        axpy(-alpha, &z2, &mut w2);

        for i in 0..n {
            assert_eq!(p[i].to_bits(), p2[i].to_bits());
            assert_eq!(s[i].to_bits(), s2[i].to_bits());
            assert_eq!(z[i].to_bits(), z2[i].to_bits());
            assert_eq!(x[i].to_bits(), x2[i].to_bits());
            assert_eq!(r[i].to_bits(), r2[i].to_bits());
            assert_eq!(w[i].to_bits(), w2[i].to_bits());
        }
    }

    #[test]
    fn pcg_pipelined_update_matches_unfused_sequence() {
        let len = 193;
        let mk = |k: f64| -> Vec<f64> { (0..len).map(|i| ((i as f64) * k).sin() * 3.0).collect() };
        let (alpha, beta) = (-0.6, 0.85);
        let (m, nn) = (mk(0.7), mk(0.9));

        let (mut p, mut s, mut q, mut zz) = (mk(0.1), mk(0.2), mk(0.3), mk(0.4));
        let (mut x, mut r, mut u, mut w) = (mk(0.5), mk(0.6), mk(0.8), mk(1.1));
        pcg_pipelined_update(
            alpha, beta, &m, &nn, &mut p, &mut s, &mut q, &mut zz, &mut x, &mut r, &mut u, &mut w,
        );

        let (mut p2, mut s2, mut q2, mut zz2) = (mk(0.1), mk(0.2), mk(0.3), mk(0.4));
        let (mut x2, mut r2, mut u2, mut w2) = (mk(0.5), mk(0.6), mk(0.8), mk(1.1));
        xpay(&u2.clone(), beta, &mut p2);
        xpay(&w2.clone(), beta, &mut s2);
        xpay(&m, beta, &mut q2);
        xpay(&nn, beta, &mut zz2);
        axpy(alpha, &p2, &mut x2);
        axpy(-alpha, &s2, &mut r2);
        axpy(-alpha, &q2, &mut u2);
        axpy(-alpha, &zz2, &mut w2);

        for i in 0..len {
            assert_eq!(p[i].to_bits(), p2[i].to_bits());
            assert_eq!(s[i].to_bits(), s2[i].to_bits());
            assert_eq!(q[i].to_bits(), q2[i].to_bits());
            assert_eq!(zz[i].to_bits(), zz2[i].to_bits());
            assert_eq!(x[i].to_bits(), x2[i].to_bits());
            assert_eq!(r[i].to_bits(), r2[i].to_bits());
            assert_eq!(u[i].to_bits(), u2[i].to_bits());
            assert_eq!(w[i].to_bits(), w2[i].to_bits());
        }
    }

    #[test]
    fn fused_updates_propagate_non_finite() {
        // A NaN in the SpMV result must reach w (not be masked by fusion),
        // and an Inf alpha must poison x/r exactly as the unfused path does.
        let q = vec![f64::NAN, 1.0];
        let (mut p, mut s, mut z, mut x, mut r, mut w) = (
            vec![1.0; 2],
            vec![1.0; 2],
            vec![1.0; 2],
            vec![0.0; 2],
            vec![2.0; 2],
            vec![3.0; 2],
        );
        cg_pipelined_update(0.5, 0.0, &q, &mut p, &mut s, &mut z, &mut x, &mut r, &mut w);
        assert!(z[0].is_nan() && w[0].is_nan());
        assert!(z[1].is_finite() && w[1].is_finite());

        let q = vec![1.0, 1.0];
        let (mut p, mut s, mut z, mut x, mut r, mut w) = (
            vec![1.0; 2],
            vec![1.0; 2],
            vec![1.0; 2],
            vec![0.0; 2],
            vec![2.0; 2],
            vec![3.0; 2],
        );
        cg_pipelined_update(
            f64::INFINITY,
            0.0,
            &q,
            &mut p,
            &mut s,
            &mut z,
            &mut x,
            &mut r,
            &mut w,
        );
        assert!(x.iter().all(|v| v.is_infinite()));
        assert!(r.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn deterministic_chunk_is_the_shared_constant() {
        assert_eq!(DET_CHUNK, DETERMINISTIC_CHUNK);
        assert_eq!(DETERMINISTIC_CHUNK, 4_096);
    }

    #[test]
    fn bicgstab_update_formula() {
        let mut p = vec![1.0, 1.0];
        bicgstab_p_update(&[2.0, 3.0], 0.5, 0.25, &[4.0, 8.0], &mut p);
        // p_i = r + 0.5*(p - 0.25*mu) = [2 + .5*(1-1), 3 + .5*(1-2)]
        assert_eq!(p, vec![2.0, 2.5]);
    }
}
