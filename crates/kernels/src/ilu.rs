//! Incomplete factorizations for the preconditioned solvers (§III-C, §IV-C).
//!
//! * [`ilu0`] — ILU(0): `A ≈ L·U` restricted to the sparsity pattern of `A`
//!   (no fill-in). `L` is unit lower triangular (unit diagonal not stored),
//!   `U` is upper triangular with the diagonal stored.
//! * [`ic0`] — IC(0): `A ≈ L·Lᵀ` for symmetric positive-definite matrices.
//!
//! Applying the preconditioner (`M z = r`) is two triangular solves, which
//! the solvers run through the recursive-block SpTRSV of [`crate::sptrsv`].

use crate::sptrsv::{
    sptrsv_lower, sptrsv_lower_recursive_into, sptrsv_upper, sptrsv_upper_recursive_into,
    RecursiveTrsvStats, DEFAULT_TRSV_LEAF,
};
use mf_sparse::Csr;

/// Merges the statistics of a forward + backward recursive solve pair.
fn combine_trsv(s1: RecursiveTrsvStats, s2: RecursiveTrsvStats) -> RecursiveTrsvStats {
    RecursiveTrsvStats {
        leaves: s1.leaves + s2.leaves,
        max_leaf_rows: s1.max_leaf_rows.max(s2.max_leaf_rows),
        spmv_nnz: s1.spmv_nnz + s2.spmv_nnz,
        trsv_nnz: s1.trsv_nnz + s2.trsv_nnz,
        depth: s1.depth.max(s2.depth),
    }
}

/// An ILU(0) factorization `A ≈ L U`.
#[derive(Clone, Debug)]
pub struct Ilu0 {
    /// Strictly lower triangle of `L` (unit diagonal implicit).
    pub l: Csr,
    /// Upper triangle of `U` including the diagonal.
    pub u: Csr,
}

/// Errors of the incomplete factorizations.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// A zero (or missing) pivot was hit at the given row.
    ZeroPivot(usize),
    /// IC(0) hit a non-positive diagonal (matrix not SPD enough).
    NotSpd(usize),
    /// The matrix is not square.
    NotSquare,
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::ZeroPivot(r) => write!(f, "zero pivot at row {r}"),
            FactorError::NotSpd(r) => write!(f, "non-positive IC(0) pivot at row {r}"),
            FactorError::NotSquare => write!(f, "matrix must be square"),
        }
    }
}

impl std::error::Error for FactorError {}

/// A pivot that cannot be divided by safely: zero, subnormal, NaN or
/// infinite. Subnormal pivots overflow the multipliers into inf/NaN and
/// poison the factors exactly like a hard zero, so the factorizations
/// treat the whole class identically.
fn unusable_pivot(p: f64) -> bool {
    !p.is_finite() || p.abs() < f64::MIN_POSITIVE
}

/// How many diagonal-boosting retries the `*_boosted` drivers attempt
/// before giving up and surfacing the last pivot failure.
pub const MAX_FACTOR_SHIFTS: usize = 4;

/// First boost is this fraction of the largest diagonal magnitude; each
/// retry doubles it.
const SHIFT_FRACTION: f64 = 1e-3;

/// The first Manteuffel shift the `*_boosted` drivers try:
/// `10⁻³ · max|a_ii|` (each retry doubles it, at most
/// [`MAX_FACTOR_SHIFTS`] attempts). Public so alternate factorization
/// drivers — the ticketed preprocessing pipeline in `mf-solver` — can
/// mirror the exact schedule and stay bitwise-identical to
/// [`ilu0_boosted`] / [`Ic0::new_boosted`].
pub fn initial_boost_shift(a: &Csr) -> f64 {
    SHIFT_FRACTION * shift_base(a)
}

/// The boosting scale ‖diag‖: largest finite |a_ii|, or 1 when the
/// diagonal is entirely absent/zero so the shift is still nonzero.
fn shift_base(a: &Csr) -> f64 {
    let mut base = 0.0f64;
    for i in 0..a.nrows.min(a.ncols) {
        let d = a.get(i, i).abs();
        if d.is_finite() && d > base {
            base = d;
        }
    }
    if base > 0.0 {
        base
    } else {
        1.0
    }
}

/// Returns `A + shift·I` as a new CSR matrix, inserting diagonal entries
/// that are structurally missing from `A`'s pattern (a missing `a_ii` is
/// precisely the structural-zero-pivot case boosting exists to repair).
pub fn diag_shifted(a: &Csr, shift: f64) -> Csr {
    let n = a.nrows;
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::with_capacity(a.nnz() + n);
    let mut vals = Vec::with_capacity(a.nnz() + n);
    rowptr.push(0);
    for i in 0..n {
        let mut seen_diag = false;
        for (c, v) in a.row(i) {
            if c == i {
                colidx.push(c);
                vals.push(v + shift);
                seen_diag = true;
            } else {
                if c > i && !seen_diag && i < a.ncols {
                    colidx.push(i);
                    vals.push(shift);
                    seen_diag = true;
                }
                colidx.push(c);
                vals.push(v);
            }
        }
        if !seen_diag && i < a.ncols {
            colidx.push(i);
            vals.push(shift);
        }
        rowptr.push(colidx.len());
    }
    Csr {
        nrows: n,
        ncols: a.ncols,
        rowptr,
        colidx,
        vals,
    }
}

/// ILU(0) with zero/tiny-pivot fallback by diagonal boosting (a Manteuffel
/// shift): when the plain factorization breaks down on a pivot, retry on
/// `A + αI` with `α = 10⁻³·max|a_ii|`, doubling `α` per attempt, at most
/// [`MAX_FACTOR_SHIFTS`] retries. Returns the factorization together with
/// the shift of **every** attempt made (empty when the unshifted
/// factorization succeeded) so callers can record one
/// `BreakdownEvent::FactorShift` per attempt. The final factors
/// approximate `A + α_last·I`, which for these small `α` still
/// preconditions `A` effectively. `NotSquare` is never retried — no shift
/// repairs a shape error.
pub fn ilu0_boosted(a: &Csr) -> Result<(Ilu0, Vec<f64>), FactorError> {
    match ilu0(a) {
        Ok(f) => return Ok((f, Vec::new())),
        Err(FactorError::NotSquare) => return Err(FactorError::NotSquare),
        Err(_) => {}
    }
    let mut shifts = Vec::new();
    let mut shift = initial_boost_shift(a);
    let mut last = FactorError::ZeroPivot(0);
    for _ in 0..MAX_FACTOR_SHIFTS {
        shifts.push(shift);
        match ilu0(&diag_shifted(a, shift)) {
            Ok(f) => return Ok((f, shifts)),
            Err(e) => last = e,
        }
        shift *= 2.0;
    }
    Err(last)
}

/// One factored row: the row-granular unit of both ILU(0) and IC(0).
///
/// For ILU(0), `lower` holds the strict-lower `L` entries, `upper` the
/// `U` entries (`c >= i`, diagonal included) and `diag` caches `u_ii`.
/// For IC(0), `lower` holds the whole `L` row (diagonal last), `upper`
/// is empty, and `diag` caches `l_ii`.
#[derive(Clone, Debug, PartialEq)]
pub struct FactorRow {
    /// Lower-triangle entries `(col, value)` in ascending column order.
    pub lower: Vec<(usize, f64)>,
    /// Upper-triangle entries (ILU(0) only).
    pub upper: Vec<(usize, f64)>,
    /// The row's pivot.
    pub diag: f64,
}

/// Read access to already-factored ILU(0) rows `k < i` — what
/// [`ilu0_row`] eliminates against. Implemented by the serial
/// accumulator [`Ilu0Rows`] and by the ticketed pipeline's commit-view
/// wrapper in `mf-solver`.
pub trait FactorRowsView {
    /// Row `k` of `U` (`c >= k`, diagonal included), ascending columns.
    fn upper_row(&self, k: usize) -> &[(usize, f64)];
    /// The cached pivot `u_kk`.
    fn diag(&self, k: usize) -> f64;
}

/// Read access to already-factored IC(0) rows `j < i`.
pub trait CholRowsView {
    /// Row `j` of `L` (`c <= j`, diagonal last), ascending columns.
    fn chol_row(&self, j: usize) -> &[(usize, f64)];
    /// The cached pivot `l_jj`.
    fn chol_diag(&self, j: usize) -> f64;
}

/// Reusable dense-scatter workspace for [`ilu0_row`].
pub struct IluScratch {
    /// Position of column `c` in the current working set, or `usize::MAX`.
    pos: Vec<usize>,
    work_cols: Vec<usize>,
    work_vals: Vec<f64>,
}

impl IluScratch {
    /// Workspace for an `n × n` factorization.
    pub fn new(n: usize) -> IluScratch {
        IluScratch {
            pos: vec![usize::MAX; n],
            work_cols: Vec::new(),
            work_vals: Vec::new(),
        }
    }
}

/// Factors row `i` of ILU(0) (IKJ variant, no fill-in) against the
/// already-factored rows in `view`.
///
/// Pure in `(a, i, view)` — the arithmetic and its order are *exactly*
/// the serial [`ilu0`] inner loop, so any driver that commits rows in
/// order (serial, ticketed) produces bitwise-identical factors. The
/// caller must guarantee every pattern column `k < i` of row `i` is
/// present in `view`; with in-order commits, the row's *maximum* such
/// column suffices as the readiness watermark.
pub fn ilu0_row(
    a: &Csr,
    i: usize,
    view: &impl FactorRowsView,
    scratch: &mut IluScratch,
) -> Result<FactorRow, FactorError> {
    let IluScratch {
        pos,
        work_cols,
        work_vals,
    } = scratch;
    work_cols.clear();
    work_vals.clear();
    for (c, v) in a.row(i) {
        pos[c] = work_cols.len();
        work_cols.push(c);
        work_vals.push(v);
    }

    // Eliminate with previously finished rows k < i present in the
    // pattern (work_cols is sorted because CSR rows are sorted).
    for wk in 0..work_cols.len() {
        let k = work_cols[wk];
        if k >= i {
            break;
        }
        let pivot = view.diag(k);
        if unusable_pivot(pivot) {
            for &c in work_cols.iter() {
                pos[c] = usize::MAX;
            }
            return Err(FactorError::ZeroPivot(k));
        }
        let factor = work_vals[wk] / pivot;
        work_vals[wk] = factor;
        for &(j, ukj) in view.upper_row(k) {
            if j <= k {
                continue;
            }
            let pj = pos[j];
            if pj != usize::MAX {
                work_vals[pj] -= factor * ukj;
            }
        }
    }

    // Split the worked row into L (c < i) and U (c >= i).
    let mut lower = Vec::new();
    let mut upper = Vec::new();
    let mut diag = 0.0f64;
    for (wk, &c) in work_cols.iter().enumerate() {
        if c < i {
            lower.push((c, work_vals[wk]));
        } else {
            if c == i {
                diag = work_vals[wk];
            }
            upper.push((c, work_vals[wk]));
        }
    }
    // Clear scatter markers (scratch is reused across rows and retries).
    for &c in work_cols.iter() {
        pos[c] = usize::MAX;
    }
    if unusable_pivot(diag) {
        return Err(FactorError::ZeroPivot(i));
    }
    Ok(FactorRow { lower, upper, diag })
}

/// Accumulates committed ILU(0) rows in order; the serial
/// factorization's state and the reference [`FactorRowsView`].
pub struct Ilu0Rows {
    l_rows: Vec<Vec<(usize, f64)>>,
    u_rows: Vec<Vec<(usize, f64)>>,
    udiag: Vec<f64>,
}

impl Ilu0Rows {
    /// Empty accumulator with capacity for `n` rows.
    pub fn with_capacity(n: usize) -> Ilu0Rows {
        Ilu0Rows {
            l_rows: Vec::with_capacity(n),
            u_rows: Vec::with_capacity(n),
            udiag: Vec::with_capacity(n),
        }
    }

    /// Number of rows committed so far.
    pub fn len(&self) -> usize {
        self.u_rows.len()
    }

    /// True when no rows have been committed.
    pub fn is_empty(&self) -> bool {
        self.u_rows.is_empty()
    }

    /// Appends the next row (rows must arrive in order).
    pub fn push(&mut self, row: FactorRow) {
        self.udiag.push(row.diag);
        self.l_rows.push(row.lower);
        self.u_rows.push(row.upper);
    }

    /// Packages the accumulated rows as [`Ilu0`] factors.
    pub fn into_factors(self) -> Ilu0 {
        let n = self.l_rows.len();
        Ilu0 {
            l: rows_to_csr(n, &self.l_rows),
            u: rows_to_csr(n, &self.u_rows),
        }
    }
}

impl FactorRowsView for Ilu0Rows {
    fn upper_row(&self, k: usize) -> &[(usize, f64)] {
        &self.u_rows[k]
    }
    fn diag(&self, k: usize) -> f64 {
        self.udiag[k]
    }
}

/// Computes the ILU(0) factorization of `a` (IKJ variant, no fill-in).
///
/// Row-by-row driver over [`ilu0_row`]; the ticketed pipeline runs the
/// same row function against its commit view, so both paths share one
/// arithmetic implementation.
pub fn ilu0(a: &Csr) -> Result<Ilu0, FactorError> {
    if a.nrows != a.ncols {
        return Err(FactorError::NotSquare);
    }
    let n = a.nrows;
    let mut rows = Ilu0Rows::with_capacity(n);
    let mut scratch = IluScratch::new(n);
    for i in 0..n {
        let row = ilu0_row(a, i, &rows, &mut scratch)?;
        rows.push(row);
    }
    Ok(rows.into_factors())
}

fn rows_to_csr(n: usize, rows: &[Vec<(usize, f64)>]) -> Csr {
    let nnz: usize = rows.iter().map(Vec::len).sum();
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    rowptr.push(0);
    for row in rows {
        for &(c, v) in row {
            colidx.push(c);
            vals.push(v);
        }
        rowptr.push(colidx.len());
    }
    Csr {
        nrows: n,
        ncols: n,
        rowptr,
        colidx,
        vals,
    }
}

impl Ilu0 {
    /// Applies the preconditioner: solves `L U z = r` with plain
    /// substitution (oracle path).
    pub fn apply(&self, r: &[f64]) -> Vec<f64> {
        let y = sptrsv_lower(&self.l, r, true);
        sptrsv_upper(&self.u, &y, false)
    }

    /// Applies the preconditioner with the recursive-block SpTRSV (the path
    /// Mille-feuille uses, §III-C). Returns `z` and the combined SpTRSV
    /// statistics of both solves for the cost model.
    pub fn apply_recursive(&self, r: &[f64], leaf: usize) -> (Vec<f64>, RecursiveTrsvStats) {
        let mut y = vec![0.0; r.len()];
        let mut z = vec![0.0; r.len()];
        let stats = self.apply_recursive_into(r, leaf, &mut y, &mut z);
        (z, stats)
    }

    /// In-place [`Self::apply_recursive`]: `scratch` holds the intermediate
    /// `y` of `L y = r`, `z` receives the solution. Allocation-free, so the
    /// solver loops can reuse workspace buffers across iterations.
    pub fn apply_recursive_into(
        &self,
        r: &[f64],
        leaf: usize,
        scratch: &mut [f64],
        z: &mut [f64],
    ) -> RecursiveTrsvStats {
        let s1 = sptrsv_lower_recursive_into(&self.l, r, scratch, true, leaf);
        let s2 = sptrsv_upper_recursive_into(&self.u, scratch, z, false, leaf);
        combine_trsv(s1, s2)
    }

    /// Applies with the default leaf size.
    pub fn apply_default(&self, r: &[f64]) -> Vec<f64> {
        self.apply_recursive(r, DEFAULT_TRSV_LEAF).0
    }

    /// Total stored nonzeros of both factors.
    pub fn nnz(&self) -> usize {
        self.l.nnz() + self.u.nnz()
    }
}

/// An IC(0) factorization `A ≈ L·Lᵀ` packaged for preconditioner
/// application (both triangular solves are non-unit-diagonal).
#[derive(Clone, Debug)]
pub struct Ic0 {
    /// Lower-triangular Cholesky factor (diagonal stored).
    pub l: Csr,
    /// Its transpose, kept materialized so the backward solve streams rows.
    pub lt: Csr,
}

impl Ic0 {
    /// Factorizes an SPD matrix.
    pub fn new(a: &Csr) -> Result<Ic0, FactorError> {
        let l = ic0(a)?;
        let lt = l.transpose();
        Ok(Ic0 { l, lt })
    }

    /// IC(0) with the same bounded diagonal-boosting fallback as
    /// [`ilu0_boosted`]: zero/tiny pivots retry on `A + αI` with a doubling
    /// shift, at most [`MAX_FACTOR_SHIFTS`] attempts, all attempted shifts
    /// returned for breakdown-event recording. A genuinely indefinite
    /// matrix still fails — the largest boost tried is `8·10⁻³·max|a_ii|`,
    /// far below what it would take to make a negative eigenvalue positive
    /// — so boosting repairs borderline pivots without silently
    /// Cholesky-factoring non-SPD systems.
    pub fn new_boosted(a: &Csr) -> Result<(Ic0, Vec<f64>), FactorError> {
        match Ic0::new(a) {
            Ok(f) => return Ok((f, Vec::new())),
            Err(FactorError::NotSquare) => return Err(FactorError::NotSquare),
            Err(_) => {}
        }
        let mut shifts = Vec::new();
        let mut shift = initial_boost_shift(a);
        let mut last = FactorError::ZeroPivot(0);
        for _ in 0..MAX_FACTOR_SHIFTS {
            shifts.push(shift);
            match Ic0::new(&diag_shifted(a, shift)) {
                Ok(f) => return Ok((f, shifts)),
                Err(e) => last = e,
            }
            shift *= 2.0;
        }
        Err(last)
    }

    /// Applies the preconditioner: solves `L Lᵀ z = r` by substitution.
    pub fn apply(&self, r: &[f64]) -> Vec<f64> {
        let y = sptrsv_lower(&self.l, r, false);
        sptrsv_upper(&self.lt, &y, false)
    }

    /// Applies with the recursive-block SpTRSV, returning combined stats.
    pub fn apply_recursive(&self, r: &[f64], leaf: usize) -> (Vec<f64>, RecursiveTrsvStats) {
        let mut y = vec![0.0; r.len()];
        let mut z = vec![0.0; r.len()];
        let stats = self.apply_recursive_into(r, leaf, &mut y, &mut z);
        (z, stats)
    }

    /// In-place [`Self::apply_recursive`] (see [`Ilu0::apply_recursive_into`]).
    pub fn apply_recursive_into(
        &self,
        r: &[f64],
        leaf: usize,
        scratch: &mut [f64],
        z: &mut [f64],
    ) -> RecursiveTrsvStats {
        let s1 = sptrsv_lower_recursive_into(&self.l, r, scratch, false, leaf);
        let s2 = sptrsv_upper_recursive_into(&self.lt, scratch, z, false, leaf);
        combine_trsv(s1, s2)
    }

    /// Total stored nonzeros of both factor copies.
    pub fn nnz(&self) -> usize {
        self.l.nnz() + self.lt.nnz()
    }
}

/// Reusable dense-scatter workspace for [`ic0_row`].
pub struct Ic0Scratch {
    /// Dense scatter of the current row of L (columns <= i).
    dense: Vec<f64>,
    cols: Vec<usize>,
}

impl Ic0Scratch {
    /// Workspace for an `n × n` factorization.
    pub fn new(n: usize) -> Ic0Scratch {
        Ic0Scratch {
            dense: vec![0.0f64; n],
            cols: Vec::new(),
        }
    }
}

/// Factors row `i` of IC(0) against the already-factored rows in
/// `view`. Pure in `(a, i, view)` with the exact serial arithmetic
/// order — see [`ilu0_row`] for the sharing contract.
pub fn ic0_row(
    a: &Csr,
    i: usize,
    view: &impl CholRowsView,
    scratch: &mut Ic0Scratch,
) -> Result<FactorRow, FactorError> {
    let Ic0Scratch { dense, cols } = scratch;
    cols.clear();
    for (c, v) in a.row(i) {
        if c <= i {
            dense[c] = v;
            cols.push(c);
        }
    }
    // l_ij = (a_ij - sum_{k<j} l_ik l_jk) / l_jj  for pattern entries.
    let mut row = Vec::with_capacity(cols.len());
    let mut diag = 0.0f64;
    for &j in cols.iter() {
        let mut s = dense[j];
        // Intersection of row i's current partial entries and row j of L.
        if j < i {
            for &(k, ljk) in view.chol_row(j) {
                if k < j {
                    s -= dense[k] * ljk;
                }
            }
            let v = s / view.chol_diag(j);
            dense[j] = v;
            row.push((j, v));
        } else {
            // diagonal: l_ii = sqrt(a_ii - sum l_ik^2)
            let mut d = s;
            for &(k, lik) in &row {
                let _ = k;
                d -= lik * lik;
            }
            if d <= 0.0 || !d.is_finite() {
                for &c in cols.iter() {
                    dense[c] = 0.0;
                }
                return Err(FactorError::NotSpd(i));
            }
            let v = d.sqrt();
            diag = v;
            row.push((i, v));
        }
    }
    // Clear scatter (scratch is reused across rows and retries).
    for &c in cols.iter() {
        dense[c] = 0.0;
    }
    if unusable_pivot(diag) {
        return Err(FactorError::ZeroPivot(i));
    }
    Ok(FactorRow {
        lower: row,
        upper: Vec::new(),
        diag,
    })
}

/// Accumulates committed IC(0) rows in order; the serial
/// factorization's state and the reference [`CholRowsView`].
pub struct Ic0Rows {
    l_rows: Vec<Vec<(usize, f64)>>,
    ldiag: Vec<f64>,
}

impl Ic0Rows {
    /// Empty accumulator with capacity for `n` rows.
    pub fn with_capacity(n: usize) -> Ic0Rows {
        Ic0Rows {
            l_rows: Vec::with_capacity(n),
            ldiag: Vec::with_capacity(n),
        }
    }

    /// Number of rows committed so far.
    pub fn len(&self) -> usize {
        self.l_rows.len()
    }

    /// True when no rows have been committed.
    pub fn is_empty(&self) -> bool {
        self.l_rows.is_empty()
    }

    /// Appends the next row (rows must arrive in order).
    pub fn push(&mut self, row: FactorRow) {
        self.ldiag.push(row.diag);
        self.l_rows.push(row.lower);
    }

    /// Packages the accumulated rows as the lower Cholesky factor.
    pub fn into_factor(self) -> Csr {
        let n = self.l_rows.len();
        rows_to_csr(n, &self.l_rows)
    }
}

impl CholRowsView for Ic0Rows {
    fn chol_row(&self, j: usize) -> &[(usize, f64)] {
        &self.l_rows[j]
    }
    fn chol_diag(&self, j: usize) -> f64 {
        self.ldiag[j]
    }
}

/// Computes the IC(0) factorization `A ≈ L Lᵀ` of an SPD matrix; returns the
/// lower-triangular factor with the diagonal stored.
///
/// Row-by-row driver over [`ic0_row`] (see [`ilu0`] for the sharing
/// contract with the ticketed pipeline).
pub fn ic0(a: &Csr) -> Result<Csr, FactorError> {
    if a.nrows != a.ncols {
        return Err(FactorError::NotSquare);
    }
    let n = a.nrows;
    let mut rows = Ic0Rows::with_capacity(n);
    let mut scratch = Ic0Scratch::new(n);
    for i in 0..n {
        let row = ic0_row(a, i, &rows, &mut scratch)?;
        rows.push(row);
    }
    Ok(rows.into_factor())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::{Coo, Dense};

    fn tridiag_spd(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 4.0);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
            }
        }
        a.to_csr()
    }

    fn nonsym(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 5.0 + (i % 3) as f64);
            if i > 0 {
                a.push(i, i - 1, -1.5);
            }
            if i + 1 < n {
                a.push(i, i + 1, -0.5);
            }
            if i + 3 < n {
                a.push(i, i + 3, 0.25);
            }
        }
        a.to_csr()
    }

    /// Multiplies L (unit lower) * U as dense, for exactness checks.
    fn lu_product(f: &Ilu0) -> Dense {
        let n = f.l.nrows;
        let mut ld = Dense::from_csr(&f.l);
        for i in 0..n {
            ld[(i, i)] = 1.0;
        }
        let ud = Dense::from_csr(&f.u);
        let mut prod = Dense::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += ld[(i, k)] * ud[(k, j)];
                }
                prod[(i, j)] = s;
            }
        }
        prod
    }

    #[test]
    fn ilu0_of_tridiagonal_is_exact_lu() {
        // A tridiagonal matrix has no fill-in, so ILU(0) == LU and L*U == A.
        let a = tridiag_spd(20);
        let f = ilu0(&a).unwrap();
        let prod = lu_product(&f);
        let ad = Dense::from_csr(&a);
        for i in 0..20 {
            for j in 0..20 {
                assert!(
                    (prod[(i, j)] - ad[(i, j)]).abs() < 1e-12,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn ilu0_apply_solves_exactly_for_no_fill_matrices() {
        let a = tridiag_spd(30);
        let f = ilu0(&a).unwrap();
        let b: Vec<f64> = (0..30).map(|i| (i as f64).sin() + 1.5).collect();
        let z = f.apply(&b);
        // L U z = b exactly (up to roundoff) since ILU==LU here.
        let mut r = vec![0.0; 30];
        a.matvec(&z, &mut r);
        for i in 0..30 {
            assert!((r[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn ilu0_pattern_matches_input() {
        let a = nonsym(25);
        let f = ilu0(&a).unwrap();
        // No fill-in: L and U patterns are subsets of A's pattern.
        for r in 0..25 {
            for (c, _) in f.l.row(r) {
                assert!(a.get(r, c) != 0.0 || c == r, "L fill at ({r},{c})");
                assert!(c < r);
            }
            for (c, _) in f.u.row(r) {
                assert!(a.get(r, c) != 0.0 || c == r, "U fill at ({r},{c})");
                assert!(c >= r);
            }
        }
        assert_eq!(f.nnz(), a.nnz());
    }

    #[test]
    fn ilu0_apply_recursive_matches_plain() {
        let a = nonsym(60);
        let f = ilu0(&a).unwrap();
        let b: Vec<f64> = (0..60).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let plain = f.apply(&b);
        for leaf in [1, 4, 16, 64] {
            let (rec, stats) = f.apply_recursive(&b, leaf);
            for i in 0..60 {
                assert!((plain[i] - rec[i]).abs() < 1e-10 * plain[i].abs().max(1.0));
            }
            assert!(stats.leaves >= 2);
        }
        let d = f.apply_default(&b);
        assert_eq!(d.len(), 60);
    }

    #[test]
    fn ilu0_zero_pivot_detected() {
        let mut a = Coo::new(2, 2);
        a.push(0, 1, 1.0);
        a.push(1, 0, 1.0);
        a.push(1, 1, 1.0);
        // a(0,0) missing -> structural zero pivot.
        assert!(matches!(ilu0(&a.to_csr()), Err(FactorError::ZeroPivot(0))));
    }

    #[test]
    fn ilu0_rejects_rectangular() {
        let a = Coo::new(2, 3).to_csr();
        assert!(matches!(ilu0(&a), Err(FactorError::NotSquare)));
    }

    #[test]
    fn ic0_of_tridiagonal_is_exact_cholesky() {
        let a = tridiag_spd(15);
        let l = ic0(&a).unwrap();
        // L * L^T == A for no-fill matrices.
        let ld = Dense::from_csr(&l);
        let ad = Dense::from_csr(&a);
        for i in 0..15 {
            for j in 0..15 {
                let mut s = 0.0;
                for k in 0..15 {
                    s += ld[(i, k)] * ld[(j, k)];
                }
                assert!((s - ad[(i, j)]).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn ic0_wrapper_applies_preconditioner() {
        let a = tridiag_spd(25);
        let ic = Ic0::new(&a).unwrap();
        let b: Vec<f64> = (0..25).map(|i| (i as f64).cos() + 2.0).collect();
        // Exact Cholesky for tridiagonal: applying M^{-1} solves the system.
        let z = ic.apply(&b);
        let mut r = vec![0.0; 25];
        a.matvec(&z, &mut r);
        for i in 0..25 {
            assert!((r[i] - b[i]).abs() < 1e-10);
        }
        // Recursive application agrees.
        let (z2, stats) = ic.apply_recursive(&b, 4);
        for i in 0..25 {
            assert!((z[i] - z2[i]).abs() < 1e-10);
        }
        assert!(stats.leaves >= 2);
        assert_eq!(ic.nnz(), ic.l.nnz() * 2);
    }

    #[test]
    fn ic0_rejects_indefinite() {
        let mut a = Coo::new(2, 2);
        a.push(0, 0, -1.0);
        a.push(1, 1, 1.0);
        assert!(matches!(ic0(&a.to_csr()), Err(FactorError::NotSpd(0))));
    }

    #[test]
    fn diag_shifted_inserts_missing_diagonal() {
        let mut a = Coo::new(3, 3);
        a.push(0, 1, 2.0); // row 0: no diagonal, off-diag after it
        a.push(1, 1, 5.0); // row 1: diagonal present
        a.push(2, 0, 3.0); // row 2: no diagonal, off-diag before it
        let s = diag_shifted(&a.to_csr(), 0.5);
        assert_eq!(s.get(0, 0), 0.5);
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(1, 1), 5.5);
        assert_eq!(s.get(2, 0), 3.0);
        assert_eq!(s.get(2, 2), 0.5);
        // Columns stay sorted within each row.
        for r in 0..3 {
            let cols: Vec<usize> = s.row(r).map(|(c, _)| c).collect();
            let mut sorted = cols.clone();
            sorted.sort_unstable();
            assert_eq!(cols, sorted, "row {r} unsorted");
        }
    }

    #[test]
    fn ilu0_boosted_recovers_structural_zero_pivot() {
        // (0,0) and (1,1) structurally missing: plain ILU(0) fails, the
        // boosted driver inserts the diagonal and factors A + αI.
        let mut a = Coo::new(4, 4);
        a.push(0, 1, 1.0);
        a.push(1, 0, 1.0);
        a.push(2, 2, 1.0);
        a.push(3, 3, 1.0);
        let a = a.to_csr();
        assert!(matches!(ilu0(&a), Err(FactorError::ZeroPivot(0))));
        let (f, shifts) = ilu0_boosted(&a).unwrap();
        assert!(!shifts.is_empty(), "a shift must have been applied");
        for w in shifts.windows(2) {
            assert_eq!(w[1], 2.0 * w[0], "shift schedule doubles");
        }
        // α‖diag‖ scaling: base is max|a_ii| = 1.
        assert_eq!(shifts[0], 1e-3);
        assert_eq!(f.l.nrows, 4);
        assert_eq!(f.u.nrows, 4);
    }

    #[test]
    fn ilu0_boosted_clean_matrix_is_shift_free() {
        let a = tridiag_spd(12);
        let (f, shifts) = ilu0_boosted(&a).unwrap();
        assert!(shifts.is_empty(), "no breakdown → no shift");
        // Identical to the plain factorization.
        let plain = ilu0(&a).unwrap();
        assert_eq!(f.u.vals, plain.u.vals);
        assert_eq!(f.l.vals, plain.l.vals);
    }

    #[test]
    fn ilu0_boosted_never_retries_shape_errors() {
        let a = Coo::new(2, 3).to_csr();
        assert!(matches!(ilu0_boosted(&a), Err(FactorError::NotSquare)));
    }

    #[test]
    fn ilu0_rejects_subnormal_pivot() {
        // A tiny (subnormal) pivot is as unusable as an exact zero: the
        // 1/pivot multiplier overflows. Must fail, and boosting must fix it.
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 1e-320);
        a.push(0, 1, 1.0);
        a.push(1, 0, 1.0);
        a.push(1, 1, 1.0);
        let a = a.to_csr();
        assert!(matches!(ilu0(&a), Err(FactorError::ZeroPivot(0))));
        let (_, shifts) = ilu0_boosted(&a).unwrap();
        assert!(!shifts.is_empty());
    }

    #[test]
    fn ic0_boosted_recovers_zero_diagonal() {
        // Missing (0,0) entry: plain IC(0) hits a zero pivot; boosting
        // inserts α on the diagonal and succeeds.
        let mut a = Coo::new(2, 2);
        a.push(1, 1, 4.0);
        let a = a.to_csr();
        assert!(Ic0::new(&a).is_err());
        let (ic, shifts) = Ic0::new_boosted(&a).unwrap();
        assert!(!shifts.is_empty());
        assert_eq!(ic.l.nrows, 2);
    }

    #[test]
    fn ic0_boosted_still_rejects_indefinite() {
        // Eigenvalue −1 needs a shift > 1; the bounded schedule tops out at
        // 8e-3·max|a_ii|, so a genuinely indefinite matrix still fails.
        let mut a = Coo::new(2, 2);
        a.push(0, 0, -1.0);
        a.push(1, 1, 1.0);
        assert!(matches!(
            Ic0::new_boosted(&a.to_csr()),
            Err(FactorError::NotSpd(0))
        ));
    }

    #[test]
    fn ilu0_preconditioner_reduces_condition() {
        // For the 2D-Laplacian-like matrix, M^{-1}A should be much closer to
        // identity than A: check ||M^{-1}A - I||_F < ||A - I||_F.
        let a = tridiag_spd(40);
        let f = ilu0(&a).unwrap();
        let n = 40;
        let mut minva = Dense::zeros(n, n);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let mut col = vec![0.0; n];
            a.matvec(&e, &mut col);
            let z = f.apply(&col);
            for i in 0..n {
                minva[(i, j)] = z[i];
            }
        }
        let mut dist_precond = 0.0;
        let ad = Dense::from_csr(&a);
        let mut dist_raw = 0.0;
        for i in 0..n {
            for j in 0..n {
                let idm = if i == j { 1.0 } else { 0.0 };
                dist_precond += (minva[(i, j)] - idm).powi(2);
                dist_raw += (ad[(i, j)] - idm).powi(2);
            }
        }
        assert!(dist_precond.sqrt() < 1e-8, "ILU exact for tridiag");
        assert!(dist_raw.sqrt() > 1.0);
    }
}
