//! Sparse triangular solves (SpTRSV).
//!
//! The preconditioned solvers (paper §III-C last paragraph, §IV-C) apply
//! `M z = r` with `M = L U` from ILU(0), which needs two triangular solves
//! per iteration. Three algorithms are provided:
//!
//! * [`sptrsv_lower`] / [`sptrsv_upper`] — plain substitution (the oracle).
//! * [`level_schedule`] — dependency-level analysis; the number of levels is
//!   what makes SpTRSV latency-bound on GPUs and is fed to the cost model.
//! * [`sptrsv_lower_recursive`] / [`sptrsv_upper_recursive`] — the
//!   **recursive block algorithm** (ref. \[41\]) the paper uses: a triangular
//!   matrix is split into two smaller triangles and one square block; the
//!   square block is applied with SpMV (parallel-friendly), recursing into
//!   the triangles. §IV-C credits this for the large PCG/PBiCGSTAB speedups
//!   on matrices with high-parallelism blocks.

use mf_sparse::Csr;

/// Forward substitution `L x = b`. `unit_diag` treats the diagonal as 1
/// (entries on the diagonal are ignored if present).
///
/// # Panics
/// Panics (in debug) if a non-unit diagonal entry is missing or zero.
pub fn sptrsv_lower(l: &Csr, b: &[f64], unit_diag: bool) -> Vec<f64> {
    assert_eq!(l.nrows, l.ncols);
    assert_eq!(b.len(), l.nrows);
    let n = l.nrows;
    let mut x = b.to_vec();
    for r in 0..n {
        let mut sum = 0.0;
        let mut diag = if unit_diag { 1.0 } else { 0.0 };
        for (c, v) in l.row(r) {
            if c < r {
                sum += v * x[c];
            } else if c == r && !unit_diag {
                diag = v;
            }
        }
        debug_assert!(diag != 0.0, "zero diagonal at row {r}");
        x[r] = (x[r] - sum) / diag;
    }
    x
}

/// Backward substitution `U x = b`.
pub fn sptrsv_upper(u: &Csr, b: &[f64], unit_diag: bool) -> Vec<f64> {
    assert_eq!(u.nrows, u.ncols);
    assert_eq!(b.len(), u.nrows);
    let n = u.nrows;
    let mut x = b.to_vec();
    for r in (0..n).rev() {
        let mut sum = 0.0;
        let mut diag = if unit_diag { 1.0 } else { 0.0 };
        for (c, v) in u.row(r) {
            if c > r {
                sum += v * x[c];
            } else if c == r && !unit_diag {
                diag = v;
            }
        }
        debug_assert!(diag != 0.0, "zero diagonal at row {r}");
        x[r] = (x[r] - sum) / diag;
    }
    x
}

/// Allocation-free [`sptrsv_lower`]: solves `L x = b` into `x`
/// (`x.len() == b.len()`), bitwise-identical to the allocating variant.
/// This is the summation-order reference for the threaded in-kernel
/// SpTRSV — both combine each row's stored entries in CSR order.
pub fn sptrsv_lower_into(l: &Csr, b: &[f64], x: &mut [f64], unit_diag: bool) {
    assert_eq!(l.nrows, l.ncols);
    assert_eq!(b.len(), l.nrows);
    assert_eq!(x.len(), l.nrows);
    for r in 0..l.nrows {
        let mut sum = 0.0;
        let mut diag = if unit_diag { 1.0 } else { 0.0 };
        for (c, v) in l.row(r) {
            if c < r {
                sum += v * x[c];
            } else if c == r && !unit_diag {
                diag = v;
            }
        }
        debug_assert!(diag != 0.0, "zero diagonal at row {r}");
        x[r] = (b[r] - sum) / diag;
    }
}

/// Allocation-free [`sptrsv_upper`]: solves `U x = b` into `x`.
pub fn sptrsv_upper_into(u: &Csr, b: &[f64], x: &mut [f64], unit_diag: bool) {
    assert_eq!(u.nrows, u.ncols);
    assert_eq!(b.len(), u.nrows);
    assert_eq!(x.len(), u.nrows);
    for r in (0..u.nrows).rev() {
        let mut sum = 0.0;
        let mut diag = if unit_diag { 1.0 } else { 0.0 };
        for (c, v) in u.row(r) {
            if c > r {
                sum += v * x[c];
            } else if c == r && !unit_diag {
                diag = v;
            }
        }
        debug_assert!(diag != 0.0, "zero diagonal at row {r}");
        x[r] = (b[r] - sum) / diag;
    }
}

/// Dependency levels of a triangular solve.
#[derive(Clone, Debug, PartialEq)]
pub struct LevelSchedule {
    /// Level of each row (0-based). Rows in the same level are independent.
    pub level_of: Vec<usize>,
    /// Number of levels — the sequential depth of the solve.
    pub num_levels: usize,
    /// Rows per level.
    pub level_sizes: Vec<usize>,
}

/// Computes the dependency levels of a (structurally) triangular matrix.
/// `lower = true` analyses `L` (dependencies are columns `< r`), otherwise
/// `U` (columns `> r`).
pub fn level_schedule(t: &Csr, lower: bool) -> LevelSchedule {
    let n = t.nrows;
    let mut level_of = vec![0usize; n];
    let mut num_levels = 0usize;
    let rows: Box<dyn Iterator<Item = usize>> = if lower {
        Box::new(0..n)
    } else {
        Box::new((0..n).rev())
    };
    for r in rows {
        let mut lvl = 0usize;
        for (c, _) in t.row(r) {
            let dep = if lower { c < r } else { c > r };
            if dep {
                lvl = lvl.max(level_of[c] + 1);
            }
        }
        level_of[r] = lvl;
        num_levels = num_levels.max(lvl + 1);
    }
    let mut level_sizes = vec![0usize; num_levels];
    for &l in &level_of {
        level_sizes[l] += 1;
    }
    LevelSchedule {
        level_of,
        num_levels,
        level_sizes,
    }
}

/// Work statistics of a recursive-block triangular solve, consumed by the
/// cost model (the square-block SpMV part is parallel, the leaf part is
/// level-bound only within each leaf).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecursiveTrsvStats {
    /// Leaf triangles solved by substitution.
    pub leaves: usize,
    /// Rows of the largest leaf (bounds each leaf's sequential depth).
    pub max_leaf_rows: usize,
    /// Nonzeros applied in square-block SpMV updates (parallel work).
    pub spmv_nnz: usize,
    /// Nonzeros consumed inside leaf substitutions (sequential-ish work).
    pub trsv_nnz: usize,
    /// Recursion depth reached.
    pub depth: usize,
}

/// Default leaf size of the recursive algorithm.
pub const DEFAULT_TRSV_LEAF: usize = 64;

/// Recursive-block forward solve `L x = b` (ref. \[41\]).
pub fn sptrsv_lower_recursive(
    l: &Csr,
    b: &[f64],
    unit_diag: bool,
    leaf: usize,
) -> (Vec<f64>, RecursiveTrsvStats) {
    let mut x = vec![0.0; l.nrows];
    let stats = sptrsv_lower_recursive_into(l, b, &mut x, unit_diag, leaf);
    (x, stats)
}

/// In-place [`sptrsv_lower_recursive`]: the solution lands in `x`
/// (length `l.nrows`) without allocating.
pub fn sptrsv_lower_recursive_into(
    l: &Csr,
    b: &[f64],
    x: &mut [f64],
    unit_diag: bool,
    leaf: usize,
) -> RecursiveTrsvStats {
    assert!(leaf >= 1);
    assert_eq!(l.nrows, l.ncols);
    assert_eq!(b.len(), l.nrows);
    assert_eq!(x.len(), l.nrows);
    x.copy_from_slice(b);
    let mut stats = RecursiveTrsvStats::default();
    rec_lower(l, x, 0, l.nrows, unit_diag, leaf, &mut stats, 1);
    stats
}

#[allow(clippy::too_many_arguments)]
fn rec_lower(
    l: &Csr,
    x: &mut [f64],
    lo: usize,
    hi: usize,
    unit: bool,
    leaf: usize,
    stats: &mut RecursiveTrsvStats,
    depth: usize,
) {
    if hi <= lo {
        return;
    }
    stats.depth = stats.depth.max(depth);
    if hi - lo <= leaf {
        // Leaf: substitution using only columns in [lo, hi) — everything to
        // the left has already been applied by ancestor square blocks.
        stats.leaves += 1;
        stats.max_leaf_rows = stats.max_leaf_rows.max(hi - lo);
        for r in lo..hi {
            let mut sum = 0.0;
            let mut diag = if unit { 1.0 } else { 0.0 };
            for (c, v) in l.row(r) {
                if c >= lo && c < r {
                    sum += v * x[c];
                    stats.trsv_nnz += 1;
                } else if c == r && !unit {
                    diag = v;
                }
            }
            debug_assert!(diag != 0.0, "zero diagonal at row {r}");
            x[r] = (x[r] - sum) / diag;
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    rec_lower(l, x, lo, mid, unit, leaf, stats, depth + 1);
    // Square block A21 (rows mid..hi, cols lo..mid) applied as SpMV.
    for r in mid..hi {
        let mut sum = 0.0;
        for (c, v) in l.row(r) {
            if c >= lo && c < mid {
                sum += v * x[c];
                stats.spmv_nnz += 1;
            }
        }
        x[r] -= sum;
    }
    rec_lower(l, x, mid, hi, unit, leaf, stats, depth + 1);
}

/// Recursive-block backward solve `U x = b`.
pub fn sptrsv_upper_recursive(
    u: &Csr,
    b: &[f64],
    unit_diag: bool,
    leaf: usize,
) -> (Vec<f64>, RecursiveTrsvStats) {
    let mut x = vec![0.0; u.nrows];
    let stats = sptrsv_upper_recursive_into(u, b, &mut x, unit_diag, leaf);
    (x, stats)
}

/// In-place [`sptrsv_upper_recursive`]: the solution lands in `x`
/// (length `u.nrows`) without allocating.
pub fn sptrsv_upper_recursive_into(
    u: &Csr,
    b: &[f64],
    x: &mut [f64],
    unit_diag: bool,
    leaf: usize,
) -> RecursiveTrsvStats {
    assert!(leaf >= 1);
    assert_eq!(u.nrows, u.ncols);
    assert_eq!(b.len(), u.nrows);
    assert_eq!(x.len(), u.nrows);
    x.copy_from_slice(b);
    let mut stats = RecursiveTrsvStats::default();
    rec_upper(u, x, 0, u.nrows, unit_diag, leaf, &mut stats, 1);
    stats
}

#[allow(clippy::too_many_arguments)]
fn rec_upper(
    u: &Csr,
    x: &mut [f64],
    lo: usize,
    hi: usize,
    unit: bool,
    leaf: usize,
    stats: &mut RecursiveTrsvStats,
    depth: usize,
) {
    if hi <= lo {
        return;
    }
    stats.depth = stats.depth.max(depth);
    if hi - lo <= leaf {
        stats.leaves += 1;
        stats.max_leaf_rows = stats.max_leaf_rows.max(hi - lo);
        for r in (lo..hi).rev() {
            let mut sum = 0.0;
            let mut diag = if unit { 1.0 } else { 0.0 };
            for (c, v) in u.row(r) {
                if c > r && c < hi {
                    sum += v * x[c];
                    stats.trsv_nnz += 1;
                } else if c == r && !unit {
                    diag = v;
                }
            }
            debug_assert!(diag != 0.0, "zero diagonal at row {r}");
            x[r] = (x[r] - sum) / diag;
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    rec_upper(u, x, mid, hi, unit, leaf, stats, depth + 1);
    // Square block A12 (rows lo..mid, cols mid..hi) applied as SpMV.
    for r in lo..mid {
        let mut sum = 0.0;
        for (c, v) in u.row(r) {
            if c >= mid && c < hi {
                sum += v * x[c];
                stats.spmv_nnz += 1;
            }
        }
        x[r] -= sum;
    }
    rec_upper(u, x, lo, mid, unit, leaf, stats, depth + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::{Coo, Dense};

    fn lower_bidiag(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0 + (i % 3) as f64);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
        }
        a.to_csr()
    }

    fn random_lower(n: usize, extra: usize) -> Csr {
        let mut a = Coo::new(n, n);
        let mut state = 99u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for i in 0..n {
            a.push(i, i, 3.0 + (i % 5) as f64);
        }
        for _ in 0..extra {
            let r = next() % n;
            if r == 0 {
                continue;
            }
            let c = next() % r;
            a.push(r, c, ((next() % 9) as f64 - 4.0) / 2.0);
        }
        a.to_csr()
    }

    #[test]
    fn lower_solve_matches_dense() {
        let l = random_lower(40, 120);
        let b: Vec<f64> = (0..40).map(|i| (i as f64).cos()).collect();
        let x = sptrsv_lower(&l, &b, false);
        let d = Dense::from_csr(&l);
        let xd = d.solve(&b).unwrap();
        for i in 0..40 {
            assert!(
                (x[i] - xd[i]).abs() < 1e-9 * xd[i].abs().max(1.0),
                "row {i}"
            );
        }
    }

    #[test]
    fn upper_solve_matches_dense() {
        let u = random_lower(40, 120).transpose();
        let b: Vec<f64> = (0..40).map(|i| (i as f64).sin() + 2.0).collect();
        let x = sptrsv_upper(&u, &b, false);
        let d = Dense::from_csr(&u);
        let xd = d.solve(&b).unwrap();
        for i in 0..40 {
            assert!(
                (x[i] - xd[i]).abs() < 1e-9 * xd[i].abs().max(1.0),
                "row {i}"
            );
        }
    }

    #[test]
    fn unit_diag_ignores_stored_diagonal() {
        // L = [[7, 0], [2, 7]] with unit_diag: acts like [[1,0],[2,1]].
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 7.0);
        a.push(1, 0, 2.0);
        a.push(1, 1, 7.0);
        let x = sptrsv_lower(&a.to_csr(), &[1.0, 5.0], true);
        assert_eq!(x, vec![1.0, 3.0]);
    }

    #[test]
    fn levels_of_diagonal_matrix_is_one() {
        let mut a = Coo::new(5, 5);
        for i in 0..5 {
            a.push(i, i, 1.0);
        }
        let s = level_schedule(&a.to_csr(), true);
        assert_eq!(s.num_levels, 1);
        assert_eq!(s.level_sizes, vec![5]);
    }

    #[test]
    fn levels_of_bidiagonal_is_n() {
        let l = lower_bidiag(10);
        let s = level_schedule(&l, true);
        assert_eq!(s.num_levels, 10);
        assert!(s.level_of.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn levels_of_upper() {
        let u = lower_bidiag(10).transpose();
        let s = level_schedule(&u, false);
        assert_eq!(s.num_levels, 10);
        assert_eq!(s.level_of[9], 0); // last row solves first
        assert_eq!(s.level_of[0], 9);
    }

    #[test]
    fn block_diagonal_has_few_levels() {
        // Two independent 3-chains: levels = 3, not 6.
        let mut a = Coo::new(6, 6);
        for i in 0..6 {
            a.push(i, i, 1.0);
        }
        a.push(1, 0, 1.0);
        a.push(2, 1, 1.0);
        a.push(4, 3, 1.0);
        a.push(5, 4, 1.0);
        let s = level_schedule(&a.to_csr(), true);
        assert_eq!(s.num_levels, 3);
        assert_eq!(s.level_sizes, vec![2, 2, 2]);
    }

    #[test]
    fn recursive_matches_plain_lower() {
        for leaf in [1, 2, 8, 64] {
            let l = random_lower(100, 400);
            let b: Vec<f64> = (0..100).map(|i| ((i * i) % 17) as f64 - 8.0).collect();
            let plain = sptrsv_lower(&l, &b, false);
            let (rec, stats) = sptrsv_lower_recursive(&l, &b, false, leaf);
            for i in 0..100 {
                assert!(
                    (plain[i] - rec[i]).abs() < 1e-10 * plain[i].abs().max(1.0),
                    "leaf {leaf} row {i}"
                );
            }
            assert!(stats.leaves >= 1);
            assert!(stats.max_leaf_rows <= leaf.max(1));
        }
    }

    #[test]
    fn recursive_matches_plain_upper() {
        for leaf in [1, 4, 32] {
            let u = random_lower(80, 300).transpose();
            let b: Vec<f64> = (0..80).map(|i| (i as f64 * 0.3).sin()).collect();
            let plain = sptrsv_upper(&u, &b, false);
            let (rec, _) = sptrsv_upper_recursive(&u, &b, false, leaf);
            for i in 0..80 {
                assert!(
                    (plain[i] - rec[i]).abs() < 1e-10 * plain[i].abs().max(1.0),
                    "leaf {leaf} row {i}"
                );
            }
        }
    }

    #[test]
    fn recursive_stats_account_all_offdiag_nnz() {
        let l = random_lower(64, 200);
        let b = vec![1.0; 64];
        let (_, stats) = sptrsv_lower_recursive(&l, &b, false, 8);
        // Every strictly-lower nonzero is consumed exactly once, either in a
        // leaf or in a square-block SpMV.
        let strict_lower = l.nnz() - 64; // diagonal entries excluded
        assert_eq!(stats.spmv_nnz + stats.trsv_nnz, strict_lower);
        assert!(stats.spmv_nnz > 0, "recursion must offload work to SpMV");
        assert!(stats.depth > 1);
    }

    #[test]
    fn recursive_unit_diag() {
        let mut a = Coo::new(3, 3);
        a.push(1, 0, 2.0);
        a.push(2, 1, 3.0);
        let (x, _) = sptrsv_lower_recursive(&a.to_csr(), &[1.0, 0.0, 0.0], true, 1);
        assert_eq!(x, vec![1.0, -2.0, 6.0]);
    }

    #[test]
    fn into_variants_bitwise_match_allocating() {
        let l = random_lower(48, 160);
        let u = l.transpose();
        let b: Vec<f64> = (0..48).map(|i| (i as f64 * 0.37).sin() + 0.5).collect();

        let y_alloc = sptrsv_lower(&l, &b, false);
        let mut y = vec![0.0; 48];
        sptrsv_lower_into(&l, &b, &mut y, false);
        assert_eq!(
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y_alloc.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let z_alloc = sptrsv_upper(&u, &y_alloc, true);
        let mut z = vec![0.0; 48];
        sptrsv_upper_into(&u, &y, &mut z, true);
        assert_eq!(
            z.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            z_alloc.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
