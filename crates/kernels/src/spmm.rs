//! Blocked (multi-right-hand-side) kernels for the serving layer.
//!
//! A stream of small solves sharing one operator is the workload shape the
//! ROADMAP's solver-as-a-service targets: `k` conjugate-gradient
//! recurrences advance in lockstep, and the dominant memory traffic — one
//! pass over the tiled matrix — is amortized across all `k` vectors by
//! [`spmm_mixed`] (SpMM instead of `k` SpMVs). The per-tile work the
//! single-vector kernel pays once per solve (flag lookup, bypass test,
//! precision bookkeeping, metadata walks) is paid once per *batch* here.
//!
//! # Layout
//!
//! Multi-vectors are stored **column-major**: a block of `k` vectors of
//! length `n` is one flat `&[f64]` of length `n·k`, column `j` occupying
//! `[j·n, (j+1)·n)`. [`col`]/[`col_mut`] slice out one column.
//!
//! # Determinism contract
//!
//! For every active column `j`, [`spmm_mixed`] performs *exactly* the
//! floating-point operations [`crate::spmv_mixed`] performs for that
//! column's vector, in the same order — per-row partial sums are kept in a
//! register per column and added to `y` once, never accumulated directly
//! across tiles. A batched solve is therefore bitwise identical to the `k`
//! independent solves it replaces (pinned by proptests here and by the
//! blocked-core parity tests in `mf-solver`).

use crate::blas1;
use crate::spmv::{MixedSpmvStats, SharedTiles};
use crate::visflag::VisFlag;
use mf_sparse::TiledMatrix;

/// Column `j` of a column-major `n × k` multi-vector.
#[inline]
pub fn col(v: &[f64], n: usize, j: usize) -> &[f64] {
    &v[j * n..(j + 1) * n]
}

/// Mutable column `j` of a column-major `n × k` multi-vector.
#[inline]
pub fn col_mut(v: &mut [f64], n: usize, j: usize) -> &mut [f64] {
    &mut v[j * n..(j + 1) * n]
}

/// Mixed-precision sparse matrix × multi-vector product
/// `Y[:, j] = A · X[:, j]` for every *active* column `j`, sharing one pass
/// over the tiles (Algorithm 5 generalized to a column block).
///
/// * `x` is column-major `ncols × k`, `y` column-major `nrows × k`.
/// * `active[j] == false` skips column `j` entirely — its `y` column is
///   left untouched (frozen converged columns in the blocked CG core).
/// * `vis_flags` applies to every column (the blocked path runs with the
///   partial-convergence strategy disabled, i.e. all-`Keep` flags; a
///   per-column dynamic strategy would break the shared-tile-pass
///   amortization this kernel exists for).
///
/// Returns the stats of **one** matrix pass (tiles/nnz are counted once,
/// not once per column): the traffic actually paid, which is what the
/// coster charges — the amortization is the point.
pub fn spmm_mixed(
    m: &TiledMatrix,
    shared: &mut SharedTiles,
    vis_flags: &[VisFlag],
    x: &[f64],
    y: &mut [f64],
    active: &[bool],
) -> MixedSpmvStats {
    let k = active.len();
    assert_eq!(x.len(), m.ncols * k, "x must be ncols × k column-major");
    assert_eq!(y.len(), m.nrows * k, "y must be nrows × k column-major");
    assert!(
        vis_flags.len() >= m.tile_cols,
        "need one vis_flag per tile column: {} < {}",
        vis_flags.len(),
        m.tile_cols
    );
    let (n_in, n_out) = (m.ncols, m.nrows);
    for (j, &live) in active.iter().enumerate() {
        if live {
            col_mut(y, n_out, j).fill(0.0);
        }
    }

    let mut stats = MixedSpmvStats::default();
    for i in 0..m.tile_count() {
        let v_f = vis_flags[m.tile_colidx[i] as usize];
        let tile_nnz = (m.tile_nnz[i + 1] - m.tile_nnz[i]) as usize;
        if v_f == VisFlag::Bypass {
            stats.tiles_bypassed += 1;
            stats.nnz_bypassed += tile_nnz;
            continue;
        }
        let (a_lo, a_hi) = (shared.tile_off[i], shared.tile_off[i + 1]);
        if let Some(demanded) = v_f.demanded() {
            if demanded < shared.current_prec[i] {
                shared.current_prec[i] = demanded;
                demanded.quantize_slice(&mut shared.arena[a_lo..a_hi]);
                stats.conversions += 1;
            }
        }
        let exec_prec = shared.current_prec[i];
        stats.tiles_computed += 1;
        stats.nnz_by_prec[exec_prec.tile_code() as usize] += tile_nnz;

        let base_row = m.tile_rowidx[i] as usize * m.tile_size;
        let base_col = m.tile_colidx[i] as usize * m.tile_size;
        let nnz_base = m.tile_nnz[i] as usize;
        let vals = &shared.arena[a_lo..a_hi];
        for ri in m.nonrow[i] as usize..m.nonrow[i + 1] as usize {
            let r = base_row + m.row_index[ri] as usize;
            let (e_lo, e_hi) = (m.csr_rowptr[ri] as usize, m.csr_rowptr[ri + 1] as usize);
            for (j, _) in active.iter().enumerate().filter(|(_, a)| **a) {
                // Per-column register accumulator, added to y once — the
                // exact op sequence of the single-vector kernel, so the
                // column result is bitwise spmv_mixed's.
                let xj = col(x, n_in, j);
                let mut sum = 0.0;
                for e in e_lo..e_hi {
                    sum += vals[e - nnz_base] * xj[base_col + m.csr_colidx[e] as usize];
                }
                y[j * n_out + r] += sum;
            }
        }
    }
    stats
}

/// Per-column dot products `out[j] = (X[:, j], Y[:, j])` for active
/// columns; inactive entries of `out` are left untouched. Each column is
/// [`blas1::dot`] exactly (bitwise).
pub fn dot_block(x: &[f64], y: &[f64], n: usize, active: &[bool], out: &mut [f64]) {
    for (j, _) in active.iter().enumerate().filter(|(_, a)| **a) {
        out[j] = blas1::dot(col(x, n, j), col(y, n, j));
    }
}

/// Per-column AXPY `Y[:, j] += alpha[j] · X[:, j]` for active columns
/// ([`blas1::axpy`] per column, bitwise).
pub fn axpy_block(alpha: &[f64], x: &[f64], y: &mut [f64], n: usize, active: &[bool]) {
    for (j, _) in active.iter().enumerate().filter(|(_, a)| **a) {
        blas1::axpy(alpha[j], col(x, n, j), col_mut(y, n, j));
    }
}

/// Per-column `P[:, j] = X[:, j] + beta[j] · P[:, j]` for active columns
/// ([`blas1::xpay`] per column, bitwise).
pub fn xpay_block(x: &[f64], beta: &[f64], p: &mut [f64], n: usize, active: &[bool]) {
    for (j, _) in active.iter().enumerate().filter(|(_, a)| **a) {
        blas1::xpay(col(x, n, j), beta[j], col_mut(p, n, j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv_mixed;
    use mf_precision::ClassifyOptions;
    use mf_sparse::{Coo, Csr, TiledMatrix};

    fn poisson1d(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 4.0);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
            }
        }
        a.to_csr()
    }

    fn mixed_tiled(a: &Csr) -> TiledMatrix {
        TiledMatrix::from_csr_with(a, 16, &ClassifyOptions::default())
    }

    fn keep(tile_cols: usize) -> Vec<VisFlag> {
        vec![VisFlag::Keep; tile_cols.max(1)]
    }

    fn seeded_vec(n: usize, seed: u64) -> Vec<f64> {
        // Tiny splitmix64-driven values in [-1, 1].
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                (z as f64 / u64::MAX as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn spmm_matches_spmv_per_column_bitwise() {
        let a = poisson1d(137); // non-multiple of the tile size
        let m = mixed_tiled(&a);
        let n = m.nrows;
        let k = 5;
        let flags = keep(m.tile_cols);

        let x: Vec<f64> = (0..k).flat_map(|j| seeded_vec(n, j as u64 + 1)).collect();
        let mut y = vec![f64::NAN; n * k];
        let mut shared = SharedTiles::load(&m);
        let active = vec![true; k];
        let stats = spmm_mixed(&m, &mut shared, &flags, &x, &mut y, &active);

        for j in 0..k {
            let mut shared_j = SharedTiles::load(&m);
            let mut yj = vec![0.0; n];
            let sj = spmv_mixed(&m, &mut shared_j, &flags, col(&x, n, j), &mut yj);
            assert_eq!(col(&y, n, j), &yj[..], "column {j} must be bitwise spmv");
            // One matrix pass: stats equal a single SpMV's, not k of them.
            assert_eq!(stats.nnz_total(), sj.nnz_total());
        }
    }

    #[test]
    fn inactive_columns_are_untouched() {
        let a = poisson1d(64);
        let m = mixed_tiled(&a);
        let n = m.nrows;
        let flags = keep(m.tile_cols);
        let x: Vec<f64> = (0..3).flat_map(|j| seeded_vec(n, j + 10)).collect();
        let mut y = vec![7.5; n * 3];
        let mut shared = SharedTiles::load(&m);
        spmm_mixed(&m, &mut shared, &flags, &x, &mut y, &[true, false, true]);
        assert!(col(&y, n, 1).iter().all(|&v| v == 7.5), "frozen column");
        assert!(col(&y, n, 0).iter().all(|&v| v != 7.5));
    }

    #[test]
    fn k1_is_exactly_spmv() {
        let a = poisson1d(250);
        let m = mixed_tiled(&a);
        let flags = keep(m.tile_cols);
        let x = seeded_vec(m.nrows, 3);
        let mut y1 = vec![0.0; m.nrows];
        let mut y2 = vec![0.0; m.nrows];
        let mut s1 = SharedTiles::load(&m);
        let mut s2 = SharedTiles::load(&m);
        let st1 = spmv_mixed(&m, &mut s1, &flags, &x, &mut y1);
        let st2 = spmm_mixed(&m, &mut s2, &flags, &x, &mut y2, &[true]);
        assert_eq!(y1, y2);
        assert_eq!(st1.nnz_total(), st2.nnz_total());
        assert_eq!(st1.tiles_computed, st2.tiles_computed);
    }

    #[test]
    fn blocked_blas1_matches_per_column() {
        let n = 300;
        let k = 4;
        let x: Vec<f64> = (0..k).flat_map(|j| seeded_vec(n, j as u64)).collect();
        let mut y: Vec<f64> = (0..k).flat_map(|j| seeded_vec(n, j as u64 + 50)).collect();
        let active = [true, true, false, true];
        let alpha = [0.5, -1.25, 99.0, 2.0];

        let mut dots = [0.0f64; 4];
        dot_block(&x, &y, n, &active, &mut dots);
        for j in [0usize, 1, 3] {
            assert_eq!(dots[j], blas1::dot(col(&x, n, j), col(&y, n, j)));
        }
        assert_eq!(dots[2], 0.0, "inactive column untouched");

        let y_before: Vec<f64> = col(&y, n, 2).to_vec();
        axpy_block(&alpha, &x, &mut y, n, &active);
        assert_eq!(col(&y, n, 2), &y_before[..], "inactive column frozen");
        let mut expect = seeded_vec(n, 50);
        blas1::axpy(0.5, col(&x, n, 0), &mut expect);
        assert_eq!(col(&y, n, 0), &expect[..]);
    }
}
