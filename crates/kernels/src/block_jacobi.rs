//! Adaptive-precision block-Jacobi preconditioner.
//!
//! An extension beyond the paper's ILU(0) evaluation, following the
//! mixed-precision preconditioning line its related work cites (Anzt et
//! al., "Adaptive precision in block-Jacobi preconditioning", and Flegar
//! et al. in Ginkgo): `M = blockdiag(A)⁻¹`, with each inverted diagonal
//! block *stored in the narrowest precision its conditioning tolerates* —
//! the same Finding-1 idea applied to the preconditioner instead of the
//! matrix.
//!
//! Application is one small dense mat-vec per block — embarrassingly
//! parallel and GPU-friendly (no dependency levels at all, unlike SpTRSV).

use mf_precision::Precision;
use mf_sparse::{Csr, Dense};

/// Storage-precision selection thresholds on the estimated 1-norm condition
/// number of each block (the Anzt et al. criterion: a block may be stored
/// in precision u if κ·u stays well below 1).
const COND_FP16_MAX: f64 = 1e2;
const COND_FP32_MAX: f64 = 1e6;

/// An adaptive-precision block-Jacobi preconditioner.
#[derive(Clone, Debug)]
pub struct BlockJacobi {
    /// Block edge length.
    pub block: usize,
    /// Matrix dimension.
    pub n: usize,
    /// Inverted diagonal blocks, row-major, quantized to their storage
    /// precision (the trailing block may be smaller than `block`).
    pub inv_blocks: Vec<Vec<f64>>,
    /// Storage precision chosen per block.
    pub prec: Vec<Precision>,
}

/// Failure: a diagonal block was numerically singular.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularBlock(pub usize);

impl std::fmt::Display for SingularBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "singular diagonal block {}", self.0)
    }
}

impl std::error::Error for SingularBlock {}

impl BlockJacobi {
    /// Builds the preconditioner: extracts each `block × block` diagonal
    /// block, inverts it by dense LU, estimates its condition number, picks
    /// a storage precision, and quantizes the inverse accordingly.
    pub fn new(a: &Csr, block: usize) -> Result<BlockJacobi, SingularBlock> {
        assert!(block >= 1);
        assert_eq!(a.nrows, a.ncols, "block-Jacobi needs a square matrix");
        let n = a.nrows;
        let nblocks = n.div_ceil(block);
        let mut inv_blocks = Vec::with_capacity(nblocks);
        let mut prec = Vec::with_capacity(nblocks);

        for b in 0..nblocks {
            let lo = b * block;
            let hi = ((b + 1) * block).min(n);
            let k = hi - lo;
            // Dense copy of the diagonal block.
            let mut d = Dense::zeros(k, k);
            for r in lo..hi {
                for (c, v) in a.row(r) {
                    if c >= lo && c < hi {
                        d[(r - lo, c - lo)] = v;
                    }
                }
            }
            // Invert column by column (k is small).
            let mut inv = vec![0.0f64; k * k];
            let mut norm_a = 0.0f64; // 1-norm of the block
            for j in 0..k {
                let col_sum: f64 = (0..k).map(|i| d[(i, j)].abs()).sum();
                norm_a = norm_a.max(col_sum);
            }
            let mut norm_inv = 0.0f64;
            for j in 0..k {
                let mut e = vec![0.0; k];
                e[j] = 1.0;
                let col = d.solve(&e).ok_or(SingularBlock(b))?;
                let col_sum: f64 = col.iter().map(|v| v.abs()).sum();
                norm_inv = norm_inv.max(col_sum);
                for i in 0..k {
                    inv[i * k + j] = col[i];
                }
            }
            let cond = norm_a * norm_inv;
            let p = if cond < COND_FP16_MAX {
                Precision::Fp16
            } else if cond < COND_FP32_MAX {
                Precision::Fp32
            } else {
                Precision::Fp64
            };
            // Scale-aware quantization: FP16 has a narrow exponent range, so
            // blocks are stored normalized by their largest magnitude and
            // rescaled on application (standard practice in the adaptive
            // block-Jacobi literature).
            let scale = inv
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
                .max(f64::MIN_POSITIVE);
            let mut q = inv.clone();
            for v in &mut q {
                *v = p.quantize(*v / scale) * scale;
            }
            inv_blocks.push(q);
            prec.push(p);
        }
        Ok(BlockJacobi {
            block,
            n,
            inv_blocks,
            prec,
        })
    }

    /// Number of blocks.
    pub fn nblocks(&self) -> usize {
        self.inv_blocks.len()
    }

    /// Applies the preconditioner: `z = M⁻¹ r` (one dense mat-vec per
    /// block).
    pub fn apply(&self, r: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; self.n];
        self.apply_into(r, &mut z);
        z
    }

    /// In-place [`Self::apply`]: every element of `z` is overwritten, so the
    /// solver loops can reuse a workspace buffer without clearing it.
    pub fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n);
        assert_eq!(z.len(), self.n);
        for (b, inv) in self.inv_blocks.iter().enumerate() {
            let lo = b * self.block;
            let hi = ((b + 1) * self.block).min(self.n);
            let k = hi - lo;
            for i in 0..k {
                let mut s = 0.0;
                for j in 0..k {
                    s += inv[i * k + j] * r[lo + j];
                }
                z[lo + i] = s;
            }
        }
    }

    /// Storage bytes of the quantized inverse blocks (the memory the
    /// adaptive precision saves versus all-FP64 storage).
    pub fn storage_bytes(&self) -> usize {
        self.inv_blocks
            .iter()
            .zip(&self.prec)
            .map(|(blk, p)| blk.len() * p.bytes())
            .sum()
    }

    /// FP64-equivalent FLOPs of one application (for the cost model).
    pub fn apply_flops(&self) -> f64 {
        self.inv_blocks
            .iter()
            .zip(&self.prec)
            .map(|(blk, p)| 2.0 * blk.len() as f64 * p.flop_cost())
            .sum()
    }

    /// Histogram of block storage precisions `[FP64, FP32, FP16, FP8]`.
    pub fn precision_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for &p in &self.prec {
            h[p.tile_code() as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::Coo;

    fn tridiag_spd(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 4.0);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
            }
        }
        a.to_csr()
    }

    #[test]
    fn diagonal_matrix_inverts_exactly() {
        let mut a = Coo::new(6, 6);
        for i in 0..6 {
            a.push(i, i, (i + 1) as f64);
        }
        let bj = BlockJacobi::new(&a.to_csr(), 2).unwrap();
        assert_eq!(bj.nblocks(), 3);
        let z = bj.apply(&[1.0; 6]);
        for (i, &zi) in z.iter().enumerate() {
            // inverse entries are 1/(i+1), quantized at block precision
            let expect = 1.0 / (i + 1) as f64;
            assert!((zi - expect).abs() < 1e-3 * expect, "{i}: {zi}");
        }
    }

    #[test]
    fn well_conditioned_blocks_go_narrow() {
        let a = tridiag_spd(64);
        let bj = BlockJacobi::new(&a, 8).unwrap();
        // Tridiagonal diagonal blocks are very well conditioned (< 1e2).
        let h = bj.precision_histogram();
        assert_eq!(h[0], 0, "no FP64 blocks expected: {h:?}");
        assert!(h[2] + h[3] > 0, "FP16 blocks expected: {h:?}");
        // Storage beats all-FP64.
        assert!(bj.storage_bytes() < bj.nblocks() * 8 * 8 * 8);
        assert!(bj.apply_flops() < 2.0 * (bj.nblocks() * 64) as f64);
    }

    #[test]
    fn ill_conditioned_blocks_stay_wide() {
        // Blocks with a 1e9 scale spread -> condition ~1e9 -> FP64.
        let mut a = Coo::new(4, 4);
        a.push(0, 0, 1e9);
        a.push(1, 1, 1.0);
        a.push(2, 2, 1e9);
        a.push(3, 3, 1.0);
        let bj = BlockJacobi::new(&a.to_csr(), 2).unwrap();
        assert_eq!(bj.precision_histogram()[0], 2, "{:?}", bj.prec);
    }

    #[test]
    fn singular_block_reported() {
        let mut a = Coo::new(4, 4);
        a.push(0, 0, 1.0);
        a.push(1, 1, 1.0);
        a.push(2, 2, 1.0);
        // row/col 3 empty -> block 1 singular
        a.push(0, 3, 0.5);
        let err = BlockJacobi::new(&a.to_csr(), 2).unwrap_err();
        assert_eq!(err, SingularBlock(1));
    }

    #[test]
    fn apply_matches_dense_inverse() {
        let a = tridiag_spd(12);
        let bj = BlockJacobi::new(&a, 4).unwrap();
        let r: Vec<f64> = (0..12).map(|i| (i as f64 * 0.7).sin()).collect();
        let z = bj.apply(&r);
        // Oracle: solve each diagonal block densely.
        for b in 0..3 {
            let lo = 4 * b;
            let mut d = Dense::zeros(4, 4);
            for i in 0..4 {
                for j in 0..4 {
                    d[(i, j)] = a.get(lo + i, lo + j);
                }
            }
            let zb = d.solve(&r[lo..lo + 4]).unwrap();
            for i in 0..4 {
                // FP16-quantized storage: compare loosely.
                assert!((z[lo + i] - zb[i]).abs() < 2e-3 * zb[i].abs().max(1.0));
            }
        }
    }

    #[test]
    fn ragged_trailing_block() {
        let a = tridiag_spd(10);
        let bj = BlockJacobi::new(&a, 4).unwrap(); // blocks 4,4,2
        assert_eq!(bj.nblocks(), 3);
        assert_eq!(bj.inv_blocks[2].len(), 4); // 2x2
        let z = bj.apply(&[1.0; 10]);
        assert_eq!(z.len(), 10);
        assert!(z.iter().all(|v| v.is_finite()));
    }
}
