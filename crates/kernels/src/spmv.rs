//! Sparse matrix–vector products.
//!
//! Three kernels, mirroring the paper's implementations:
//!
//! * [`spmv_csr`] / [`spmv_csr_par`] — the FP64 CSR kernel the
//!   cuSPARSE/hipSPARSE baselines call.
//! * [`spmv_tiled`] — the tiled kernel at each tile's *initial* precision.
//! * [`spmv_mixed`] — paper **Algorithm 5**: the tiled kernel driven by the
//!   per-column `vis_flag` demands, with on-chip (shared-memory copy)
//!   precision lowering and tile bypass.

use crate::blas1::DETERMINISTIC_CHUNK;
use crate::visflag::VisFlag;
use mf_precision::Precision;
use mf_sparse::{Csr, TiledMatrix};
use rayon::prelude::*;

/// Reference FP64 CSR SpMV: `y = A x`.
pub fn spmv_csr(a: &Csr, x: &[f64], y: &mut [f64]) {
    a.matvec(x, y);
}

/// Rayon-parallel FP64 CSR SpMV: `y = A x` (row-parallel, like one GPU
/// thread per row).
pub fn spmv_csr_par(a: &Csr, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols);
    assert_eq!(y.len(), a.nrows);
    if a.nrows < DETERMINISTIC_CHUNK {
        return spmv_csr(a, x, y);
    }
    y.par_iter_mut().enumerate().for_each(|(r, yr)| {
        let mut sum = 0.0;
        for k in a.rowptr[r]..a.rowptr[r + 1] {
            sum += a.vals[k] * x[a.colidx[k]];
        }
        *yr = sum;
    });
}

/// Tiled SpMV at initial tile precisions: `y = A x`.
pub fn spmv_tiled(m: &TiledMatrix, x: &[f64], y: &mut [f64]) {
    m.matvec(x, y);
}

/// Rayon-parallel tiled SpMV: tiles are grouped by tile *row*, whose output
/// row ranges are disjoint — so tile rows parallelize without atomics (the
/// CPU analogue of assigning row tiles to independent thread blocks).
pub fn spmv_tiled_par(m: &TiledMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), m.ncols);
    assert_eq!(y.len(), m.nrows);
    if m.nrows < DETERMINISTIC_CHUNK {
        return spmv_tiled(m, x, y);
    }
    // Tiles are stored sorted by (tile_row, tile_col): record each tile
    // row's contiguous range, indexed directly by tile row.
    let t = m.tile_count();
    let mut row_range: Vec<(usize, usize)> = vec![(0, 0); m.tile_rows];
    let mut i = 0;
    while i < t {
        let tr = m.tile_rowidx[i] as usize;
        let lo = i;
        while i < t && m.tile_rowidx[i] as usize == tr {
            i += 1;
        }
        row_range[tr] = (lo, i);
    }
    let ts = m.tile_size;
    // Chunk y by tile row so each task owns its slice exclusively.
    let mut chunks: Vec<&mut [f64]> = Vec::with_capacity(m.tile_rows);
    {
        let mut rest = y;
        for _ in 0..m.tile_rows {
            let take = ts.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            chunks.push(head);
            rest = tail;
        }
    }
    let mut tasks: Vec<(usize, &mut [f64])> = chunks.into_iter().enumerate().collect();
    tasks.par_iter_mut().for_each(|(tr, yslice)| {
        yslice.fill(0.0);
        let (lo, hi) = row_range[*tr];
        m.tile_matvec_span(lo..hi, x, yslice, *tr * ts);
    });
}

/// The "shared memory" copy of the matrix tiles held across iterations by
/// the single-kernel scheme (§III-C). Values are decoded once at load time;
/// the dynamic strategy (§III-D) lowers a tile's precision by requantizing
/// this copy *in place* — a one-way, once-per-level conversion, exactly as
/// the paper describes ("our precision conversion occurs only once in
/// on-chip memory; thereafter, the low-precision values ... can be reused").
///
/// Values live in one flat arena (tile `i` at
/// `tile_off[i]..tile_off[i + 1]`, mirroring `TiledMatrix::tile_nnz`), so a
/// span of whole tile rows owns a contiguous arena range — which is what
/// lets [`spmv_mixed_par`] hand disjoint `&mut` stripes to worker threads
/// with `split_at_mut`, no locks.
#[derive(Clone, Debug)]
pub struct SharedTiles {
    /// Flat arena of decoded values; tile `i` occupies
    /// `arena[tile_off[i]..tile_off[i + 1]]`.
    pub arena: Vec<f64>,
    /// Per-tile arena offsets (prefix sums; `tile_off[tile_count]` is the
    /// total nonzero count).
    pub tile_off: Vec<usize>,
    /// Current (possibly lowered) precision per tile.
    pub current_prec: Vec<Precision>,
    /// Initial precision per tile (from `TilePrec`).
    pub initial_prec: Vec<Precision>,
}

impl SharedTiles {
    /// Loads (decodes) every tile — the one-time off-chip → on-chip copy.
    pub fn load(m: &TiledMatrix) -> SharedTiles {
        let t = m.tile_count();
        let tile_off: Vec<usize> = m.tile_nnz.iter().map(|&o| o as usize).collect();
        let mut arena = vec![0.0; tile_off[t]];
        for i in 0..t {
            m.decode_tile_into(i, &mut arena[tile_off[i]..tile_off[i + 1]]);
        }
        SharedTiles {
            arena,
            tile_off,
            current_prec: m.tile_prec.clone(),
            initial_prec: m.tile_prec.clone(),
        }
    }

    /// A valueless instance carrying only the precision state — for cost
    /// modeling (`Coster::spmv` reads `current_prec` alone) without paying
    /// for a decode of every tile.
    pub fn precision_only(initial_prec: &[Precision]) -> SharedTiles {
        SharedTiles {
            arena: Vec::new(),
            tile_off: vec![0; initial_prec.len() + 1],
            current_prec: initial_prec.to_vec(),
            initial_prec: initial_prec.to_vec(),
        }
    }

    /// Decoded values of tile `i` at its current precision.
    #[inline]
    pub fn tile_values(&self, i: usize) -> &[f64] {
        &self.arena[self.tile_off[i]..self.tile_off[i + 1]]
    }

    /// Lowers tile `i` to `to` if that is strictly narrower than its current
    /// precision, requantizing the on-chip copy. Returns `true` when a
    /// conversion happened.
    pub fn lower_tile(&mut self, i: usize, to: Precision) -> bool {
        if to < self.current_prec[i] {
            self.current_prec[i] = to;
            let (lo, hi) = (self.tile_off[i], self.tile_off[i + 1]);
            to.quantize_slice(&mut self.arena[lo..hi]);
            true
        } else {
            false
        }
    }

    /// Resets every tile to its initial precision by re-decoding from `m`
    /// into the existing arena (used between independent solves on the same
    /// matrix). Performs no allocations.
    pub fn reset(&mut self, m: &TiledMatrix) {
        for i in 0..m.tile_count() {
            let (lo, hi) = (self.tile_off[i], self.tile_off[i + 1]);
            m.decode_tile_into(i, &mut self.arena[lo..hi]);
            self.current_prec[i] = self.initial_prec[i];
        }
    }

    /// Re-tiers tile `i` to `tier` (adaptive controller v2): re-decodes the
    /// tile's *classification-time* stored values from `m` and quantizes
    /// them to the target tier in place — no re-tiling, the tile layout and
    /// arena range are untouched, only the resident values and the
    /// precision tag change.
    ///
    /// Unlike [`SharedTiles::lower_tile`] (the one-way §III-D path, which
    /// deliberately requantizes the *current* on-chip copy), re-tiering
    /// always starts from a fresh decode: quantizing an already-quantized
    /// copy would compound rounding, making the values depend on the plan
    /// history rather than on the plan — and promotion would be impossible.
    /// `current_prec` records the tier's storage precision (scaled FP8
    /// accounts as FP8), so the SpMV statistics and the cost model see the
    /// re-tiered traffic with no kernel changes.
    pub fn retier_tile(&mut self, m: &TiledMatrix, i: usize, tier: mf_precision::TileTier) {
        let (lo, hi) = (self.tile_off[i], self.tile_off[i + 1]);
        m.decode_tile_into(i, &mut self.arena[lo..hi]);
        tier.quantize_slice(&mut self.arena[lo..hi]);
        self.current_prec[i] = tier.storage();
    }

    /// Applies a whole re-tier plan, in action order.
    pub fn apply_retier(&mut self, m: &TiledMatrix, actions: &[mf_precision::RetierAction]) {
        for a in actions {
            self.retier_tile(m, a.tile as usize, a.to);
        }
    }
}

/// Execution statistics of one mixed-precision SpMV — feeds both the cost
/// model (weighted FLOPs/bytes) and the Fig. 11 per-precision accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MixedSpmvStats {
    /// Tiles actually multiplied.
    pub tiles_computed: usize,
    /// Tiles skipped by the bypass rule.
    pub tiles_bypassed: usize,
    /// On-chip precision conversions performed during this call.
    pub conversions: usize,
    /// Nonzeros multiplied, by executed precision `[FP64, FP32, FP16, FP8]`.
    pub nnz_by_prec: [usize; 4],
    /// Nonzeros skipped by bypass.
    pub nnz_bypassed: usize,
}

impl MixedSpmvStats {
    /// FP64-equivalent FLOPs performed (2 per nonzero, weighted by the
    /// executed precision's throughput ratio).
    pub fn weighted_flops(&self) -> f64 {
        let mut f = 0.0;
        for (code, &n) in self.nnz_by_prec.iter().enumerate() {
            let p = Precision::from_tile_code(code as u8).unwrap();
            f += 2.0 * n as f64 * p.flop_cost();
        }
        f
    }

    /// Value bytes touched (per executed precision) — the bandwidth the
    /// kernel would consume if the tile were streamed from global memory;
    /// on-chip resident tiles don't pay it after the first load.
    pub fn value_bytes(&self) -> usize {
        self.nnz_by_prec
            .iter()
            .enumerate()
            .map(|(code, &n)| n * Precision::from_tile_code(code as u8).unwrap().bytes())
            .sum()
    }

    /// Value bytes split per executed precision `[FP64, FP32, FP16, FP8]`
    /// — the per-precision breakdown of [`value_bytes`], recorded as
    /// `SpmvBytes` trace events and summed by the trace-timeline bench.
    ///
    /// [`value_bytes`]: MixedSpmvStats::value_bytes
    pub fn bytes_by_precision(&self) -> [u64; 4] {
        let mut bytes = [0u64; 4];
        for (code, &n) in self.nnz_by_prec.iter().enumerate() {
            bytes[code] = (n * Precision::from_tile_code(code as u8).unwrap().bytes()) as u64;
        }
        bytes
    }

    /// Total nonzeros considered (computed + bypassed).
    pub fn nnz_total(&self) -> usize {
        self.nnz_by_prec.iter().sum::<usize>() + self.nnz_bypassed
    }

    /// Merges another call's stats (per-iteration accumulation).
    pub fn merge(&mut self, o: &MixedSpmvStats) {
        self.tiles_computed += o.tiles_computed;
        self.tiles_bypassed += o.tiles_bypassed;
        self.conversions += o.conversions;
        for i in 0..4 {
            self.nnz_by_prec[i] += o.nnz_by_prec[i];
        }
        self.nnz_bypassed += o.nnz_bypassed;
    }
}

/// Paper **Algorithm 5**: mixed-precision SpMV `y = A x` with per-column
/// precision demands.
///
/// For every tile: look up `vis_flag[TileColidx[i]]`; bypass if demanded;
/// otherwise lower the shared-memory copy once if the demand is narrower
/// than the tile's current precision, and multiply using the (possibly
/// lowered) on-chip values.
///
/// `vis_flags` must have one entry per tile column (`m.tile_cols`) — produced
/// by [`crate::visflag::retrieve_vis_flags`] with `segment_len == tile_size`.
pub fn spmv_mixed(
    m: &TiledMatrix,
    shared: &mut SharedTiles,
    vis_flags: &[VisFlag],
    x: &[f64],
    y: &mut [f64],
) -> MixedSpmvStats {
    check_mixed_inputs(m, vis_flags, x, y);
    y.fill(0.0);
    mixed_span(
        m,
        vis_flags,
        x,
        0..m.tile_count(),
        &shared.tile_off,
        y,
        0,
        &mut shared.arena,
        0,
        &mut shared.current_prec,
    )
}

fn check_mixed_inputs(m: &TiledMatrix, vis_flags: &[VisFlag], x: &[f64], y: &[f64]) {
    assert_eq!(x.len(), m.ncols);
    assert_eq!(y.len(), m.nrows);
    assert!(
        vis_flags.len() >= m.tile_cols,
        "need one vis_flag per tile column: {} < {}",
        vis_flags.len(),
        m.tile_cols
    );
}

/// The Algorithm-5 engine over one contiguous tile span. Both the
/// sequential kernel (one span: every tile) and the stripe-parallel kernel
/// (one span per worker) run *this exact loop*, which is what makes
/// [`spmv_mixed_par`] bitwise-identical to [`spmv_mixed`]: a stripe of
/// whole tile rows owns a disjoint row range of `y` and a contiguous arena
/// range, and within the stripe tiles execute in the same order with the
/// same accumulation order as the sequential engine.
///
/// Slice windows: `y` covers matrix rows `[y_base, y_base + y.len())`,
/// `arena` covers arena indices `[arena_base, ..)`, and `prec` covers tiles
/// `[tiles.start, tiles.end)`. `y` must be pre-zeroed; results accumulate.
#[allow(clippy::too_many_arguments)]
fn mixed_span(
    m: &TiledMatrix,
    vis_flags: &[VisFlag],
    x: &[f64],
    tiles: std::ops::Range<usize>,
    tile_off: &[usize],
    y: &mut [f64],
    y_base: usize,
    arena: &mut [f64],
    arena_base: usize,
    prec: &mut [Precision],
) -> MixedSpmvStats {
    let mut stats = MixedSpmvStats::default();
    let prec_base = tiles.start;
    for i in tiles {
        let v_f = vis_flags[m.tile_colidx[i] as usize];
        let tile_nnz = (m.tile_nnz[i + 1] - m.tile_nnz[i]) as usize;
        if v_f == VisFlag::Bypass {
            stats.tiles_bypassed += 1;
            stats.nnz_bypassed += tile_nnz;
            continue;
        }
        let pi = i - prec_base;
        let (a_lo, a_hi) = (tile_off[i] - arena_base, tile_off[i + 1] - arena_base);
        if let Some(demanded) = v_f.demanded() {
            // One-way in-place lowering of the on-chip copy (§III-D); the
            // stripe owns this arena range exclusively.
            if demanded < prec[pi] {
                prec[pi] = demanded;
                demanded.quantize_slice(&mut arena[a_lo..a_hi]);
                stats.conversions += 1;
            }
        }
        let exec_prec = prec[pi];
        stats.tiles_computed += 1;
        stats.nnz_by_prec[exec_prec.tile_code() as usize] += tile_nnz;

        let base_row = m.tile_rowidx[i] as usize * m.tile_size;
        let base_col = m.tile_colidx[i] as usize * m.tile_size;
        let nnz_base = m.tile_nnz[i] as usize;
        let vals = &arena[a_lo..a_hi];
        for ri in m.nonrow[i] as usize..m.nonrow[i + 1] as usize {
            let r = base_row + m.row_index[ri] as usize;
            let mut sum = 0.0;
            for k in m.csr_rowptr[ri] as usize..m.csr_rowptr[ri + 1] as usize {
                sum += vals[k - nnz_base] * x[base_col + m.csr_colidx[k] as usize];
            }
            // atomicAdd(u[...], sum) in the kernel; plain add here because
            // each span owns its row range exclusively.
            y[r - y_base] += sum;
        }
    }
    stats
}

/// Stripe-parallel mixed-precision SpMV: **bitwise-identical** to
/// [`spmv_mixed`] (outputs *and* stats), the CPU analogue of assigning row
/// tiles to independent thread blocks.
///
/// Tiles are sorted by `(tile_row, tile_col)`, so cutting the tile-row space
/// into `threads` contiguous stripes (balanced by nonzero count) gives every
/// worker a disjoint `y` row range, a contiguous arena range, and a
/// contiguous `current_prec` range — all handed out via `split_at_mut`, so
/// stripes run with no atomics or locks. Precision lowering stays an
/// exclusive in-place write within the owning stripe. Per-stripe stats are
/// merged in stripe order (integer sums — exact).
pub fn spmv_mixed_par(
    m: &TiledMatrix,
    shared: &mut SharedTiles,
    vis_flags: &[VisFlag],
    x: &[f64],
    y: &mut [f64],
    threads: usize,
) -> MixedSpmvStats {
    check_mixed_inputs(m, vis_flags, x, y);
    let t = m.tile_count();
    let threads = threads.max(1).min(m.tile_rows.max(1));
    if threads <= 1 || t == 0 {
        return spmv_mixed(m, shared, vis_flags, x, y);
    }

    // row_start[tr]: first tile index of tile row >= tr (tiles are sorted
    // row-major, so each tile row is one contiguous run).
    let mut row_start = vec![0usize; m.tile_rows + 1];
    {
        let mut i = 0;
        for (tr, slot) in row_start.iter_mut().enumerate() {
            while i < t && (m.tile_rowidx[i] as usize) < tr {
                i += 1;
            }
            *slot = i;
        }
    }

    // Cut the tile-row space into `threads` contiguous stripes balanced by
    // nonzero count.
    let tile_off = shared.tile_off.as_slice();
    let total_nnz = tile_off[t];
    let mut cuts = vec![0usize; threads + 1];
    cuts[threads] = m.tile_rows;
    {
        let mut tr = 0usize;
        for (k, cut) in cuts.iter_mut().enumerate().take(threads).skip(1) {
            let target = total_nnz * k / threads;
            while tr < m.tile_rows && tile_off[row_start[tr]] < target {
                tr += 1;
            }
            *cut = tr;
        }
    }

    // Partition y / arena / current_prec into per-stripe exclusive windows.
    let ts = m.tile_size;
    let nrows = m.nrows;
    struct Stripe<'s> {
        tiles: std::ops::Range<usize>,
        y: &'s mut [f64],
        y_base: usize,
        arena: &'s mut [f64],
        arena_base: usize,
        prec: &'s mut [Precision],
    }
    let mut stripes: Vec<Stripe<'_>> = Vec::with_capacity(threads);
    {
        let mut y_rest: &mut [f64] = y;
        let mut arena_rest: &mut [f64] = &mut shared.arena;
        let mut prec_rest: &mut [Precision] = &mut shared.current_prec;
        let (mut y_pos, mut arena_pos, mut prec_pos) = (0usize, 0usize, 0usize);
        for w in 0..threads {
            let (r0, r1) = (cuts[w], cuts[w + 1]);
            let (t0, t1) = (row_start[r0], row_start[r1]);
            let y_hi = (r1 * ts).min(nrows);
            let (y_span, yr) = y_rest.split_at_mut(y_hi - y_pos);
            y_rest = yr;
            let (a_span, ar) = arena_rest.split_at_mut(tile_off[t1] - arena_pos);
            arena_rest = ar;
            let (p_span, pr) = prec_rest.split_at_mut(t1 - prec_pos);
            prec_rest = pr;
            stripes.push(Stripe {
                tiles: t0..t1,
                y: y_span,
                y_base: y_pos,
                arena: a_span,
                arena_base: arena_pos,
                prec: p_span,
            });
            y_pos = y_hi;
            arena_pos = tile_off[t1];
            prec_pos = t1;
        }
    }

    let parts: Vec<MixedSpmvStats> = std::thread::scope(|s| {
        let handles: Vec<_> = stripes
            .into_iter()
            .map(|stripe| {
                s.spawn(move || {
                    stripe.y.fill(0.0);
                    mixed_span(
                        m,
                        vis_flags,
                        x,
                        stripe.tiles,
                        tile_off,
                        stripe.y,
                        stripe.y_base,
                        stripe.arena,
                        stripe.arena_base,
                        stripe.prec,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("spmv stripe worker panicked"))
            .collect()
    });
    let mut stats = MixedSpmvStats::default();
    for p in &parts {
        stats.merge(p);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_precision::ClassifyOptions;
    use mf_sparse::Coo;

    fn all_keep(n: usize) -> Vec<VisFlag> {
        vec![VisFlag::Keep; n]
    }

    fn sample() -> (Csr, TiledMatrix) {
        let mut a = Coo::new(8, 8);
        // Exact-in-FP8 values on a banded pattern.
        for i in 0..8usize {
            a.push(i, i, 4.0);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
            if i + 1 < 8 {
                a.push(i, i + 1, -2.0);
            }
        }
        let csr = a.to_csr();
        let t = TiledMatrix::from_csr_with(&csr, 2, &ClassifyOptions::default());
        (csr, t)
    }

    #[test]
    fn tiled_parallel_matches_serial() {
        let n = 8_000;
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0);
            a.push(i, (i * 13 + 7) % n, 0.5);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
        }
        let t = TiledMatrix::from_csr_with(&a.to_csr(), 16, &ClassifyOptions::default());
        let x: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        spmv_tiled(&t, &x, &mut y1);
        spmv_tiled_par(&t, &x, &mut y2);
        for i in 0..n {
            assert!((y1[i] - y2[i]).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn csr_serial_and_parallel_agree() {
        let (csr, _) = sample();
        let x: Vec<f64> = (0..8).map(|i| i as f64 - 4.0).collect();
        let mut y1 = vec![0.0; 8];
        let mut y2 = vec![0.0; 8];
        spmv_csr(&csr, &x, &mut y1);
        spmv_csr_par(&csr, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn parallel_large_matches() {
        let n = 10_000;
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0);
            a.push(i, (i * 7 + 1) % n, 0.5);
        }
        let csr = a.to_csr();
        let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        spmv_csr(&csr, &x, &mut y1);
        spmv_csr_par(&csr, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn mixed_with_all_keep_matches_tiled() {
        let (_, t) = sample();
        let mut shared = SharedTiles::load(&t);
        let x: Vec<f64> = (0..8).map(|i| (i + 1) as f64).collect();
        let mut y1 = vec![0.0; 8];
        let mut y2 = vec![0.0; 8];
        spmv_tiled(&t, &x, &mut y1);
        let stats = spmv_mixed(&t, &mut shared, &all_keep(t.tile_cols), &x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(stats.tiles_bypassed, 0);
        assert_eq!(stats.conversions, 0);
        assert_eq!(stats.nnz_total(), t.nnz());
    }

    #[test]
    fn bypass_skips_columns() {
        let (_, t) = sample();
        let mut shared = SharedTiles::load(&t);
        let mut flags = all_keep(t.tile_cols);
        flags[0] = VisFlag::Bypass; // kill tile column 0 (matrix cols 0..2)
        let x = vec![1.0; 8];
        let mut y = vec![0.0; 8];
        let stats = spmv_mixed(&t, &mut shared, &flags, &x, &mut y);
        assert!(stats.tiles_bypassed > 0);
        // Equivalent to multiplying with x zeroed on the bypassed columns.
        let mut x2 = x.clone();
        x2[0] = 0.0;
        x2[1] = 0.0;
        let mut y2 = vec![0.0; 8];
        spmv_tiled(&t, &x2, &mut y2);
        assert_eq!(y, y2);
    }

    #[test]
    fn lowering_happens_once() {
        let (_, t) = sample();
        let mut shared = SharedTiles::load(&t);
        let mut flags = all_keep(t.tile_cols);
        for f in flags.iter_mut() {
            *f = VisFlag::Fp16;
        }
        let x = vec![1.0; 8];
        let mut y = vec![0.0; 8];
        // Values are FP8-exact -> tiles start at FP8, FP16 demand is *wider*,
        // so no conversion may happen (one-way rule).
        let s1 = spmv_mixed(&t, &mut shared, &flags, &x, &mut y);
        assert_eq!(s1.conversions, 0);
        assert!(shared.current_prec.iter().all(|&p| p == Precision::Fp8));
    }

    #[test]
    fn lowering_quantizes_values() {
        // A tile with a value only exact in FP64; demand FP16.
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 0.1);
        let t = TiledMatrix::from_csr_with(&a.to_csr(), 2, &ClassifyOptions::default());
        assert_eq!(t.tile_prec[0], Precision::Fp64);
        let mut shared = SharedTiles::load(&t);
        let flags = vec![VisFlag::Fp16];
        let x = vec![1.0, 1.0];
        let mut y = vec![0.0; 2];
        let s = spmv_mixed(&t, &mut shared, &flags, &x, &mut y);
        assert_eq!(s.conversions, 1);
        assert_eq!(shared.current_prec[0], Precision::Fp16);
        assert_eq!(y[0], Precision::Fp16.quantize(0.1));
        // Second call: no further conversion.
        let s2 = spmv_mixed(&t, &mut shared, &flags, &x, &mut y);
        assert_eq!(s2.conversions, 0);
        // Demanding FP8 later lowers further.
        let s3 = spmv_mixed(&t, &mut shared, &[VisFlag::Fp8], &x, &mut y);
        assert_eq!(s3.conversions, 1);
        assert_eq!(y[0], Precision::Fp8.quantize(Precision::Fp16.quantize(0.1)));
    }

    #[test]
    fn stats_weighted_flops() {
        let s = MixedSpmvStats {
            nnz_by_prec: [10, 0, 0, 80], // 10 FP64 + 80 FP8 nonzeros
            ..Default::default()
        };
        let f = s.weighted_flops();
        assert!((f - (2.0 * 10.0 + 2.0 * 80.0 * 0.125)).abs() < 1e-12);
        assert_eq!(s.value_bytes(), 10 * 8 + 80);
        assert_eq!(s.bytes_by_precision(), [80, 0, 0, 80]);
        assert_eq!(
            s.bytes_by_precision().iter().sum::<u64>() as usize,
            s.value_bytes(),
            "per-precision bytes sum to the total"
        );
    }

    #[test]
    fn stats_merge() {
        let mut a = MixedSpmvStats {
            tiles_computed: 1,
            nnz_by_prec: [1, 0, 0, 0],
            ..Default::default()
        };
        let b = MixedSpmvStats {
            tiles_bypassed: 2,
            nnz_bypassed: 5,
            conversions: 1,
            nnz_by_prec: [0, 0, 0, 3],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.tiles_bypassed, 2);
        assert_eq!(a.nnz_total(), 9);
    }

    #[test]
    fn shared_reset_restores_precision() {
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 0.1);
        let t = TiledMatrix::from_csr_with(&a.to_csr(), 2, &ClassifyOptions::default());
        let mut shared = SharedTiles::load(&t);
        shared.lower_tile(0, Precision::Fp8);
        assert_eq!(shared.current_prec[0], Precision::Fp8);
        shared.reset(&t);
        assert_eq!(shared.current_prec[0], Precision::Fp64);
        assert_eq!(shared.tile_values(0)[0], 0.1);
    }

    #[test]
    fn shared_reset_does_not_allocate() {
        let (_, t) = sample();
        let mut shared = SharedTiles::load(&t);
        let arena_ptr = shared.arena.as_ptr();
        let arena_cap = shared.arena.capacity();
        for i in 0..t.tile_count() {
            shared.lower_tile(i, Precision::Fp8);
        }
        shared.reset(&t);
        assert_eq!(shared.arena.as_ptr(), arena_ptr, "arena reallocated");
        assert_eq!(shared.arena.capacity(), arena_cap);
        for i in 0..t.tile_count() {
            assert_eq!(shared.tile_values(i), t.decode_tile_values(i).as_slice());
            assert_eq!(shared.current_prec[i], shared.initial_prec[i]);
        }
    }

    #[test]
    fn retier_decodes_fresh_not_compounded() {
        use mf_precision::{pick_scale_exp, TileTier};
        // A tile with a value only exact in FP64.
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 0.1);
        let t = TiledMatrix::from_csr_with(&a.to_csr(), 2, &ClassifyOptions::default());
        let mut shared = SharedTiles::load(&t);
        // Degrade the on-chip copy first (the §III-D one-way path)...
        shared.lower_tile(0, Precision::Fp8);
        assert_eq!(shared.tile_values(0)[0], Precision::Fp8.quantize(0.1));
        // ...then re-tier to FP16: the result must be FP16(0.1), NOT
        // FP16(FP8(0.1)) — a fresh decode, not a compounded requantize.
        shared.retier_tile(&t, 0, TileTier::Full(Precision::Fp16));
        assert_eq!(shared.tile_values(0)[0], Precision::Fp16.quantize(0.1));
        assert_eq!(shared.current_prec[0], Precision::Fp16);
        // Promotion back to the classification tier restores the value.
        shared.retier_tile(&t, 0, TileTier::Full(Precision::Fp64));
        assert_eq!(shared.tile_values(0)[0], 0.1);
        // Scaled FP8 applies the scaled codec and accounts as FP8.
        let e = pick_scale_exp(0.1);
        shared.retier_tile(&t, 0, TileTier::ScaledFp8 { scale_exp: e });
        assert_eq!(
            shared.tile_values(0)[0],
            mf_precision::quantize_scaled_e4m3(0.1, e)
        );
        assert_eq!(shared.current_prec[0], Precision::Fp8);
        // Within the documented scaled-FP8 round-trip envelope.
        assert!((shared.tile_values(0)[0] - 0.1).abs() <= 0.1 * 2f64.powi(-4));
    }

    #[test]
    fn mixed_par_bitwise_matches_serial() {
        let n = 4_000;
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 3.0 + (i % 5) as f64 * 0.1);
            a.push(i, (i * 31 + 3) % n, 0.25);
            if i > 0 {
                a.push(i, i - 1, -0.125);
            }
        }
        let t = TiledMatrix::from_csr_with(&a.to_csr(), 8, &ClassifyOptions::default());
        let x: Vec<f64> = (0..n).map(|i| ((i % 23) as f64) * 0.37 - 4.0).collect();
        // Mixed flag pattern: bypass some columns, demand lowering on others.
        let flags: Vec<VisFlag> = (0..t.tile_cols)
            .map(|c| match c % 5 {
                0 => VisFlag::Bypass,
                1 => VisFlag::Fp16,
                2 => VisFlag::Fp8,
                3 => VisFlag::Fp32,
                _ => VisFlag::Keep,
            })
            .collect();
        for threads in [2, 3, 4, 7] {
            let mut sh1 = SharedTiles::load(&t);
            let mut sh2 = SharedTiles::load(&t);
            let mut y1 = vec![0.0; n];
            let mut y2 = vec![0.0; n];
            let s1 = spmv_mixed(&t, &mut sh1, &flags, &x, &mut y1);
            let s2 = spmv_mixed_par(&t, &mut sh2, &flags, &x, &mut y2, threads);
            assert_eq!(s1, s2, "stats differ at {threads} threads");
            assert!(
                y1.iter().zip(&y2).all(|(a, b)| a.to_bits() == b.to_bits()),
                "outputs not bitwise-identical at {threads} threads"
            );
            assert_eq!(sh1.current_prec, sh2.current_prec);
            assert_eq!(sh1.arena, sh2.arena);
        }
    }
}
