//! Criterion companion to **Figure 10**: preconditioned solves — ILU(0)
//! factorization, recursive-block vs level-scheduled preconditioner
//! application, and the full PCG pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_baselines::Baseline;
use mf_collection::named_matrix;
use mf_gpu::DeviceSpec;
use mf_kernels::ilu0;
use mf_solver::{MilleFeuille, SolverConfig};
use std::hint::black_box;

fn cfg() -> SolverConfig {
    SolverConfig {
        fixed_iterations: Some(100),
        ..SolverConfig::default()
    }
}

fn bench_pcg(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_pcg_100iters");
    for name in ["LFAT5000", "mesh3e1"] {
        let a = named_matrix(name).unwrap().generate();
        let ilu = ilu0(&a).expect("ilu0");
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);
        g.bench_with_input(BenchmarkId::new("mille_feuille", name), &a, |bch, a| {
            let solver = MilleFeuille::new(DeviceSpec::a100(), cfg());
            bch.iter(|| solver.solve_pcg_with(black_box(a), black_box(&b), &ilu))
        });
        g.bench_with_input(BenchmarkId::new("cusparse_like", name), &a, |bch, a| {
            let base = Baseline::cusparse();
            bch.iter(|| base.solve_pcg_with(black_box(a), black_box(&b), &cfg(), &ilu))
        });
    }
    g.finish();
}

fn bench_factorize(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_ilu0_factorize");
    for name in ["mesh3e1", "wang1", "garon2"] {
        let a = named_matrix(name).unwrap().generate();
        g.bench_with_input(BenchmarkId::from_parameter(name), &a, |bch, a| {
            bch.iter(|| ilu0(black_box(a)).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pcg, bench_factorize
}
criterion_main!(benches);
