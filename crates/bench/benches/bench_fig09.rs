//! Criterion companion to **Figure 9**: PETSc-like and Ginkgo-like solve
//! pipelines against Mille-feuille on the A100 model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_baselines::Baseline;
use mf_collection::named_matrix;
use mf_gpu::DeviceSpec;
use mf_solver::{MilleFeuille, SolverConfig};
use std::hint::black_box;

fn cfg() -> SolverConfig {
    SolverConfig {
        fixed_iterations: Some(100),
        ..SolverConfig::default()
    }
}

fn bench_libraries(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_libraries_100iters");
    for name in ["mesh3e1", "Muu"] {
        let a = named_matrix(name).unwrap().generate();
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);
        g.bench_with_input(BenchmarkId::new("mille_feuille", name), &a, |bch, a| {
            let solver = MilleFeuille::new(DeviceSpec::a100(), cfg());
            bch.iter(|| solver.solve_cg(black_box(a), black_box(&b)))
        });
        for base in [Baseline::petsc(), Baseline::ginkgo()] {
            let label = base.profile.name.to_lowercase();
            g.bench_with_input(
                BenchmarkId::new(format!("{label}_like"), name),
                &a,
                |bch, a| bch.iter(|| base.solve_cg(black_box(a), black_box(&b), &cfg())),
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_libraries
}
criterion_main!(benches);
