//! Criterion companion to **Figure 11**: mixed precision vs FP64-only
//! configurations of the same solver on precision-diverse matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_collection::{named_matrix, SolverKind};
use mf_gpu::DeviceSpec;
use mf_solver::{MilleFeuille, SolverConfig};
use std::hint::black_box;

fn bench_mixed_vs_fp64(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_mixed_vs_fp64_100iters");
    for name in ["thermal", "wang1", "t2dal_bci"] {
        let m = named_matrix(name).unwrap();
        let a = m.generate();
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);
        for (label, mixed) in [("mixed", true), ("fp64_only", false)] {
            let cfg = SolverConfig {
                fixed_iterations: Some(100),
                mixed_precision: mixed,
                partial_convergence: mixed,
                ..SolverConfig::default()
            };
            g.bench_with_input(BenchmarkId::new(label, name), &a, |bch, a| {
                let solver = MilleFeuille::new(DeviceSpec::a100(), cfg.clone());
                bch.iter(|| match m.kind {
                    SolverKind::Cg => solver.solve_cg(black_box(a), black_box(&b)),
                    SolverKind::Bicgstab => solver.solve_bicgstab(black_box(a), black_box(&b)),
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mixed_vs_fp64
}
criterion_main!(benches);
