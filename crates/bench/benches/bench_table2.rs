//! Criterion companion to **Table II**: converged solves (ε = 1e-10, no
//! fixed iteration count) of the Table II matrices — mixed-precision
//! Mille-feuille vs the FP64 cuSPARSE-like baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_baselines::Baseline;
use mf_collection::named_matrix;
use mf_gpu::DeviceSpec;
use mf_solver::{MilleFeuille, SolverConfig};
use std::hint::black_box;

fn bench_converged_solves(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_converged");
    // The fast-converging subset keeps bench time reasonable.
    let cg = ["mesh3e1", "m3plates"];
    let bi = ["pores_1", "cz308", "Hamrle1"];

    for name in cg {
        let a = named_matrix(name).unwrap().generate();
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);
        g.bench_with_input(BenchmarkId::new("mf_cg", name), &a, |bch, a| {
            let solver = MilleFeuille::with_defaults(DeviceSpec::a100());
            bch.iter(|| solver.solve_cg(black_box(a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("base_cg", name), &a, |bch, a| {
            let base = Baseline::cusparse();
            bch.iter(|| base.solve_cg(black_box(a), black_box(&b), &SolverConfig::default()))
        });
    }
    for name in bi {
        let a = named_matrix(name).unwrap().generate();
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);
        g.bench_with_input(BenchmarkId::new("mf_bicgstab", name), &a, |bch, a| {
            let solver = MilleFeuille::with_defaults(DeviceSpec::a100());
            bch.iter(|| solver.solve_bicgstab(black_box(a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("base_bicgstab", name), &a, |bch, a| {
            let base = Baseline::cusparse();
            bch.iter(|| base.solve_bicgstab(black_box(a), black_box(&b), &SolverConfig::default()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_converged_solves
}
criterion_main!(benches);
