//! Criterion companion to **Figure 8**: wall time of the full Mille-feuille
//! vs vendor-baseline solve pipeline (100 fixed iterations) on three
//! representative matrices per method. The figure binary reports modeled
//! GPU time; this measures the real cost of running the reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_baselines::Baseline;
use mf_collection::named_matrix;
use mf_gpu::DeviceSpec;
use mf_solver::{MilleFeuille, SolverConfig};
use std::hint::black_box;

fn cfg() -> SolverConfig {
    SolverConfig {
        fixed_iterations: Some(100),
        ..SolverConfig::default()
    }
}

fn bench_cg(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_cg_100iters");
    for name in ["bcsstm22", "mesh3e1", "thermal"] {
        let a = named_matrix(name).unwrap().generate();
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);
        g.bench_with_input(BenchmarkId::new("mille_feuille", name), &a, |bch, a| {
            let solver = MilleFeuille::new(DeviceSpec::a100(), cfg());
            bch.iter(|| solver.solve_cg(black_box(a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("cusparse_like", name), &a, |bch, a| {
            let base = Baseline::cusparse();
            bch.iter(|| base.solve_cg(black_box(a), black_box(&b), &cfg()))
        });
    }
    g.finish();
}

fn bench_bicgstab(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_bicgstab_100iters");
    for name in ["pores_1", "mhdb416", "wang1"] {
        let a = named_matrix(name).unwrap().generate();
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);
        g.bench_with_input(BenchmarkId::new("mille_feuille", name), &a, |bch, a| {
            let solver = MilleFeuille::new(DeviceSpec::mi210(), cfg());
            bch.iter(|| solver.solve_bicgstab(black_box(a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("hipsparse_like", name), &a, |bch, a| {
            let base = Baseline::hipsparse();
            bch.iter(|| base.solve_bicgstab(black_box(a), black_box(&b), &cfg()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cg, bench_bicgstab
}
criterion_main!(benches);
