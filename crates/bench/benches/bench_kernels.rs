//! Criterion: real CPU wall time of the computational kernels — CSR vs
//! tiled vs mixed-precision SpMV, BLAS-1, and SpTRSV variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mf_collection::{convdiff2d, poisson2d};
use mf_kernels::{
    blas1, ilu0, retrieve_vis_flags, spmv_csr, spmv_csr_par, spmv_mixed, spmv_tiled,
    spmv_tiled_par, sptrsv_lower, sptrsv_lower_recursive, SharedTiles, VisFlag,
};
use mf_sparse::TiledMatrix;
use std::hint::black_box;

fn bench_spmv(c: &mut Criterion) {
    let a = poisson2d(200, 200);
    let t = TiledMatrix::from_csr(&a);
    let x: Vec<f64> = (0..a.ncols).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut y = vec![0.0; a.nrows];
    let mut shared = SharedTiles::load(&t);
    let keep = vec![VisFlag::Keep; t.tile_cols];

    let mut g = c.benchmark_group("spmv");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("csr", |b| {
        b.iter(|| spmv_csr(black_box(&a), black_box(&x), &mut y))
    });
    g.bench_function("csr_par", |b| {
        b.iter(|| spmv_csr_par(black_box(&a), black_box(&x), &mut y))
    });
    g.bench_function("tiled", |b| {
        b.iter(|| spmv_tiled(black_box(&t), black_box(&x), &mut y))
    });
    g.bench_function("tiled_par", |b| {
        b.iter(|| spmv_tiled_par(black_box(&t), black_box(&x), &mut y))
    });
    g.bench_function("mixed_keep", |b| {
        b.iter(|| spmv_mixed(black_box(&t), &mut shared, &keep, black_box(&x), &mut y))
    });
    let bypass = vec![VisFlag::Bypass; t.tile_cols];
    g.bench_function("mixed_all_bypass", |b| {
        b.iter(|| spmv_mixed(black_box(&t), &mut shared, &bypass, black_box(&x), &mut y))
    });
    g.finish();
}

fn bench_blas1(c: &mut Criterion) {
    let n = 100_000;
    let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let mut y: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();

    let mut g = c.benchmark_group("blas1");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("dot", |b| {
        b.iter(|| blas1::dot(black_box(&x), black_box(&y)))
    });
    g.bench_function("dot_par", |b| {
        b.iter(|| blas1::dot_par(black_box(&x), black_box(&y)))
    });
    g.bench_function("axpy", |b| {
        b.iter(|| blas1::axpy(1.0001, black_box(&x), &mut y))
    });
    g.bench_function("visflag_scan", |b| {
        let mut flags = Vec::new();
        b.iter(|| retrieve_vis_flags(black_box(&y), 16, 1e-10, &mut flags))
    });
    g.finish();
}

fn bench_sptrsv(c: &mut Criterion) {
    let a = convdiff2d(120, 120, 0.5, 0.25);
    let f = ilu0(&a).expect("ilu0");
    let b: Vec<f64> = (0..a.nrows).map(|i| (i as f64 * 0.1).sin()).collect();

    let mut g = c.benchmark_group("sptrsv");
    g.bench_function("lower_plain", |bch| {
        bch.iter(|| sptrsv_lower(black_box(&f.l), black_box(&b), true))
    });
    for leaf in [16usize, 64, 256] {
        g.bench_with_input(
            BenchmarkId::new("lower_recursive", leaf),
            &leaf,
            |bch, &leaf| {
                bch.iter(|| sptrsv_lower_recursive(black_box(&f.l), black_box(&b), true, leaf))
            },
        );
    }
    g.bench_function("ilu_apply", |bch| {
        bch.iter(|| f.apply_default(black_box(&b)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spmv, bench_blas1, bench_sptrsv
}
criterion_main!(benches);
