//! Criterion: preprocessing costs — tiled-format construction (the Fig. 14
//! subject), precision classification, and packed value decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mf_collection::{circuit_like, poisson2d, random_spd, ValueClass};
use mf_precision::{classify_value, ClassifyOptions};
use mf_sparse::TiledMatrix;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let cases = vec![
        ("poisson_200x200", poisson2d(200, 200)),
        ("random_spd_20k", random_spd(20_000, 6, ValueClass::Real, 1)),
        ("circuit_16k", circuit_like(2_000, 8, 8_000, 0.05, 2)),
    ];
    let mut g = c.benchmark_group("tiled_build");
    for (name, a) in &cases {
        g.throughput(Throughput::Elements(a.nnz() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), a, |b, a| {
            b.iter(|| TiledMatrix::from_csr(black_box(a)))
        });
    }
    g.finish();
}

fn bench_classify(c: &mut Criterion) {
    let a = circuit_like(2_000, 8, 8_000, 0.05, 3);
    let opts = ClassifyOptions::default();
    let mut g = c.benchmark_group("classify");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("per_nonzero", |b| {
        b.iter(|| {
            let mut h = [0usize; 4];
            for &v in &a.vals {
                h[classify_value(black_box(v), &opts).tile_code() as usize] += 1;
            }
            h
        })
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let a = poisson2d(150, 150);
    let t = TiledMatrix::from_csr(&a);
    let mut g = c.benchmark_group("tile_decode");
    g.throughput(Throughput::Elements(t.nnz() as u64));
    g.bench_function("decode_all_tiles", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..t.tile_count() {
                for v in t.decode_tile_values(i) {
                    total += v;
                }
            }
            total
        })
    });
    g.bench_function("shared_tiles_load", |b| {
        b.iter(|| mf_kernels::SharedTiles::load(black_box(&t)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_build, bench_classify, bench_decode
}
criterion_main!(benches);
