//! Summary statistics (the paper reports geometric-mean and maximum
//! speedups per comparison).

/// Geometric mean of positive values (ignores non-finite/non-positive).
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .filter(|v| v.is_finite() && **v > 0.0)
        .map(|v| v.ln())
        .collect();
    if logs.is_empty() {
        return f64::NAN;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Maximum of finite values.
pub fn max_speedup(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::NAN, f64::max)
}

/// Geomean/max/min summary of a speedup population.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeedupSummary {
    /// Geometric mean.
    pub geomean: f64,
    /// Maximum.
    pub max: f64,
    /// Minimum.
    pub min: f64,
    /// Population size.
    pub count: usize,
    /// Fraction of cases with speedup > 1.
    pub win_rate: f64,
}

/// Summarizes a speedup population.
pub fn summarize(speedups: &[f64]) -> SpeedupSummary {
    let finite: Vec<f64> = speedups
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    let wins = finite.iter().filter(|v| **v > 1.0).count();
    SpeedupSummary {
        geomean: geomean(&finite),
        max: max_speedup(&finite),
        min: finite.iter().copied().fold(f64::NAN, f64::min),
        count: finite.len(),
        win_rate: if finite.is_empty() {
            0.0
        } else {
            wins as f64 / finite.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn geomean_ignores_bad_values() {
        assert!((geomean(&[1.0, 4.0, f64::NAN, -3.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary() {
        let s = summarize(&[2.0, 8.0, 0.5]);
        assert!((s.geomean - 2.0).abs() < 1e-12);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.count, 3);
        assert!((s.win_rate - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_of_empty_is_nan() {
        assert!(max_speedup(&[]).is_nan());
    }
}
