//! Serving-layer amortization: preprocessing cache and batched multi-RHS
//! solves (ROADMAP "solver-as-a-service", mf-serve crate).
//!
//! Two measurements over [`mf_serve::SolveService`], both gated (exit 1 on
//! failure):
//!
//! 1. **Cache amortization** — replay a seeded trace of single-solve
//!    requests (Zipf-ish skew over a small matrix pool, fresh right-hand
//!    side every request, ILU(0)-preconditioned solves so preparation
//!    includes the factorization). Two services run the *same* trace:
//!    a cold service whose admission cap is zero (every request rebuilds —
//!    the no-cache baseline) and a warm service with the default cache,
//!    primed by one pass over the pool. Per-request latency → p50 / p99 /
//!    requests-per-second. Gate: warm p50 ≥ 3× better than cold p50, and
//!    warm answers bitwise equal cold answers (amortization must not
//!    change numbers).
//! 2. **Batch amortization** — `k` requests sharing one (warm) matrix:
//!    one lockstep `solve_batch` of all `k` vs `k` individual solves of
//!    the same right-hand sides (the never-batched path). Both amortize
//!    preparation via the cache, so the difference is purely the one-pass-
//!    per-iteration SpMM. Gate: batched requests/sec > individual
//!    requests/sec, again with bitwise-equal answers.
//!
//! Output: `bench_out/fig_serve.csv` + `BENCH_serve.json`.
//!
//! Env knobs: `MF_SERVE_GRID` (smallest Poisson proxy side, default 20),
//! `MF_SERVE_MATS` (pool size, default 4), `MF_SERVE_REQS` (trace length,
//! default 96), `MF_SERVE_ITERS` (per-request refinement budget, default 3;
//! the trace models the real-time serving pattern — a fixed small amount of
//! iterative refinement per request, the same fixed-budget regime the
//! paper's performance figures use — so preparation dominates the request;
//! 0 switches the trace to tolerance mode), `MF_SERVE_TOL` (trace-solve
//! tolerance in tolerance mode, default 1e-6; the batch workload keeps the
//! solver default), `MF_SERVE_BATCH`
//! (k of the batch workload, default 8), `MF_SERVE_REPS` (timed reps of
//! both workloads — per-request/min-of-reps, every rep bitwise-identical —
//! default 3), `MF_SERVE_WARM_GATE` (required cold/warm p50 ratio,
//! default 3.0).

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

use mf_bench::{write_csv, Table};
use mf_collection::poisson2d;
use mf_serve::{CacheConfig, ServeConfig, SolveService};
use mf_sparse::Csr;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn seeded_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
        .collect()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

struct TraceStats {
    p50_us: f64,
    p99_us: f64,
    rps: f64,
}

/// Replays `requests` against `svc` `reps` times, returning latency stats
/// (per-request min across reps — every replay is bitwise-deterministic,
/// so the min is the same work with the least scheduler noise) and the
/// solutions of the first pass (for the bitwise gate).
fn replay(
    svc: &SolveService,
    mats: &[Csr],
    requests: &[(usize, Vec<f64>)],
    reps: usize,
) -> (TraceStats, Vec<Vec<f64>>) {
    let mut lat_us: Vec<f64> = vec![f64::INFINITY; requests.len()];
    let mut xs: Vec<Vec<f64>> = Vec::with_capacity(requests.len());
    let mut total_s = f64::INFINITY;
    for rep in 0..reps {
        let t0 = Instant::now();
        for (i, (mi, b)) in requests.iter().enumerate() {
            let t = Instant::now();
            let out = svc.solve(&mats[*mi], b);
            lat_us[i] = lat_us[i].min(t.elapsed().as_secs_f64() * 1e6);
            if rep == 0 {
                xs.push(out.report.x);
            }
        }
        total_s = total_s.min(t0.elapsed().as_secs_f64());
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (
        TraceStats {
            p50_us: percentile(&lat_us, 0.50),
            p99_us: percentile(&lat_us, 0.99),
            rps: requests.len() as f64 / total_s,
        },
        xs,
    )
}

fn main() {
    let grid = env_usize("MF_SERVE_GRID", 20).max(4);
    let mats_count = env_usize("MF_SERVE_MATS", 4).max(1);
    let reqs = env_usize("MF_SERVE_REQS", 96).max(8);
    let trace_tol = env_f64("MF_SERVE_TOL", 1e-6);
    let trace_iters = env_usize("MF_SERVE_ITERS", 3);
    let batch_k = env_usize("MF_SERVE_BATCH", 8).max(2);
    let reps = env_usize("MF_SERVE_REPS", 3).max(1);
    let warm_gate = env_f64("MF_SERVE_WARM_GATE", 3.0);

    // ---- Matrix pool: distinct Poisson proxies (distinct fingerprints).
    let mats: Vec<Csr> = (0..mats_count)
        .map(|i| poisson2d(grid + 2 * i, grid + 2 * i))
        .collect();
    println!(
        "fig_serve: {} matrices (n = {}..{}), {} requests, batch k = {}",
        mats.len(),
        mats.first().unwrap().nrows,
        mats.last().unwrap().nrows,
        reqs,
        batch_k
    );

    // ---- Seeded request trace: skewed matrix choice, fresh RHS each.
    let mut state = 0x5eed_f00d_u64;
    let requests: Vec<(usize, Vec<f64>)> = (0..reqs)
        .map(|_| {
            // Square the draw to skew toward low indices (hot matrices).
            let u = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            let mi = ((u * u) * mats.len() as f64) as usize % mats.len();
            let b = seeded_vec(mats[mi].nrows, splitmix(&mut state));
            (mi, b)
        })
        .collect();

    // ---- 1. Cache amortization: cold (admission-disabled) vs warm. ----
    let trace_solver = mf_serve::SolverConfig {
        tolerance: trace_tol,
        fixed_iterations: (trace_iters > 0).then_some(trace_iters),
        ..mf_serve::SolverConfig::default()
    };
    let cold_svc = SolveService::new(ServeConfig {
        precondition: true,
        solver: trace_solver.clone(),
        cache: CacheConfig {
            max_entry_bytes: 0, // nothing is ever admitted: the no-cache baseline
            ..CacheConfig::default()
        },
        ..ServeConfig::default()
    });
    let warm_svc = SolveService::new(ServeConfig {
        precondition: true,
        solver: trace_solver,
        ..ServeConfig::default()
    });
    // Prime the warm service: one pass over the pool pays each build once.
    for (i, a) in mats.iter().enumerate() {
        warm_svc.solve(a, &seeded_vec(a.nrows, 0xAB + i as u64));
    }

    let (cold, cold_xs) = replay(&cold_svc, &mats, &requests, reps);
    let (warm, warm_xs) = replay(&warm_svc, &mats, &requests, reps);
    let bitwise_trace = cold_xs == warm_xs;
    let speedup_p50 = cold.p50_us / warm.p50_us;

    let cs = cold_svc.cache_stats();
    let wsstats = warm_svc.cache_stats();
    println!(
        "cold:  p50 {:.1} µs  p99 {:.1} µs  {:.0} req/s  (builds {})",
        cold.p50_us, cold.p99_us, cold.rps, cs.builds
    );
    println!(
        "warm:  p50 {:.1} µs  p99 {:.1} µs  {:.0} req/s  (hits {} misses {})",
        warm.p50_us, warm.p99_us, warm.rps, wsstats.hits, wsstats.misses
    );
    println!("warm-cache p50 speedup: {speedup_p50:.2}x (gate >= {warm_gate:.1}x)");
    assert_eq!(
        cs.builds as usize,
        reqs * reps,
        "cold baseline must rebuild every request"
    );
    assert_eq!(
        wsstats.misses as usize,
        mats.len(),
        "warm service builds each matrix exactly once (priming)"
    );

    let cache_pass = speedup_p50 >= warm_gate && bitwise_trace;
    if !bitwise_trace {
        eprintln!("FAIL: warm answers diverge from cold answers");
    }
    if speedup_p50 < warm_gate {
        eprintln!("FAIL: warm p50 speedup {speedup_p50:.2}x below gate {warm_gate:.1}x");
    }

    // ---- 2. Batch amortization: one solve_batch(k) vs k singles. ----
    let a = &mats[0];
    let batch_rhss: Vec<Vec<f64>> = (0..batch_k)
        .map(|j| seeded_vec(a.nrows, 0xBA7C_0000 + j as u64))
        .collect();
    let batch_svc = SolveService::new(ServeConfig::default());
    batch_svc.prepare(a); // warm: isolate the SpMM amortization

    let mut batched_us = f64::INFINITY;
    let mut individual_us = f64::INFINITY;
    let mut batched_out = Vec::new();
    let mut individual_out: Vec<Vec<f64>> = Vec::new();
    for rep in 0..=reps {
        let t = Instant::now();
        let out = batch_svc.solve_batch(a, &batch_rhss);
        let us = t.elapsed().as_secs_f64() * 1e6;
        if rep > 0 {
            batched_us = batched_us.min(us);
        }
        batched_out = out;

        let t = Instant::now();
        let solo: Vec<Vec<f64>> = batch_rhss
            .iter()
            .map(|b| {
                batch_svc.solve_batch(a, std::slice::from_ref(b))[0]
                    .x
                    .clone()
            })
            .collect();
        let us = t.elapsed().as_secs_f64() * 1e6;
        if rep > 0 {
            individual_us = individual_us.min(us);
        }
        individual_out = solo;
    }
    let batched_rps = batch_k as f64 / (batched_us / 1e6);
    let individual_rps = batch_k as f64 / (individual_us / 1e6);
    let bitwise_batch = batched_out
        .iter()
        .zip(&individual_out)
        .all(|(o, s)| &o.x == s);
    let all_batched = batched_out.iter().all(|o| o.batched);
    println!(
        "batch k={batch_k}: batched {:.1} µs ({batched_rps:.0} req/s) vs individual {:.1} µs ({individual_rps:.0} req/s)",
        batched_us, individual_us
    );

    let batch_pass = batched_rps > individual_rps && bitwise_batch && all_batched;
    if !bitwise_batch {
        eprintln!("FAIL: batched answers diverge from individual answers");
    }
    if !all_batched {
        eprintln!("FAIL: columns unexpectedly left the lockstep on an SPD pool");
    }
    if batched_rps <= individual_rps {
        eprintln!("FAIL: batching did not beat {batch_k} independent solves ({batched_rps:.0} vs {individual_rps:.0} req/s)");
    }

    // ---- CSV ----
    let mut table = Table::new(vec![
        "workload", "variant", "requests", "p50_us", "p99_us", "rps",
    ]);
    for (variant, s) in [("cold", &cold), ("warm", &warm)] {
        table.row(vec![
            "trace".to_string(),
            variant.to_string(),
            reqs.to_string(),
            format!("{:.1}", s.p50_us),
            format!("{:.1}", s.p99_us),
            format!("{:.1}", s.rps),
        ]);
    }
    for (variant, us, rps) in [
        ("individual", individual_us, individual_rps),
        ("batched", batched_us, batched_rps),
    ] {
        table.row(vec![
            "batch".to_string(),
            variant.to_string(),
            batch_k.to_string(),
            format!("{:.1}", us / batch_k as f64), // per-request
            "-".to_string(),
            format!("{rps:.1}"),
        ]);
    }
    println!("{}", table.render());
    let csv = write_csv("fig_serve", &table).expect("write csv");
    println!("wrote {}", csv.display());

    // ---- JSON (hand-rolled; no serde in the offline workspace). ----
    let pass = cache_pass && batch_pass;
    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"bench\": \"fig_serve\",\n",
            "  \"pool\": {{\"matrices\": {mats}, \"grid_min\": {grid}, \"n_min\": {nmin}, \"n_max\": {nmax}}},\n",
            "  \"trace\": {{\n",
            "    \"requests\": {reqs},\n",
            "    \"fixed_iters_per_request\": {titers},\n",
            "    \"cold\": {{\"p50_us\": {cp50:.1}, \"p99_us\": {cp99:.1}, \"rps\": {crps:.1}, \"builds\": {cbuilds}}},\n",
            "    \"warm\": {{\"p50_us\": {wp50:.1}, \"p99_us\": {wp99:.1}, \"rps\": {wrps:.1}, \"hits\": {whits}, \"misses\": {wmiss}}},\n",
            "    \"p50_speedup\": {sp:.3},\n",
            "    \"bitwise_warm_eq_cold\": {bw},\n",
            "    \"gate_min_speedup\": {gate:.1},\n",
            "    \"pass\": {cpass}\n",
            "  }},\n",
            "  \"batch\": {{\n",
            "    \"k\": {k},\n",
            "    \"individual\": {{\"wall_us\": {ius:.1}, \"rps\": {irps:.1}}},\n",
            "    \"batched\": {{\"wall_us\": {bus:.1}, \"rps\": {brps:.1}}},\n",
            "    \"rps_speedup\": {bsp:.3},\n",
            "    \"bitwise_batched_eq_individual\": {bbw},\n",
            "    \"pass\": {bpass}\n",
            "  }},\n",
            "  \"pass\": {pass}\n",
            "}}\n"
        ),
        mats = mats.len(),
        grid = grid,
        nmin = mats.first().unwrap().nrows,
        nmax = mats.last().unwrap().nrows,
        reqs = reqs,
        titers = trace_iters,
        cp50 = cold.p50_us,
        cp99 = cold.p99_us,
        crps = cold.rps,
        cbuilds = cs.builds,
        wp50 = warm.p50_us,
        wp99 = warm.p99_us,
        wrps = warm.rps,
        whits = wsstats.hits,
        wmiss = wsstats.misses,
        sp = speedup_p50,
        bw = bitwise_trace,
        gate = warm_gate,
        cpass = cache_pass,
        k = batch_k,
        ius = individual_us,
        irps = individual_rps,
        bus = batched_us,
        brps = batched_rps,
        bsp = batched_rps / individual_rps,
        bbw = bitwise_batch,
        bpass = batch_pass,
        pass = pass,
    );
    let mut f = std::fs::File::create("BENCH_serve.json").expect("create BENCH_serve.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    if !pass {
        eprintln!("FAIL: fig_serve gates");
        std::process::exit(1);
    }
    println!("fig_serve gates PASS");
}
