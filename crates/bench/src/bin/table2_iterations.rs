//! **Table II**: iteration counts and solve times of the 14 matrices that
//! converge within 200 iterations — FP64 cuSPARSE baseline vs the
//! mixed-precision Mille-feuille.
//!
//! Paper reference: mixed precision costs on average 1.06× (up to 1.47×)
//! more iterations, yet every solve is faster thanks to the single-kernel
//! scheme and the cheaper tiles (e.g. mesh3e1: 53 vs 36 iterations but
//! 2.89× faster; pores_1: same 43 iterations, 5.83× faster).

use mf_baselines::Baseline;
use mf_bench::{barriers_per_iter, harness::paper_rhs, metric_cell, write_csv, Table};
use mf_collection::{named_matrix, table2_names};
use mf_gpu::DeviceSpec;
use mf_solver::{MilleFeuille, SolverConfig};

fn main() {
    println!("Table II — iterations and solve time, converged runs (ε = 1e-10)\n");
    let (cg_names, bi_names) = table2_names();
    let mut table = Table::new(vec![
        "method",
        "matrix",
        "base_iters",
        "base_ms",
        "mf_iters",
        "mf_ms",
        "iter_ratio",
        "time_speedup",
        "mf_status",
        "barriers_iter",
    ]);

    println!(
        "{:<8} {:<16} | {:>10} {:>10} | {:>8} {:>8} | {:>6} {:>8} | status  b/iter",
        "method", "matrix", "base iter", "base ms", "mf iter", "mf ms", "iterx", "speedup"
    );

    let mut iter_ratios = Vec::new();
    let mut run = |method: &str, name: &str| {
        let m = named_matrix(name).expect("named proxy");
        let a = m.generate();
        let b = paper_rhs(&a);
        let cfg = SolverConfig::default();
        let solver = MilleFeuille::new(DeviceSpec::a100(), cfg.clone());
        let base = Baseline::cusparse();
        let (mf, bl) = if method == "CG" {
            (solver.solve_cg(&a, &b), base.solve_cg(&a, &b, &cfg))
        } else {
            (
                solver.solve_bicgstab(&a, &b),
                base.solve_bicgstab(&a, &b, &cfg),
            )
        };
        let ratio = mf.iterations as f64 / bl.iterations.max(1) as f64;
        let speedup = bl.solve_us() / mf.solve_us();
        let status = mf.status_label();
        // Tracing is off here, and the sequential model cores record no
        // barrier epochs anyway, so this renders `-`; the fig_pipeline
        // bench's threaded runs are where the column carries numbers.
        let barriers = metric_cell(barriers_per_iter(mf.trace.as_ref()));
        iter_ratios.push(ratio);
        println!(
            "{:<8} {:<16} | {:>10} {:>10.3} | {:>8} {:>8.3} | {:>5.2}x {:>7.2}x | {}  {}{}",
            method,
            name,
            bl.iterations,
            bl.solve_us() / 1e3,
            mf.iterations,
            mf.solve_us() / 1e3,
            ratio,
            speedup,
            status,
            barriers,
            if bl.converged { "" } else { "  [base !conv]" },
        );
        table.row(vec![
            method.to_string(),
            name.to_string(),
            bl.iterations.to_string(),
            format!("{:.4}", bl.solve_us() / 1e3),
            mf.iterations.to_string(),
            format!("{:.4}", mf.solve_us() / 1e3),
            format!("{ratio:.3}"),
            format!("{speedup:.3}"),
            status,
            barriers,
        ]);
    };

    for name in cg_names {
        run("CG", name);
    }
    for name in bi_names {
        run("BiCGSTAB", name);
    }

    let mean = iter_ratios.iter().sum::<f64>() / iter_ratios.len() as f64;
    let max = iter_ratios.iter().copied().fold(0.0, f64::max);
    println!(
        "\nmixed-precision iteration overhead: mean {mean:.2}x, max {max:.2}x (paper: 1.06x mean, 1.47x max)"
    );
    let path = write_csv("table2_iterations", &table).unwrap();
    println!("csv -> {}", path.display());
}
