//! **Ablation**: tile size sweep (4/8/16/32) — the paper fixes 16×16; this
//! shows the trade: smaller tiles classify more precisely (narrower
//! storage) but multiply metadata; larger tiles amortize metadata but get
//! forced wide by any single demanding nonzero.

use mf_bench::{harness::paper_rhs, iters_from_env, write_csv, Table};
use mf_collection::{named_matrix, SolverKind};
use mf_gpu::DeviceSpec;
use mf_solver::{MilleFeuille, SolverConfig};
use mf_sparse::TiledMatrix;

fn main() {
    let iters = iters_from_env();
    println!("Ablation — tile size (A100, {iters} iterations)\n");
    let names = ["garon2", "nmos3", "shallow_water1", "thermomech_TC", "poli"];
    let mut table = Table::new(vec![
        "name",
        "tile",
        "tiles",
        "mem_ratio_vs_csr",
        "fp8_tiles",
        "fp64_tiles",
        "solve_us",
    ]);

    for name in names {
        let m = named_matrix(name).expect("named proxy");
        let a = m.generate();
        let b = paper_rhs(&a);
        println!("{name} (nnz {}):", a.nnz());
        println!(
            "  {:>5} {:>9} {:>10} {:>10} {:>10} {:>12}",
            "tile", "tiles", "mem/CSR", "fp8-tiles", "fp64-tiles", "solve µs"
        );
        for ts in [4usize, 8, 16, 32] {
            let t = TiledMatrix::from_csr_with(&a, ts, &Default::default());
            let hist = t.tile_precision_histogram();
            let ratio = t.memory_bytes().total() as f64 / a.memory_bytes() as f64;
            let cfg = SolverConfig {
                fixed_iterations: Some(iters),
                tile_size: ts,
                ..SolverConfig::default()
            };
            let solver = MilleFeuille::new(DeviceSpec::a100(), cfg);
            let rep = match m.kind {
                SolverKind::Cg => solver.solve_cg(&a, &b),
                SolverKind::Bicgstab => solver.solve_bicgstab(&a, &b),
            };
            println!(
                "  {:>5} {:>9} {:>10.3} {:>10} {:>10} {:>12.1}",
                ts,
                t.tile_count(),
                ratio,
                hist[3],
                hist[0],
                rep.solve_us()
            );
            table.row(vec![
                name.to_string(),
                ts.to_string(),
                t.tile_count().to_string(),
                format!("{ratio:.4}"),
                hist[3].to_string(),
                hist[0].to_string(),
                format!("{:.3}", rep.solve_us()),
            ]);
        }
        println!();
    }
    let path = write_csv("ablation_tile_size", &table).unwrap();
    println!("csv -> {}", path.display());
}
