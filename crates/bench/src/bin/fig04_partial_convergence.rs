//! **Figure 4**: evolution of the |p_j| magnitude distribution over CG
//! iterations for three representative matrices (`bcsstm37` "pretty
//! normal", `Muu` early convergence, `m3plates` many elements unchanged
//! from the start).
//!
//! Prints, per iteration, the share of elements of `p` in the five ranges
//! the paper colors (≥ε · ε/10 · ε/100 · ε/1000 · below).

use mf_bench::{write_csv, Table};
use mf_collection::named_matrix;
use mf_gpu::DeviceSpec;
use mf_solver::{MilleFeuille, SolverConfig};

fn main() {
    let mut table = Table::new(vec![
        "matrix",
        "iteration",
        "ge_eps",
        "eps_1e1",
        "eps_1e2",
        "eps_1e3",
        "below",
    ]);

    println!("Figure 4 — |p_j| range evolution during CG (ε = 1e-10·‖b‖)\n");
    for name in ["bcsstm37", "Muu", "m3plates"] {
        let a = named_matrix(name).expect("named proxy").generate();
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);

        let cfg = SolverConfig {
            trace_partial: true,
            max_iter: 400,
            ..SolverConfig::default()
        };
        let solver = MilleFeuille::new(DeviceSpec::a100(), cfg);
        let rep = solver.solve_cg(&a, &b);
        println!(
            "{name}: n={}, {} iterations, converged={}",
            a.nrows, rep.iterations, rep.converged
        );

        // Print ~12 sample points across the run.
        let hist = &rep.p_range_history;
        let step = (hist.len() / 12).max(1);
        println!("  iter |   >=eps  eps/10  eps/100 eps/1000  below   bypassed-tiles");
        for (j, h) in hist.iter().enumerate() {
            let total: usize = h.iter().sum();
            let pct = |c: usize| 100.0 * c as f64 / total as f64;
            if j % step == 0 || j + 1 == hist.len() {
                println!(
                    "  {j:>4} | {:>7.1} {:>7.1} {:>8.1} {:>8.1} {:>6.1}   {}",
                    pct(h[0]),
                    pct(h[1]),
                    pct(h[2]),
                    pct(h[3]),
                    pct(h[4]),
                    rep.bypass_history.get(j).copied().unwrap_or(0)
                );
            }
            table.row(vec![
                name.to_string(),
                j.to_string(),
                h[0].to_string(),
                h[1].to_string(),
                h[2].to_string(),
                h[3].to_string(),
                h[4].to_string(),
            ]);
        }
        println!();
    }
    let path = write_csv("fig04_partial_convergence", &table).unwrap();
    println!("csv -> {}", path.display());
    println!(
        "Paper reference: bcsstm37 drains gradually; Muu shows early partial\n\
         convergence; m3plates has a large share below threshold from the start."
    );
}
