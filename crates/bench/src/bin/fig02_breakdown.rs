//! **Figure 2**: runtime breakdown (SpMV / dot / AXPY / synchronization) of
//! the multi-kernel CG and BiCGSTAB baselines over the benchmark suites.
//!
//! The paper's finding: synchronization often exceeds 30% of runtime. Rows
//! are bucketed by nonzero count so the size dependence is visible.

use mf_baselines::Baseline;
use mf_bench::{
    bicgstab_entries, cg_entries, harness::paper_rhs, iters_from_env, write_csv, Table,
};
use mf_collection::SuiteEntry;
use mf_gpu::Phase;
use mf_solver::SolverConfig;
use rayon::prelude::*;

struct Row {
    nnz: usize,
    spmv: f64,
    dot: f64,
    axpy: f64,
    sync: f64,
}

fn breakdown(entries: &[SuiteEntry], bicgstab: bool, iters: usize) -> Vec<Row> {
    entries
        .par_iter()
        .map(|e| {
            let a = e.generate();
            let b = paper_rhs(&a);
            let cfg = SolverConfig {
                fixed_iterations: Some(iters),
                ..SolverConfig::default()
            };
            let base = Baseline::cusparse();
            let rep = if bicgstab {
                base.solve_bicgstab(&a, &b, &cfg)
            } else {
                base.solve_cg(&a, &b, &cfg)
            };
            let tl = &rep.timeline;
            let total = tl.total_us();
            Row {
                nnz: a.nnz(),
                spmv: tl.get(Phase::Spmv) / total,
                dot: tl.get(Phase::Dot) / total,
                axpy: tl.get(Phase::Axpy) / total,
                sync: (tl.get(Phase::Sync) + tl.get(Phase::Transfer)) / total,
            }
        })
        .collect()
}

fn bucket_label(nnz: usize) -> &'static str {
    match nnz {
        0..=999 => "nnz<1e3",
        1_000..=9_999 => "1e3..1e4",
        10_000..=99_999 => "1e4..1e5",
        100_000..=999_999 => "1e5..1e6",
        _ => ">=1e6",
    }
}

fn summarize(label: &str, rows: &[Row], table: &mut Table) {
    println!("\n{label} (multi-kernel baseline, {} matrices)", rows.len());
    println!(
        "{:>10} {:>6} {:>7} {:>7} {:>7} {:>7}",
        "bucket", "count", "spmv%", "dot%", "axpy%", "sync%"
    );
    for bucket in ["nnz<1e3", "1e3..1e4", "1e4..1e5", "1e5..1e6", ">=1e6"] {
        let in_bucket: Vec<&Row> = rows
            .iter()
            .filter(|r| bucket_label(r.nnz) == bucket)
            .collect();
        if in_bucket.is_empty() {
            continue;
        }
        let n = in_bucket.len() as f64;
        let avg = |f: fn(&Row) -> f64| 100.0 * in_bucket.iter().map(|r| f(r)).sum::<f64>() / n;
        let (s, d, a, y) = (
            avg(|r| r.spmv),
            avg(|r| r.dot),
            avg(|r| r.axpy),
            avg(|r| r.sync),
        );
        println!(
            "{bucket:>10} {:>6} {s:>6.1} {d:>6.1} {a:>6.1} {y:>6.1}",
            in_bucket.len()
        );
        table.row(vec![
            label.to_string(),
            bucket.to_string(),
            in_bucket.len().to_string(),
            format!("{s:.2}"),
            format!("{d:.2}"),
            format!("{a:.2}"),
            format!("{y:.2}"),
        ]);
    }
    let overall_sync = 100.0 * rows.iter().map(|r| r.sync).sum::<f64>() / rows.len() as f64;
    println!("  overall mean sync share: {overall_sync:.1}% (paper: often > 30%)");
}

fn main() {
    let iters = iters_from_env();
    let mut table = Table::new(vec![
        "method", "bucket", "count", "spmv%", "dot%", "axpy%", "sync%",
    ]);

    println!("Figure 2 — runtime breakdown of the multi-kernel baselines ({iters} iterations)");
    let cg = breakdown(&cg_entries(), false, iters);
    summarize("CG", &cg, &mut table);
    let bi = breakdown(&bicgstab_entries(), true, iters);
    summarize("BiCGSTAB", &bi, &mut table);

    let path = write_csv("fig02_breakdown", &table).unwrap();
    println!("\ncsv -> {}", path.display());
}
