//! Adaptive precision controller v2 vs static classification: traffic to
//! tolerance (ROADMAP "adaptive re-tiering").
//!
//! For every matrix of a small SPD population the same system is solved
//! twice through the facade — once with the static classification-time
//! tiers (`adaptive: None`), once with the residual-driven controller
//! armed (`adaptive: Some(default)`) — both in convergence mode with the
//! partial-convergence strategy off, so the only difference is the
//! controller. The figure of merit is **total value bytes moved by matrix
//! passes over the whole solve** (iterations × bytes-per-pass, summed
//! exactly by [`mf_kernels::MixedSpmvStats`], *including* the controller's
//! own residual-refresh passes — the re-tier overhead is charged, not
//! hidden).
//!
//! Gates (exit 1 on failure):
//!
//! * the adaptive solve reaches the same termination status as static and
//!   never moves **more** bytes, on *every* matrix — on value-classes the
//!   classifier already stores narrow (integer Poisson stencils) the
//!   savings guard must keep the controller silent, making the two runs
//!   identical;
//! * on at least **half** the population the adaptive solve moves
//!   *strictly fewer* bytes (the population is majority noisy-valued, so
//!   the controller has real headroom).
//!
//! The table's `b/it` columns break the per-iteration traffic down by
//! executed tier `[fp64, fp32, fp16, fp8]` (`-` when a tier moved
//! nothing), making the demote-then-widen trajectory visible at a glance.
//!
//! Output: `bench_out/fig_adaptive.csv` + `BENCH_adaptive.json`.
//!
//! Env knobs: `MF_ADAPT_TOL` (default 1e-10), `MF_ADAPT_MAXITER` (default
//! 4000), `MF_ADAPT_SCALE` (size multiplier on the population, default 1).

use std::fmt::Write as _;
use std::io::Write as _;

use mf_bench::{metric_cell, write_csv, Table};
use mf_collection::{banded_spd, poisson2d, poisson3d, random_spd, ValueClass};
use mf_gpu::DeviceSpec;
use mf_solver::{AdaptiveConfig, MilleFeuille, SolveReport, SolverConfig};
use mf_sparse::{Coo, Csr};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Diagonally dominant SPD tridiagonal with noisy (not exactly
/// representable) values — the classifier stores it wide, so the
/// controller has maximal demotion headroom. The coupling is strong
/// (row dominance margin ≈ 0.2) so the solve runs long enough for a
/// demotion to amortize its refresh pass.
fn noisy_spd(n: usize, seed: u64) -> Csr {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut a = Coo::new(n, n);
    for i in 0..n {
        let d = next();
        a.push(i, i, 4.0 + 0.3 * d.abs());
        if i + 1 < n {
            let v = -1.9 + 0.05 * next();
            a.push(i, i + 1, v);
            a.push(i + 1, i, v);
        }
    }
    a.to_csr()
}

/// `b = A · 1`, the paper's right-hand side.
fn rhs(a: &Csr) -> Vec<f64> {
    let mut b = vec![0.0; a.nrows];
    a.matvec(&vec![1.0; a.ncols], &mut b);
    b
}

struct AdaptRow {
    matrix: String,
    n: usize,
    nnz: usize,
    statik: SolveReport,
    adaptive: SolveReport,
    pass: bool,
}

/// Per-tier value bytes per iteration, `None` where a tier moved nothing
/// (or the solve did no iterations).
fn bytes_per_iter_by_tier(rep: &SolveReport) -> [Option<f64>; 4] {
    let by = rep.spmv_stats.bytes_by_precision();
    let mut out = [None; 4];
    if rep.iterations > 0 {
        for (o, &b) in out.iter_mut().zip(&by) {
            if b > 0 {
                *o = Some(b as f64 / rep.iterations as f64);
            }
        }
    }
    out
}

fn main() {
    let tol = env_f64("MF_ADAPT_TOL", 1e-10);
    let max_iter = env_usize("MF_ADAPT_MAXITER", 4000);
    let scale = env_usize("MF_ADAPT_SCALE", 1).max(1);

    // Majority noisy-valued (controller-actionable) population plus two
    // integer Poisson stencils the classifier already stores in FP8 — the
    // guard rows where adaptive must equal static exactly.
    let systems: Vec<(String, Csr)> = vec![
        ("noisy_spd_4000".into(), noisy_spd(4000 * scale, 5)),
        (
            "banded_spd_real_2000".into(),
            banded_spd(2000 * scale, 5, ValueClass::Real, 7),
        ),
        (
            "banded_spd_real_3000".into(),
            banded_spd(3000 * scale, 3, ValueClass::Real, 21),
        ),
        (
            "random_spd_wide_1500".into(),
            random_spd(1500 * scale, 6, ValueClass::WideModerate, 11),
        ),
        ("poisson2d_48".into(), poisson2d(48 * scale, 48 * scale)),
        (
            "poisson3d_12".into(),
            poisson3d(12 * scale, 12 * scale, 12 * scale),
        ),
    ];

    let base_cfg = SolverConfig {
        tolerance: tol,
        max_iter,
        partial_convergence: false,
        ..SolverConfig::default()
    };
    let static_solver = MilleFeuille::new(DeviceSpec::a100(), base_cfg.clone());
    let adaptive_solver = MilleFeuille::new(
        DeviceSpec::a100(),
        SolverConfig {
            adaptive: Some(AdaptiveConfig::default()),
            ..base_cfg
        },
    );

    println!(
        "fig_adaptive: {} SPD systems, tol {tol:e}, controller {:?}",
        systems.len(),
        AdaptiveConfig::default()
    );

    let mut rows: Vec<AdaptRow> = Vec::new();
    for (name, a) in &systems {
        let b = rhs(a);
        let statik = static_solver.solve_cg(a, &b);
        let adaptive = adaptive_solver.solve_cg(a, &b);
        let pass = statik.status_label() == adaptive.status_label()
            && adaptive.spmv_stats.value_bytes() <= statik.spmv_stats.value_bytes();
        rows.push(AdaptRow {
            matrix: name.clone(),
            n: a.nrows,
            nnz: a.nnz(),
            statik,
            adaptive,
            pass,
        });
    }

    let mut table = Table::new(vec![
        "matrix",
        "mode",
        "n",
        "nnz",
        "iters",
        "relres",
        "status",
        "plans",
        "bytes_total",
        "b/it_fp64",
        "b/it_fp32",
        "b/it_fp16",
        "b/it_fp8",
    ]);
    for r in &rows {
        for (mode, rep) in [("static", &r.statik), ("adaptive", &r.adaptive)] {
            let tiers = bytes_per_iter_by_tier(rep);
            table.row(vec![
                r.matrix.clone(),
                mode.to_string(),
                r.n.to_string(),
                r.nnz.to_string(),
                rep.iterations.to_string(),
                format!("{:.3e}", rep.final_relres),
                rep.status_label(),
                rep.retier_trail.len().to_string(),
                rep.spmv_stats.value_bytes().to_string(),
                metric_cell(tiers[0]),
                metric_cell(tiers[1]),
                metric_cell(tiers[2]),
                metric_cell(tiers[3]),
            ]);
        }
    }
    println!("{}", table.render());
    let csv = write_csv("fig_adaptive", &table).expect("write csv");
    println!("wrote {}", csv.display());

    let wins = rows
        .iter()
        .filter(|r| r.adaptive.spmv_stats.value_bytes() < r.statik.spmv_stats.value_bytes())
        .count();
    let all_pass = rows.iter().all(|r| r.pass);
    let majority = wins * 2 >= rows.len();
    for r in rows.iter().filter(|r| !r.pass) {
        eprintln!(
            "FAIL: {}: static {} / {} bytes vs adaptive {} / {} bytes",
            r.matrix,
            r.statik.status_label(),
            r.statik.spmv_stats.value_bytes(),
            r.adaptive.status_label(),
            r.adaptive.spmv_stats.value_bytes(),
        );
    }
    if !majority {
        eprintln!(
            "FAIL: adaptive strictly cheaper on only {wins}/{} matrices",
            rows.len()
        );
    }

    // ---- JSON (hand-rolled; no serde in the offline workspace). ----
    let pass = all_pass && majority;
    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"bench\": \"fig_adaptive\",\n",
            "  \"tolerance\": {tol:e},\n",
            "  \"controller\": {{\"period\": {period}, \"margin_decades\": {margin}, \"min_savings_passes\": {guard}}},\n",
            "  \"gates\": {{\"bytes_never_worse\": true, \"strict_win_fraction_min\": 0.5}},\n",
            "  \"strict_wins\": {wins},\n",
            "  \"matrices\": [\n"
        ),
        tol = tol,
        period = AdaptiveConfig::default().period,
        margin = AdaptiveConfig::default().margin_decades,
        guard = AdaptiveConfig::default().min_savings_passes,
        wins = wins,
    );
    for (i, r) in rows.iter().enumerate() {
        let mode_json = |rep: &SolveReport| {
            let by = rep.spmv_stats.bytes_by_precision();
            format!(
                "{{\"iterations\": {}, \"relres\": {:e}, \"status\": \"{}\", \"plans\": {}, \"value_bytes\": {}, \"bytes_by_tier\": [{}, {}, {}, {}]}}",
                rep.iterations,
                rep.final_relres,
                rep.status_label(),
                rep.retier_trail.len(),
                rep.spmv_stats.value_bytes(),
                by[0], by[1], by[2], by[3],
            )
        };
        let _ = write!(
            json,
            concat!(
                "    {{\"matrix\": \"{name}\", \"n\": {n}, \"nnz\": {nnz},\n",
                "     \"static\": {statik},\n",
                "     \"adaptive\": {adaptive},\n",
                "     \"strict_win\": {win}, \"pass\": {pass}}}{comma}\n"
            ),
            name = r.matrix,
            n = r.n,
            nnz = r.nnz,
            statik = mode_json(&r.statik),
            adaptive = mode_json(&r.adaptive),
            win = r.adaptive.spmv_stats.value_bytes() < r.statik.spmv_stats.value_bytes(),
            pass = r.pass,
            comma = if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = write!(json, "  ],\n  \"pass\": {pass}\n}}\n");
    let mut f = std::fs::File::create("BENCH_adaptive.json").expect("create BENCH_adaptive.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_adaptive.json");
    println!("wrote BENCH_adaptive.json");

    if !pass {
        eprintln!("FAIL: fig_adaptive gates");
        std::process::exit(1);
    }
    println!("fig_adaptive gates PASS");
}
