//! **Figure 12**: relative-error-vs-iteration curves of the mixed-precision
//! Mille-feuille against the FP64 baseline for `minsurfo`, `m3plates` and
//! `poisson3Da`.
//!
//! The reference solution is the converged FP64 solve; both solvers then
//! re-run with error tracing against it.

use mf_baselines::Baseline;
use mf_bench::{harness::paper_rhs, write_csv, Table};
use mf_collection::{named_matrix, SolverKind};
use mf_gpu::DeviceSpec;
use mf_solver::{MilleFeuille, SolverConfig};

fn main() {
    let mut table = Table::new(vec!["matrix", "iteration", "mixed_err", "fp64_err"]);
    println!("Figure 12 — relative error vs iterations, mixed precision vs FP64\n");

    for name in ["minsurfo", "m3plates", "poisson3Da"] {
        let m = named_matrix(name).expect("named proxy");
        let a = m.generate();
        let b = paper_rhs(&a);

        // Reference: converged FP64 baseline solve.
        let ref_cfg = SolverConfig {
            max_iter: 3000,
            ..SolverConfig::default()
        };
        let reference = match m.kind {
            SolverKind::Cg => Baseline::cusparse().solve_cg(&a, &b, &ref_cfg).x,
            SolverKind::Bicgstab => Baseline::cusparse().solve_bicgstab(&a, &b, &ref_cfg).x,
        };

        let traced = |mixed: bool| -> Vec<f64> {
            let cfg = SolverConfig {
                mixed_precision: mixed,
                partial_convergence: mixed,
                trace_residuals: true,
                max_iter: 3000,
                reference_solution: Some(reference.clone()),
                ..SolverConfig::default()
            };
            let solver = MilleFeuille::new(DeviceSpec::a100(), cfg);
            let rep = match m.kind {
                SolverKind::Cg => solver.solve_cg(&a, &b),
                SolverKind::Bicgstab => solver.solve_bicgstab(&a, &b),
            };
            rep.error_history
        };
        let mixed = traced(true);
        let fp64 = traced(false);

        println!(
            "{name}: mixed {} iters, fp64 {} iters",
            mixed.len(),
            fp64.len()
        );
        let len = mixed.len().max(fp64.len());
        let step = (len / 12).max(1);
        println!("  iter |    mixed rel-err    fp64 rel-err");
        for j in 0..len {
            let me = mixed.get(j).copied();
            let fe = fp64.get(j).copied();
            if j % step == 0 || j + 1 == len {
                println!(
                    "  {j:>4} | {:>15} {:>15}",
                    me.map_or("-".into(), |v| format!("{v:.3e}")),
                    fe.map_or("-".into(), |v| format!("{v:.3e}"))
                );
            }
            table.row(vec![
                name.to_string(),
                j.to_string(),
                me.map_or(String::new(), |v| format!("{v:.6e}")),
                fe.map_or(String::new(), |v| format!("{v:.6e}")),
            ]);
        }
        println!();
    }
    let path = write_csv("fig12_convergence_curves", &table).unwrap();
    println!("csv -> {}", path.display());
    println!(
        "Paper reference: minsurfo-like matrices track the FP64 curve; m3plates'\n\
         mixed curve lags slightly; poisson3Da alternates before both converge."
    );
}
