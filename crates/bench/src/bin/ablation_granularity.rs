//! **Ablation (Finding 1)**: tile-grained initial precision vs the two
//! coarser alternatives §II-A discusses — whole-matrix *uniform* precision
//! (the narrowest type that is lossless for **every** nonzero) and plain
//! FP64.
//!
//! Tile-grained storage wins whenever precision demand is spatially mixed:
//! one FP64-requiring nonzero forces the *whole matrix* wide under uniform
//! storage, but only its own 16×16 tile under tile-grained storage. On
//! matrices whose values classify uniformly (all-FP8 stencils), the two
//! granularities tie — which this ablation also shows.

use mf_bench::{harness::paper_rhs, iters_from_env, write_csv, Table};
use mf_collection::{fig11_names, named_matrix, SolverKind};
use mf_gpu::DeviceSpec;
use mf_precision::{classify_group, ClassifyOptions, Precision};
use mf_solver::{MilleFeuille, SolverConfig};
use rayon::prelude::*;

fn main() {
    let iters = iters_from_env();
    println!("Ablation — precision granularity (A100, {iters} iterations)\n");
    println!(
        "{:<16} {:>9} | {:>9} | {:>11} {:>11} {:>11} | {:>7} {:>7}",
        "matrix", "nnz", "uniform", "tiled µs", "uniform µs", "fp64 µs", "vs unif", "vs fp64"
    );

    let rows: Vec<Vec<String>> = fig11_names()
        .into_par_iter()
        .map(|name| {
            let m = named_matrix(name).expect("named proxy");
            let a = m.generate();
            let b = paper_rhs(&a);
            // The matrix-grained precision: what one uniform storage type
            // would have to be for lossless storage of every nonzero.
            let uniform = classify_group(&a.vals, &ClassifyOptions::default());

            let run = |cfg: SolverConfig| {
                let solver = MilleFeuille::new(DeviceSpec::a100(), cfg);
                match m.kind {
                    SolverKind::Cg => solver.solve_cg(&a, &b),
                    SolverKind::Bicgstab => solver.solve_bicgstab(&a, &b),
                }
            };
            // Multi-kernel mode: SpMV streams the stored values every
            // iteration, so storage precision directly scales the bandwidth
            // term (in single-kernel mode the resident tiles hide it — the
            // granularity there shows up as shared-memory capacity and
            // footprint instead, which the memory column reports).
            let base_cfg = SolverConfig {
                fixed_iterations: Some(iters),
                partial_convergence: false, // isolate the storage effect
                kernel_mode: mf_solver::KernelMode::MultiKernel,
                ..SolverConfig::default()
            };
            let tiled = run(base_cfg.clone());
            let unif = run(SolverConfig {
                uniform_precision: Some(uniform),
                ..base_cfg.clone()
            });
            let fp64 = run(SolverConfig {
                uniform_precision: Some(Precision::Fp64),
                ..base_cfg
            });

            let mem_ratio =
                unif.tiled_memory.total() as f64 / tiled.tiled_memory.total() as f64;
            println!(
                "{:<16} {:>9} | {:>9} | {:>11.1} {:>11.1} {:>11.1} | {:>6.2}x {:>6.2}x | mem unif/tiled {:>5.2}x",
                name,
                a.nnz(),
                uniform.to_string(),
                tiled.solve_us(),
                unif.solve_us(),
                fp64.solve_us(),
                unif.solve_us() / tiled.solve_us(),
                fp64.solve_us() / tiled.solve_us(),
                mem_ratio,
            );
            vec![
                name.to_string(),
                a.nnz().to_string(),
                uniform.to_string(),
                format!("{:.3}", tiled.solve_us()),
                format!("{:.3}", unif.solve_us()),
                format!("{:.3}", fp64.solve_us()),
                format!("{mem_ratio:.4}"),
            ]
        })
        .collect();

    let mut table = Table::new(vec![
        "name",
        "nnz",
        "uniform_precision",
        "tiled_us",
        "uniform_us",
        "fp64_us",
        "mem_uniform_over_tiled",
    ]);
    for r in rows {
        table.row(r);
    }
    let path = write_csv("ablation_granularity", &table).unwrap();
    println!("\ncsv -> {}", path.display());
    println!(
        "Expectation: tiled == uniform on uniformly-classifying matrices;\n\
         tiled beats uniform wherever one wide value would force the whole\n\
         matrix to FP64 (circuit/semiconductor classes)."
    );
}
