//! Pipelined vs classic single-kernel engines: barrier schedule density,
//! wall time, and iterations-to-tolerance (ROADMAP "pipelined CG/PCG").
//!
//! Two measurements over the threaded engines, both gated (exit 1 on
//! failure):
//!
//! 1. **Barrier schedule density** — mf-trace counts every `BarrierEnter`
//!    per warp, so the per-iteration epoch count is measured exactly: two
//!    traced fixed-budget runs (tolerance 0 ⇒ exactly `max_iter`
//!    iterations execute) at budgets K and 2K, and the *marginal* density
//!    `(count(2K) − count(K)) / (warps · K)` cancels the init epochs.
//!    The schedules are deterministic, so the gates are tight: pipelined
//!    CG = 1 and pipelined PCG = 2 epochs per iteration (±1%), classic
//!    ≥ 3, and pipelined strictly below classic. Classic PCG's
//!    owner-computes schedule shows the flat ~4 epochs the ROADMAP
//!    cites; classic CG's scatter-gather SpMV additionally spin-waits
//!    once per consumed segment, so its count grows with
//!    `segments / warps` (~35 on the default proxy) — exactly the
//!    sync surface the pipelined owner-computes engines eliminate.
//! 2. **Solve to tolerance** — classic vs pipelined on each matrix of a
//!    small SPD population (a 2-D Poisson proxy + synthetic SPD suite
//!    entries): host wall time (min of reps, tracing off), iterations to
//!    the 1e-10 tolerance, termination status, and the `barriers/iter`
//!    column from one traced rerun. Gate: the pipelined run reaches the
//!    same status as classic, with the iteration count inside the drift
//!    envelope `|Δiters| ≤ max(5, 10% of classic)` — pipelined CG's
//!    rounding drift is characterized, not hidden.
//!
//! Output: `bench_out/fig_pipeline.csv` + `BENCH_pipeline.json`.
//!
//! Env knobs: `MF_PIPE_GRID` (Poisson proxy side, default 32),
//! `MF_PIPE_WARPS` (default 2 — schedule density is warp-normalized and
//! exact at any count), `MF_PIPE_REPS` (timed reps, default 2),
//! `MF_PIPE_BUDGET` (density budget K for CG, default 12; PCG uses K/2 to
//! stay clear of ILU(0)'s faster convergence), `MF_PIPE_COUNT` (suite
//! entries, default 2), `MF_PIPE_TOL` (default 1e-10), `MF_PIPE_MAXITER`
//! (default 2000).

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

use mf_bench::{barriers_per_iter, metric_cell, write_csv, Table};
use mf_collection::{cg_suite, poisson2d, SuiteOptions};
use mf_gpu::FaultPlan;
use mf_kernels::{ilu0, Ilu0};
use mf_solver::{
    run_cg_pipelined_threaded_traced, run_cg_threaded_traced, run_pcg_pipelined_threaded_traced,
    run_pcg_threaded_traced, EventKind, ThreadedReport, TraceConfig, WatchdogPolicy,
};
use mf_sparse::{Csr, TiledMatrix};

/// Ring capacity for traced runs — large enough that the density window
/// and the convergence runs keep complete streams (checked via `dropped`).
const TRACE_CAP: usize = 1 << 17;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One threaded solve: classic or pipelined, CG (`ilu = None`) or PCG.
#[allow(clippy::too_many_arguments)]
fn solve_once(
    pipelined: bool,
    m: &TiledMatrix,
    ilu: Option<&Ilu0>,
    b: &[f64],
    tol: f64,
    max_iter: usize,
    warps: usize,
    cfg: &TraceConfig,
) -> ThreadedReport {
    let wd = WatchdogPolicy::default();
    let plan = FaultPlan::default();
    match (ilu, pipelined) {
        (None, false) => run_cg_threaded_traced(m, b, tol, max_iter, warps, wd, &plan, cfg),
        (None, true) => {
            run_cg_pipelined_threaded_traced(m, b, tol, max_iter, warps, wd, &plan, cfg)
        }
        (Some(p), false) => run_pcg_threaded_traced(m, p, b, tol, max_iter, warps, wd, &plan, cfg),
        (Some(p), true) => {
            run_pcg_pipelined_threaded_traced(m, p, b, tol, max_iter, warps, wd, &plan, cfg)
        }
    }
}

/// Barrier epochs in a traced report's complete stream.
fn barrier_count(rep: &ThreadedReport) -> usize {
    let s = rep.trace.as_ref().expect("traced run").summary();
    assert_eq!(s.dropped, 0, "trace ring dropped events; raise TRACE_CAP");
    s.count(EventKind::BarrierEnter)
}

/// Marginal (steady-state) and raw barrier density of one engine, from
/// fixed-budget traced runs at `budget` and `2·budget` iterations.
fn schedule_density(
    pipelined: bool,
    m: &TiledMatrix,
    ilu: Option<&Ilu0>,
    b: &[f64],
    budget: usize,
    warps: usize,
) -> (f64, f64) {
    let cfg = TraceConfig::with_capacity(TRACE_CAP);
    let lo = solve_once(pipelined, m, ilu, b, 0.0, budget, warps, &cfg);
    let hi = solve_once(pipelined, m, ilu, b, 0.0, 2 * budget, warps, &cfg);
    for (r, want) in [(&lo, budget), (&hi, 2 * budget)] {
        assert!(r.failure.is_none(), "density run failed: {:?}", r.failure);
        assert_eq!(r.iterations, want, "budgeted run must execute the budget");
        assert!(
            r.breakdowns.is_empty(),
            "breakdown inside the density window perturbs the schedule — lower MF_PIPE_BUDGET"
        );
    }
    assert_eq!(lo.warps, hi.warps);
    let marginal = (barrier_count(&hi) - barrier_count(&lo)) as f64 / (hi.warps * budget) as f64;
    let raw = barrier_count(&hi) as f64 / (hi.warps * 2 * budget) as f64;
    (marginal, raw)
}

/// Solve-to-tolerance measurement: min-of-`reps` wall time with tracing
/// off (rep 0 is warm-up), plus one traced rerun for the schedule column
/// (tracing is bitwise-inert, so the trajectory is the same solve).
#[allow(clippy::too_many_arguments)]
fn timed_solve(
    pipelined: bool,
    m: &TiledMatrix,
    ilu: Option<&Ilu0>,
    b: &[f64],
    tol: f64,
    max_iter: usize,
    warps: usize,
    reps: usize,
) -> (f64, ThreadedReport) {
    let mut min = f64::INFINITY;
    for rep in 0..=reps {
        let t0 = Instant::now();
        let out = solve_once(
            pipelined,
            m,
            ilu,
            b,
            tol,
            max_iter,
            warps,
            &TraceConfig::default(),
        );
        let us = t0.elapsed().as_secs_f64() * 1e6;
        if rep > 0 {
            min = min.min(us);
        }
        drop(out);
    }
    let traced = solve_once(
        pipelined,
        m,
        ilu,
        b,
        tol,
        max_iter,
        warps,
        &TraceConfig::with_capacity(TRACE_CAP),
    );
    (min, traced)
}

/// `b = A · 1`, the paper's right-hand side.
fn rhs(a: &Csr) -> Vec<f64> {
    let mut b = vec![0.0; a.nrows];
    a.matvec(&vec![1.0; a.ncols], &mut b);
    b
}

struct SolveRow {
    matrix: String,
    method: &'static str,
    n: usize,
    nnz: usize,
    classic_us: f64,
    classic: ThreadedReport,
    piped_us: f64,
    piped: ThreadedReport,
    envelope: usize,
    pass: bool,
}

fn main() {
    let grid = env_usize("MF_PIPE_GRID", 32);
    let warps = env_usize("MF_PIPE_WARPS", 2).max(1);
    let reps = env_usize("MF_PIPE_REPS", 2).max(1);
    let budget = env_usize("MF_PIPE_BUDGET", 12).max(4);
    let count = env_usize("MF_PIPE_COUNT", 2);
    let tol = env_f64("MF_PIPE_TOL", 1e-10);
    let max_iter = env_usize("MF_PIPE_MAXITER", 2000);

    let poisson = poisson2d(grid, grid);
    let m = TiledMatrix::from_csr(&poisson);
    let ilu = ilu0(&poisson).expect("ILU(0) on the Poisson proxy");
    let b = rhs(&poisson);

    println!(
        "fig_pipeline: poisson2d {grid}x{grid} (n={}, nnz={}), {warps} warp(s)",
        poisson.nrows,
        poisson.nnz()
    );

    // ---- 1. Barrier schedule density (exact, via mf-trace). ----
    let (cg_classic, cg_classic_raw) = schedule_density(false, &m, None, &b, budget, warps);
    let (cg_piped, cg_piped_raw) = schedule_density(true, &m, None, &b, budget, warps);
    let pcg_budget = (budget / 2).max(2);
    let (pcg_classic, pcg_classic_raw) =
        schedule_density(false, &m, Some(&ilu), &b, pcg_budget, warps);
    let (pcg_piped, pcg_piped_raw) = schedule_density(true, &m, Some(&ilu), &b, pcg_budget, warps);

    println!("barrier epochs per iteration (marginal / raw incl. init):");
    println!("  CG   classic {cg_classic:.2} / {cg_classic_raw:.2}   pipelined {cg_piped:.2} / {cg_piped_raw:.2}");
    println!("  PCG  classic {pcg_classic:.2} / {pcg_classic_raw:.2}   pipelined {pcg_piped:.2} / {pcg_piped_raw:.2}");

    let schedule_pass = cg_piped <= 1.01
        && pcg_piped <= 2.02
        && cg_classic >= 3.0
        && pcg_classic >= 3.0
        && cg_piped < cg_classic
        && pcg_piped < pcg_classic;
    if !schedule_pass {
        eprintln!("FAIL: barrier schedule gates (pipelined CG <= 1, PCG <= 2, classic >= 3)");
    }

    // ---- 2. Solve to tolerance across the population. ----
    let mut systems: Vec<(String, Csr)> = vec![(format!("poisson2d_{grid}"), poisson)];
    // `cg_suite` emits its named proxies first and truncates to `count`,
    // so a small request never reaches the synthetic `spd_*` families.
    // Ask for a larger suite (entries are lazy specs — only the taken
    // ones generate) and keep synthetics in the traced-solve size band.
    let opts = SuiteOptions {
        count: 64,
        max_nnz: 40_000,
        seed: 7,
    };
    systems.extend(
        cg_suite(&opts)
            .into_iter()
            .filter(|e| e.name.starts_with("spd_"))
            .filter_map(|e| {
                let a = e.generate();
                (a.nnz() >= 1_000).then_some((e.name, a))
            })
            .take(count),
    );

    let mut rows: Vec<SolveRow> = Vec::new();
    for (name, a) in &systems {
        let tiled = TiledMatrix::from_csr(a);
        let b = rhs(a);
        let precs: Vec<(&'static str, Option<Ilu0>)> = vec![("cg", None), ("pcg", ilu0(a).ok())];
        for (method, prec) in precs {
            if method == "pcg" && prec.is_none() {
                continue; // ILU(0) broke down — CG row still covers the matrix
            }
            let p = prec.as_ref();
            let (classic_us, classic) =
                timed_solve(false, &tiled, p, &b, tol, max_iter, warps, reps);
            let (piped_us, piped) = timed_solve(true, &tiled, p, &b, tol, max_iter, warps, reps);
            let envelope = 5usize.max(classic.iterations.div_ceil(10));
            let drift = classic.iterations.abs_diff(piped.iterations);
            let pass = classic.status_label() == piped.status_label() && drift <= envelope;
            rows.push(SolveRow {
                matrix: name.clone(),
                method,
                n: a.nrows,
                nnz: a.nnz(),
                classic_us,
                classic,
                piped_us,
                piped,
                envelope,
                pass,
            });
        }
    }

    let mut table = Table::new(vec![
        "method",
        "matrix",
        "engine",
        "n",
        "nnz",
        "wall_us",
        "iters",
        "relres",
        "status",
        "barriers_iter",
    ]);
    for r in &rows {
        for (engine, us, rep) in [
            ("classic", r.classic_us, &r.classic),
            ("pipelined", r.piped_us, &r.piped),
        ] {
            table.row(vec![
                r.method.to_string(),
                r.matrix.clone(),
                engine.to_string(),
                r.n.to_string(),
                r.nnz.to_string(),
                format!("{us:.1}"),
                rep.iterations.to_string(),
                format!("{:.3e}", rep.final_relres),
                rep.status_label(),
                metric_cell(barriers_per_iter(rep.trace.as_ref())),
            ]);
        }
    }
    println!("{}", table.render());
    let solves_pass = rows.iter().all(|r| r.pass);
    for r in rows.iter().filter(|r| !r.pass) {
        eprintln!(
            "FAIL: {}/{}: classic {} in {} iters vs pipelined {} in {} iters (envelope {})",
            r.method,
            r.matrix,
            r.classic.status_label(),
            r.classic.iterations,
            r.piped.status_label(),
            r.piped.iterations,
            r.envelope,
        );
    }
    let csv = write_csv("fig_pipeline", &table).expect("write csv");
    println!("wrote {}", csv.display());

    // ---- JSON (hand-rolled; no serde in the offline workspace). ----
    let pass = schedule_pass && solves_pass;
    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"bench\": \"fig_pipeline\",\n",
            "  \"warps\": {warps},\n",
            "  \"tolerance\": {tol:e},\n",
            "  \"schedule\": {{\n",
            "    \"matrix\": {{\"kind\": \"poisson2d\", \"grid\": {grid}}},\n",
            "    \"budget_iters\": {{\"cg\": {bk}, \"pcg\": {pk}}},\n",
            "    \"barriers_per_iteration\": {{\n",
            "      \"cg\":  {{\"classic\": {cgc:.4}, \"pipelined\": {cgp:.4}, \"classic_raw\": {cgcr:.4}, \"pipelined_raw\": {cgpr:.4}}},\n",
            "      \"pcg\": {{\"classic\": {pcc:.4}, \"pipelined\": {pcp:.4}, \"classic_raw\": {pccr:.4}, \"pipelined_raw\": {pcpr:.4}}}\n",
            "    }},\n",
            "    \"gates\": {{\"pipelined_cg_max\": 1.01, \"pipelined_pcg_max\": 2.02, \"classic_min\": 3.0}},\n",
            "    \"pass\": {sp}\n",
            "  }},\n",
            "  \"solves\": [\n"
        ),
        warps = warps,
        tol = tol,
        grid = grid,
        bk = budget,
        pk = pcg_budget,
        cgc = cg_classic,
        cgp = cg_piped,
        cgcr = cg_classic_raw,
        cgpr = cg_piped_raw,
        pcc = pcg_classic,
        pcp = pcg_piped,
        pccr = pcg_classic_raw,
        pcpr = pcg_piped_raw,
        sp = schedule_pass,
    );
    for (i, r) in rows.iter().enumerate() {
        let engine_json = |us: f64, rep: &ThreadedReport| {
            format!(
                "{{\"wall_us\": {us:.1}, \"iterations\": {}, \"relres\": {:e}, \"status\": \"{}\", \"barriers_per_iter\": {}}}",
                rep.iterations,
                rep.final_relres,
                rep.status_label(),
                barriers_per_iter(rep.trace.as_ref())
                    .map_or("null".to_string(), |d| format!("{d:.4}")),
            )
        };
        let _ = write!(
            json,
            concat!(
                "    {{\"matrix\": \"{name}\", \"method\": \"{method}\", \"n\": {n}, \"nnz\": {nnz},\n",
                "     \"classic\": {classic},\n",
                "     \"pipelined\": {piped},\n",
                "     \"iter_drift\": {drift}, \"drift_envelope\": {env}, \"pass\": {pass}}}{comma}\n"
            ),
            name = r.matrix,
            method = r.method,
            n = r.n,
            nnz = r.nnz,
            classic = engine_json(r.classic_us, &r.classic),
            piped = engine_json(r.piped_us, &r.piped),
            drift = r.classic.iterations.abs_diff(r.piped.iterations),
            env = r.envelope,
            pass = r.pass,
            comma = if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = write!(json, "  ],\n  \"pass\": {pass}\n}}\n");
    let mut f = std::fs::File::create("BENCH_pipeline.json").expect("create BENCH_pipeline.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");

    if !pass {
        eprintln!("FAIL: fig_pipeline gates");
        std::process::exit(1);
    }
    println!("fig_pipeline gates PASS");
}
