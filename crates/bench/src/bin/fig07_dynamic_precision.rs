//! **Figure 7 companion**: the dynamic evolution of tile precisions in the
//! on-chip copy across iterations. The paper's Fig. 7 illustrates four
//! iterations of a 10×10 example; this binary traces the same mechanism at
//! matrix scale — per iteration, how many tiles currently sit at each
//! precision and how many columns bypass — on three matrices with distinct
//! convergence characters.

use mf_bench::{write_csv, Table};
use mf_collection::named_matrix;
use mf_gpu::DeviceSpec;
use mf_solver::{MilleFeuille, SolverConfig};

fn main() {
    println!("Figure 7 — dynamic tile precision evolution (on-chip lowering + bypass)\n");
    let mut table = Table::new(vec![
        "matrix",
        "iteration",
        "fp64",
        "fp32",
        "fp16",
        "fp8",
        "bypassed_tiles",
    ]);

    for name in ["m3plates", "shallow_water1", "Muu"] {
        let a = named_matrix(name).expect("named proxy").generate();
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);

        let cfg = SolverConfig {
            trace_partial: true,
            max_iter: 400,
            ..SolverConfig::default()
        };
        let rep = MilleFeuille::new(DeviceSpec::a100(), cfg).solve_cg(&a, &b);
        println!(
            "{name}: {} iterations, converged={}, {} on-chip conversions total",
            rep.iterations, rep.converged, rep.spmv_stats.conversions
        );
        let hist = &rep.precision_history;
        let step = (hist.len() / 10).max(1);
        println!("  iter |   FP64   FP32   FP16    FP8 | bypassed tiles");
        for (j, h) in hist.iter().enumerate() {
            if j % step == 0 || j + 1 == hist.len() {
                println!(
                    "  {j:>4} | {:>6} {:>6} {:>6} {:>6} | {:>6}",
                    h[0], h[1], h[2], h[3], rep.bypass_history[j]
                );
            }
            table.row(vec![
                name.to_string(),
                j.to_string(),
                h[0].to_string(),
                h[1].to_string(),
                h[2].to_string(),
                h[3].to_string(),
                rep.bypass_history[j].to_string(),
            ]);
        }
        println!();
    }
    let path = write_csv("fig07_dynamic_precision", &table).unwrap();
    println!("csv -> {}", path.display());
    println!(
        "Paper reference (Fig. 7): precision only ever decreases, the\n\
         conversion happens once per level in the on-chip copy, and columns\n\
         whose p-segments fall below ε·10⁻³ bypass entirely."
    );
}
