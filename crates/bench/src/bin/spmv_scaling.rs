//! Host SpMV scaling: wall-clock of the stripe-parallel mixed-precision
//! SpMV (`spmv_mixed_par`) versus the serial engine on a large matrix.
//!
//! Unlike the figure binaries (which report *modeled* GPU time), this bench
//! measures real host wall-clock, because the stripe-parallel path exists to
//! speed up the host mirror itself. Output:
//!
//! * `bench_out/spmv_scaling.csv` — one row per thread count.
//! * `BENCH_spmv.json` — machine-readable perf trajectory record, including
//!   the host's actually-available parallelism (speedup beyond 1× is only
//!   physically possible when the host has that many cores).
//!
//! Env knobs: `MF_SPMV_GRID` (Poisson grid side, default 320 → 102,400
//! rows), `MF_SPMV_REPS` (timed reps per thread count, default 20),
//! `MF_SPMV_THREADS` (comma list, default `1,2,4,8`).

use std::io::Write as _;
use std::time::Instant;

use mf_bench::{write_csv, Table};
use mf_collection::poisson2d;
use mf_kernels::{spmv_mixed, spmv_mixed_par, SharedTiles, VisFlag};
use mf_precision::ClassifyOptions;
use mf_sparse::TiledMatrix;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_threads() -> Vec<usize> {
    std::env::var("MF_SPMV_THREADS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t >= 1)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// The flag pattern used by the correctness suite: bypass some column
/// segments, demand lowering on others, keep the rest — so the bench
/// exercises decode, lowering and bypass, not just the f64 fast path.
fn mixed_flags(tile_cols: usize) -> Vec<VisFlag> {
    (0..tile_cols)
        .map(|c| match c % 5 {
            0 => VisFlag::Bypass,
            1 => VisFlag::Fp16,
            2 => VisFlag::Fp8,
            3 => VisFlag::Fp32,
            _ => VisFlag::Keep,
        })
        .collect()
}

struct Sample {
    threads: usize,
    mean_us: f64,
    min_us: f64,
}

fn time_spmv(m: &TiledMatrix, flags: &[VisFlag], x: &[f64], threads: usize, reps: usize) -> Sample {
    let mut shared = SharedTiles::load(m);
    let mut y = vec![0.0; m.nrows];
    // Warm-up: first call performs the demanded lowerings; afterwards the
    // kernel is in steady state (decode + FMA only), which is what we time.
    for _ in 0..2 {
        spmv_mixed_par(m, &mut shared, flags, x, &mut y, threads);
    }
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        spmv_mixed_par(m, &mut shared, flags, x, &mut y, threads);
        let us = t0.elapsed().as_secs_f64() * 1e6;
        total += us;
        min = min.min(us);
    }
    Sample {
        threads,
        mean_us: total / reps as f64,
        min_us: min,
    }
}

fn main() {
    let grid = env_usize("MF_SPMV_GRID", 320);
    let reps = env_usize("MF_SPMV_REPS", 20);
    let thread_counts = env_threads();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let a = poisson2d(grid, grid);
    let tile_size = 32;
    let m = TiledMatrix::from_csr_with(&a, tile_size, &ClassifyOptions::default());
    let flags = mixed_flags(m.tile_cols);
    let x: Vec<f64> = (0..m.nrows)
        .map(|i| ((i % 23) as f64) * 0.37 - 4.0)
        .collect();

    // Sanity: the parallel path must be bitwise-identical to the serial one
    // on this matrix/flag pattern before we bother timing it.
    let mut bitwise = true;
    {
        let mut sh_s = SharedTiles::load(&m);
        let mut sh_p = SharedTiles::load(&m);
        let mut y_s = vec![0.0; m.nrows];
        let mut y_p = vec![0.0; m.nrows];
        let st_s = spmv_mixed(&m, &mut sh_s, &flags, &x, &mut y_s);
        let st_p = spmv_mixed_par(&m, &mut sh_p, &flags, &x, &mut y_p, 4);
        bitwise &= st_s == st_p;
        bitwise &= y_s
            .iter()
            .zip(&y_p)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        bitwise &= sh_s.arena == sh_p.arena && sh_s.current_prec == sh_p.current_prec;
    }

    let samples: Vec<Sample> = thread_counts
        .iter()
        .map(|&t| time_spmv(&m, &flags, &x, t, reps))
        .collect();
    let serial_min = samples
        .iter()
        .find(|s| s.threads == 1)
        .map_or(samples[0].min_us, |s| s.min_us);

    let mut table = Table::new(vec![
        "threads",
        "mean_us",
        "min_us",
        "speedup_vs_serial",
        "host_threads_available",
    ]);
    for s in &samples {
        table.row(vec![
            s.threads.to_string(),
            format!("{:.2}", s.mean_us),
            format!("{:.2}", s.min_us),
            format!("{:.3}", serial_min / s.min_us),
            host_threads.to_string(),
        ]);
    }
    println!(
        "SpMV scaling: poisson2d {grid}x{grid} (n={}, nnz={}), tile={}, reps={}",
        m.nrows,
        m.nnz(),
        tile_size,
        reps
    );
    println!("bitwise serial==par: {bitwise}");
    println!("{}", table.render());
    let csv = write_csv("spmv_scaling", &table).expect("write csv");
    println!("wrote {}", csv.display());

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut results = String::new();
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        results.push_str(&format!(
            "\n    {{\"threads\": {}, \"mean_us\": {:.2}, \"min_us\": {:.2}, \"speedup_vs_serial\": {:.3}}}",
            s.threads,
            s.mean_us,
            s.min_us,
            serial_min / s.min_us
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"spmv_scaling\",\n  \"matrix\": {{\"kind\": \"poisson2d\", \"grid\": {grid}, \"n\": {}, \"nnz\": {}, \"tile_size\": {tile_size}}},\n  \"reps\": {reps},\n  \"host_threads_available\": {host_threads},\n  \"bitwise_identical_to_serial\": {bitwise},\n  \"results\": [{results}\n  ]\n}}\n",
        m.nrows,
        m.nnz()
    );
    let mut f = std::fs::File::create("BENCH_spmv.json").expect("create BENCH_spmv.json");
    f.write_all(json.as_bytes()).expect("write BENCH_spmv.json");
    println!("wrote BENCH_spmv.json");
}
