//! **Ablation (Finding 3)**: the partial-convergence strategy (dynamic
//! lowering + bypass) on vs off, with tile-grained initial precision held
//! fixed, over the Fig. 11 matrix set. Reports both the modeled time and
//! the numerical cost (iterations to ε = 1e-10).

use mf_bench::{harness::paper_rhs, write_csv, Table};
use mf_collection::{fig11_names, named_matrix, SolverKind};
use mf_gpu::DeviceSpec;
use mf_solver::{MilleFeuille, SolverConfig};
use rayon::prelude::*;

fn main() {
    println!("Ablation — partial-convergence strategy on/off (A100, converge to 1e-10)\n");
    println!(
        "{:<16} | {:>8} {:>8} | {:>11} {:>11} | {:>7} | {:>6}",
        "matrix", "it(on)", "it(off)", "on µs", "off µs", "speedup", "byp%"
    );

    let rows: Vec<Option<Vec<String>>> = fig11_names()
        .into_par_iter()
        .map(|name| {
            let m = named_matrix(name).expect("named proxy");
            let a = m.generate();
            let b = paper_rhs(&a);
            let run = |partial: bool| {
                let cfg = SolverConfig {
                    partial_convergence: partial,
                    ..SolverConfig::default()
                };
                let solver = MilleFeuille::new(DeviceSpec::a100(), cfg);
                match m.kind {
                    SolverKind::Cg => solver.solve_cg(&a, &b),
                    SolverKind::Bicgstab => solver.solve_bicgstab(&a, &b),
                }
            };
            let on = run(true);
            let off = run(false);
            if !on.converged || !off.converged {
                return None; // only converged pairs are comparable
            }
            let speedup = off.solve_us() / on.solve_us();
            println!(
                "{:<16} | {:>8} {:>8} | {:>11.1} {:>11.1} | {:>6.2}x | {:>5.1}",
                name,
                on.iterations,
                off.iterations,
                on.solve_us(),
                off.solve_us(),
                speedup,
                100.0 * on.bypass_fraction()
            );
            Some(vec![
                name.to_string(),
                on.iterations.to_string(),
                off.iterations.to_string(),
                format!("{:.3}", on.solve_us()),
                format!("{:.3}", off.solve_us()),
                format!("{speedup:.4}"),
                format!("{:.2}", 100.0 * on.bypass_fraction()),
            ])
        })
        .collect();

    let mut table = Table::new(vec![
        "name",
        "iters_on",
        "iters_off",
        "on_us",
        "off_us",
        "speedup",
        "bypass_pct",
    ]);
    let mut speedups = Vec::new();
    for r in rows.into_iter().flatten() {
        speedups.push(r[5].parse::<f64>().unwrap());
        table.row(r);
    }
    let s = mf_bench::summarize(&speedups);
    println!(
        "\nconverged pairs: {}; partial-convergence speedup geomean {:.3}x, max {:.2}x",
        s.count, s.geomean, s.max
    );
    let path = write_csv("ablation_partial", &table).unwrap();
    println!("csv -> {}", path.display());
}
