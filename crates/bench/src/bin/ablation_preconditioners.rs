//! **Extension ablation**: the three preconditioners on SPD systems —
//! ILU(0) + recursive-block SpTRSV (the paper's §IV-C path), IC(0) + the
//! same SpTRSV (symmetric-factor extension), and adaptive-precision
//! block-Jacobi (fully parallel application, Anzt-style precision
//! selection). Converged solves at ε = 1e-10, plus plain CG for reference.

use mf_bench::{harness::paper_rhs, write_csv, Table};
use mf_collection::{named_matrix, SolverKind};
use mf_gpu::DeviceSpec;
use mf_solver::MilleFeuille;

fn main() {
    println!("Ablation — preconditioner comparison on SPD systems (A100, ε = 1e-10)\n");
    println!(
        "{:<16} | {:>9} | {:>6} {:>10} | {:>6} {:>10} | {:>6} {:>10} | {:>6} {:>10}",
        "matrix", "nnz", "cg-it", "cg µs", "ilu-it", "ilu µs", "ic-it", "ic µs", "bj-it", "bj µs"
    );
    let mut table = Table::new(vec![
        "name",
        "nnz",
        "cg_iters",
        "cg_us",
        "ilu_iters",
        "ilu_us",
        "ic_iters",
        "ic_us",
        "bj_iters",
        "bj_us",
        "bj_fp16_blocks",
    ]);

    let names = [
        "mesh3e1", "thermal", "LFAT5000", "Muu", "minsurfo", "crystm02",
    ];
    for name in names {
        let m = named_matrix(name).expect("named proxy");
        assert_eq!(m.kind, SolverKind::Cg, "{name} must be SPD");
        let a = m.generate();
        let b = paper_rhs(&a);
        let solver = MilleFeuille::with_defaults(DeviceSpec::a100());

        let cg = solver.solve_cg(&a, &b);
        let ilu = solver.solve_pcg(&a, &b).expect("ilu0");
        let ic = solver.solve_pcg_ic0(&a, &b).expect("ic0");
        let bj = solver
            .solve_pcg_block_jacobi(&a, &b, 16)
            .expect("block-jacobi");
        let bj_hist = mf_kernels::BlockJacobi::new(&a, 16)
            .unwrap()
            .precision_histogram();

        println!(
            "{:<16} | {:>9} | {:>6} {:>10.1} | {:>6} {:>10.1} | {:>6} {:>10.1} | {:>6} {:>10.1}",
            name,
            a.nnz(),
            cg.iterations,
            cg.solve_us(),
            ilu.iterations,
            ilu.solve_us(),
            ic.iterations,
            ic.solve_us(),
            bj.iterations,
            bj.solve_us(),
        );
        assert!(cg.converged && ilu.converged && ic.converged && bj.converged);
        table.row(vec![
            name.to_string(),
            a.nnz().to_string(),
            cg.iterations.to_string(),
            format!("{:.3}", cg.solve_us()),
            ilu.iterations.to_string(),
            format!("{:.3}", ilu.solve_us()),
            ic.iterations.to_string(),
            format!("{:.3}", ic.solve_us()),
            bj.iterations.to_string(),
            format!("{:.3}", bj.solve_us()),
            bj_hist[2].to_string(),
        ]);
    }

    let path = write_csv("ablation_preconditioners", &table).unwrap();
    println!("\ncsv -> {}", path.display());
    println!(
        "Reading: ILU(0)/IC(0) cut iterations the most but pay triangular\n\
         solves; block-Jacobi's fully parallel application wins per-iteration\n\
         cost at a weaker iteration reduction; plain CG pays no factorization\n\
         (and the single-kernel scheme) — which one wins is matrix-dependent,\n\
         exactly why the library exposes all four."
    );
}
