//! Ticketed preprocessing: fused sequencer/worker/committer flow versus
//! the phase-barrier pipeline (ROADMAP "ticketed deterministic
//! parallelism").
//!
//! Every matrix of a small SPD population runs the fused ticketed
//! preprocessing (tile classification + ILU(0) rows in one ticket
//! stream) at worker counts {1, 2, 4} and the phase-barrier reference
//! (`TiledMatrix::from_csr_par` + `ilu0_boosted`). The ticketed flow is
//! deterministic and worker-count invariant by construction, so the
//! figure of merit is **utilization**: the modeled makespan of the fused
//! stream against the same units behind phase barriers
//! ([`simulate_ticketed`] / [`simulate_barrier_pipeline`] over real
//! per-unit costs), on a fixed work budget.
//!
//! Gates (exit 1 on failure):
//!
//! * **bitwise invariance** — at *every* worker count the ticketed tiles
//!   and factors are bitwise identical to the phase-barrier reference on
//!   every matrix;
//! * **utilization** — on every matrix, at every modeled worker count,
//!   the fused ticketed makespan is no worse than the phase-barrier
//!   makespan over the identical unit costs (`ticketed ≤ barrier`).
//!
//! Host wall-clock of both flows is *recorded* per row for honesty but
//! **not gated**: CI hosts (often 1 core) make wall-time gates noise.
//!
//! Output: `bench_out/fig_ticket.csv` + `BENCH_ticket.json`.
//!
//! Env knobs: `MF_TICKET_GRID` (largest Poisson side, default 64),
//! `MF_TICKET_TILE` (default 16).

use std::fmt::Write as _;
use std::io::Write as _;

use mf_bench::{write_csv, Table};
use mf_collection::{banded_spd, poisson2d, random_spd, ValueClass};
use mf_gpu::{simulate_barrier_pipeline, simulate_ticketed};
use mf_kernels::ilu0_boosted;
use mf_precision::ClassifyOptions;
use mf_solver::ticketed::{preprocess_tiled_ilu0_ticketed, TicketedOptions};
use mf_sparse::{Csr, TiledMatrix};
use mf_trace::TraceConfig;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

struct TicketRow {
    matrix: String,
    n: usize,
    nnz: usize,
    workers: usize,
    bitwise: bool,
    modeled_ticketed: u64,
    modeled_barrier: u64,
    wall_ticketed_us: f64,
    wall_barrier_us: f64,
    accepted: usize,
    fallbacks: usize,
}

fn main() {
    let grid = env_usize("MF_TICKET_GRID", 64).max(8);
    let tile = env_usize("MF_TICKET_TILE", 16).clamp(2, 256);
    let worker_grid = [1usize, 2, 4];
    let copts = ClassifyOptions::default();

    let systems: Vec<(String, Csr)> = vec![
        (format!("poisson2d_{grid}x{grid}"), poisson2d(grid, grid)),
        (
            "banded_spd_real_600".into(),
            banded_spd(600, 4, ValueClass::Real, 7),
        ),
        (
            "random_spd_wide_300".into(),
            random_spd(300, 5, ValueClass::WideModerate, 11),
        ),
    ];

    println!(
        "fig_ticket: {} SPD systems, workers {:?}, tile {tile}",
        systems.len(),
        worker_grid
    );

    let mut rows: Vec<TicketRow> = Vec::new();
    for (name, a) in &systems {
        // Phase-barrier reference, timed: classify-all barrier, then
        // factor-all.
        let t0 = std::time::Instant::now();
        let tiled_ref = TiledMatrix::from_csr_par(a, tile, &copts);
        let factor_ref = ilu0_boosted(a).expect("reference ILU(0)");
        let wall_barrier_us = t0.elapsed().as_secs_f64() * 1e6;

        // Modeled makespans over the *same* real per-unit costs.
        let (fused, tiles, serial_rows) = mf_solver::fused_unit_specs(a, tile);

        for &w in &worker_grid {
            let topts = TicketedOptions {
                workers: w,
                faults: None,
                trace: TraceConfig::default(),
            };
            let t0 = std::time::Instant::now();
            let (tiled, factors, outcome) = preprocess_tiled_ilu0_ticketed(a, tile, &copts, &topts);
            let wall_ticketed_us = t0.elapsed().as_secs_f64() * 1e6;
            let bitwise = match &factors {
                Ok((f, shifts)) => {
                    tiled.tile_prec == tiled_ref.tile_prec
                        && tiled.vals_raw() == tiled_ref.vals_raw()
                        && tiled.csr_rowptr == tiled_ref.csr_rowptr
                        && f.l.rowptr == factor_ref.0.l.rowptr
                        && bits(&f.l.vals) == bits(&factor_ref.0.l.vals)
                        && bits(&f.u.vals) == bits(&factor_ref.0.u.vals)
                        && bits(shifts) == bits(&factor_ref.1)
                }
                Err(_) => false,
            };
            rows.push(TicketRow {
                matrix: name.clone(),
                n: a.nrows,
                nnz: a.nnz(),
                workers: w,
                bitwise,
                modeled_ticketed: simulate_ticketed(&fused, w),
                modeled_barrier: simulate_barrier_pipeline(&tiles, &serial_rows, w),
                wall_ticketed_us,
                wall_barrier_us,
                accepted: outcome.stats.accepted,
                fallbacks: outcome.stats.fallbacks,
            });
        }
    }

    let mut table = Table::new(vec![
        "matrix",
        "workers",
        "n",
        "nnz",
        "bitwise",
        "modeled_ticketed",
        "modeled_barrier",
        "modeled_speedup",
        "wall_ticketed_us",
        "wall_barrier_us",
        "accepted",
        "fallbacks",
    ]);
    for r in &rows {
        table.row(vec![
            r.matrix.clone(),
            r.workers.to_string(),
            r.n.to_string(),
            r.nnz.to_string(),
            r.bitwise.to_string(),
            r.modeled_ticketed.to_string(),
            r.modeled_barrier.to_string(),
            format!(
                "{:.3}",
                r.modeled_barrier as f64 / r.modeled_ticketed.max(1) as f64
            ),
            format!("{:.1}", r.wall_ticketed_us),
            format!("{:.1}", r.wall_barrier_us),
            r.accepted.to_string(),
            r.fallbacks.to_string(),
        ]);
    }
    println!("{}", table.render());
    let csv = write_csv("fig_ticket", &table).expect("write csv");
    println!("wrote {}", csv.display());

    // ---- Gates. ----
    let all_bitwise = rows.iter().all(|r| r.bitwise);
    for r in rows.iter().filter(|r| !r.bitwise) {
        eprintln!(
            "FAIL: {} at {} workers diverged from the phase-barrier reference",
            r.matrix, r.workers
        );
    }
    let all_utilized = rows.iter().all(|r| r.modeled_ticketed <= r.modeled_barrier);
    for r in rows
        .iter()
        .filter(|r| r.modeled_ticketed > r.modeled_barrier)
    {
        eprintln!(
            "FAIL: {} at {} workers: modeled ticketed makespan {} exceeds phase-barrier {}",
            r.matrix, r.workers, r.modeled_ticketed, r.modeled_barrier
        );
    }

    // ---- JSON (hand-rolled; no serde in the offline workspace). ----
    let pass = all_bitwise && all_utilized;
    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"bench\": \"fig_ticket\",\n",
            "  \"tile\": {tile},\n",
            "  \"gates\": {{\"bitwise_all_worker_counts\": {bw}, \"ticketed_le_barrier_all_rows\": {ut}}},\n",
            "  \"rows\": [\n"
        ),
        tile = tile,
        bw = all_bitwise,
        ut = all_utilized,
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            concat!(
                "    {{\"matrix\": \"{name}\", \"n\": {n}, \"nnz\": {nnz}, \"workers\": {workers},\n",
                "     \"bitwise\": {bitwise}, \"modeled_ticketed\": {mt}, \"modeled_barrier\": {mb},\n",
                "     \"wall_ticketed_us\": {wt:.3}, \"wall_barrier_us\": {wb:.3},\n",
                "     \"accepted\": {acc}, \"fallbacks\": {fb}}}{comma}\n"
            ),
            name = r.matrix,
            n = r.n,
            nnz = r.nnz,
            workers = r.workers,
            bitwise = r.bitwise,
            mt = r.modeled_ticketed,
            mb = r.modeled_barrier,
            wt = r.wall_ticketed_us,
            wb = r.wall_barrier_us,
            acc = r.accepted,
            fb = r.fallbacks,
            comma = if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = write!(json, "  ],\n  \"pass\": {pass}\n}}\n");
    let mut f = std::fs::File::create("BENCH_ticket.json").expect("create BENCH_ticket.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_ticket.json");
    println!("wrote BENCH_ticket.json");

    if !pass {
        eprintln!("FAIL: fig_ticket gates");
        std::process::exit(1);
    }
    println!("fig_ticket gates PASS");
}
