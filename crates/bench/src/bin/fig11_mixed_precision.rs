//! **Figure 11**: per-tile precision distribution of 24 representative
//! matrices, and the speedup of mixed precision (tile-grained + dynamic
//! lowering/bypass) over an FP64-only configuration of the same solver.
//!
//! Paper reference: high-bypass matrices (`shallow_water1`, `rajat24`) gain
//! the most; small matrices with high low-precision ratios (`thermal`,
//! `wang1`) gain little extra because the single-kernel scheme already
//! dominates their runtime.

use mf_bench::{harness::paper_rhs, iters_from_env, write_csv, Table};
use mf_collection::{fig11_names, named_matrix, SolverKind};
use mf_gpu::DeviceSpec;
use mf_solver::{MilleFeuille, SolverConfig};
use rayon::prelude::*;

struct Row {
    name: &'static str,
    nnz: usize,
    tile_hist: [usize; 4],
    bypass_frac: f64,
    low_frac: f64,
    fp64_us: f64,
    mixed_us: f64,
}

fn main() {
    let iters = iters_from_env();
    println!("Figure 11 — precision distribution and mixed-precision gains ({iters} iterations)\n");

    let rows: Vec<Row> = fig11_names()
        .into_par_iter()
        .map(|name| {
            let m = named_matrix(name).expect("named proxy");
            let a = m.generate();
            let b = paper_rhs(&a);
            let device = DeviceSpec::a100();

            let mixed_cfg = SolverConfig {
                fixed_iterations: Some(iters),
                ..SolverConfig::default()
            };
            let fp64_cfg = SolverConfig {
                fixed_iterations: Some(iters),
                mixed_precision: false,
                partial_convergence: false,
                ..SolverConfig::default()
            };
            let run = |cfg: SolverConfig| {
                let solver = MilleFeuille::new(device.clone(), cfg);
                match m.kind {
                    SolverKind::Cg => solver.solve_cg(&a, &b),
                    SolverKind::Bicgstab => solver.solve_bicgstab(&a, &b),
                }
            };
            let mixed = run(mixed_cfg);
            let fp64 = run(fp64_cfg);
            let tiled = mf_sparse::TiledMatrix::from_csr(&a);
            Row {
                name,
                nnz: a.nnz(),
                tile_hist: tiled.tile_precision_histogram(),
                bypass_frac: mixed.bypass_fraction(),
                low_frac: mixed.low_precision_fraction(),
                fp64_us: fp64.solve_us(),
                mixed_us: mixed.solve_us(),
            }
        })
        .collect();

    let mut table = Table::new(vec![
        "name",
        "nnz",
        "tiles_fp64",
        "tiles_fp32",
        "tiles_fp16",
        "tiles_fp8",
        "low_prec_work%",
        "bypass_work%",
        "fp64_us",
        "mixed_us",
        "speedup",
    ]);
    println!(
        "{:<16} {:>9} | {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} | {:>8}",
        "matrix", "nnz", "t64", "t32", "t16", "t8", "low%", "byp%", "speedup"
    );
    let mut speedups = Vec::new();
    for r in &rows {
        let sp = r.fp64_us / r.mixed_us;
        speedups.push(sp);
        println!(
            "{:<16} {:>9} | {:>6} {:>6} {:>6} {:>6} | {:>5.1} {:>5.1} | {:>7.2}x",
            r.name,
            r.nnz,
            r.tile_hist[0],
            r.tile_hist[1],
            r.tile_hist[2],
            r.tile_hist[3],
            100.0 * r.low_frac,
            100.0 * r.bypass_frac,
            sp
        );
        table.row(vec![
            r.name.to_string(),
            r.nnz.to_string(),
            r.tile_hist[0].to_string(),
            r.tile_hist[1].to_string(),
            r.tile_hist[2].to_string(),
            r.tile_hist[3].to_string(),
            format!("{:.2}", 100.0 * r.low_frac),
            format!("{:.2}", 100.0 * r.bypass_frac),
            format!("{:.3}", r.fp64_us),
            format!("{:.3}", r.mixed_us),
            format!("{:.4}", sp),
        ]);
    }
    let s = mf_bench::summarize(&speedups);
    println!(
        "\nmixed-precision speedup over FP64-only: geomean {:.2}x, max {:.2}x",
        s.geomean, s.max
    );
    let path = write_csv("fig11_mixed_precision", &table).unwrap();
    println!("csv -> {}", path.display());
}
