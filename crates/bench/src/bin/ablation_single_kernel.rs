//! **Ablation (Finding 2)**: single-kernel vs multi-kernel execution of the
//! *same* Mille-feuille numerics across a nonzero sweep — exposes the
//! crossover that motivates the paper's fallback threshold (§III-C; the
//! 10⁶-nnz mark on the Figs. 8–9 x-axes).

use mf_bench::{harness::paper_rhs, iters_from_env, write_csv, Table};
use mf_collection::poisson2d;
use mf_gpu::DeviceSpec;
use mf_solver::{KernelMode, MilleFeuille, SolverConfig};

fn main() {
    let iters = iters_from_env();
    println!("Ablation — single-kernel vs multi-kernel CG, {iters} iterations (A100)\n");
    println!(
        "{:>9} {:>9} | {:>12} {:>12} | {:>9} | {:>6}",
        "n", "nnz", "single µs", "multi µs", "single/multi", "auto"
    );

    let mut table = Table::new(vec![
        "n",
        "nnz",
        "single_us",
        "multi_us",
        "ratio",
        "auto_mode",
    ]);
    for grid in [8usize, 16, 32, 64, 96, 128, 192, 256, 384, 512, 640] {
        let a = poisson2d(grid, grid);
        let b = paper_rhs(&a);
        let run = |mode: KernelMode| {
            let cfg = SolverConfig {
                fixed_iterations: Some(iters),
                kernel_mode: mode,
                ..SolverConfig::default()
            };
            MilleFeuille::new(DeviceSpec::a100(), cfg).solve_cg(&a, &b)
        };
        let single = run(KernelMode::SingleKernel);
        let multi = run(KernelMode::MultiKernel);
        let auto = run(KernelMode::Auto);
        let ratio = single.solve_us() / multi.solve_us();
        println!(
            "{:>9} {:>9} | {:>12.1} {:>12.1} | {:>11.3} | {:?}",
            a.nrows,
            a.nnz(),
            single.solve_us(),
            multi.solve_us(),
            ratio,
            auto.mode
        );
        table.row(vec![
            a.nrows.to_string(),
            a.nnz().to_string(),
            format!("{:.3}", single.solve_us()),
            format!("{:.3}", multi.solve_us()),
            format!("{ratio:.4}"),
            format!("{:?}", auto.mode),
        ]);
    }
    let path = write_csv("ablation_single_kernel", &table).unwrap();
    println!("\ncsv -> {}", path.display());
    println!(
        "Expectation: ratio << 1 for small matrices (launch overhead dominates\n\
         the multi-kernel path) and approaching / exceeding 1 near the shared-\n\
         memory capacity, where Auto flips to MultiKernel."
    );
}
