//! **Figure 14**: preprocessing overhead (format conversion + task
//! distribution + initial precision assignment) as a proportion of the
//! total runtime of 100 solver iterations.
//!
//! Paper reference: preprocessing rarely exceeds the cost of a single CG
//! iteration and is a negligible share of a 100-iteration solve.

use mf_bench::{
    bicgstab_entries, cg_entries, harness::paper_rhs, iters_from_env, write_csv, Table,
};
use mf_collection::{SolverKind, SuiteEntry};
use mf_gpu::{DeviceSpec, Phase};
use mf_solver::{MilleFeuille, SolverConfig};
use rayon::prelude::*;

struct Row {
    name: String,
    nnz: usize,
    preprocess_us: f64,
    total_us: f64,
    per_iter_us: f64,
}

fn measure(entries: &[SuiteEntry], kind: SolverKind, iters: usize) -> Vec<Row> {
    entries
        .par_iter()
        .map(|e| {
            let a = e.generate();
            let b = paper_rhs(&a);
            let cfg = SolverConfig {
                fixed_iterations: Some(iters),
                ..SolverConfig::default()
            };
            let solver = MilleFeuille::new(DeviceSpec::a100(), cfg);
            let rep = match kind {
                SolverKind::Cg => solver.solve_cg(&a, &b),
                SolverKind::Bicgstab => solver.solve_bicgstab(&a, &b),
            };
            let preprocess_us = rep.timeline.get(Phase::Preprocess);
            Row {
                name: e.name.clone(),
                nnz: a.nnz(),
                preprocess_us,
                total_us: rep.total_us(),
                per_iter_us: rep.solve_us() / iters.max(1) as f64,
            }
        })
        .collect()
}

fn emit(label: &str, rows: &[Row], table: &mut Table) {
    let fracs: Vec<f64> = rows.iter().map(|r| r.preprocess_us / r.total_us).collect();
    let mean = 100.0 * fracs.iter().sum::<f64>() / fracs.len() as f64;
    let max = 100.0 * fracs.iter().copied().fold(0.0, f64::max);
    let under_one_iter = rows
        .iter()
        .filter(|r| r.preprocess_us <= r.per_iter_us)
        .count();
    println!(
        "{label}: mean preprocessing share {mean:.2}% of total (max {max:.2}%); \
         {under_one_iter}/{} matrices preprocess in <= one iteration",
        rows.len()
    );
    for r in rows {
        table.row(vec![
            label.to_string(),
            r.name.clone(),
            r.nnz.to_string(),
            format!("{:.3}", r.preprocess_us),
            format!("{:.3}", r.per_iter_us),
            format!("{:.3}", r.total_us),
            format!("{:.4}", r.preprocess_us / r.total_us),
        ]);
    }
}

fn main() {
    let iters = iters_from_env();
    println!("Figure 14 — preprocessing share of {iters}-iteration solves (A100)\n");
    let mut table = Table::new(vec![
        "method",
        "name",
        "nnz",
        "preprocess_us",
        "per_iter_us",
        "total_us",
        "fraction",
    ]);
    let cg = measure(&cg_entries(), SolverKind::Cg, iters);
    emit("CG", &cg, &mut table);
    let bi = measure(&bicgstab_entries(), SolverKind::Bicgstab, iters);
    emit("BiCGSTAB", &bi, &mut table);
    let path = write_csv("fig14_preprocessing", &table).unwrap();
    println!("\ncsv -> {}", path.display());
}
