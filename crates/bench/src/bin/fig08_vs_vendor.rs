//! **Figure 8**: Mille-feuille vs the vendor baselines — cuSPARSE/cuBLAS on
//! the NVIDIA A100 and hipSPARSE/hipBLAS on the AMD MI210 — for CG and
//! BiCGSTAB with 100 iterations over the full suites.
//!
//! Paper reference numbers (geometric mean, max):
//!   CG:       3.03× / 8.77× (A100)   2.68× / 7.14× (MI210)
//!   BiCGSTAB: 2.65× / 7.51× (A100)   2.32× / 6.63× (MI210)

use mf_baselines::Baseline;
use mf_bench::{
    bicgstab_entries, cg_entries, compare_bicgstab, compare_cg, iters_from_env, summarize,
    write_csv, CompareRow, Table,
};
use mf_gpu::DeviceSpec;

fn emit(label: &str, rows: &[CompareRow], paper_geo: f64, paper_max: f64) {
    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    let s = summarize(&speedups);
    println!(
        "{label:<22} {:>4} matrices  geomean {:.2}x (paper {paper_geo:.2}x)  max {:.2}x (paper {paper_max:.2}x)  wins {:.0}%",
        s.count,
        s.geomean,
        s.max,
        100.0 * s.win_rate
    );
    // Top five speedups, like the paper's call-outs.
    let mut sorted: Vec<&CompareRow> = rows.iter().collect();
    sorted.sort_by(|a, b| b.speedup.total_cmp(&a.speedup));
    for r in sorted.iter().take(5) {
        println!(
            "    {:<22} nnz={:<9} {:>9.1}µs vs {:>9.1}µs -> {:.2}x [{:?}]",
            r.name, r.nnz, r.mf_us, r.base_us, r.speedup, r.mf_mode
        );
    }

    let mut table = Table::new(vec![
        "name", "n", "nnz", "mf_us", "base_us", "speedup", "mode",
    ]);
    for r in rows {
        table.row(vec![
            r.name.clone(),
            r.n.to_string(),
            r.nnz.to_string(),
            format!("{:.3}", r.mf_us),
            format!("{:.3}", r.base_us),
            format!("{:.4}", r.speedup),
            format!("{:?}", r.mf_mode),
        ]);
    }
    let csv = label.to_lowercase().replace([' ', '/'], "_");
    let path = write_csv(&format!("fig08_{csv}"), &table).unwrap();
    println!("    csv -> {}\n", path.display());
}

fn main() {
    let iters = iters_from_env();
    let cg = cg_entries();
    let bi = bicgstab_entries();
    println!(
        "Figure 8 — Mille-feuille vs vendor libraries, {iters} iterations, {} SPD + {} nonsymmetric matrices\n",
        cg.len(),
        bi.len()
    );

    let a100 = DeviceSpec::a100();
    let mi210 = DeviceSpec::mi210();

    emit(
        "CG vs cuSPARSE A100",
        &compare_cg(&cg, &a100, &Baseline::cusparse(), iters),
        3.03,
        8.77,
    );
    emit(
        "CG vs hipSPARSE MI210",
        &compare_cg(&cg, &mi210, &Baseline::hipsparse(), iters),
        2.68,
        7.14,
    );
    emit(
        "BiCGSTAB vs cuSPARSE A100",
        &compare_bicgstab(&bi, &a100, &Baseline::cusparse(), iters),
        2.65,
        7.51,
    );
    emit(
        "BiCGSTAB vs hipSPARSE MI210",
        &compare_bicgstab(&bi, &mi210, &Baseline::hipsparse(), iters),
        2.32,
        6.63,
    );
}
