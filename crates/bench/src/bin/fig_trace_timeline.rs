//! Trace timeline summary + recording-overhead gate.
//!
//! Two measurements on a 320×320 Poisson proxy (102,400 rows):
//!
//! 1. **Overhead gate** — the threaded PCG engine (in-kernel SpTRSV) run
//!    with tracing off and on, min-of-reps host wall time each. Every
//!    event site is a single branch when recording is disabled, so the
//!    enabled-vs-disabled delta bounds the cost of observability; the run
//!    *fails* (exit 1) when it exceeds the gate (default 5%).
//! 2. **Timeline summary** — from the traced runs: spin-wait statistics
//!    of the threaded solve (polls per barrier wait, fraction of waits
//!    that actually spun) and per-precision SpMV byte counters from a
//!    sequential mixed-precision CG solve.
//!
//! Output: `bench_out/fig_trace_timeline.csv`, `BENCH_trace.json` at the
//! repo root, and — with `--trace-dir DIR` — the raw merged streams as
//! JSONL plus Chrome `trace_event` JSON (load in Perfetto / `chrome://tracing`).
//!
//! Env knobs: `MF_TRACE_GRID` (default 320), `MF_TRACE_ITERS` (fixed
//! iteration count, default 25), `MF_TRACE_REPS` (timed reps, default 3),
//! `MF_TRACE_WARPS` (default 1 — the honest setting on a 1-core host),
//! `MF_TRACE_GATE_PCT` (default 5).

use std::io::Write as _;
use std::time::Instant;

use mf_bench::{write_csv, Table};
use mf_collection::poisson2d;
use mf_gpu::{DeviceSpec, FaultPlan};
use mf_kernels::ilu0;
use mf_solver::{
    run_pcg_threaded_traced, EventKind, MilleFeuille, SolverConfig, Trace, TraceConfig,
    WatchdogPolicy,
};
use mf_sparse::{Csr, TiledMatrix};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Min-of-reps wall time (µs) of a threaded PCG solve under `cfg`.
/// Returns the time and the last run's trace (if recording was on).
fn time_pcg(
    m: &TiledMatrix,
    ilu: &mf_kernels::Ilu0,
    b: &[f64],
    max_iter: usize,
    warps: usize,
    reps: usize,
    cfg: &TraceConfig,
) -> (f64, Option<Trace>) {
    let mut min = f64::INFINITY;
    let mut trace = None;
    // Warm-up rep, then timed reps: min-of-N is the standard host-noise
    // mitigator — any single rep can be preempted, no rep can be too fast.
    for rep in 0..=reps {
        let t0 = Instant::now();
        let out = run_pcg_threaded_traced(
            m,
            ilu,
            b,
            0.0, // unattainable tolerance: both runs execute exactly max_iter iterations
            max_iter,
            warps,
            WatchdogPolicy::default(),
            &FaultPlan::default(),
            cfg,
        );
        let us = t0.elapsed().as_secs_f64() * 1e6;
        if rep > 0 {
            min = min.min(us);
        }
        assert!(
            out.failure.is_none(),
            "trace bench solve failed: {:?}",
            out.failure
        );
        trace = out.trace;
    }
    (min, trace)
}

fn spin_stats(trace: &Trace) -> (usize, usize, f64) {
    let waits = trace.count(EventKind::BarrierExit);
    let spun = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::BarrierExit && e.b > 0)
        .count();
    let frac = if waits == 0 {
        0.0
    } else {
        spun as f64 / waits as f64
    };
    (waits, spun, frac)
}

fn main() {
    let trace_dir = {
        let mut args = std::env::args().skip(1);
        let mut dir = None;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace-dir" => dir = args.next(),
                other => panic!("unknown argument {other:?} (expected --trace-dir DIR)"),
            }
        }
        dir
    };
    let grid = env_usize("MF_TRACE_GRID", 320);
    let iters = env_usize("MF_TRACE_ITERS", 25);
    let reps = env_usize("MF_TRACE_REPS", 3).max(1);
    let warps = env_usize("MF_TRACE_WARPS", 1).max(1);
    let gate_pct = env_f64("MF_TRACE_GATE_PCT", 5.0);

    let a: Csr = poisson2d(grid, grid);
    let mut b = vec![0.0; a.nrows];
    a.matvec(&vec![1.0; a.ncols], &mut b);
    let m = TiledMatrix::from_csr(&a);
    let ilu = ilu0(&a).expect("ILU(0) on the Poisson proxy");

    println!(
        "trace timeline: poisson2d {grid}x{grid} (n={}, nnz={}), {iters} fixed iters, {warps} warp(s), min of {reps} reps",
        a.nrows,
        a.nnz()
    );

    let (off_us, _) = time_pcg(&m, &ilu, &b, iters, warps, reps, &TraceConfig::default());
    let (on_us, trace) = time_pcg(&m, &ilu, &b, iters, warps, reps, &TraceConfig::on());
    let trace = trace.expect("tracing was enabled");
    let overhead_pct = (on_us - off_us) / off_us * 100.0;
    let pass = overhead_pct <= gate_pct;

    let (waits, spun, spin_frac) = spin_stats(&trace);
    let polls_per_wait = trace.spin_polls_per_wait();

    // Per-precision traffic needs the mixed-precision path, which lives in
    // the sequential engine: a fixed-100-iteration traced CG solve.
    let seq_cfg = SolverConfig {
        fixed_iterations: Some(iters),
        trace: TraceConfig::on(),
        ..SolverConfig::default()
    };
    let seq_report = MilleFeuille::new(DeviceSpec::a100(), seq_cfg).solve_cg(&a, &b);
    let seq_trace = seq_report.trace.as_ref().expect("sequential tracing on");
    let bytes = seq_trace.bytes_by_precision();
    let bypassed = seq_trace.bypassed_tiles();

    let mut table = Table::new(vec![
        "engine",
        "trace",
        "wall_us",
        "events",
        "dropped",
        "barrier_waits",
        "spin_wait_fraction",
        "polls_per_wait",
    ]);
    table.row(vec![
        "pcg_threaded".into(),
        "off".into(),
        format!("{off_us:.1}"),
        "0".into(),
        "0".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    table.row(vec![
        "pcg_threaded".into(),
        "on".into(),
        format!("{on_us:.1}"),
        trace.events.len().to_string(),
        trace.dropped.to_string(),
        waits.to_string(),
        format!("{spin_frac:.3}"),
        format!("{polls_per_wait:.1}"),
    ]);
    println!("{}", table.render());
    println!(
        "recording overhead: {overhead_pct:+.2}% (gate {gate_pct:.1}%) -> {}",
        if pass { "PASS" } else { "FAIL" }
    );
    println!(
        "sequential mixed CG bytes: fp64={} fp32={} fp16={} fp8={}, bypassed tiles={}",
        bytes[0], bytes[1], bytes[2], bytes[3], bypassed
    );
    let csv = write_csv("fig_trace_timeline", &table).expect("write csv");
    println!("wrote {}", csv.display());

    if let Some(dir) = &trace_dir {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir).expect("create --trace-dir");
        let dump = [
            ("pcg_threaded.trace.jsonl", trace.to_jsonl()),
            ("pcg_threaded.chrome.json", trace.to_chrome_trace()),
            ("cg_sequential.trace.jsonl", seq_trace.to_jsonl()),
            ("cg_sequential.chrome.json", seq_trace.to_chrome_trace()),
        ];
        for (name, body) in dump {
            let path = dir.join(name);
            std::fs::write(&path, body).expect("write trace dump");
            println!("wrote {}", path.display());
        }
    }

    // Hand-rolled JSON (no serde in the offline workspace).
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fig_trace_timeline\",\n",
            "  \"matrix\": {{\"kind\": \"poisson2d\", \"grid\": {grid}, \"n\": {n}, \"nnz\": {nnz}}},\n",
            "  \"fixed_iterations\": {iters},\n",
            "  \"reps\": {reps},\n",
            "  \"warps\": {warps},\n",
            "  \"threaded_pcg\": {{\n",
            "    \"wall_us_trace_off\": {off:.1},\n",
            "    \"wall_us_trace_on\": {on:.1},\n",
            "    \"overhead_pct\": {ovh:.2},\n",
            "    \"gate_pct\": {gate:.1},\n",
            "    \"pass\": {pass},\n",
            "    \"events\": {events},\n",
            "    \"dropped\": {dropped},\n",
            "    \"barrier_waits\": {waits},\n",
            "    \"waits_that_spun\": {spun},\n",
            "    \"spin_wait_fraction\": {frac:.4},\n",
            "    \"spin_polls_per_wait\": {ppw:.2}\n",
            "  }},\n",
            "  \"sequential_mixed_cg\": {{\n",
            "    \"value_bytes\": {{\"fp64\": {b64}, \"fp32\": {b32}, \"fp16\": {b16}, \"fp8\": {b8}}},\n",
            "    \"bypassed_tiles\": {byp}\n",
            "  }}\n",
            "}}\n"
        ),
        grid = grid,
        n = a.nrows,
        nnz = a.nnz(),
        iters = iters,
        reps = reps,
        warps = warps,
        off = off_us,
        on = on_us,
        ovh = overhead_pct,
        gate = gate_pct,
        pass = pass,
        events = trace.events.len(),
        dropped = trace.dropped,
        waits = waits,
        spun = spun,
        frac = spin_frac,
        ppw = polls_per_wait,
        b64 = bytes[0],
        b32 = bytes[1],
        b16 = bytes[2],
        b8 = bytes[3],
        byp = bypassed,
    );
    let mut f = std::fs::File::create("BENCH_trace.json").expect("create BENCH_trace.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_trace.json");
    println!("wrote BENCH_trace.json");

    if !pass {
        eprintln!(
            "FAIL: trace recording overhead {overhead_pct:.2}% exceeds the {gate_pct:.1}% gate \
             (raise MF_TRACE_GATE_PCT only with a justification in EXPERIMENTS.md)"
        );
        std::process::exit(1);
    }
}
