//! **Figure 10**: ILU(0)-preconditioned CG and BiCGSTAB vs the vendor
//! baselines on both devices, 100 iterations.
//!
//! Mille-feuille applies the preconditioner with the recursive-block SpTRSV
//! (ref. \[41\]); the baselines use level-scheduled SpSV (cusparseSpSV-style),
//! which is what drives the large speedups on banded/blocky matrices.
//!
//! Paper reference numbers (geometric mean, max):
//!   PCG:       3.82× / 40.38× (A100)   3.47× / 47.75× (MI210)
//!   PBiCGSTAB: 1.79× / 45.63× (A100)   1.63× / 44.34× (MI210)

use mf_baselines::Baseline;
use mf_bench::{
    bicgstab_entries, cg_entries, compare_pbicgstab, compare_pcg, iters_from_env, summarize,
    write_csv, CompareRow, Table,
};
use mf_gpu::DeviceSpec;

fn emit(label: &str, rows: &[CompareRow], paper_geo: f64, paper_max: f64) {
    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    let s = summarize(&speedups);
    println!(
        "{label:<26} {:>4} matrices  geomean {:.2}x (paper {paper_geo:.2}x)  max {:.2}x (paper {paper_max:.2}x)",
        s.count, s.geomean, s.max
    );
    let mut sorted: Vec<&CompareRow> = rows.iter().collect();
    sorted.sort_by(|a, b| b.speedup.total_cmp(&a.speedup));
    for r in sorted.iter().take(4) {
        println!("    {:<22} nnz={:<9} {:.2}x", r.name, r.nnz, r.speedup);
    }
    let mut table = Table::new(vec!["name", "n", "nnz", "mf_us", "base_us", "speedup"]);
    for r in rows {
        table.row(vec![
            r.name.clone(),
            r.n.to_string(),
            r.nnz.to_string(),
            format!("{:.3}", r.mf_us),
            format!("{:.3}", r.base_us),
            format!("{:.4}", r.speedup),
        ]);
    }
    let csv = label.to_lowercase().replace([' ', '/'], "_");
    let path = write_csv(&format!("fig10_{csv}"), &table).unwrap();
    println!("    csv -> {}\n", path.display());
}

fn main() {
    let iters = iters_from_env();
    // The SpTRSV level analysis and ILU make the preconditioned sweep the
    // slowest experiment; the population is capped separately.
    let cap: usize = std::env::var("MF_PRECOND_COUNT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let cg: Vec<_> = cg_entries().into_iter().take(cap).collect();
    let bi: Vec<_> = bicgstab_entries().into_iter().take(cap).collect();
    println!(
        "Figure 10 — preconditioned solvers vs vendor baselines, {iters} iterations, {}+{} matrices\n",
        cg.len(),
        bi.len()
    );
    let a100 = DeviceSpec::a100();
    let mi210 = DeviceSpec::mi210();

    emit(
        "PCG vs cuSPARSE A100",
        &compare_pcg(&cg, &a100, &Baseline::cusparse(), iters),
        3.82,
        40.38,
    );
    emit(
        "PCG vs hipSPARSE MI210",
        &compare_pcg(&cg, &mi210, &Baseline::hipsparse(), iters),
        3.47,
        47.75,
    );
    emit(
        "PBiCGSTAB vs cuSPARSE A100",
        &compare_pbicgstab(&bi, &a100, &Baseline::cusparse(), iters),
        1.79,
        45.63,
    );
    emit(
        "PBiCGSTAB vs hipSPARSE MI210",
        &compare_pbicgstab(&bi, &mi210, &Baseline::hipsparse(), iters),
        1.63,
        44.34,
    );
}
