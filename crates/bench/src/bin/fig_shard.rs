//! Multi-device sharding: per-device matrix footprint and interconnect
//! traffic versus shard count (ROADMAP "multi-device sharding").
//!
//! Every matrix of a small SPD population is solved through the sharded
//! engine at shard counts {1, 2, 4} (simulated devices connected by an
//! explicit NVLink-3 [`Interconnect`]) and through the single-device
//! threaded engine at the same warp cap. The sharded engine is
//! deterministic and shard-count invariant by construction, so the
//! figure of merit is the **scaling shape**: how the packed matrix
//! payload splits across devices (weak-scaling memory headroom) and what
//! halo traffic the row-block decomposition pays for it.
//!
//! Gates (exit 1 on failure):
//!
//! * **bitwise invariance** — at *every* shard count the sharded solve's
//!   solution, final residual and trajectory are bitwise identical to the
//!   single-device threaded engine on every matrix;
//! * **footprint split** — on the largest grid matrix at 4 shards, the
//!   largest per-device matrix payload is at most `MF_SHARD_SPLIT_GATE`
//!   (default 0.35) of the single-device payload: the decomposition must
//!   actually shed memory, not mirror the matrix.
//!
//! Output: `bench_out/fig_shard.csv` + `BENCH_shard.json`.
//!
//! Env knobs: `MF_SHARD_GRID` (largest Poisson side, default 96),
//! `MF_SHARD_TOL` (default 1e-10), `MF_SHARD_MAXITER` (default 2000),
//! `MF_SHARD_WARPS` (default 4), `MF_SHARD_SPLIT_GATE` (default 0.35).

use std::fmt::Write as _;
use std::io::Write as _;

use mf_bench::{write_csv, Table};
use mf_collection::{banded_spd, poisson2d, random_spd, ValueClass};
use mf_gpu::Phase;
use mf_solver::threaded::run_cg_threaded;
use mf_solver::{run_cg_sharded, ShardedReport};
use mf_sparse::{Csr, TiledMatrix};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `b = A · 1`, the paper's right-hand side.
fn rhs(a: &Csr) -> Vec<f64> {
    let mut b = vec![0.0; a.nrows];
    a.matvec(&vec![1.0; a.ncols], &mut b);
    b
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

struct ShardRow {
    matrix: String,
    n: usize,
    nnz: usize,
    shards: usize,
    rep: ShardedReport,
    bitwise: bool,
    max_shard_bytes: usize,
    total_bytes: usize,
}

fn main() {
    let grid = env_usize("MF_SHARD_GRID", 96).max(8);
    let tol = env_f64("MF_SHARD_TOL", 1e-10);
    let max_iter = env_usize("MF_SHARD_MAXITER", 2000);
    let warps = env_usize("MF_SHARD_WARPS", 4).max(1);
    let split_gate = env_f64("MF_SHARD_SPLIT_GATE", 0.35);
    let shard_counts = [1usize, 2, 4];

    // The largest grid matrix carries the footprint gate; the rest widen
    // the bitwise-invariance evidence across value classes.
    let largest = format!("poisson2d_{grid}x{grid}");
    let systems: Vec<(String, Csr)> = vec![
        (largest.clone(), poisson2d(grid, grid)),
        (
            "poisson2d_40x40".into(),
            poisson2d(grid.min(40), grid.min(40)),
        ),
        (
            "banded_spd_real_600".into(),
            banded_spd(600, 4, ValueClass::Real, 7),
        ),
        (
            "random_spd_wide_300".into(),
            random_spd(300, 5, ValueClass::WideModerate, 11),
        ),
    ];

    println!(
        "fig_shard: {} SPD systems, shards {:?}, tol {tol:e}, {warps} warps",
        systems.len(),
        shard_counts
    );

    let mut rows: Vec<ShardRow> = Vec::new();
    for (name, a) in &systems {
        let m = TiledMatrix::from_csr(a);
        let b = rhs(a);
        let single = run_cg_threaded(&m, &b, tol, max_iter, warps);
        let total_bytes = m.vals_raw().len();
        for &sc in &shard_counts {
            let rep = run_cg_sharded(&m, &b, tol, max_iter, sc, warps);
            let bitwise = rep.iterations == single.iterations
                && rep.converged == single.converged
                && rep.final_relres.to_bits() == single.final_relres.to_bits()
                && bits(&rep.residual_history) == bits(&single.residual_history)
                && bits(&rep.x) == bits(&single.x);
            let max_shard_bytes = rep.per_shard_value_bytes.iter().copied().max().unwrap_or(0);
            rows.push(ShardRow {
                matrix: name.clone(),
                n: a.nrows,
                nnz: a.nnz(),
                shards: sc,
                rep,
                bitwise,
                max_shard_bytes,
                total_bytes,
            });
        }
    }

    let mut table = Table::new(vec![
        "matrix",
        "shards",
        "n",
        "nnz",
        "iters",
        "relres",
        "status",
        "bitwise",
        "max_shard_bytes",
        "split",
        "halo_bytes",
        "halo_msgs",
        "transfer_us",
    ]);
    for r in &rows {
        table.row(vec![
            r.matrix.clone(),
            r.shards.to_string(),
            r.n.to_string(),
            r.nnz.to_string(),
            r.rep.iterations.to_string(),
            format!("{:.3e}", r.rep.final_relres),
            r.rep.status_label(),
            r.bitwise.to_string(),
            r.max_shard_bytes.to_string(),
            format!("{:.3}", r.max_shard_bytes as f64 / r.total_bytes as f64),
            r.rep.halo_bytes.to_string(),
            r.rep.halo_messages.to_string(),
            format!("{:.1}", r.rep.timeline.get(Phase::Transfer)),
        ]);
    }
    println!("{}", table.render());
    let csv = write_csv("fig_shard", &table).expect("write csv");
    println!("wrote {}", csv.display());

    // ---- Gates. ----
    let all_bitwise = rows.iter().all(|r| r.bitwise);
    for r in rows.iter().filter(|r| !r.bitwise) {
        eprintln!(
            "FAIL: {} at {} shards diverged from the single-device engine",
            r.matrix, r.shards
        );
    }
    let split_row = rows
        .iter()
        .find(|r| r.matrix == largest && r.shards == 4)
        .expect("largest grid at 4 shards");
    let split = split_row.max_shard_bytes as f64 / split_row.total_bytes as f64;
    let split_ok = split <= split_gate;
    if !split_ok {
        eprintln!(
            "FAIL: {largest} at 4 shards keeps {split:.3} of the matrix payload on one device (gate {split_gate})"
        );
    }

    // ---- JSON (hand-rolled; no serde in the offline workspace). ----
    let pass = all_bitwise && split_ok;
    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"bench\": \"fig_shard\",\n",
            "  \"tolerance\": {tol:e},\n",
            "  \"warps\": {warps},\n",
            "  \"gates\": {{\"bitwise_all_shard_counts\": true, \"max_split_at_4_shards\": {gate}}},\n",
            "  \"largest\": \"{largest}\",\n",
            "  \"largest_split_at_4_shards\": {split:.6},\n",
            "  \"rows\": [\n"
        ),
        tol = tol,
        warps = warps,
        gate = split_gate,
        largest = largest,
        split = split,
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            concat!(
                "    {{\"matrix\": \"{name}\", \"n\": {n}, \"nnz\": {nnz}, \"shards\": {shards},\n",
                "     \"iterations\": {iters}, \"relres\": {relres:e}, \"status\": \"{status}\",\n",
                "     \"bitwise\": {bitwise}, \"max_shard_value_bytes\": {msb}, \"total_value_bytes\": {tvb},\n",
                "     \"halo_bytes\": {hb}, \"halo_messages\": {hm}, \"transfer_us\": {tus:.3}}}{comma}\n"
            ),
            name = r.matrix,
            n = r.n,
            nnz = r.nnz,
            shards = r.shards,
            iters = r.rep.iterations,
            relres = r.rep.final_relres,
            status = r.rep.status_label(),
            bitwise = r.bitwise,
            msb = r.max_shard_bytes,
            tvb = r.total_bytes,
            hb = r.rep.halo_bytes,
            hm = r.rep.halo_messages,
            tus = r.rep.timeline.get(Phase::Transfer),
            comma = if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = write!(json, "  ],\n  \"pass\": {pass}\n}}\n");
    let mut f = std::fs::File::create("BENCH_shard.json").expect("create BENCH_shard.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_shard.json");
    println!("wrote BENCH_shard.json");

    if !pass {
        eprintln!("FAIL: fig_shard gates");
        std::process::exit(1);
    }
    println!("fig_shard gates PASS");
}
