//! **Figure 13**: memory footprint of the Mille-feuille two-level tiled
//! format vs the standard 3-array CSR of cuSPARSE.
//!
//! Paper reference: the tiled structure takes 1.04× CSR on average — the
//! extra metadata (tile indices, precisions, non-empty-row bookkeeping) is
//! largely offset by 1-byte in-tile column indices and narrow packed values.

use mf_bench::{bicgstab_entries, cg_entries, geomean, write_csv, Table};
use mf_collection::SuiteEntry;
use mf_sparse::TiledMatrix;
use rayon::prelude::*;

fn measure(entries: &[SuiteEntry], table_rows: &mut Vec<Vec<String>>) -> Vec<f64> {
    let rows: Vec<(String, usize, usize, usize, usize, usize, f64)> = entries
        .par_iter()
        .map(|e| {
            let a = e.generate();
            let t = TiledMatrix::from_csr(&a);
            let m = t.memory_bytes();
            let ratio = m.total() as f64 / a.memory_bytes() as f64;
            (
                e.name.clone(),
                a.nnz(),
                m.high_level,
                m.low_level,
                m.values,
                a.memory_bytes(),
                ratio,
            )
        })
        .collect();
    let mut ratios = Vec::with_capacity(rows.len());
    for (name, nnz, hi, lo, vals, csr, ratio) in rows {
        table_rows.push(vec![
            name,
            nnz.to_string(),
            hi.to_string(),
            lo.to_string(),
            vals.to_string(),
            csr.to_string(),
            format!("{ratio:.4}"),
        ]);
        ratios.push(ratio);
    }
    ratios
}

fn main() {
    println!("Figure 13 — memory: tiled format vs 3-array CSR\n");
    let mut rows = Vec::new();
    let mut ratios = measure(&cg_entries(), &mut rows);
    ratios.extend(measure(&bicgstab_entries(), &mut rows));

    let mut table = Table::new(vec![
        "name",
        "nnz",
        "tiled_high",
        "tiled_low",
        "tiled_values",
        "csr_bytes",
        "ratio",
    ]);
    for r in rows {
        table.row(r);
    }

    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let geo = geomean(&ratios);
    let max = ratios.iter().copied().fold(f64::MIN, f64::max);
    let min = ratios.iter().copied().fold(f64::MAX, f64::min);
    let below_one = ratios.iter().filter(|r| **r < 1.0).count();
    println!("matrices: {}", ratios.len());
    println!("mean ratio tiled/CSR: {mean:.3} (paper: 1.04)");
    println!("geomean {geo:.3}, min {min:.3}, max {max:.3}");
    println!(
        "{} of {} matrices need *less* memory than CSR (narrow packed values win)",
        below_one,
        ratios.len()
    );
    let path = write_csv("fig13_memory", &table).unwrap();
    println!("csv -> {}", path.display());
}
