//! **Figure 9**: Mille-feuille vs PETSc v3.20 (`KSPSolve`) and Ginkgo
//! v1.7.0 on the A100, CG and BiCGSTAB, 100 iterations.
//!
//! Paper reference numbers (geometric mean, max):
//!   CG:       5.37× / 16.54× (PETSc)   4.36× / 15.69× (Ginkgo)
//!   BiCGSTAB: 3.57× / 16.64× (PETSc)   3.78× / 11.73× (Ginkgo)

use mf_baselines::Baseline;
use mf_bench::{
    bicgstab_entries, cg_entries, compare_bicgstab, compare_cg, iters_from_env, summarize,
    write_csv, CompareRow, Table,
};
use mf_gpu::DeviceSpec;

fn emit(label: &str, rows: &[CompareRow], paper_geo: f64, paper_max: f64) {
    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    let s = summarize(&speedups);
    println!(
        "{label:<24} {:>4} matrices  geomean {:.2}x (paper {paper_geo:.2}x)  max {:.2}x (paper {paper_max:.2}x)",
        s.count, s.geomean, s.max
    );
    let mut sorted: Vec<&CompareRow> = rows.iter().collect();
    sorted.sort_by(|a, b| b.speedup.total_cmp(&a.speedup));
    for r in sorted.iter().take(3) {
        println!("    {:<22} nnz={:<9} {:.2}x", r.name, r.nnz, r.speedup);
    }
    let mut table = Table::new(vec!["name", "n", "nnz", "mf_us", "base_us", "speedup"]);
    for r in rows {
        table.row(vec![
            r.name.clone(),
            r.n.to_string(),
            r.nnz.to_string(),
            format!("{:.3}", r.mf_us),
            format!("{:.3}", r.base_us),
            format!("{:.4}", r.speedup),
        ]);
    }
    let csv = label.to_lowercase().replace([' ', '/'], "_");
    let path = write_csv(&format!("fig09_{csv}"), &table).unwrap();
    println!("    csv -> {}\n", path.display());
}

fn main() {
    let iters = iters_from_env();
    let cg = cg_entries();
    let bi = bicgstab_entries();
    println!("Figure 9 — Mille-feuille vs PETSc and Ginkgo on the A100, {iters} iterations\n");
    let a100 = DeviceSpec::a100();

    emit(
        "CG vs PETSc",
        &compare_cg(&cg, &a100, &Baseline::petsc(), iters),
        5.37,
        16.54,
    );
    emit(
        "CG vs Ginkgo",
        &compare_cg(&cg, &a100, &Baseline::ginkgo(), iters),
        4.36,
        15.69,
    );
    emit(
        "BiCGSTAB vs PETSc",
        &compare_bicgstab(&bi, &a100, &Baseline::petsc(), iters),
        3.57,
        16.64,
    );
    emit(
        "BiCGSTAB vs Ginkgo",
        &compare_bicgstab(&bi, &a100, &Baseline::ginkgo(), iters),
        3.78,
        11.73,
    );
}
