//! **Figure 1**: per-nonzero "enough good" precision distribution of the
//! three example matrices (`garon2`, `nmos3`, `ASIC_320k`).
//!
//! The paper renders spy plots; this binary prints the classification
//! histograms (per nonzero and per 16×16 tile) that color those plots, and
//! dumps a per-tile precision map CSV for external plotting.

use mf_bench::{write_csv, Table};
use mf_collection::named_matrix;
use mf_precision::{classification_histogram, ClassifyOptions};
use mf_sparse::TiledMatrix;

fn main() {
    let opts = ClassifyOptions::default();
    let mut table = Table::new(vec![
        "matrix",
        "n",
        "nnz",
        "fp64%",
        "fp32%",
        "fp16%",
        "fp8%",
        "tiles",
        "tile_fp64",
        "tile_fp32",
        "tile_fp16",
        "tile_fp8",
    ]);

    println!("Figure 1 — 'enough good' precision of each nonzero (loss < 1e-15)\n");
    for name in ["garon2", "nmos3", "ASIC_320k"] {
        let a = named_matrix(name).expect("named proxy").generate();
        let h = classification_histogram(&a.vals, &opts);
        let t = TiledMatrix::from_csr(&a);
        let th = t.tile_precision_histogram();
        let pct = |c: usize| 100.0 * c as f64 / a.nnz() as f64;
        println!(
            "{name:<12} n={:<8} nnz={:<9} FP64 {:5.1}%  FP32 {:5.1}%  FP16 {:5.1}%  FP8 {:5.1}%",
            a.nrows,
            a.nnz(),
            pct(h[0]),
            pct(h[1]),
            pct(h[2]),
            pct(h[3])
        );
        println!(
            "             {} tiles: FP64 {}  FP32 {}  FP16 {}  FP8 {}\n",
            t.tile_count(),
            th[0],
            th[1],
            th[2],
            th[3]
        );
        table.row(vec![
            name.to_string(),
            a.nrows.to_string(),
            a.nnz().to_string(),
            format!("{:.2}", pct(h[0])),
            format!("{:.2}", pct(h[1])),
            format!("{:.2}", pct(h[2])),
            format!("{:.2}", pct(h[3])),
            t.tile_count().to_string(),
            th[0].to_string(),
            th[1].to_string(),
            th[2].to_string(),
            th[3].to_string(),
        ]);

        // Per-tile map (tile_row, tile_col, precision) for spy-plot rendering.
        let mut map = Table::new(vec!["tile_row", "tile_col", "precision"]);
        for i in 0..t.tile_count() {
            map.row(vec![
                t.tile_rowidx[i].to_string(),
                t.tile_colidx[i].to_string(),
                t.tile_prec[i].to_string(),
            ]);
        }
        let path = write_csv(&format!("fig01_map_{name}"), &map).unwrap();
        println!("             tile map -> {}", path.display());
        let svg = mf_bench::write_tile_map_svg(&format!("fig01_{name}"), &t, 900).unwrap();
        println!("             spy plot -> {}", svg.display());
    }

    let path = write_csv("fig01_precision_histograms", &table).unwrap();
    println!("\nhistograms -> {}", path.display());
    println!(
        "\nPaper reference: garon2 mostly FP16/FP8; nmos3 half FP64 / half FP8;\n\
         ASIC_320k FP8 blocks with FP64 row/column interconnect."
    );
}
