//! **Figure 6 companion**: traces the single-kernel dependency machinery on
//! the paper's own example — a 6×6 matrix stored as five 2×2 tiles in three
//! tile rows, solved by three warps — printing the `d_s`/`d_d`/`d_a`
//! initialization and the per-step schedule, then running the *real*
//! threaded engine on the same system to show the scheme executes
//! concurrently without deadlock.

use mf_gpu::{DepArrays, SpmvSchedule, VectorSchedule};
use mf_precision::ClassifyOptions;
use mf_solver::threaded::run_cg_threaded;
use mf_sparse::{Coo, TiledMatrix};

fn main() {
    // The Fig. 6 layout: tiles at (0,0), (1,1), (1,2), (2,0), (2,2) of a
    // 6x6 matrix with 2x2 tiles -> d_s = [1, 2, 2]. Values chosen SPD.
    let mut a = Coo::new(6, 6);
    for i in 0..6 {
        a.push(i, i, 8.0);
    }
    // tile (1,2): rows 2-3, cols 4-5
    a.push(2, 4, -1.0);
    a.push(3, 5, -1.0);
    // tile (2,0): rows 4-5, cols 0-1 (and mirror for symmetry -> tile (0,1)?
    // keep the exact tile set of Fig. 6 by mirroring into existing tiles)
    a.push(4, 0, -1.0);
    a.push(5, 1, -1.0);
    a.push(0, 4, -1.0); // mirror entries keep A symmetric; they land in
    a.push(1, 5, -1.0); // tile (0,2), giving d_s = [2, 2, 2]
    a.push(4, 2, -1.0);
    a.push(5, 3, -1.0);
    let csr = a.to_csr();
    let m = TiledMatrix::from_csr_with(&csr, 2, &ClassifyOptions::default());

    println!("Figure 6 — single-kernel dependency machinery on the paper's example\n");
    println!(
        "matrix: 6x6, {} tiles of 2x2 in {} tile rows",
        m.tile_count(),
        m.tile_rows
    );
    for i in 0..m.tile_count() {
        println!(
            "  tile {i}: position ({}, {}), {} nnz, precision {}",
            m.tile_rowidx[i],
            m.tile_colidx[i],
            m.tile_nnz[i + 1] - m.tile_nnz[i],
            m.tile_prec[i]
        );
    }

    let ds = DepArrays::init_ds(&m);
    println!("\nd_s initialization (tiles per tile row): {ds:?}");

    let warps = 3;
    let spmv = SpmvSchedule::for_warps(&m, warps);
    let vecs = VectorSchedule::build(6, 2, warps);
    println!("warps: {warps}  (d_d and d_a track {warps} completions per phase)");
    for w in 0..spmv.warp_count() {
        let (lo, hi) = spmv.warp_tiles[w];
        println!(
            "  warp {w}: SpMV tiles {lo}..{hi} ({} nnz), vector segments {:?}",
            spmv.warp_nnz[w],
            vecs.warp_segments.get(w)
        );
    }

    println!("\nStep protocol per iteration (Algorithm 3):");
    println!("  A: each tile's SpMV lands -> atomicSub(d_s[row_tile]); warps spin until their row tiles drain");
    println!("  B: dot (u, p) per segment -> atomicSub(d_d); spin until 0; alpha = rr/y");
    println!("  C: x += alpha p, r -= alpha u; dot (r, r) -> atomicAdd(d_d); spin until warp_num");
    println!(
        "  D: p = r + beta p -> atomicAdd(d_a); spin until warp_num; in-kernel residual check"
    );

    // Now actually run it, concurrently, with real threads and atomics.
    let mut b = vec![0.0; 6];
    csr.matvec(&[1.0; 6], &mut b);
    let rep = run_cg_threaded(&m, &b, 1e-12, 100, warps);
    println!(
        "\nthreaded engine: {} warps, converged = {} in {} iterations (relres {:.2e})",
        rep.warps, rep.converged, rep.iterations, rep.final_relres
    );
    let err = rep.x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
    println!("max |x - 1| = {err:.2e}");
    assert!(rep.converged && err < 1e-9);
}
