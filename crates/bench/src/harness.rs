//! Suite-level experiment drivers shared by the figure binaries.

use mf_baselines::Baseline;
use mf_collection::{bicgstab_suite, cg_suite, SuiteEntry, SuiteOptions};
use mf_gpu::DeviceSpec;
use mf_kernels::ilu0;
use mf_solver::{ExecutedMode, MilleFeuille, SolveReport, SolverConfig};
use rayon::prelude::*;

/// One comparison point (one matrix, Mille-feuille vs one baseline).
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Matrix name.
    pub name: String,
    /// Rows.
    pub n: usize,
    /// Nonzeros.
    pub nnz: usize,
    /// Mille-feuille modeled solve time, µs.
    pub mf_us: f64,
    /// Baseline modeled solve time, µs.
    pub base_us: f64,
    /// `base_us / mf_us`.
    pub speedup: f64,
    /// Mille-feuille iterations executed.
    pub mf_iters: usize,
    /// Baseline iterations executed.
    pub base_iters: usize,
    /// Execution mode Mille-feuille chose.
    pub mf_mode: ExecutedMode,
    /// Mille-feuille termination status: `converged`, `max_iter`, or
    /// `aborted(<breakdown>)` ([`SolveReport::status_label`]) — Table-II
    /// style rows no longer conflate "ran the iteration budget" with
    /// "broke down".
    pub mf_status: String,
    /// Barrier epochs per iteration per warp from the run's
    /// [`mf_trace::TraceSummary`] (see [`barriers_per_iter`]); `None`
    /// when tracing was off for the run.
    pub mf_barriers_per_iter: Option<f64>,
}

/// Barrier epochs per iteration per warp for the `barriers/iter` table
/// column, from a solve's merged trace. `None` when tracing was off, the
/// stream is incomplete (ring drops would undercount the epochs), or the
/// engine recorded no barrier epochs at all — the sequential model cores
/// charge sync time in the timeline but emit no barrier events, so only
/// the threaded engines (the population this column measures) produce a
/// number.
pub fn barriers_per_iter(trace: Option<&mf_trace::Trace>) -> Option<f64> {
    let s = trace?.summary();
    (s.dropped == 0 && s.count(mf_trace::EventKind::BarrierEnter) > 0)
        .then(|| s.barriers_per_iteration())
}

impl CompareRow {
    /// Builds a row from one matrix's Mille-feuille report plus the
    /// baseline's time and iteration count.
    fn from_reports(
        name: &str,
        n: usize,
        nnz: usize,
        mf: &SolveReport,
        base_us: f64,
        base_iters: usize,
    ) -> Self {
        CompareRow {
            name: name.to_string(),
            n,
            nnz,
            mf_us: mf.solve_us(),
            base_us,
            speedup: base_us / mf.solve_us(),
            mf_iters: mf.iterations,
            base_iters,
            mf_mode: mf.mode,
            mf_status: mf.status_label(),
            mf_barriers_per_iter: barriers_per_iter(mf.trace.as_ref()),
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Suite options from `MF_SUITE_COUNT` / `MF_MAX_NNZ` (defaults 60 /
/// 2_000_000 — pass 230/686 and 4_000_000 for the paper-scale run).
pub fn suite_options_from_env() -> SuiteOptions {
    SuiteOptions {
        count: env_usize("MF_SUITE_COUNT", 60),
        max_nnz: env_usize("MF_MAX_NNZ", 2_000_000),
        ..SuiteOptions::default()
    }
}

/// Benchmark iteration count from `MF_ITERS` (paper: 100).
pub fn iters_from_env() -> usize {
    env_usize("MF_ITERS", 100)
}

/// The CG population (named SPD proxies + synthetic sweep).
pub fn cg_entries() -> Vec<SuiteEntry> {
    cg_suite(&suite_options_from_env())
}

/// The BiCGSTAB population.
pub fn bicgstab_entries() -> Vec<SuiteEntry> {
    bicgstab_suite(&suite_options_from_env())
}

/// Right-hand side the paper uses: `b = A · 1` (§IV-A).
pub fn paper_rhs(a: &mf_sparse::Csr) -> Vec<f64> {
    let mut b = vec![0.0; a.nrows];
    a.matvec(&vec![1.0; a.ncols], &mut b);
    b
}

fn mf_config(iters: usize) -> SolverConfig {
    SolverConfig {
        fixed_iterations: Some(iters),
        ..SolverConfig::default()
    }
}

/// Runs Mille-feuille vs a baseline on CG over a suite (`iters` fixed
/// iterations each, paper Figs. 8–9), in parallel over matrices.
pub fn compare_cg(
    entries: &[SuiteEntry],
    device: &DeviceSpec,
    baseline: &Baseline,
    iters: usize,
) -> Vec<CompareRow> {
    entries
        .par_iter()
        .map(|e| {
            let a = e.generate();
            let b = paper_rhs(&a);
            let mf = MilleFeuille::new(device.clone(), mf_config(iters));
            let rep = mf.solve_cg(&a, &b);
            let base = baseline.solve_cg(&a, &b, &mf_config(iters));
            CompareRow::from_reports(
                &e.name,
                a.nrows,
                a.nnz(),
                &rep,
                base.solve_us(),
                base.iterations,
            )
        })
        .collect()
}

/// Runs Mille-feuille vs a baseline on BiCGSTAB over a suite.
pub fn compare_bicgstab(
    entries: &[SuiteEntry],
    device: &DeviceSpec,
    baseline: &Baseline,
    iters: usize,
) -> Vec<CompareRow> {
    entries
        .par_iter()
        .map(|e| {
            let a = e.generate();
            let b = paper_rhs(&a);
            let mf = MilleFeuille::new(device.clone(), mf_config(iters));
            let rep = mf.solve_bicgstab(&a, &b);
            let base = baseline.solve_bicgstab(&a, &b, &mf_config(iters));
            CompareRow::from_reports(
                &e.name,
                a.nrows,
                a.nnz(),
                &rep,
                base.solve_us(),
                base.iterations,
            )
        })
        .collect()
}

/// Preconditioned CG comparison (Fig. 10). Matrices whose ILU(0) breaks
/// down are skipped, mirroring how the artifact filters failures.
pub fn compare_pcg(
    entries: &[SuiteEntry],
    device: &DeviceSpec,
    baseline: &Baseline,
    iters: usize,
) -> Vec<CompareRow> {
    entries
        .par_iter()
        .filter_map(|e| {
            let a = e.generate();
            let ilu = ilu0(&a).ok()?;
            let b = paper_rhs(&a);
            let mf = MilleFeuille::new(device.clone(), mf_config(iters));
            let rep = mf.solve_pcg_with(&a, &b, &ilu);
            let base = baseline.solve_pcg_with(&a, &b, &mf_config(iters), &ilu);
            Some(CompareRow::from_reports(
                &e.name,
                a.nrows,
                a.nnz(),
                &rep,
                base.solve_us(),
                base.iterations,
            ))
        })
        .collect()
}

/// Preconditioned BiCGSTAB comparison (Fig. 10).
pub fn compare_pbicgstab(
    entries: &[SuiteEntry],
    device: &DeviceSpec,
    baseline: &Baseline,
    iters: usize,
) -> Vec<CompareRow> {
    entries
        .par_iter()
        .filter_map(|e| {
            let a = e.generate();
            let ilu = ilu0(&a).ok()?;
            let b = paper_rhs(&a);
            let mf = MilleFeuille::new(device.clone(), mf_config(iters));
            let rep = mf.solve_pbicgstab_with(&a, &b, &ilu);
            let base = baseline.solve_pbicgstab_with(&a, &b, &mf_config(iters), &ilu);
            Some(CompareRow::from_reports(
                &e.name,
                a.nrows,
                a.nnz(),
                &rep,
                base.solve_us(),
                base.iterations,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_collection::SolverKind;

    fn tiny_suite(kind: SolverKind) -> Vec<SuiteEntry> {
        let opts = SuiteOptions {
            count: 45,
            max_nnz: 5_000,
            seed: 7,
        };
        let all = match kind {
            SolverKind::Cg => cg_suite(&opts),
            SolverKind::Bicgstab => bicgstab_suite(&opts),
        };
        // Keep only the small synthetic entries for fast tests.
        all.into_iter()
            .filter(|e| e.name.starts_with("spd_") || e.name.starts_with("nonsym_"))
            .take(6)
            .collect()
    }

    #[test]
    fn cg_comparison_produces_rows() {
        let entries = tiny_suite(SolverKind::Cg);
        let rows = compare_cg(&entries, &DeviceSpec::a100(), &Baseline::cusparse(), 10);
        assert_eq!(rows.len(), entries.len());
        for r in &rows {
            assert!(r.mf_us > 0.0 && r.base_us > 0.0);
            assert!(r.speedup.is_finite());
            assert_eq!(r.mf_iters, 10);
            assert_eq!(r.base_iters, 10);
        }
    }

    #[test]
    fn small_matrices_speed_up() {
        // The paper's core claim, smoke-tested: on small systems the single
        // kernel beats the multi-kernel baseline comfortably.
        let entries = tiny_suite(SolverKind::Cg);
        let rows = compare_cg(&entries, &DeviceSpec::a100(), &Baseline::cusparse(), 100);
        let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
        let s = crate::stats::summarize(&speedups);
        assert!(s.geomean > 1.5, "geomean {}", s.geomean);
        assert!(s.win_rate > 0.9, "win rate {}", s.win_rate);
    }

    #[test]
    fn bicgstab_comparison_runs() {
        let entries = tiny_suite(SolverKind::Bicgstab);
        let rows = compare_bicgstab(&entries, &DeviceSpec::mi210(), &Baseline::hipsparse(), 10);
        assert_eq!(rows.len(), entries.len());
        assert!(rows.iter().all(|r| r.speedup > 0.0));
    }

    #[test]
    fn preconditioned_comparisons_run() {
        let entries = tiny_suite(SolverKind::Cg);
        let rows = compare_pcg(&entries, &DeviceSpec::a100(), &Baseline::cusparse(), 10);
        assert!(!rows.is_empty());
        let nentries = tiny_suite(SolverKind::Bicgstab);
        let nrows = compare_pbicgstab(&nentries, &DeviceSpec::a100(), &Baseline::cusparse(), 10);
        assert!(!nrows.is_empty());
    }

    /// Synthetic reports exercising every status a row can carry — the
    /// Table-II-style output must distinguish a clean convergence, an
    /// exhausted iteration budget, and each structured abort.
    #[test]
    fn status_column_distinguishes_termination_kinds() {
        use mf_solver::report::{
            BreakdownEvent, BreakdownKind, ExecutedMode, RecoveryAction, SolveFailure,
        };

        fn synthetic(
            converged: bool,
            breakdowns: Vec<BreakdownEvent>,
            failure: Option<SolveFailure>,
        ) -> mf_solver::SolveReport {
            mf_solver::SolveReport {
                x: vec![0.0; 4],
                converged,
                iterations: 12,
                final_relres: 1e-3,
                mode: ExecutedMode::SingleKernel,
                timeline: mf_gpu::Timeline::new(),
                spmv_stats: Default::default(),
                tiled_memory: Default::default(),
                csr_memory: 0,
                warp_count: 4,
                residual_history: vec![],
                error_history: vec![],
                p_range_history: vec![],
                bypass_history: vec![],
                precision_history: vec![],
                preprocess_wall_us: 0.0,
                preprocess_passes: 1,
                breakdowns,
                failure,
                trace: None,
                retier_trail: vec![],
            }
        }

        let abort = |kind| BreakdownEvent {
            iteration: 11,
            kind,
            action: RecoveryAction::Aborted,
        };
        let cases = [
            (synthetic(true, vec![], None), "converged"),
            (synthetic(false, vec![], None), "max_iter"),
            (
                synthetic(
                    false,
                    vec![abort(BreakdownKind::Curvature)],
                    Some(SolveFailure::Stalled { iteration: 11 }),
                ),
                "aborted(curvature)",
            ),
            (
                synthetic(
                    false,
                    vec![abort(BreakdownKind::NonFinite)],
                    Some(SolveFailure::NonFinite { iteration: 11 }),
                ),
                "aborted(non_finite)",
            ),
            (
                synthetic(false, vec![], Some(SolveFailure::Wedged { iteration: 2 })),
                "aborted(wedged)",
            ),
        ];
        for (mf, expect) in &cases {
            let row = CompareRow::from_reports("synthetic", 4, 10, mf, 1.0, 12);
            assert_eq!(&row.mf_status, expect);
            assert_eq!(row.mf_barriers_per_iter, None, "tracing was off");
        }
        // Statuses must be distinct so the table actually separates them.
        let labels: std::collections::HashSet<_> =
            cases.iter().map(|(r, _)| r.status_label()).collect();
        assert_eq!(labels.len(), cases.len());
    }

    /// The `barriers/iter` column only reports complete threaded-style
    /// streams: barrier epochs divided by warps × iterations, `None` for
    /// untraced runs, barrier-free (sequential) traces, and lossy rings.
    #[test]
    fn barriers_column_measures_complete_threaded_traces_only() {
        use mf_trace::{EventKind, Trace, WarpTracer};
        // Threaded-style: 2 warps × 4 iterations × 2 barrier epochs each.
        let streams: Vec<_> = (0..2u32)
            .map(|w| {
                let t = WarpTracer::new(w as usize, 256);
                for j in 0..4 {
                    t.stamp(j, 0);
                    t.record(EventKind::BarrierEnter, 1, 0);
                    t.record(EventKind::BarrierEnter, 2, 0);
                }
                t.finish()
            })
            .collect();
        let threaded = Trace::merge(streams);
        assert_eq!(barriers_per_iter(Some(&threaded)), Some(2.0));

        // Sequential-style: events recorded, but no barrier epochs.
        let t = WarpTracer::new(0, 256);
        t.stamp(0, 0);
        t.record(EventKind::SpmvBytes, 0, 64);
        let sequential = Trace::merge(vec![t.finish()]);
        assert_eq!(barriers_per_iter(Some(&sequential)), None);
        assert_eq!(barriers_per_iter(None), None);

        // Lossy ring: a capacity-1 tracer drops events, so the count
        // would undercount — the column must decline to report.
        let t = WarpTracer::new(0, 1);
        t.stamp(0, 0);
        for _ in 0..8 {
            t.record(EventKind::BarrierEnter, 1, 0);
        }
        let lossy = Trace::merge(vec![t.finish()]);
        assert!(lossy.dropped > 0, "fixture must actually drop");
        assert_eq!(barriers_per_iter(Some(&lossy)), None);
    }

    #[test]
    fn env_defaults() {
        // Don't set the vars — just exercise the default paths.
        let opts = suite_options_from_env();
        assert!(opts.count >= 1);
        assert!(iters_from_env() >= 1);
    }
}
