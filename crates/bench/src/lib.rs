//! # mf-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§IV). Each figure has a binary (`src/bin/figNN_*`)
//! printing the same rows/series the paper plots, plus a CSV dump under
//! `bench_out/`; Criterion benches (`benches/`) measure the real CPU wall
//! time of the underlying kernels and solves on representative subsets.
//!
//! Sweep sizes are controlled by environment variables so a quick sanity
//! run and the paper-scale run use the same binaries:
//!
//! | variable | default | paper scale |
//! |---|---|---|
//! | `MF_SUITE_COUNT` | 60 | 230 (CG) / 686 (BiCGSTAB full) |
//! | `MF_MAX_NNZ` | 2_000_000 | 4_000_000 |
//! | `MF_ITERS` | 100 | 100 |

pub mod harness;
pub mod stats;
pub mod svg;
pub mod table;

pub use harness::{
    barriers_per_iter, bicgstab_entries, cg_entries, compare_bicgstab, compare_cg,
    compare_pbicgstab, compare_pcg, iters_from_env, suite_options_from_env, CompareRow,
};
pub use stats::{geomean, max_speedup, summarize, SpeedupSummary};
pub use svg::{render_tile_map, write_tile_map_svg};
pub use table::{metric_cell, write_csv, Table};
