//! Minimal text-table and CSV output.

use std::io::Write;
use std::path::Path;

/// A simple column-aligned text table that can also dump itself as CSV.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes CSV to a writer.
    pub fn to_csv<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(w, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(w, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Formats an optional metric for a table cell: two decimals, `-` when
/// the value was not measured. The `barriers/iter` column uses this —
/// runs with tracing off (or whose engine records no barrier epochs)
/// render as `-` instead of a misleading zero.
pub fn metric_cell(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.2}"),
        None => "-".to_string(),
    }
}

/// Writes a table as CSV under `bench_out/` (created on demand). Returns
/// the path written.
pub fn write_csv(name: &str, table: &Table) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("bench_out");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    table.to_csv(&mut f)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "22"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2\n");
    }

    #[test]
    fn metric_cells_render() {
        assert_eq!(metric_cell(Some(1.0)), "1.00");
        assert_eq!(metric_cell(Some(3.984)), "3.98");
        assert_eq!(metric_cell(None), "-");
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
