//! Minimal SVG rendering of tile-precision maps (the spy plots of the
//! paper's Figs. 1 and 5–7). No dependencies — plain SVG text.

use mf_precision::Precision;
use mf_sparse::TiledMatrix;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Color of one precision, matching the paper's legend (blue FP64, green
/// FP32, purple FP16, red FP8).
pub fn precision_color(p: Precision) -> &'static str {
    match p {
        Precision::Fp64 => "#3B6FB6",
        Precision::Fp32 => "#3FA45B",
        Precision::Fp16 => "#8E5BA6",
        Precision::Fp8 => "#D9534F",
    }
}

/// Renders the tile-precision map of a matrix as an SVG spy plot. Each
/// non-empty tile becomes one cell colored by its `TilePrec`; the canvas is
/// scaled to at most `max_px` pixels on the long edge.
pub fn render_tile_map<W: Write>(w: &mut W, m: &TiledMatrix, max_px: usize) -> std::io::Result<()> {
    let cols = m.tile_cols.max(1);
    let rows = m.tile_rows.max(1);
    let cell = (max_px as f64 / cols.max(rows) as f64).clamp(0.25, 16.0);
    let width = cols as f64 * cell;
    let height = rows as f64 * cell;

    writeln!(
        w,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.1}" height="{height:.1}" viewBox="0 0 {width:.1} {height:.1}">"#
    )?;
    writeln!(
        w,
        r##"<rect width="{width:.1}" height="{height:.1}" fill="#ffffff"/>"##
    )?;
    for i in 0..m.tile_count() {
        let x = m.tile_colidx[i] as f64 * cell;
        let y = m.tile_rowidx[i] as f64 * cell;
        writeln!(
            w,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{cell:.2}" height="{cell:.2}" fill="{}"/>"#,
            precision_color(m.tile_prec[i])
        )?;
    }
    writeln!(w, "</svg>")
}

/// Writes the tile map under `bench_out/<name>.svg` and returns the path.
pub fn write_tile_map_svg(name: &str, m: &TiledMatrix, max_px: usize) -> std::io::Result<PathBuf> {
    let dir = Path::new("bench_out");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.svg"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    render_tile_map(&mut f, m, max_px)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::Coo;

    fn sample() -> TiledMatrix {
        let mut a = Coo::new(40, 40);
        for i in 0..40 {
            a.push(i, i, 2.0); // FP8 tiles
        }
        a.push(0, 39, 0.1); // an FP64 tile
        TiledMatrix::from_csr(&a.to_csr())
    }

    #[test]
    fn renders_valid_svg() {
        let m = sample();
        let mut buf = Vec::new();
        render_tile_map(&mut buf, &m, 256).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        // One rect per tile + background.
        assert_eq!(s.matches("<rect").count(), m.tile_count() + 1);
        // Both colors present.
        assert!(s.contains(precision_color(Precision::Fp8)));
        assert!(s.contains(precision_color(Precision::Fp64)));
    }

    #[test]
    fn colors_are_distinct() {
        let colors: Vec<&str> = Precision::ALL.iter().map(|&p| precision_color(p)).collect();
        let mut dedup = colors.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn empty_matrix_renders() {
        let m = TiledMatrix::from_csr(&Coo::new(4, 4).to_csr());
        let mut buf = Vec::new();
        render_tile_map(&mut buf, &m, 64).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("</svg>"));
    }
}
