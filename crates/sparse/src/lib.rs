//! # mf-sparse
//!
//! Sparse-matrix substrate for the Mille-feuille solver (SC'24).
//!
//! Provides the classic formats the baselines use (COO for assembly, CSR for
//! cuSPARSE-style kernels), the paper's **two-level tiled mixed-precision
//! format** (§III-B, Fig. 5), Matrix Market I/O so real SuiteSparse `.mtx`
//! files can be used when available, a dense fallback used as a test oracle,
//! and structural analysis helpers.
//!
//! Format summary (paper Fig. 5):
//!
//! * **High level (inter-tile, COO style)** — `TileRowidx`, `TileColidx`,
//!   `TilePrec` (one of FP64/FP32/FP16/FP8 per tile, chosen by the
//!   "enough good" criterion), `TileNnz` (nonzero offsets, len `tilenum+1`)
//!   and `Nonrow` (non-empty-row offsets, len `tilenum+1`). COO is used so
//!   each CUDA warp can own a tile for load balance.
//! * **Low level (intra-tile, CSR style)** — `CsrRowptr`, `CsrColidx`, `Val`
//!   plus `RowIndex` recording the within-tile row of every non-empty row so
//!   SpMV never traverses empty rows.

pub mod analysis;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod fingerprint;
pub mod mm;
pub mod tiled;
pub mod tiled_io;

pub use analysis::MatrixStats;
pub use coo::Coo;
pub use csr::Csr;
pub use dense::Dense;
pub use fingerprint::Fingerprint;
pub use tiled::{
    TileAssembler, TileBuildPlan, TileView, TiledMatrix, TiledMemory, DEFAULT_TILE_SIZE,
};
pub use tiled_io::{read_tiled, read_tiled_file, write_tiled, write_tiled_file};

/// Errors produced by this crate.
#[derive(Debug)]
pub enum SparseError {
    /// Inconsistent dimensions or indices out of range.
    Shape(String),
    /// Matrix Market parse failure.
    Parse(String),
    /// I/O failure while reading or writing a file.
    Io(std::io::Error),
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::Shape(s) => write!(f, "shape error: {s}"),
            SparseError::Parse(s) => write!(f, "matrix market parse error: {s}"),
            SparseError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}
