//! Small dense matrices used as test oracles (direct solves, explicit
//! residuals) — never on the hot path.

use crate::csr::Csr;

/// Row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Dense {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row-major storage, length `nrows * ncols`.
    pub data: Vec<f64>,
}

impl Dense {
    /// A zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Dense {
        Dense {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Dense {
        let mut d = Dense::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = 1.0;
        }
        d
    }

    /// Converts a CSR matrix to dense.
    pub fn from_csr(a: &Csr) -> Dense {
        let mut d = Dense::zeros(a.nrows, a.ncols);
        for r in 0..a.nrows {
            for (c, v) in a.row(r) {
                d[(r, c)] += v;
            }
        }
        d
    }

    /// `y = A x`.
    #[allow(clippy::needless_range_loop)] // r indexes y and the row slice together
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for r in 0..self.nrows {
            let row = &self.data[r * self.ncols..(r + 1) * self.ncols];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Solves `A x = b` by LU with partial pivoting. Returns `None` when the
    /// matrix is numerically singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.nrows, self.ncols, "solve requires a square matrix");
        assert_eq!(b.len(), self.nrows);
        let n = self.nrows;
        let mut lu = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut piv: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot.
            let mut p = k;
            let mut pmax = lu[piv[k] * n + k].abs();
            for (i, &pi) in piv.iter().enumerate().skip(k + 1) {
                let v = lu[pi * n + k].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 || !pmax.is_finite() {
                return None;
            }
            piv.swap(k, p);
            let pk = piv[k];
            let pivot = lu[pk * n + k];
            for &pi in piv.iter().skip(k + 1) {
                let f = lu[pi * n + k] / pivot;
                lu[pi * n + k] = f;
                for j in k + 1..n {
                    lu[pi * n + j] -= f * lu[pk * n + j];
                }
            }
        }

        // Forward substitution (L has unit diagonal, stored in the factors).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let pi = piv[i];
            let mut s = x[pi];
            for j in 0..i {
                s -= lu[pi * n + j] * y[j];
            }
            y[i] = s;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let pi = piv[i];
            let mut s = y[i];
            for j in i + 1..n {
                s -= lu[pi * n + j] * x[j];
            }
            x[i] = s / lu[pi * n + i];
        }
        Some(x)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// `true` when symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            for j in 0..i {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for Dense {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.ncols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Dense {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.ncols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    #[test]
    fn identity_solve() {
        let i = Dense::identity(3);
        let b = [1.0, 2.0, 3.0];
        assert_eq!(i.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5]
        let mut a = Dense::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-14);
        assert!((x[1] - 1.4).abs() < 1e-14);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position requires a row swap.
        let mut a = Dense::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_returns_none() {
        let a = Dense::zeros(2, 2);
        assert!(a.solve(&[1.0, 1.0]).is_none());
        let mut b = Dense::zeros(2, 2);
        b[(0, 0)] = 1.0;
        b[(0, 1)] = 2.0;
        b[(1, 0)] = 2.0;
        b[(1, 1)] = 4.0;
        assert!(b.solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn from_csr_and_matvec() {
        let mut c = Coo::new(2, 3);
        c.push(0, 0, 1.0);
        c.push(1, 2, 5.0);
        let d = Dense::from_csr(&c.to_csr());
        let mut y = [0.0; 2];
        d.matvec(&[1.0, 1.0, 2.0], &mut y);
        assert_eq!(y, [1.0, 10.0]);
    }

    #[test]
    fn residual_of_solve_is_small() {
        // Random-ish well-conditioned system.
        let n = 8;
        let mut a = Dense::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = ((i * 31 + j * 17) % 13) as f64 / 13.0;
            }
            a[(i, i)] += 5.0; // diagonally dominant
        }
        let b: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let x = a.solve(&b).unwrap();
        let mut r = vec![0.0; n];
        a.matvec(&x, &mut r);
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn symmetry() {
        let mut a = Dense::zeros(2, 2);
        a[(0, 1)] = 1.0;
        assert!(!a.is_symmetric(1e-15));
        a[(1, 0)] = 1.0;
        assert!(a.is_symmetric(1e-15));
    }
}
