//! Binary serialization of the tiled format.
//!
//! Preprocessing (format conversion + classification) is cheap relative to
//! a full solve (Fig. 14) but not free; production workflows that solve
//! against the same matrix repeatedly (transient circuit simulation, time
//! stepping) want to pay it once. This module stores a [`TiledMatrix`] in a
//! compact little-endian binary container (`MFT1`) and reloads it with full
//! structural validation.

use crate::tiled::TiledMatrix;
use crate::SparseError;
use mf_precision::Precision;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MFT1";

fn w_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn r_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn w_u32s<W: Write>(w: &mut W, v: &[u32]) -> std::io::Result<()> {
    w_u64(w, v.len() as u64)?;
    for &x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn r_u32s<R: Read>(r: &mut R) -> std::io::Result<Vec<u32>> {
    let n = r_u64(r)? as usize;
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(u32::from_le_bytes(b));
    }
    Ok(out)
}

fn w_u8s<W: Write>(w: &mut W, v: &[u8]) -> std::io::Result<()> {
    w_u64(w, v.len() as u64)?;
    w.write_all(v)
}

fn r_u8s<R: Read>(r: &mut R) -> std::io::Result<Vec<u8>> {
    let n = r_u64(r)? as usize;
    let mut out = vec![0u8; n];
    r.read_exact(&mut out)?;
    Ok(out)
}

/// Writes the tiled matrix in `MFT1` binary form.
pub fn write_tiled<W: Write>(w: &mut W, m: &TiledMatrix) -> Result<(), SparseError> {
    w.write_all(MAGIC)?;
    for v in [
        m.nrows as u64,
        m.ncols as u64,
        m.tile_size as u64,
        m.tile_rows as u64,
        m.tile_cols as u64,
    ] {
        w_u64(w, v)?;
    }
    w_u32s(w, &m.tile_rowidx)?;
    w_u32s(w, &m.tile_colidx)?;
    let prec_codes: Vec<u8> = m.tile_prec.iter().map(|p| p.tile_code()).collect();
    w_u8s(w, &prec_codes)?;
    w_u32s(w, &m.tile_nnz)?;
    w_u32s(w, &m.nonrow)?;
    w_u32s(w, &m.csr_rowptr)?;
    w_u8s(w, &m.row_index)?;
    w_u8s(w, &m.csr_colidx)?;
    // Packed values: the raw byte image *is* the storage content (runs are
    // contiguous in tile order by construction).
    w_u8s(w, m.vals_raw())?;
    Ok(())
}

/// Reads an `MFT1` container back into a [`TiledMatrix`].
pub fn read_tiled<R: Read>(r: &mut R) -> Result<TiledMatrix, SparseError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SparseError::Parse(format!(
            "bad magic {magic:?}, expected MFT1"
        )));
    }
    let nrows = r_u64(r)? as usize;
    let ncols = r_u64(r)? as usize;
    let tile_size = r_u64(r)? as usize;
    let tile_rows = r_u64(r)? as usize;
    let tile_cols = r_u64(r)? as usize;
    if !(2..=256).contains(&tile_size)
        || tile_rows != nrows.div_ceil(tile_size)
        || tile_cols != ncols.div_ceil(tile_size)
    {
        return Err(SparseError::Parse("inconsistent header geometry".into()));
    }

    let tile_rowidx = r_u32s(r)?;
    let tile_colidx = r_u32s(r)?;
    let prec_codes = r_u8s(r)?;
    let tile_nnz = r_u32s(r)?;
    let nonrow = r_u32s(r)?;
    let csr_rowptr = r_u32s(r)?;
    let row_index = r_u8s(r)?;
    let csr_colidx = r_u8s(r)?;
    let raw_vals = r_u8s(r)?;

    let t = tile_rowidx.len();
    if tile_colidx.len() != t
        || prec_codes.len() != t
        || tile_nnz.len() != t + 1
        || nonrow.len() != t + 1
    {
        return Err(SparseError::Parse("inconsistent tile metadata".into()));
    }
    let mut tile_prec = Vec::with_capacity(t);
    for &c in &prec_codes {
        tile_prec.push(
            Precision::from_tile_code(c)
                .ok_or_else(|| SparseError::Parse(format!("bad precision code {c}")))?,
        );
    }
    // Validate indices and rebuild the value offsets.
    let nnz = *tile_nnz.last().unwrap_or(&0) as usize;
    if csr_colidx.len() != nnz
        || row_index.len() != *nonrow.last().unwrap_or(&0) as usize
        || csr_rowptr.len() != row_index.len() + 1
    {
        return Err(SparseError::Parse("inconsistent intra-tile arrays".into()));
    }
    let mut val_offsets = Vec::with_capacity(t);
    let mut off = 0usize;
    for i in 0..t {
        if tile_rowidx[i] as usize >= tile_rows || tile_colidx[i] as usize >= tile_cols {
            return Err(SparseError::Parse(format!("tile {i} out of grid")));
        }
        val_offsets.push(off);
        off += (tile_nnz[i + 1] - tile_nnz[i]) as usize * tile_prec[i].bytes();
    }
    if off != raw_vals.len() {
        return Err(SparseError::Parse(format!(
            "value buffer length {} != expected {off}",
            raw_vals.len()
        )));
    }

    Ok(TiledMatrix::from_raw_parts(
        nrows,
        ncols,
        tile_size,
        tile_rowidx,
        tile_colidx,
        tile_prec,
        tile_nnz,
        nonrow,
        csr_rowptr,
        row_index,
        csr_colidx,
        raw_vals,
        val_offsets,
    ))
}

/// Writes the tiled matrix to a file.
pub fn write_tiled_file(path: impl AsRef<Path>, m: &TiledMatrix) -> Result<(), SparseError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_tiled(&mut f, m)
}

/// Reads a tiled matrix from a file.
pub fn read_tiled_file(path: impl AsRef<Path>) -> Result<TiledMatrix, SparseError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    read_tiled(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> TiledMatrix {
        let mut a = Coo::new(50, 50);
        for i in 0..50 {
            a.push(i, i, 4.0);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
        }
        a.push(0, 49, 0.1); // FP64 tile
        TiledMatrix::from_csr(&a.to_csr())
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let m = sample();
        let mut buf = Vec::new();
        write_tiled(&mut buf, &m).unwrap();
        let back = read_tiled(&mut buf.as_slice()).unwrap();
        assert_eq!(back.nrows, m.nrows);
        assert_eq!(back.tile_size, m.tile_size);
        assert_eq!(back.tile_rowidx, m.tile_rowidx);
        assert_eq!(back.tile_prec, m.tile_prec);
        assert_eq!(back.csr_colidx, m.csr_colidx);
        assert_eq!(back.to_csr(), m.to_csr());
        // Values decode identically.
        for i in 0..m.tile_count() {
            assert_eq!(back.decode_tile_values(i), m.decode_tile_values(i));
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mf_tiled_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mft");
        let m = sample();
        write_tiled_file(&path, &m).unwrap();
        let back = read_tiled_file(&path).unwrap();
        assert_eq!(back.to_csr(), m.to_csr());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_tiled(&mut &b"NOPE............"[..]).unwrap_err();
        assert!(matches!(err, SparseError::Parse(_)));
    }

    #[test]
    fn rejects_truncation() {
        let m = sample();
        let mut buf = Vec::new();
        write_tiled(&mut buf, &m).unwrap();
        for cut in [5, 40, buf.len() / 2, buf.len() - 3] {
            assert!(
                read_tiled(&mut &buf[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_corrupted_precision() {
        let m = sample();
        let mut buf = Vec::new();
        write_tiled(&mut buf, &m).unwrap();
        // The precision code array begins after magic + 5 u64 + two u32
        // arrays; find it by scanning for the first prec run: corrupt a
        // byte in the middle of the file and expect *some* validation error
        // (not a panic).
        let mid = buf.len() / 3;
        buf[mid] = 0xff;
        let _ = read_tiled(&mut buf.as_slice()); // must not panic
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let m = TiledMatrix::from_csr(&Coo::new(10, 10).to_csr());
        let mut buf = Vec::new();
        write_tiled(&mut buf, &m).unwrap();
        let back = read_tiled(&mut buf.as_slice()).unwrap();
        assert_eq!(back.tile_count(), 0);
        assert_eq!(back.nrows, 10);
    }
}
