//! Compressed sparse row — the format of the cuSPARSE/hipSPARSE baselines.

use crate::coo::Coo;

/// A sparse matrix in CSR form with `f64` values.
///
/// Column indices within each row are sorted ascending (guaranteed when built
/// through [`Coo::to_csr`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Csr {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row pointer array, length `nrows + 1`.
    pub rowptr: Vec<usize>,
    /// Column indices, length `nnz`.
    pub colidx: Vec<usize>,
    /// Values, length `nnz`.
    pub vals: Vec<f64>,
}

impl Csr {
    /// An `n × n` identity matrix.
    pub fn identity(n: usize) -> Csr {
        Csr {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect(),
            colidx: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Iterator over `(col, val)` of one row.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.rowptr[r];
        let hi = self.rowptr[r + 1];
        self.colidx[lo..hi]
            .iter()
            .copied()
            .zip(self.vals[lo..hi].iter().copied())
    }

    /// Value at `(r, c)`, or 0.0 if not stored (binary search within the row).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let lo = self.rowptr[r];
        let hi = self.rowptr[r + 1];
        match self.colidx[lo..hi].binary_search(&c) {
            Ok(k) => self.vals[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Reference `y = A x` (sequential, FP64).
    #[allow(clippy::needless_range_loop)] // r indexes y, rowptr and colidx together
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for r in 0..self.nrows {
            let mut sum = 0.0;
            for k in self.rowptr[r]..self.rowptr[r + 1] {
                sum += self.vals[k] * x[self.colidx[k]];
            }
            y[r] = sum;
        }
    }

    /// Converts back to COO.
    pub fn to_coo(&self) -> Coo {
        let mut rows = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            rows.extend(std::iter::repeat_n(r, self.rowptr[r + 1] - self.rowptr[r]));
        }
        Coo {
            nrows: self.nrows,
            ncols: self.ncols,
            rows,
            cols: self.colidx.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Returns the transpose in CSR (i.e. CSC of `self`), O(nnz + n).
    pub fn transpose(&self) -> Csr {
        let mut rowptr = vec![0usize; self.ncols + 1];
        for &c in &self.colidx {
            rowptr[c + 1] += 1;
        }
        for i in 0..self.ncols {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colidx = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut next = rowptr.clone();
        for r in 0..self.nrows {
            for k in self.rowptr[r]..self.rowptr[r + 1] {
                let c = self.colidx[k];
                let dst = next[c];
                colidx[dst] = r;
                vals[dst] = self.vals[k];
                next[c] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr,
            colidx,
            vals,
        }
    }

    /// `true` if the matrix is structurally and numerically symmetric within
    /// `tol` (relative to the larger magnitude of the pair).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.rowptr != self.rowptr || t.colidx != self.colidx {
            // Patterns differ: check numerically anyway (a pattern-unsymmetric
            // matrix can be numerically symmetric only if mismatched entries
            // are zero, which `get` handles).
            for r in 0..self.nrows {
                for (c, v) in self.row(r) {
                    let w = self.get(c, r);
                    let scale = v.abs().max(w.abs()).max(1e-300);
                    if (v - w).abs() / scale > tol {
                        return false;
                    }
                }
            }
            return true;
        }
        self.vals
            .iter()
            .zip(&t.vals)
            .all(|(&v, &w)| (v - w).abs() <= tol * v.abs().max(w.abs()).max(1e-300))
    }

    /// Extracts the main diagonal (missing entries are 0).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Extracts the lower triangle including the diagonal.
    pub fn lower_triangle(&self) -> Csr {
        self.filter(|r, c| c <= r)
    }

    /// Extracts the strict upper triangle plus unit diagonal.
    pub fn upper_triangle(&self) -> Csr {
        self.filter(|r, c| c >= r)
    }

    /// Keeps entries for which `keep(row, col)` is true.
    pub fn filter(&self, keep: impl Fn(usize, usize) -> bool) -> Csr {
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        rowptr.push(0);
        for r in 0..self.nrows {
            for k in self.rowptr[r]..self.rowptr[r + 1] {
                let c = self.colidx[k];
                if keep(r, c) {
                    colidx.push(c);
                    vals.push(self.vals[k]);
                }
            }
            rowptr.push(colidx.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Memory footprint of the standard 3-array CSR as allocated by the
    /// cuSPARSE baseline: 32-bit `rowptr` and `colidx`, 64-bit values
    /// (paper Fig. 13 compares against exactly this layout).
    pub fn memory_bytes(&self) -> usize {
        4 * (self.nrows + 1) + 4 * self.nnz() + 8 * self.nnz()
    }

    /// Scales every value by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.vals {
            *v *= s;
        }
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|r| self.row(r).map(|(_, v)| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut a = Coo::new(3, 3);
        for &(r, c, v) in &[
            (0, 0, 2.0),
            (0, 2, 1.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            a.push(r, c, v);
        }
        a.to_csr()
    }

    #[test]
    fn identity_matvec() {
        let i = Csr::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        i.matvec(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn get_and_row() {
        let a = sample();
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
        let row0: Vec<_> = a.row(0).collect();
        assert_eq!(row0, vec![(0, 2.0), (2, 1.0)]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let x = [1.0, -1.0, 2.0];
        let mut y = [0.0; 3];
        a.matvec(&x, &mut y);
        assert_eq!(y, [4.0, -3.0, 14.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(0, 2), 4.0);
    }

    #[test]
    fn symmetry_checks() {
        let a = sample();
        assert!(!a.is_symmetric(1e-12));
        let mut s = Coo::new(2, 2);
        s.push(0, 0, 2.0);
        s.push(0, 1, -1.0);
        s.push(1, 0, -1.0);
        s.push(1, 1, 2.0);
        assert!(s.to_csr().is_symmetric(1e-12));
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(sample().diagonal(), vec![2.0, 3.0, 5.0]);
    }

    #[test]
    fn triangles() {
        let a = sample();
        let l = a.lower_triangle();
        assert_eq!(l.nnz(), 4); // (0,0),(1,1),(2,0),(2,2)
        let u = a.upper_triangle();
        assert_eq!(u.nnz(), 4); // (0,0),(0,2),(1,1),(2,2)
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(u.get(2, 0), 0.0);
    }

    #[test]
    fn coo_roundtrip() {
        let a = sample();
        assert_eq!(a.to_coo().to_csr(), a);
    }

    #[test]
    fn memory_model() {
        let a = sample();
        assert_eq!(a.memory_bytes(), 4 * 4 + 4 * 5 + 8 * 5);
    }

    #[test]
    fn norms_and_scale() {
        let mut a = sample();
        assert_eq!(a.norm_inf(), 9.0);
        a.scale(2.0);
        assert_eq!(a.norm_inf(), 18.0);
    }
}
