//! Coordinate (triplet) format — the assembly and interchange format.

use crate::csr::Csr;
use crate::SparseError;

/// A sparse matrix in coordinate (COO/triplet) form.
///
/// Entries may arrive unsorted and with duplicates; [`Coo::compact`] sorts
/// row-major and sums duplicates, which is the canonical form expected by
/// the CSR conversion.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Coo {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row indices, one per entry.
    pub rows: Vec<usize>,
    /// Column indices, one per entry.
    pub cols: Vec<usize>,
    /// Values, one per entry.
    pub vals: Vec<f64>,
}

impl Coo {
    /// Creates an empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Builds from parallel triplet arrays, validating indices.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<usize>,
        cols: Vec<usize>,
        vals: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::Shape(format!(
                "triplet arrays disagree: {} rows, {} cols, {} vals",
                rows.len(),
                cols.len(),
                vals.len()
            )));
        }
        if let Some(&r) = rows.iter().max() {
            if r >= nrows {
                return Err(SparseError::Shape(format!(
                    "row index {r} out of range for {nrows} rows"
                )));
            }
        }
        if let Some(&c) = cols.iter().max() {
            if c >= ncols {
                return Err(SparseError::Shape(format!(
                    "col index {c} out of range for {ncols} cols"
                )));
            }
        }
        Ok(Coo {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        })
    }

    /// Number of stored entries (before compaction this may include
    /// duplicates and explicit zeros).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends one entry.
    ///
    /// # Panics
    /// Panics if the indices are out of range.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(row < self.nrows && col < self.ncols, "index out of range");
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Sorts entries row-major (row, then column) and sums duplicates.
    /// Entries that sum to exactly zero are retained (they are structural
    /// nonzeros, which matters for ILU patterns).
    pub fn compact(&mut self) {
        let n = self.nnz();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&i| (self.rows[i], self.cols[i]));

        let mut rows = Vec::with_capacity(n);
        let mut cols = Vec::with_capacity(n);
        let mut vals = Vec::with_capacity(n);
        for &i in &order {
            let (r, c, v) = (self.rows[i], self.cols[i], self.vals[i]);
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    *vals.last_mut().unwrap() += v;
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Converts to CSR (compacts first).
    pub fn to_csr(&self) -> Csr {
        let mut c = self.clone();
        c.compact();
        let mut rowptr = vec![0usize; c.nrows + 1];
        for &r in &c.rows {
            rowptr[r + 1] += 1;
        }
        for i in 0..c.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        Csr {
            nrows: c.nrows,
            ncols: c.ncols,
            rowptr,
            colidx: c.cols,
            vals: c.vals,
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Coo {
        Coo {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Dense `y = A x` for oracle checks (O(nnz)).
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.fill(0.0);
        for i in 0..self.nnz() {
            y[self.rows[i]] += self.vals[i] * x[self.cols[i]];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        let mut a = Coo::new(3, 3);
        a.push(0, 0, 2.0);
        a.push(2, 1, -1.0);
        a.push(1, 1, 3.0);
        a.push(0, 0, 0.5); // duplicate
        a
    }

    #[test]
    fn push_and_nnz() {
        let a = sample();
        assert_eq!(a.nnz(), 4);
    }

    #[test]
    fn compact_sorts_and_sums() {
        let mut a = sample();
        a.compact();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.rows, vec![0, 1, 2]);
        assert_eq!(a.cols, vec![0, 1, 1]);
        assert_eq!(a.vals, vec![2.5, 3.0, -1.0]);
    }

    #[test]
    fn compact_keeps_structural_zeros() {
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 1.0);
        a.push(0, 0, -1.0);
        a.compact();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.vals[0], 0.0);
    }

    #[test]
    fn to_csr_matches() {
        let csr = sample().to_csr();
        assert_eq!(csr.rowptr, vec![0, 1, 2, 3]);
        assert_eq!(csr.colidx, vec![0, 1, 1]);
        assert_eq!(csr.vals, vec![2.5, 3.0, -1.0]);
    }

    #[test]
    fn from_triplets_validates() {
        assert!(Coo::from_triplets(2, 2, vec![0], vec![0], vec![1.0]).is_ok());
        assert!(Coo::from_triplets(2, 2, vec![2], vec![0], vec![1.0]).is_err());
        assert!(Coo::from_triplets(2, 2, vec![0], vec![5], vec![1.0]).is_err());
        assert!(Coo::from_triplets(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn transpose_swaps() {
        let t = sample().transpose();
        assert_eq!(t.nrows, 3);
        assert!(t.rows.contains(&1)); // col 1 entries become row 1
        let mut tt = t.transpose();
        tt.compact();
        let mut orig = sample();
        orig.compact();
        assert_eq!(tt, orig);
    }

    #[test]
    fn matvec_oracle() {
        let mut a = sample();
        a.compact();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.matvec(&x, &mut y);
        assert_eq!(y, [2.5, 6.0, -2.0]);
    }

    #[test]
    #[should_panic]
    fn push_out_of_range_panics() {
        let mut a = Coo::new(2, 2);
        a.push(2, 0, 1.0);
    }
}
