//! Structural and numerical analysis of sparse matrices.
//!
//! Used to pick the right solver (CG needs symmetric positive-definite,
//! BiCGSTAB handles nonsymmetric/indefinite — the paper partitions the
//! SuiteSparse collection this way) and by the collection crate to verify
//! generated matrices have the intended properties.

use crate::csr::Csr;

/// Summary statistics of a sparse matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixStats {
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Numerically symmetric (tol 1e-12 relative)?
    pub symmetric: bool,
    /// Every diagonal entry strictly positive?
    pub positive_diagonal: bool,
    /// Fraction of rows that are weakly diagonally dominant.
    pub diag_dominant_fraction: f64,
    /// Maximum `|i - j|` over stored entries.
    pub bandwidth: usize,
    /// Smallest nonzero magnitude.
    pub min_abs: f64,
    /// Largest magnitude.
    pub max_abs: f64,
    /// Average nonzeros per row.
    pub avg_nnz_per_row: f64,
}

impl MatrixStats {
    /// Computes statistics for `a`.
    pub fn compute(a: &Csr) -> MatrixStats {
        let mut bandwidth = 0usize;
        let mut min_abs = f64::INFINITY;
        let mut max_abs: f64 = 0.0;
        let mut dominant_rows = 0usize;
        let mut positive_diagonal = a.nrows == a.ncols;
        for r in 0..a.nrows {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (c, v) in a.row(r) {
                bandwidth = bandwidth.max(r.abs_diff(c));
                let av = v.abs();
                if av > 0.0 {
                    min_abs = min_abs.min(av);
                }
                max_abs = max_abs.max(av);
                if c == r {
                    diag = v;
                } else {
                    off += av;
                }
            }
            if diag.abs() >= off {
                dominant_rows += 1;
            }
            if a.nrows == a.ncols && diag <= 0.0 {
                positive_diagonal = false;
            }
        }
        if !min_abs.is_finite() {
            min_abs = 0.0;
        }
        MatrixStats {
            nrows: a.nrows,
            ncols: a.ncols,
            nnz: a.nnz(),
            symmetric: a.nrows == a.ncols && a.is_symmetric(1e-12),
            positive_diagonal,
            diag_dominant_fraction: if a.nrows == 0 {
                0.0
            } else {
                dominant_rows as f64 / a.nrows as f64
            },
            bandwidth,
            min_abs,
            max_abs,
            avg_nnz_per_row: if a.nrows == 0 {
                0.0
            } else {
                a.nnz() as f64 / a.nrows as f64
            },
        }
    }

    /// Heuristic: symmetric, positive diagonal and mostly diagonally dominant
    /// matrices are (very likely) SPD — the CG-suitable class. Generators in
    /// `mf-collection` construct matrices that are SPD by construction; this
    /// is a sanity check, not a proof.
    pub fn likely_spd(&self) -> bool {
        self.symmetric && self.positive_diagonal && self.diag_dominant_fraction > 0.9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn laplacian_1d(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
            }
        }
        a.to_csr()
    }

    #[test]
    fn laplacian_stats() {
        let s = MatrixStats::compute(&laplacian_1d(10));
        assert!(s.symmetric);
        assert!(s.positive_diagonal);
        assert_eq!(s.bandwidth, 1);
        assert_eq!(s.diag_dominant_fraction, 1.0);
        assert!(s.likely_spd());
        assert_eq!(s.min_abs, 1.0);
        assert_eq!(s.max_abs, 2.0);
        assert!((s.avg_nnz_per_row - 2.8).abs() < 1e-12);
    }

    #[test]
    fn nonsymmetric_detected() {
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 1.0);
        a.push(0, 1, 5.0);
        a.push(1, 1, 1.0);
        let s = MatrixStats::compute(&a.to_csr());
        assert!(!s.symmetric);
        assert!(!s.likely_spd());
    }

    #[test]
    fn negative_diagonal_detected() {
        let mut a = Coo::new(2, 2);
        a.push(0, 0, -1.0);
        a.push(1, 1, 1.0);
        let s = MatrixStats::compute(&a.to_csr());
        assert!(!s.positive_diagonal);
    }

    #[test]
    fn empty_matrix() {
        let a = Coo::new(0, 0).to_csr();
        let s = MatrixStats::compute(&a);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.diag_dominant_fraction, 0.0);
    }

    #[test]
    fn bandwidth_of_wide_entry() {
        let mut a = Coo::new(5, 5);
        a.push(0, 4, 1.0);
        a.push(4, 4, 1.0);
        let s = MatrixStats::compute(&a.to_csr());
        assert_eq!(s.bandwidth, 4);
    }
}
