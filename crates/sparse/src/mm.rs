//! Matrix Market I/O.
//!
//! The paper's artifact downloads `.mtx` files from the SuiteSparse Matrix
//! Collection. This reproduction ships synthetic generators instead (see
//! `mf-collection`), but the reader below accepts real SuiteSparse files so
//! the full dataset can be dropped in: coordinate format, `real` / `integer`
//! / `pattern` fields, `general` / `symmetric` / `skew-symmetric` symmetry.

use crate::coo::Coo;
use crate::SparseError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Symmetry declared in a Matrix Market header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Lower triangle stored; mirror on read.
    Symmetric,
    /// Lower triangle stored; mirror with negation on read.
    SkewSymmetric,
}

/// Reads a Matrix Market coordinate file into COO (expanding symmetry).
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Coo, SparseError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))??;
    let header_lc = header.to_ascii_lowercase();
    let fields: Vec<&str> = header_lc.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(SparseError::Parse(format!("bad header: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(SparseError::Parse(format!(
            "only coordinate format is supported, got {}",
            fields[2]
        )));
    }
    let field_kind = fields[3];
    if !matches!(field_kind, "real" | "integer" | "pattern") {
        return Err(SparseError::Parse(format!(
            "unsupported field type {field_kind} (complex matrices are out of scope)"
        )));
    }
    let symmetry = match fields[4] {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => return Err(SparseError::Parse(format!("unsupported symmetry {other}"))),
    };

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| SparseError::Parse("missing size line".into()))??;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        break t.to_string();
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| SparseError::Parse(format!("bad size line '{size_line}': {e}")))?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!(
            "size line must have 3 fields, got '{size_line}'"
        )));
    }
    let (nrows, ncols, nnz_decl) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::with_capacity(
        nrows,
        ncols,
        if symmetry == MmSymmetry::General {
            nnz_decl
        } else {
            2 * nnz_decl
        },
    );
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse(format!("bad entry '{t}'")))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad row in '{t}': {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse(format!("bad entry '{t}'")))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad col in '{t}': {e}")))?;
        let v: f64 = match field_kind {
            "pattern" => 1.0,
            _ => it
                .next()
                .ok_or_else(|| SparseError::Parse(format!("missing value in '{t}'")))?
                .parse()
                .map_err(|e| SparseError::Parse(format!("bad value in '{t}': {e}")))?,
        };
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(SparseError::Parse(format!(
                "entry ({r},{c}) out of bounds for {nrows}x{ncols}"
            )));
        }
        let (r, c) = (r - 1, c - 1); // 1-based -> 0-based
        coo.push(r, c, v);
        match symmetry {
            MmSymmetry::General => {}
            MmSymmetry::Symmetric => {
                if r != c {
                    coo.push(c, r, v);
                }
            }
            MmSymmetry::SkewSymmetric => {
                if r != c {
                    coo.push(c, r, -v);
                }
            }
        }
        seen += 1;
    }
    if seen != nnz_decl {
        return Err(SparseError::Parse(format!(
            "declared {nnz_decl} entries but found {seen}"
        )));
    }
    coo.compact();
    Ok(coo)
}

/// Reads a Matrix Market file from disk.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<Coo, SparseError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes a COO matrix in `coordinate real general` form.
pub fn write_matrix_market<W: Write>(w: &mut W, a: &Coo) -> Result<(), SparseError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by mille-feuille-rs")?;
    writeln!(w, "{} {} {}", a.nrows, a.ncols, a.nnz())?;
    for i in 0..a.nnz() {
        writeln!(w, "{} {} {:e}", a.rows[i] + 1, a.cols[i] + 1, a.vals[i])?;
    }
    Ok(())
}

/// Writes a *symmetric* COO matrix in `coordinate real symmetric` form
/// (lower triangle only — halves the file size for the CG-class inputs).
///
/// Returns a shape error if the matrix is not numerically symmetric.
pub fn write_matrix_market_symmetric<W: Write>(w: &mut W, a: &Coo) -> Result<(), SparseError> {
    let csr = a.to_csr();
    if !csr.is_symmetric(1e-12) {
        return Err(SparseError::Shape(
            "matrix is not symmetric; use write_matrix_market".into(),
        ));
    }
    let lower = csr.lower_triangle();
    writeln!(w, "%%MatrixMarket matrix coordinate real symmetric")?;
    writeln!(w, "% written by mille-feuille-rs")?;
    writeln!(w, "{} {} {}", lower.nrows, lower.ncols, lower.nnz())?;
    for r in 0..lower.nrows {
        for (c, v) in lower.row(r) {
            writeln!(w, "{} {} {:e}", r + 1, c + 1, v)?;
        }
    }
    Ok(())
}

/// Writes a COO matrix to a file.
pub fn write_matrix_market_file(path: impl AsRef<Path>, a: &Coo) -> Result<(), SparseError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_matrix_market(&mut f, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_general() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 2 3.0\n\
                    3 1 4.0\n\
                    3 3 5.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nrows, 3);
        assert_eq!(a.nnz(), 4);
        let csr = a.to_csr();
        assert_eq!(csr.get(2, 0), 4.0);
    }

    #[test]
    fn read_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 2.0\n\
                    2 1 -1.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 3);
        let csr = a.to_csr();
        assert_eq!(csr.get(0, 1), -1.0);
        assert_eq!(csr.get(1, 0), -1.0);
        assert!(csr.is_symmetric(1e-15));
    }

    #[test]
    fn read_skew_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 3.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        let csr = a.to_csr();
        assert_eq!(csr.get(1, 0), 3.0);
        assert_eq!(csr.get(0, 1), -3.0);
    }

    #[test]
    fn read_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 1\n\
                    2 2\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.vals, vec![1.0, 1.0]);
    }

    #[test]
    fn read_integer() {
        let text = "%%MatrixMarket matrix coordinate integer general\n\
                    1 1 1\n\
                    1 1 7\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.vals, vec![7.0]);
    }

    #[test]
    fn roundtrip_write_read() {
        let mut a = Coo::new(3, 2);
        a.push(0, 0, 1.5);
        a.push(2, 1, -2.25e-3);
        a.compact();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_writer_roundtrips() {
        let mut a = Coo::new(3, 3);
        a.push(0, 0, 2.0);
        a.push(1, 0, -1.0);
        a.push(0, 1, -1.0);
        a.push(1, 1, 2.0);
        a.push(2, 2, 3.0);
        a.compact();
        let mut buf = Vec::new();
        write_matrix_market_symmetric(&mut buf, &a).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("symmetric"));
        // Only 4 stored entries (lower triangle) instead of 5.
        assert!(text.contains("3 3 4"));
        let back = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn symmetric_writer_rejects_nonsymmetric() {
        let mut a = Coo::new(2, 2);
        a.push(0, 1, 5.0);
        a.push(0, 0, 1.0);
        a.push(1, 1, 1.0);
        let mut buf = Vec::new();
        assert!(write_matrix_market_symmetric(&mut buf, &a).is_err());
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(read_matrix_market("nonsense\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_out_of_bounds_and_count_mismatch() {
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mf_sparse_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.mtx");
        let mut a = Coo::new(2, 2);
        a.push(0, 1, 9.0);
        a.compact();
        write_matrix_market_file(&path, &a).unwrap();
        let b = read_matrix_market_file(&path).unwrap();
        assert_eq!(a, b);
    }
}
