//! The two-level tiled mixed-precision sparse format (paper §III-B, Fig. 5).
//!
//! The matrix is partitioned into square tiles of `tile_size × tile_size`
//! (16 in the paper). Two levels of metadata are kept:
//!
//! * **High level (inter-tile), COO style** — one record per non-empty tile,
//!   sorted by (tile row, tile column): `tile_rowidx`, `tile_colidx`,
//!   `tile_prec`, plus the offset arrays `tile_nnz` (nonzeros per tile,
//!   prefix-summed) and `nonrow` (non-empty rows per tile, prefix-summed).
//!   COO is chosen so that a warp can own an arbitrary tile — the
//!   load-balanced schedule of §III-C needs that freedom.
//! * **Low level (intra-tile), CSR style** — `csr_rowptr` (one entry per
//!   non-empty row + 1; offsets are *absolute* into `csr_colidx`/values,
//!   which carries the same information as the paper's per-tile-relative
//!   pointers without needing `tile_nnz` at every access), `row_index`
//!   (within-tile row id of each non-empty row, so SpMV never touches empty
//!   rows), `csr_colidx` (within-tile column, one byte), and the packed
//!   value buffer.
//!
//! Every tile's values are physically stored in the tile's precision
//! ([`mf_precision::PackedValues`]), selected by the "enough good"
//! criterion of §II-A. This is what Fig. 13's memory comparison measures and
//! what gives mixed precision its bandwidth advantage.

use crate::coo::Coo;
use crate::csr::Csr;
use mf_precision::{classify_group, ClassifyOptions, PackedValues, PackedValuesBuilder, Precision};

/// The tile edge length used throughout the paper.
pub const DEFAULT_TILE_SIZE: usize = 16;

/// A sparse matrix stored in the Mille-feuille two-level tiled format.
#[derive(Clone, Debug)]
pub struct TiledMatrix {
    /// Number of rows of the full matrix.
    pub nrows: usize,
    /// Number of columns of the full matrix.
    pub ncols: usize,
    /// Tile edge length.
    pub tile_size: usize,
    /// Number of tile rows (`ceil(nrows / tile_size)`).
    pub tile_rows: usize,
    /// Number of tile columns (`ceil(ncols / tile_size)`).
    pub tile_cols: usize,
    /// Tile row index of each non-empty tile (paper `TileRowidx`).
    pub tile_rowidx: Vec<u32>,
    /// Tile column index of each non-empty tile (paper `TileColidx`).
    pub tile_colidx: Vec<u32>,
    /// Initial storage precision of each tile (paper `TilePrec`).
    pub tile_prec: Vec<Precision>,
    /// Nonzero offsets per tile, length `tilenum + 1` (paper `TileNnz`).
    pub tile_nnz: Vec<u32>,
    /// Non-empty-row offsets per tile, length `tilenum + 1` (paper `Nonrow`).
    pub nonrow: Vec<u32>,
    /// Absolute offsets into `csr_colidx`/values per non-empty row,
    /// length `nonrow_total + 1` (paper `CsrRowptr`).
    pub csr_rowptr: Vec<u32>,
    /// Within-tile row id of each non-empty row (paper `RowIndex`).
    pub row_index: Vec<u8>,
    /// Within-tile column of each nonzero (paper `CsrColidx`).
    pub csr_colidx: Vec<u8>,
    /// Packed nonzero values, one run per tile in the tile's precision
    /// (paper `Val`).
    pub vals: PackedValues,
    /// Byte offset of each tile's value run in `vals` (derived; cached so
    /// value access is O(1)).
    pub val_offsets: Vec<usize>,
}

/// Byte-level memory breakdown of the tiled format (Fig. 13).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TiledMemory {
    /// High-level (inter-tile) metadata bytes.
    pub high_level: usize,
    /// Low-level (intra-tile) index bytes.
    pub low_level: usize,
    /// Packed value bytes.
    pub values: usize,
}

impl TiledMemory {
    /// Total footprint in bytes.
    pub fn total(&self) -> usize {
        self.high_level + self.low_level + self.values
    }
}

impl TiledMatrix {
    /// Builds the tiled format from CSR using the paper's tile size (16) and
    /// the default "enough good" classification.
    ///
    /// ```
    /// use mf_sparse::{Coo, TiledMatrix};
    ///
    /// let mut a = Coo::new(32, 32);
    /// for i in 0..32 {
    ///     a.push(i, i, 4.0); // exactly representable -> FP8 tiles
    /// }
    /// let t = TiledMatrix::from_csr(&a.to_csr());
    /// assert_eq!(t.tile_size, 16);
    /// assert_eq!(t.nnz(), 32);
    /// assert_eq!(t.tile_precision_histogram(), [0, 0, 0, 2]); // two FP8 tiles
    /// ```
    pub fn from_csr(a: &Csr) -> TiledMatrix {
        Self::build(a, DEFAULT_TILE_SIZE, &ClassifyOptions::default(), None)
    }

    /// Builds with an explicit tile size and classification options.
    pub fn from_csr_with(a: &Csr, tile_size: usize, opts: &ClassifyOptions) -> TiledMatrix {
        Self::build(a, tile_size, opts, None)
    }

    /// Like [`Self::from_csr_with`], but classifies tile precisions in
    /// parallel with rayon. Classification dominates preprocessing time (it
    /// reads every value up to four times for the round-trip tests), and
    /// tiles are independent, so this is an embarrassingly parallel map.
    /// The result is identical to the serial build: the parallel stage only
    /// computes per-tile precisions, joined back in tile order.
    pub fn from_csr_par(a: &Csr, tile_size: usize, opts: &ClassifyOptions) -> TiledMatrix {
        Self::build_impl(a, tile_size, opts, None, true)
    }

    /// Builds with a *uniform* precision for every tile (used by the FP64
    /// baseline configuration of Fig. 11 and the granularity ablation).
    pub fn from_csr_uniform(a: &Csr, tile_size: usize, prec: Precision) -> TiledMatrix {
        Self::build(a, tile_size, &ClassifyOptions::default(), Some(prec))
    }

    fn build(
        a: &Csr,
        tile_size: usize,
        opts: &ClassifyOptions,
        force_prec: Option<Precision>,
    ) -> TiledMatrix {
        Self::build_impl(a, tile_size, opts, force_prec, false)
    }

    fn build_impl(
        a: &Csr,
        tile_size: usize,
        opts: &ClassifyOptions,
        force_prec: Option<Precision>,
        parallel: bool,
    ) -> TiledMatrix {
        let plan = TileBuildPlan::new(a, tile_size);

        // Per-tile precision. Classification reads every value several times
        // (round-trip tests per candidate precision) and tiles are
        // independent, so the parallel build farms it out; results are
        // joined in tile order, making the output identical to the serial
        // pass. (The ticketed pipeline in `mf-solver` runs the same
        // `classify_tile` per ticket and commits through the same
        // `TileAssembler`, so it is bitwise-identical by construction.)
        let classify_t = |t: usize| -> Precision {
            match force_prec {
                Some(p) => p,
                None => plan.classify_tile(a, t, opts),
            }
        };
        let precs: Vec<Precision> = if parallel && force_prec.is_none() {
            use rayon::prelude::*;
            let tiles: Vec<usize> = (0..plan.tile_count()).collect();
            tiles.into_par_iter().map(classify_t).collect()
        } else {
            (0..plan.tile_count()).map(classify_t).collect()
        };

        let mut asm = TileAssembler::new(a, &plan);
        for (t, &prec) in precs.iter().enumerate() {
            asm.push_tile(t, prec);
        }
        asm.finish()
    }

    /// Raw packed value bytes (serialization support).
    #[inline]
    pub fn vals_raw(&self) -> &[u8] {
        self.vals.as_bytes()
    }

    /// Reassembles a tiled matrix from its constituent arrays (used by the
    /// binary reader in [`crate::tiled_io`]; the caller must have validated
    /// consistency).
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        tile_size: usize,
        tile_rowidx: Vec<u32>,
        tile_colidx: Vec<u32>,
        tile_prec: Vec<Precision>,
        tile_nnz: Vec<u32>,
        nonrow: Vec<u32>,
        csr_rowptr: Vec<u32>,
        row_index: Vec<u8>,
        csr_colidx: Vec<u8>,
        raw_vals: Vec<u8>,
        val_offsets: Vec<usize>,
    ) -> TiledMatrix {
        TiledMatrix {
            nrows,
            ncols,
            tile_size,
            tile_rows: nrows.div_ceil(tile_size),
            tile_cols: ncols.div_ceil(tile_size),
            tile_rowidx,
            tile_colidx,
            tile_prec,
            tile_nnz,
            nonrow,
            csr_rowptr,
            row_index,
            csr_colidx,
            vals: PackedValues::from_bytes(raw_vals),
            val_offsets,
        }
    }

    /// Number of non-empty tiles (`tilenumA` in the paper).
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.tile_rowidx.len()
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        *self.tile_nnz.last().unwrap_or(&0) as usize
    }

    /// Total number of non-empty rows over all tiles (`rownumA`).
    #[inline]
    pub fn nonempty_row_count(&self) -> usize {
        self.row_index.len()
    }

    /// A lightweight accessor for tile `i`.
    #[inline]
    pub fn tile(&self, i: usize) -> TileView<'_> {
        TileView { m: self, i }
    }

    /// Decodes the value of the `k`-th nonzero of tile `i` (0-based within
    /// the tile) at the tile's stored precision.
    #[inline]
    pub fn tile_value(&self, i: usize, k: usize) -> f64 {
        self.vals.get(self.val_offsets[i], self.tile_prec[i], k)
    }

    /// Decodes all values of tile `i` into a fresh vector — this is the
    /// "load the tile into shared memory" operation of the single-kernel
    /// scheme (§III-C); the solver mutates its copy when the dynamic
    /// strategy lowers the tile's precision.
    pub fn decode_tile_values(&self, i: usize) -> Vec<f64> {
        let n = (self.tile_nnz[i + 1] - self.tile_nnz[i]) as usize;
        self.vals
            .decode_run_vec(self.val_offsets[i], self.tile_prec[i], n)
    }

    /// Decodes all values of tile `i` into `out` without allocating —
    /// `out.len()` must equal the tile's nonzero count. This is the
    /// in-place variant [`decode_tile_values`](Self::decode_tile_values)
    /// that `SharedTiles` uses to (re)fill its flat value arena.
    pub fn decode_tile_into(&self, i: usize, out: &mut [f64]) {
        debug_assert_eq!(
            out.len(),
            (self.tile_nnz[i + 1] - self.tile_nnz[i]) as usize
        );
        self.vals
            .decode_run(self.val_offsets[i], self.tile_prec[i], out);
    }

    /// Multiplies the contiguous tile span `tiles` into `y`, where `y[0]`
    /// corresponds to matrix row `row_base` (accumulating; the caller zeroes
    /// `y`). Tiles are stored sorted by `(tile_row, tile_col)`, so a span of
    /// whole tile rows touches a contiguous, exclusive row range — the
    /// property both the sequential [`matvec`](Self::matvec) (one span: all
    /// tiles) and the stripe-parallel kernels in `mf-kernels` rely on to
    /// share this single tile-iteration loop.
    pub fn tile_matvec_span(
        &self,
        tiles: std::ops::Range<usize>,
        x: &[f64],
        y: &mut [f64],
        row_base: usize,
    ) {
        for i in tiles {
            let base_row = self.tile_rowidx[i] as usize * self.tile_size;
            let base_col = self.tile_colidx[i] as usize * self.tile_size;
            let nnz_base = self.tile_nnz[i] as usize;
            for ri in self.nonrow[i] as usize..self.nonrow[i + 1] as usize {
                let r = base_row + self.row_index[ri] as usize;
                let mut sum = 0.0;
                for k in self.csr_rowptr[ri] as usize..self.csr_rowptr[ri + 1] as usize {
                    sum += self.tile_value(i, k - nnz_base)
                        * x[base_col + self.csr_colidx[k] as usize];
                }
                y[r - row_base] += sum;
            }
        }
    }

    /// Converts back to CSR. Values carry the quantization of their tile's
    /// precision (exactly what the GPU kernels would compute with).
    pub fn to_csr(&self) -> Csr {
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz());
        for i in 0..self.tile_count() {
            let base_row = self.tile_rowidx[i] as usize * self.tile_size;
            let base_col = self.tile_colidx[i] as usize * self.tile_size;
            let nnz_base = self.tile_nnz[i] as usize;
            for ri in self.nonrow[i] as usize..self.nonrow[i + 1] as usize {
                let r = base_row + self.row_index[ri] as usize;
                for k in self.csr_rowptr[ri] as usize..self.csr_rowptr[ri + 1] as usize {
                    let c = base_col + self.csr_colidx[k] as usize;
                    coo.push(r, c, self.tile_value(i, k - nnz_base));
                }
            }
        }
        coo.to_csr()
    }

    /// Reference `y = A x` decoding each value at its tile precision
    /// (sequential; the instrumented kernels live in `mf-kernels`).
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.fill(0.0);
        self.tile_matvec_span(0..self.tile_count(), x, y, 0);
    }

    /// Per-tile precision histogram indexed `[FP64, FP32, FP16, FP8]`
    /// (Fig. 11's stacked bars).
    pub fn tile_precision_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for &p in &self.tile_prec {
            h[p.tile_code() as usize] += 1;
        }
        h
    }

    /// Per-nonzero precision histogram (weights each tile by its nnz).
    pub fn nnz_precision_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for i in 0..self.tile_count() {
            h[self.tile_prec[i].tile_code() as usize] +=
                (self.tile_nnz[i + 1] - self.tile_nnz[i]) as usize;
        }
        h
    }

    /// Memory footprint per the paper's accounting (Fig. 13): 32-bit tile
    /// indices and offsets, 1-byte precisions / within-tile indices, packed
    /// values.
    pub fn memory_bytes(&self) -> TiledMemory {
        let t = self.tile_count();
        let nr = self.nonempty_row_count();
        TiledMemory {
            high_level: 4 * t      // tile_rowidx
                + 4 * t            // tile_colidx
                + t                // tile_prec
                + 4 * (t + 1)      // tile_nnz
                + 4 * (t + 1), // nonrow
            low_level: 4 * (nr + 1) // csr_rowptr
                + nr               // row_index
                + self.nnz(), // csr_colidx (u8)
            values: self.vals.len_bytes(),
        }
    }
}

/// The deterministic prologue of the tiled build: every nonzero keyed by
/// `(tile id, row-in-tile, col-in-tile)`, the stable sort order over those
/// keys, and the contiguous per-tile spans of that order.
///
/// A plan is a pure function of `(matrix, tile_size)` — no precisions, no
/// packing. It splits the build into three stages so the serial, rayon,
/// and ticketed pipelines can share one implementation:
///
/// 1. `TileBuildPlan::new` — the prologue (this type);
/// 2. [`classify_tile`](Self::classify_tile) per tile, in any order /
///    on any thread (pure);
/// 3. [`TileAssembler`] — strictly in-order assembly, one
///    [`push_tile`](TileAssembler::push_tile) per tile (the packed value
///    buffer appends runs, so commits must follow tile order).
#[derive(Clone, Debug)]
pub struct TileBuildPlan {
    /// Tile edge length.
    pub tile_size: usize,
    tile_rows: usize,
    tile_cols: usize,
    /// Composite key of every nonzero: tile id major, in-tile minor.
    keys: Vec<u64>,
    /// Nonzero indices sorted by key.
    order: Vec<u32>,
    /// Per-tile `(start, end)` spans of `order`.
    spans: Vec<(u32, u32)>,
}

impl TileBuildPlan {
    /// Computes the prologue for `a` at `tile_size`.
    #[allow(clippy::needless_range_loop)] // k walks parallel arrays (keys, row_of, colidx)
    pub fn new(a: &Csr, tile_size: usize) -> TileBuildPlan {
        assert!(
            (2..=256).contains(&tile_size),
            "tile size must be in 2..=256 (within-tile indices are u8)"
        );
        let tile_rows = a.nrows.div_ceil(tile_size);
        let tile_cols = a.ncols.div_ceil(tile_size);

        // Gather entries keyed by (tile_row, tile_col, row_in, col_in). CSR
        // iteration already yields (row, col-sorted) order, so sorting by the
        // composite key is a cheap near-sorted pass.
        let nnz = a.nnz();
        let mut order: Vec<u32> = (0..nnz as u32).collect();
        let mut keys: Vec<u64> = Vec::with_capacity(nnz);
        {
            // Precompute the key of every entry: tile id major, in-tile minor.
            let mut row_of = vec![0u32; nnz];
            for r in 0..a.nrows {
                for k in a.rowptr[r]..a.rowptr[r + 1] {
                    row_of[k] = r as u32;
                }
            }
            for k in 0..nnz {
                let r = row_of[k] as usize;
                let c = a.colidx[k];
                let key = (((r / tile_size) * tile_cols + c / tile_size) as u64) << 16
                    | ((r % tile_size) as u64) << 8
                    | (c % tile_size) as u64;
                keys.push(key);
            }
        }
        order.sort_unstable_by_key(|&i| keys[i as usize]);

        // Tile spans in the sorted order (start, end). Tiles are the unit of
        // both classification and packing.
        let mut spans: Vec<(u32, u32)> = Vec::new();
        {
            let mut i = 0usize;
            while i < nnz {
                let tile_key = keys[order[i] as usize] >> 16;
                let start = i;
                while i < nnz && keys[order[i] as usize] >> 16 == tile_key {
                    i += 1;
                }
                spans.push((start as u32, i as u32));
            }
        }

        TileBuildPlan {
            tile_size,
            tile_rows,
            tile_cols,
            keys,
            order,
            spans,
        }
    }

    /// Number of non-empty tiles the build will produce.
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.spans.len()
    }

    /// Nonzeros in tile `t` — the cost-model input for per-tile work units.
    #[inline]
    pub fn tile_nnz_of(&self, t: usize) -> usize {
        let (s, e) = self.spans[t];
        (e - s) as usize
    }

    /// Classifies tile `t`'s storage precision. Pure in `(plan, a, t,
    /// opts)`: safe to run on any thread, in any order.
    pub fn classify_tile(&self, a: &Csr, t: usize, opts: &ClassifyOptions) -> Precision {
        let (s, e) = self.spans[t];
        let vals: Vec<f64> = self.order[s as usize..e as usize]
            .iter()
            .map(|&oi| a.vals[oi as usize])
            .collect();
        classify_group(&vals, opts)
    }
}

/// Strictly in-order assembly of a [`TiledMatrix`] from a
/// [`TileBuildPlan`] plus one classified precision per tile.
///
/// The packed value buffer appends one run per tile, so
/// [`push_tile`](Self::push_tile) must be called exactly once per tile in
/// tile order — this is the ticketed pipeline's *commit* operation.
pub struct TileAssembler<'a> {
    a: &'a Csr,
    plan: &'a TileBuildPlan,
    next: usize,
    tile_rowidx: Vec<u32>,
    tile_colidx: Vec<u32>,
    tile_prec: Vec<Precision>,
    tile_nnz: Vec<u32>,
    nonrow: Vec<u32>,
    csr_rowptr: Vec<u32>, // row starts; nnz appended at the end
    row_index: Vec<u8>,
    csr_colidx: Vec<u8>,
    packed: PackedValuesBuilder,
    val_offsets: Vec<usize>,
    tile_vals: Vec<f64>,
}

impl<'a> TileAssembler<'a> {
    /// Starts assembly for the matrix the plan was computed from.
    pub fn new(a: &'a Csr, plan: &'a TileBuildPlan) -> TileAssembler<'a> {
        TileAssembler {
            a,
            plan,
            next: 0,
            tile_rowidx: Vec::new(),
            tile_colidx: Vec::new(),
            tile_prec: Vec::new(),
            tile_nnz: vec![0u32],
            nonrow: vec![0u32],
            csr_rowptr: Vec::new(),
            row_index: Vec::new(),
            csr_colidx: Vec::with_capacity(plan.keys.len()),
            packed: PackedValuesBuilder::new(),
            val_offsets: Vec::new(),
            tile_vals: Vec::new(),
        }
    }

    /// Index of the next tile [`push_tile`](Self::push_tile) accepts.
    #[inline]
    pub fn next_tile(&self) -> usize {
        self.next
    }

    /// Appends tile `t` at precision `prec`. Panics unless `t` is the next
    /// tile in plan order.
    pub fn push_tile(&mut self, t: usize, prec: Precision) {
        assert_eq!(
            t, self.next,
            "TileAssembler is strictly in-order: got tile {t}, expected {}",
            self.next
        );
        self.next += 1;
        let plan = self.plan;
        let (s, e) = plan.spans[t];
        let (start, i) = (s as usize, e as usize);
        let tile_key = plan.keys[plan.order[start] as usize] >> 16;
        let trow = (tile_key as usize) / plan.tile_cols;
        let tcol = (tile_key as usize) % plan.tile_cols;

        // Gather this tile's values for packing.
        self.tile_vals.clear();
        self.tile_vals.extend(
            plan.order[start..i]
                .iter()
                .map(|&oi| self.a.vals[oi as usize]),
        );

        self.tile_rowidx.push(trow as u32);
        self.tile_colidx.push(tcol as u32);
        self.tile_prec.push(prec);
        self.tile_nnz
            .push(self.tile_nnz.last().unwrap() + self.tile_vals.len() as u32);
        self.val_offsets
            .push(self.packed.push_run(&self.tile_vals, prec));

        // Intra-tile CSR over non-empty rows.
        let mut prev_row: Option<u8> = None;
        for (j, &oi) in plan.order[start..i].iter().enumerate() {
            let key = plan.keys[oi as usize];
            let rin = ((key >> 8) & 0xff) as u8;
            let cin = (key & 0xff) as u8;
            if prev_row != Some(rin) {
                self.row_index.push(rin);
                self.csr_rowptr
                    .push((self.tile_nnz[self.tile_nnz.len() - 2] as usize + j) as u32);
                prev_row = Some(rin);
            }
            self.csr_colidx.push(cin);
        }
        self.nonrow.push(self.row_index.len() as u32);
    }

    /// Finalizes the matrix. Panics unless every tile was pushed.
    pub fn finish(mut self) -> TiledMatrix {
        assert_eq!(
            self.next,
            self.plan.tile_count(),
            "TileAssembler finished early: {} of {} tiles pushed",
            self.next,
            self.plan.tile_count()
        );
        // csr_rowptr holds the absolute start of every non-empty row; rows
        // are packed contiguously in the global (tile, row, col) order, so
        // each row's end is the next row's start, and the total nnz closes
        // the array.
        self.csr_rowptr.push(self.plan.keys.len() as u32);

        TiledMatrix {
            nrows: self.a.nrows,
            ncols: self.a.ncols,
            tile_size: self.plan.tile_size,
            tile_rows: self.plan.tile_rows,
            tile_cols: self.plan.tile_cols,
            tile_rowidx: self.tile_rowidx,
            tile_colidx: self.tile_colidx,
            tile_prec: self.tile_prec,
            tile_nnz: self.tile_nnz,
            nonrow: self.nonrow,
            csr_rowptr: self.csr_rowptr,
            row_index: self.row_index,
            csr_colidx: self.csr_colidx,
            vals: self.packed.finish(),
            val_offsets: self.val_offsets,
        }
    }
}

/// Read-only view of one tile.
#[derive(Clone, Copy)]
pub struct TileView<'a> {
    m: &'a TiledMatrix,
    i: usize,
}

impl<'a> TileView<'a> {
    /// Tile row index.
    #[inline]
    pub fn tile_row(&self) -> usize {
        self.m.tile_rowidx[self.i] as usize
    }

    /// Tile column index.
    #[inline]
    pub fn tile_col(&self) -> usize {
        self.m.tile_colidx[self.i] as usize
    }

    /// Initial storage precision.
    #[inline]
    pub fn precision(&self) -> Precision {
        self.m.tile_prec[self.i]
    }

    /// Nonzeros in this tile.
    #[inline]
    pub fn nnz(&self) -> usize {
        (self.m.tile_nnz[self.i + 1] - self.m.tile_nnz[self.i]) as usize
    }

    /// Non-empty rows in this tile.
    #[inline]
    pub fn nonempty_rows(&self) -> usize {
        (self.m.nonrow[self.i + 1] - self.m.nonrow[self.i]) as usize
    }

    /// Iterates `(global_row, global_col, value)` of the tile.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + 'a {
        let m = self.m;
        let i = self.i;
        let base_row = m.tile_rowidx[i] as usize * m.tile_size;
        let base_col = m.tile_colidx[i] as usize * m.tile_size;
        let nnz_base = m.tile_nnz[i] as usize;
        (m.nonrow[i] as usize..m.nonrow[i + 1] as usize).flat_map(move |ri| {
            let r = base_row + m.row_index[ri] as usize;
            (m.csr_rowptr[ri] as usize..m.csr_rowptr[ri + 1] as usize).map(move |k| {
                (
                    r,
                    base_col + m.csr_colidx[k] as usize,
                    m.tile_value(i, k - nnz_base),
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_build_matches_serial() {
        // Mixed-magnitude entries so classification picks varied precisions.
        let n = 200;
        let mut a = Coo::new(n, n);
        let mut mag = 1.0;
        for i in 0..n {
            a.push(i, i, 4.0 + mag);
            if i > 0 {
                a.push(i, i - 1, -mag);
            }
            if i + 2 < n {
                a.push(i, i + 2, 0.125 * mag);
            }
            mag *= 1.07;
            if mag > 1e5 {
                mag = 1e-5;
            }
        }
        let a = a.to_csr();
        for ts in [4usize, 16, 32] {
            let s = TiledMatrix::from_csr_with(&a, ts, &ClassifyOptions::default());
            let p = TiledMatrix::from_csr_par(&a, ts, &ClassifyOptions::default());
            assert_eq!(s.tile_rowidx, p.tile_rowidx, "ts={ts}");
            assert_eq!(s.tile_colidx, p.tile_colidx);
            assert_eq!(s.tile_prec, p.tile_prec);
            assert_eq!(s.tile_nnz, p.tile_nnz);
            assert_eq!(s.nonrow, p.nonrow);
            assert_eq!(s.csr_rowptr, p.csr_rowptr);
            assert_eq!(s.row_index, p.row_index);
            assert_eq!(s.csr_colidx, p.csr_colidx);
            assert_eq!(s.val_offsets, p.val_offsets);
            assert_eq!(s.vals_raw(), p.vals_raw());
        }
    }

    /// The 8×8 example of paper Fig. 5 (2×2 tiles, 9 non-empty tiles).
    fn figure5_like() -> Csr {
        let mut a = Coo::new(8, 8);
        // Diagonal blocks plus some off-diagonal connections, all with
        // exactly-representable values so tiles classify to FP8.
        let entries = [
            (0, 0, 1.0),
            (0, 1, 2.0),
            (1, 0, 3.0),
            (1, 1, 4.0),
            (2, 2, 1.0),
            (3, 3, 2.0),
            (2, 5, 0.5),
            (4, 4, 1.0),
            (5, 5, 1.0),
            (4, 0, -1.0),
            (6, 6, 2.0),
            (7, 7, 2.0),
            (7, 6, 1.0),
            (6, 2, 4.0),
            (1, 7, -2.0),
        ];
        for &(r, c, v) in &entries {
            a.push(r, c, v);
        }
        a.to_csr()
    }

    #[test]
    fn build_basic_counts() {
        let csr = figure5_like();
        let t = TiledMatrix::from_csr_with(&csr, 2, &ClassifyOptions::default());
        assert_eq!(t.nnz(), csr.nnz());
        assert_eq!(t.tile_rows, 4);
        assert_eq!(t.tile_cols, 4);
        assert!(t.tile_count() > 0);
        // Offset arrays have the tilenum+1 shape the paper specifies.
        assert_eq!(t.tile_nnz.len(), t.tile_count() + 1);
        assert_eq!(t.nonrow.len(), t.tile_count() + 1);
        assert_eq!(t.csr_rowptr.len(), t.nonempty_row_count() + 1);
        assert_eq!(t.row_index.len(), t.nonempty_row_count());
    }

    #[test]
    fn tiles_sorted_row_major() {
        let t = TiledMatrix::from_csr_with(&figure5_like(), 2, &ClassifyOptions::default());
        for i in 1..t.tile_count() {
            let prev = (t.tile_rowidx[i - 1], t.tile_colidx[i - 1]);
            let cur = (t.tile_rowidx[i], t.tile_colidx[i]);
            assert!(prev < cur, "tiles not sorted at {i}");
        }
    }

    #[test]
    fn roundtrip_exact_values() {
        let csr = figure5_like();
        let t = TiledMatrix::from_csr_with(&csr, 2, &ClassifyOptions::default());
        // All values are exactly representable in FP8, so the roundtrip is exact.
        assert_eq!(t.to_csr(), csr);
    }

    #[test]
    fn roundtrip_quantizes_per_tile_precision() {
        let mut a = Coo::new(4, 4);
        a.push(0, 0, 0.1); // forces its tile to FP64
        a.push(2, 2, 1.0); // separate tile, FP8
        let csr = a.to_csr();
        let t = TiledMatrix::from_csr_with(&csr, 2, &ClassifyOptions::default());
        let back = t.to_csr();
        assert_eq!(back.get(0, 0), 0.1); // FP64 tile: exact
        assert_eq!(back.get(2, 2), 1.0);
        assert_eq!(t.tile_precision_histogram(), [1, 0, 0, 1]);
    }

    #[test]
    fn matvec_matches_csr_for_exact_values() {
        let csr = figure5_like();
        let t = TiledMatrix::from_csr_with(&csr, 2, &ClassifyOptions::default());
        let x: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let mut y1 = vec![0.0; 8];
        let mut y2 = vec![0.0; 8];
        csr.matvec(&x, &mut y1);
        t.matvec(&x, &mut y2);
        for i in 0..8 {
            assert!(
                (y1[i] - y2[i]).abs() < 1e-12,
                "row {i}: {} vs {}",
                y1[i],
                y2[i]
            );
        }
    }

    #[test]
    fn default_tile_size_is_16() {
        let csr = figure5_like();
        let t = TiledMatrix::from_csr(&csr);
        assert_eq!(t.tile_size, 16);
        assert_eq!(t.tile_count(), 1); // 8x8 fits in one 16x16 tile
        assert_eq!(t.nnz(), csr.nnz());
    }

    #[test]
    fn uniform_precision_forced() {
        let csr = figure5_like();
        let t = TiledMatrix::from_csr_uniform(&csr, 2, Precision::Fp64);
        assert!(t.tile_prec.iter().all(|&p| p == Precision::Fp64));
        assert_eq!(t.to_csr(), csr);
    }

    #[test]
    fn nonmultiple_dimensions() {
        let mut a = Coo::new(5, 7);
        a.push(4, 6, 3.0);
        a.push(0, 0, 1.0);
        a.push(4, 0, 2.0);
        let csr = a.to_csr();
        let t = TiledMatrix::from_csr_with(&csr, 4, &ClassifyOptions::default());
        assert_eq!(t.tile_rows, 2);
        assert_eq!(t.tile_cols, 2);
        assert_eq!(t.to_csr(), csr);
    }

    #[test]
    fn empty_matrix() {
        let csr = Coo::new(10, 10).to_csr();
        let t = TiledMatrix::from_csr(&csr);
        assert_eq!(t.tile_count(), 0);
        assert_eq!(t.nnz(), 0);
        let mut y = vec![1.0; 10];
        t.matvec(&[1.0; 10], &mut y);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_rows_skipped() {
        // One tile where only row 0 and row 3 are non-empty.
        let mut a = Coo::new(4, 4);
        a.push(0, 1, 1.0);
        a.push(3, 2, 2.0);
        let t = TiledMatrix::from_csr_with(&a.to_csr(), 4, &ClassifyOptions::default());
        assert_eq!(t.tile_count(), 1);
        assert_eq!(t.nonempty_row_count(), 2);
        assert_eq!(t.row_index, vec![0, 3]);
        assert_eq!(t.csr_rowptr, vec![0, 1, 2]);
    }

    #[test]
    fn tile_view_entries() {
        let csr = figure5_like();
        let t = TiledMatrix::from_csr_with(&csr, 2, &ClassifyOptions::default());
        let mut all: Vec<(usize, usize, f64)> = (0..t.tile_count())
            .flat_map(|i| t.tile(i).entries().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|&(r, c, _)| (r, c));
        let mut expect: Vec<(usize, usize, f64)> = Vec::new();
        for r in 0..csr.nrows {
            for (c, v) in csr.row(r) {
                expect.push((r, c, v));
            }
        }
        assert_eq!(all, expect);
    }

    #[test]
    fn decode_tile_values_matches_tile_value() {
        let csr = figure5_like();
        let t = TiledMatrix::from_csr_with(&csr, 2, &ClassifyOptions::default());
        for i in 0..t.tile_count() {
            let dec = t.decode_tile_values(i);
            for (k, &v) in dec.iter().enumerate() {
                assert_eq!(v, t.tile_value(i, k));
            }
        }
    }

    #[test]
    fn memory_accounting() {
        let csr = figure5_like();
        let t = TiledMatrix::from_csr_with(&csr, 2, &ClassifyOptions::default());
        let m = t.memory_bytes();
        let tcount = t.tile_count();
        assert_eq!(
            m.high_level,
            4 * tcount + 4 * tcount + tcount + 4 * (tcount + 1) * 2
        );
        // All-FP8 values: 1 byte per nnz.
        assert_eq!(m.values, csr.nnz());
        assert!(m.total() > 0);
    }

    #[test]
    fn mixed_precision_saves_value_bytes() {
        // 256 nonzeros with FP8-exact values in a 16x16 tile: 1 byte each vs
        // 8 bytes in CSR.
        let mut a = Coo::new(16, 16);
        for r in 0..16 {
            for c in 0..16 {
                a.push(r, c, ((r + c) % 5) as f64);
            }
        }
        let csr = a.to_csr();
        let t = TiledMatrix::from_csr(&csr);
        assert_eq!(t.tile_count(), 1);
        assert_eq!(t.memory_bytes().values, 256);
        assert!(t.memory_bytes().total() < csr.memory_bytes());
    }

    #[test]
    fn large_random_pattern_roundtrip() {
        // Deterministic pseudo-random pattern, values exact in FP16.
        let n = 100;
        let mut a = Coo::new(n, n);
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..600 {
            let r = (next() as usize) % n;
            let c = (next() as usize) % n;
            let v = ((next() % 128) as f64) / 4.0;
            a.push(r, c, v);
        }
        a.push(0, 0, 1.0);
        let csr = a.to_csr();
        let t = TiledMatrix::from_csr(&csr);
        assert_eq!(t.to_csr(), csr);
        // Histograms are consistent.
        assert_eq!(t.nnz_precision_histogram().iter().sum::<usize>(), csr.nnz());
        assert_eq!(
            t.tile_precision_histogram().iter().sum::<usize>(),
            t.tile_count()
        );
    }
}
