//! Content fingerprints for sparse matrices.
//!
//! The serving layer (`mf-serve`) caches preprocessed state — tiled
//! matrices, factorizations, coster decisions — keyed by the *content* of
//! the operator, not its address: two `Csr` values with the same shape,
//! pattern and bit-identical values must map to the same cache entry, and
//! any single-bit change (a different value, a moved nonzero, a padded
//! dimension) must map to a different one with overwhelming probability.
//!
//! [`Fingerprint`] is a 128-bit hash: two independent 64-bit FNV-1a style
//! streams with distinct offset bases and primes, each fed the dimensions,
//! the row pointers, the column indices and the raw IEEE-754 bit patterns
//! of the values (so `-0.0` vs `+0.0` and NaN payloads are distinguished —
//! the solver's numerics are bitwise-deterministic, so the key must be
//! too). The hash is deterministic across runs and platforms; no
//! `std::hash::Hasher` (whose output is allowed to vary per process) is
//! involved.

use crate::csr::Csr;

/// A 128-bit deterministic content hash of a sparse matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub [u64; 2]);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// One FNV-1a style 64-bit stream over `u64` words. The multiply uses the
/// standard FNV prime; `offset` seeds the two independent streams.
#[derive(Clone, Copy)]
struct Stream(u64);

impl Stream {
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    #[inline]
    fn absorb(&mut self, word: u64) {
        // Mix the word through a splitmix64-style finalizer first so that
        // structured inputs (small integers from rowptr/colidx) still flip
        // high bits, then fold FNV-style.
        let mut z = word.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        self.0 = (self.0 ^ z).wrapping_mul(Self::PRIME);
    }
}

impl Fingerprint {
    /// Hashes a CSR matrix: dimensions, row pointers, column indices and
    /// value *bit patterns*, each section prefixed with a domain tag so
    /// e.g. swapping a rowptr entry for a colidx entry cannot collide.
    pub fn of_csr(a: &Csr) -> Fingerprint {
        let mut s0 = Stream(0xcbf2_9ce4_8422_2325); // FNV-1a offset basis
        let mut s1 = Stream(0x6c62_272e_07bb_0142); // FNV-0 variant basis
        for s in [&mut s0, &mut s1] {
            s.absorb(0x4d46_5350_4152_5345); // "MFSPARSE" domain tag
            s.absorb(a.nrows as u64);
            s.absorb(a.ncols as u64);
            s.absorb(a.nnz() as u64);
        }
        for (tag, words) in [(1u64, &a.rowptr), (2u64, &a.colidx)] {
            s0.absorb(tag);
            s1.absorb(tag);
            for &w in words {
                s0.absorb(w as u64);
                s1.absorb(w as u64);
            }
        }
        s0.absorb(3);
        s1.absorb(3);
        for v in &a.vals {
            let bits = v.to_bits();
            s0.absorb(bits);
            s1.absorb(bits);
        }
        Fingerprint([s0.0, s1.0])
    }
}

impl Csr {
    /// Deterministic 128-bit content fingerprint — the cache key of the
    /// serving layer. Equal matrices (same shape, pattern, bit-identical
    /// values) always produce equal fingerprints; see [`Fingerprint`].
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of_csr(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample(seed: f64) -> Csr {
        let mut a = Coo::new(4, 4);
        for i in 0..4 {
            a.push(i, i, 4.0 + seed);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
        }
        a.to_csr()
    }

    #[test]
    fn equal_content_equal_fingerprint() {
        assert_eq!(sample(0.0).fingerprint(), sample(0.0).fingerprint());
        let a = sample(0.0);
        assert_eq!(a.clone().fingerprint(), a.fingerprint());
    }

    #[test]
    fn value_change_changes_fingerprint() {
        // One-ulp perturbation of the diagonal: the smallest possible
        // value change must already flip the fingerprint.
        assert_ne!(
            sample(0.0).fingerprint(),
            sample(f64::EPSILON * 4.0).fingerprint()
        );
    }

    #[test]
    fn sign_of_zero_is_distinguished() {
        let mut a = sample(0.0);
        let mut b = a.clone();
        a.vals[0] = 0.0;
        b.vals[0] = -0.0;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn pattern_change_changes_fingerprint() {
        let mut a = Coo::new(4, 4);
        let mut b = Coo::new(4, 4);
        a.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        assert_ne!(a.to_csr().fingerprint(), b.to_csr().fingerprint());
    }

    #[test]
    fn shape_change_changes_fingerprint() {
        // Same (empty) arrays, different dimensions.
        let a = Coo::new(3, 3).to_csr();
        let b = Coo::new(3, 4).to_csr();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn display_is_32_hex_chars() {
        let f = sample(0.0).fingerprint();
        let s = f.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn fingerprint_is_stable_across_runs() {
        // Pinned value: the hash is part of the on-disk/cross-process cache
        // contract, so it must never drift silently.
        let f = Csr::identity(2).fingerprint();
        assert_eq!(f, Csr::identity(2).fingerprint());
        let g = Csr::identity(3).fingerprint();
        assert_ne!(f, g);
    }
}
