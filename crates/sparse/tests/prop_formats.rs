//! Property-based tests for the sparse formats.

use mf_precision::{ClassifyOptions, Precision};
use mf_sparse::{Coo, Csr, Dense, TiledMatrix};
use proptest::prelude::*;

/// Strategy generating a random COO matrix with exactly-representable values
/// (multiples of 1/8 in [-16, 16] are exact in every precision >= FP8),
/// so format round-trips are bit-exact.
fn exact_coo(max_n: usize, max_nnz: usize) -> impl Strategy<Value = Coo> {
    (1..max_n, 1..max_n).prop_flat_map(move |(nr, nc)| {
        prop::collection::vec((0..nr, 0..nc, -128i32..=128), 0..max_nnz).prop_map(move |entries| {
            let mut a = Coo::new(nr, nc);
            for (r, c, v) in entries {
                a.push(r, c, v as f64 / 8.0);
            }
            a.compact();
            a
        })
    })
}

/// Strategy generating arbitrary-valued square COO matrices.
fn general_coo(max_n: usize, max_nnz: usize) -> impl Strategy<Value = Coo> {
    (2..max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0..n, -1e3f64..1e3), 1..max_nnz).prop_map(move |entries| {
            let mut a = Coo::new(n, n);
            for (r, c, v) in entries {
                a.push(r, c, v);
            }
            a.compact();
            a
        })
    })
}

proptest! {
    /// COO -> CSR -> COO is the identity on compacted matrices.
    #[test]
    fn coo_csr_roundtrip(a in general_coo(40, 200)) {
        let mut back = a.to_csr().to_coo();
        back.compact();
        prop_assert_eq!(back, a);
    }

    /// CSR transpose is an involution.
    #[test]
    fn transpose_involution(a in general_coo(30, 150)) {
        let csr = a.to_csr();
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    /// Tiled round-trip is exact for exactly-representable values, at every
    /// tile size.
    #[test]
    fn tiled_roundtrip_exact(a in exact_coo(50, 300), ts in 2usize..32) {
        let csr = a.to_csr();
        let t = TiledMatrix::from_csr_with(&csr, ts, &ClassifyOptions::default());
        prop_assert_eq!(t.to_csr(), csr.clone());
        prop_assert_eq!(t.nnz(), csr.nnz());
    }

    /// For arbitrary values, the tiled round-trip equals quantizing each
    /// value at its tile's precision — and with classification, the tile
    /// precision loses nothing (loss < 1e-15 relative by construction).
    #[test]
    fn tiled_roundtrip_loss_bound(a in general_coo(40, 200), ts in 2usize..20) {
        let csr = a.to_csr();
        let t = TiledMatrix::from_csr_with(&csr, ts, &ClassifyOptions::default());
        let back = t.to_csr();
        prop_assert_eq!(back.rowptr, csr.rowptr.clone());
        prop_assert_eq!(back.colidx, csr.colidx.clone());
        for (v, w) in csr.vals.iter().zip(&back.vals) {
            let rel = (v - w).abs() / v.abs().max(f64::MIN_POSITIVE);
            prop_assert!(rel < 1e-15, "value {v} stored as {w}");
        }
    }

    /// Tiled SpMV agrees with CSR SpMV for exact values.
    #[test]
    fn tiled_matvec_matches_csr(a in exact_coo(40, 250), ts in 2usize..20) {
        let csr = a.to_csr();
        let t = TiledMatrix::from_csr_with(&csr, ts, &ClassifyOptions::default());
        let x: Vec<f64> = (0..csr.ncols).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let mut y1 = vec![0.0; csr.nrows];
        let mut y2 = vec![0.0; csr.nrows];
        csr.matvec(&x, &mut y1);
        t.matvec(&x, &mut y2);
        for i in 0..csr.nrows {
            prop_assert!((y1[i] - y2[i]).abs() <= 1e-9 * y1[i].abs().max(1.0));
        }
    }

    /// Forcing uniform FP64 keeps any matrix bit-exact.
    #[test]
    fn uniform_fp64_lossless(a in general_coo(30, 150), ts in 2usize..20) {
        let csr = a.to_csr();
        let t = TiledMatrix::from_csr_uniform(&csr, ts, Precision::Fp64);
        prop_assert_eq!(t.to_csr(), csr);
    }

    /// Histogram invariants: per-tile and per-nnz histograms sum correctly.
    #[test]
    fn histogram_invariants(a in general_coo(30, 150)) {
        let csr = a.to_csr();
        let t = TiledMatrix::from_csr(&csr);
        prop_assert_eq!(t.tile_precision_histogram().iter().sum::<usize>(), t.tile_count());
        prop_assert_eq!(t.nnz_precision_histogram().iter().sum::<usize>(), t.nnz());
    }

    /// Memory model: tiled value bytes never exceed CSR value bytes, and the
    /// whole structure is within a small factor of CSR for any matrix.
    #[test]
    fn memory_sanity(a in general_coo(40, 200)) {
        let csr = a.to_csr();
        let t = TiledMatrix::from_csr(&csr);
        let m = t.memory_bytes();
        prop_assert!(m.values <= 8 * csr.nnz());
        prop_assert!(m.total() > 0 || csr.nnz() == 0);
    }

    /// CSR matvec agrees with the dense oracle.
    #[test]
    fn csr_matvec_matches_dense(a in general_coo(20, 80)) {
        let csr = a.to_csr();
        let d = Dense::from_csr(&csr);
        let x: Vec<f64> = (0..csr.ncols).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; csr.nrows];
        let mut y2 = vec![0.0; csr.nrows];
        csr.matvec(&x, &mut y1);
        d.matvec(&x, &mut y2);
        for i in 0..csr.nrows {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-9 * y1[i].abs().max(1.0));
        }
    }

    /// get() agrees with dense indexing.
    #[test]
    fn csr_get_matches_dense(a in general_coo(15, 60)) {
        let csr = a.to_csr();
        let d = Dense::from_csr(&csr);
        for r in 0..csr.nrows {
            for c in 0..csr.ncols {
                prop_assert_eq!(csr.get(r, c), d[(r, c)]);
            }
        }
    }

    /// MFT1 binary serialization round-trips the tiled format bit-exactly.
    #[test]
    fn tiled_io_roundtrip(a in general_coo(40, 200), ts in 2usize..20) {
        let csr = a.to_csr();
        let t = TiledMatrix::from_csr_with(&csr, ts, &ClassifyOptions::default());
        let mut buf = Vec::new();
        mf_sparse::write_tiled(&mut buf, &t).unwrap();
        let back = mf_sparse::read_tiled(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(&back.tile_prec, &t.tile_prec);
        prop_assert_eq!(back.vals_raw(), t.vals_raw());
        prop_assert_eq!(back.to_csr(), t.to_csr());
    }

    /// Matrix Market write/read round-trips any compacted COO matrix.
    #[test]
    fn matrix_market_roundtrip(a in general_coo(25, 100)) {
        let mut buf = Vec::new();
        mf_sparse::mm::write_matrix_market(&mut buf, &a).unwrap();
        let b = mf_sparse::mm::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn tiled_handles_identity_at_every_tile_size() {
    for ts in [2, 3, 4, 7, 16, 17, 32] {
        let csr = Csr::identity(65);
        let t = TiledMatrix::from_csr_with(&csr, ts, &ClassifyOptions::default());
        assert_eq!(t.to_csr(), csr, "tile size {ts}");
        // Identity values are 1.0 -> every tile classifies to FP8.
        assert_eq!(t.tile_precision_histogram()[3], t.tile_count());
    }
}
