//! Reusable solve-loop buffers.
//!
//! The GPU solver keeps every iterate vector resident in device memory for
//! the lifetime of the solve; re-allocating them per call on the host would
//! both misrepresent that and dominate small-solve wall-clock. A
//! [`SolverWorkspace`] owns the union of the vectors the CG / BiCGSTAB /
//! preconditioned cores need. `ensure(n)` zero-fills and resizes them; once
//! a workspace has seen a system of size `n`, subsequent solves of size
//! `≤ n` perform **zero** heap allocations inside the iteration loop (the
//! returned [`crate::cg::CoreResult`] still clones the solution out, one
//! allocation per solve).

/// Pre-allocated vectors shared by all solver cores. Create once, pass to
/// the `*_ws` entry points, reuse across solves.
#[derive(Clone, Debug, Default)]
pub struct SolverWorkspace {
    /// Solution iterate `x`.
    pub x: Vec<f64>,
    /// Residual `r`.
    pub r: Vec<f64>,
    /// Shadow residual `r₀*` (BiCGSTAB).
    pub r0s: Vec<f64>,
    /// Search direction `p`.
    pub p: Vec<f64>,
    /// First SpMV output (`µ` in CG, `v` in BiCGSTAB).
    pub u: Vec<f64>,
    /// BiCGSTAB intermediate `s`.
    pub s: Vec<f64>,
    /// Second SpMV output (`θ` / `t` in BiCGSTAB).
    pub t: Vec<f64>,
    /// Preconditioned residual `z = M⁻¹r`.
    pub z: Vec<f64>,
    /// SpTRSV intermediate (the `y` of `L y = r`, `U z = y`).
    pub y: Vec<f64>,
    /// Preconditioned direction `p̂ = M⁻¹p` (PBiCGSTAB).
    pub phat: Vec<f64>,
    /// Preconditioned intermediate `ŝ = M⁻¹s` (PBiCGSTAB).
    pub shat: Vec<f64>,
    /// Pipelined auxiliary `w = A·r` (CG) / `w = A·u` (PCG) — the SpMV
    /// input of the Ghysels–Vanroose recurrence.
    pub w: Vec<f64>,
    /// Pipelined PCG auxiliary `m = M⁻¹w`.
    pub m: Vec<f64>,
    /// Pipelined PCG auxiliary `n = A·m`.
    pub n: Vec<f64>,
    /// Pipelined PCG auxiliary `q = M⁻¹s` (recurrence-maintained).
    pub q: Vec<f64>,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> SolverWorkspace {
        SolverWorkspace::default()
    }

    /// A workspace pre-sized for `n`-row systems.
    pub fn with_size(n: usize) -> SolverWorkspace {
        let mut ws = SolverWorkspace::default();
        ws.ensure(n);
        ws
    }

    /// Sizes every buffer to `n` and zero-fills it. Never shrinks capacity,
    /// so a warm workspace allocates nothing.
    ///
    /// The `clear()` before `resize` is load-bearing for shrink-then-grow
    /// reuse (n=250 → n=37 → n=250, the serving loop's access pattern):
    /// `resize` alone only zeroes *appended* elements, so growing back
    /// would resurrect stale iterate values from the earlier larger solve.
    /// `tests/facade_edge_cases.rs` pins this with cross-engine
    /// interleaving.
    pub fn ensure(&mut self, n: usize) {
        for v in [
            &mut self.x,
            &mut self.r,
            &mut self.r0s,
            &mut self.p,
            &mut self.u,
            &mut self.s,
            &mut self.t,
            &mut self.z,
            &mut self.y,
            &mut self.phat,
            &mut self.shat,
            &mut self.w,
            &mut self.m,
            &mut self.n,
            &mut self.q,
        ] {
            v.clear();
            v.resize(n, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_sizes_and_zeroes() {
        let mut ws = SolverWorkspace::new();
        ws.ensure(8);
        assert_eq!(ws.x.len(), 8);
        ws.x[3] = 5.0;
        ws.ensure(8);
        assert_eq!(ws.x[3], 0.0);
    }

    #[test]
    fn warm_workspace_keeps_buffers() {
        let mut ws = SolverWorkspace::with_size(64);
        let ptr = ws.x.as_ptr();
        let cap = ws.x.capacity();
        ws.ensure(32); // shrink: no realloc
        ws.ensure(64); // regrow within capacity: no realloc
        assert_eq!(ws.x.as_ptr(), ptr);
        assert_eq!(ws.x.capacity(), cap);
    }
}
