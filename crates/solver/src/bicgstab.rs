//! The BiCGSTAB core (paper Algorithm 2).
//!
//! Same structure as [`crate::cg`]: exact numerics on the quantized tiles,
//! time charged through a [`Coster`]. BiCGSTAB has two SpMVs per iteration;
//! the partial-convergence flags are refreshed before each from its own
//! input vector (`p_j` and `s_j`), matching the §III-D rule that the SpMV
//! *input* drives tile precision.

use crate::cg::{finish_host_trace, host_tracer, mixed_spmv, record_spmv_trace, CoreResult};
use crate::config::{SolverConfig, MAX_CONSECUTIVE_RESTARTS};
use crate::coster::Coster;
use crate::partial::PartialState;
use crate::report::{BreakdownKind, RecoveryAction, SolveFailure};
use crate::workspace::SolverWorkspace;
use mf_gpu::Timeline;
use mf_kernels::{blas1, SharedTiles};
use mf_sparse::TiledMatrix;

/// Runs BiCGSTAB on the tiled matrix.
pub fn run_bicgstab(
    m: &TiledMatrix,
    shared: &mut SharedTiles,
    b: &[f64],
    cfg: &SolverConfig,
    coster: &Coster,
    partial: &mut PartialState,
) -> CoreResult {
    run_bicgstab_ws(
        m,
        shared,
        b,
        cfg,
        coster,
        partial,
        &mut SolverWorkspace::new(),
    )
}

/// Workspace-reusing variant of [`run_bicgstab`] (see
/// [`crate::cg::run_cg_ws`] for the contract).
pub fn run_bicgstab_ws(
    m: &TiledMatrix,
    shared: &mut SharedTiles,
    b: &[f64],
    cfg: &SolverConfig,
    coster: &Coster,
    partial: &mut PartialState,
    ws: &mut SolverWorkspace,
) -> CoreResult {
    let n = m.nrows;
    assert_eq!(b.len(), n);
    assert_eq!(m.nrows, m.ncols, "BiCGSTAB needs a square matrix");

    let mut tl = Timeline::new();
    coster.solve_start(&mut tl);

    let mut result = CoreResult::empty();
    let tracer = host_tracer(cfg);

    let norm_b = blas1::norm2(b);
    if norm_b == 0.0 {
        result.x = vec![0.0; n];
        result.converged = true;
        result.final_relres = 0.0;
        result.timeline = tl;
        finish_host_trace(tracer, &mut result);
        return result;
    }

    // x0 = 0 ⇒ r0 = b, r0* = r0, p0 = r0 (Algorithm 2 lines 1–3). The
    // workspace maps µ onto `u` and θ onto `t`.
    ws.ensure(n);
    let SolverWorkspace {
        x,
        r,
        r0s,
        p,
        u: mu,
        s,
        t: theta,
        ..
    } = ws;
    r.copy_from_slice(b);
    r0s.copy_from_slice(b); // shadow residual, fixed
    p.copy_from_slice(b);
    let threads = cfg.host_parallelism.threads_for(m.nnz());
    let mut rho = blas1::dot(r, r0s);

    let iters = cfg.fixed_iterations.unwrap_or(cfg.max_iter);
    let check_convergence = cfg.fixed_iterations.is_none();
    let mut consecutive_restarts = 0usize;

    for j in 0..iters {
        // µ = A·p (first SpMV, flags from p).
        if let Some(t) = &tracer {
            t.stamp(j as i64, 0);
        }
        partial.update(p);
        if partial.enabled() {
            coster.visflag_scan(&mut tl);
        }
        let st1 = mixed_spmv(m, shared, &partial.vis_flags, p, mu, threads);
        result.spmv_stats.merge(&st1);
        if let Some(t) = &tracer {
            record_spmv_trace(t, &st1, shared);
        }
        coster.spmv(&mut tl, m, shared, &partial.vis_flags, &st1);

        // α = (r, r0*) / (µ, r0*).
        let denom = blas1::dot(mu, r0s);
        coster.dot(&mut tl, true);
        let alpha = rho / denom;
        if !alpha.is_finite() || denom.abs() < f64::MIN_POSITIVE {
            // Breakdown restart. Charge the rest of the iteration anyway —
            // the kernel pipeline runs every step regardless (the second
            // SpMV is charged at the first one's cost profile, which is
            // what it would execute with the same flags).
            let kind = if !alpha.is_finite() {
                BreakdownKind::NonFinite
            } else {
                BreakdownKind::Rho
            };
            restart(r, p, r0s, &mut rho);
            coster.axpy(&mut tl, 1);
            coster.spmv(&mut tl, m, shared, &partial.vis_flags, &st1);
            coster.dot(&mut tl, false);
            coster.dot(&mut tl, true);
            coster.axpy(&mut tl, 2);
            coster.axpy(&mut tl, 1);
            coster.dot(&mut tl, false);
            coster.dot(&mut tl, true);
            coster.axpy(&mut tl, 1);
            coster.iteration_end(&mut tl);
            let iter_idx = result.iterations;
            result.iterations += 1;
            consecutive_restarts += 1;
            record_traces(
                &mut result,
                cfg,
                partial,
                shared,
                x,
                r,
                p,
                norm_b,
                &st1,
                &st1,
            );
            // An α-restart leaves x and r untouched; see the CG core for
            // why repeating it is a fixed point worth aborting.
            let abort_nonfinite = !rho.is_finite();
            let abort_stalled =
                check_convergence && consecutive_restarts >= MAX_CONSECUTIVE_RESTARTS;
            let action = if abort_nonfinite || abort_stalled {
                RecoveryAction::Aborted
            } else {
                RecoveryAction::Restarted
            };
            result.record_breakdown(iter_idx, kind, action);
            if abort_nonfinite {
                result.failure = Some(SolveFailure::NonFinite {
                    iteration: iter_idx,
                });
                break;
            }
            if abort_stalled {
                result.failure = Some(SolveFailure::Stalled {
                    iteration: iter_idx,
                });
                break;
            }
            continue;
        }

        // s = r − αµ.
        blas1::waxpy(r, -alpha, mu, s);
        coster.axpy(&mut tl, 1);

        // θ = A·s (second SpMV, flags from s).
        if let Some(t) = &tracer {
            t.stamp(j as i64, 2); // BICGSTAB_STEPS[2] = "spmv_s"
        }
        partial.update(s);
        if partial.enabled() {
            coster.visflag_scan(&mut tl);
        }
        let st2 = mixed_spmv(m, shared, &partial.vis_flags, s, theta, threads);
        result.spmv_stats.merge(&st2);
        if let Some(t) = &tracer {
            record_spmv_trace(t, &st2, shared);
        }
        coster.spmv(&mut tl, m, shared, &partial.vis_flags, &st2);

        // ω = (θ,s) / (θ,θ).
        let ts = blas1::dot(theta, s);
        let tt = blas1::dot(theta, theta);
        coster.dot(&mut tl, false);
        coster.dot(&mut tl, true); // scalar pair -> one readback
        let omega = if tt > 0.0 { ts / tt } else { 0.0 };

        // x += αp + ωs (fused two-vector update, Algorithm 2 line 10).
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
        }
        coster.axpy(&mut tl, 2);

        // r = s − ωθ.
        blas1::waxpy(s, -omega, theta, r);
        coster.axpy(&mut tl, 1);

        // β = (r,r0*)/(r_old,r0*) · α/ω; p = r + β(p − ωµ).
        let rho_new = blas1::dot(r, r0s);
        coster.dot(&mut tl, false);
        let rr = blas1::dot(r, r);
        coster.dot(&mut tl, true); // scalar pair -> one readback
        consecutive_restarts = 0; // x and r advanced: real progress

        if !rr.is_finite() {
            // Poisoned residual: restarting would rebuild from the same
            // non-finite r. Abort observably (final_relres keeps its last
            // finite value).
            let iter_idx = result.iterations;
            result.iterations += 1;
            result.record_breakdown(iter_idx, BreakdownKind::NonFinite, RecoveryAction::Aborted);
            result.failure = Some(SolveFailure::NonFinite {
                iteration: iter_idx,
            });
            coster.iteration_end(&mut tl);
            break;
        }

        result.iterations += 1;
        let relres = rr.sqrt() / norm_b;
        result.final_relres = relres;
        if cfg.trace_residuals {
            result.residual_history.push(relres);
        }
        if let Some(reference) = &cfg.reference_solution {
            let mut diff = 0.0;
            let mut norm = 0.0;
            for (a, bb) in x.iter().zip(reference) {
                diff += (a - bb) * (a - bb);
                norm += bb * bb;
            }
            result
                .error_history
                .push((diff / norm.max(f64::MIN_POSITIVE)).sqrt());
        }
        if cfg.trace_partial {
            result.p_range_history.push(partial.p_range_histogram(p));
            result
                .bypass_history
                .push(st1.tiles_bypassed + st2.tiles_bypassed);
            result
                .precision_history
                .push(crate::cg::current_precision_histogram(shared));
        }

        if check_convergence && relres < cfg.tolerance {
            result.converged = true;
            break;
        }

        let beta = (rho_new / rho) * (alpha / omega);
        if !beta.is_finite() || omega == 0.0 || rho_new.abs() < f64::MIN_POSITIVE {
            let kind = if omega == 0.0 {
                BreakdownKind::Omega
            } else if rho_new.abs() < f64::MIN_POSITIVE {
                BreakdownKind::Rho
            } else {
                BreakdownKind::NonFinite
            };
            result.record_breakdown(result.iterations - 1, kind, RecoveryAction::Restarted);
            restart(r, p, r0s, &mut rho);
            coster.axpy(&mut tl, 1); // the p-update step still executes
            coster.iteration_end(&mut tl);
            continue;
        }
        rho = rho_new;
        blas1::bicgstab_p_update(r, beta, omega, mu, p);
        coster.axpy(&mut tl, 1);
        coster.iteration_end(&mut tl);
    }

    finish_host_trace(tracer, &mut result);
    result.x = x.clone();
    result.timeline = tl;
    result
}

/// Records the per-iteration traces for a breakdown-restart iteration (the
/// normal path records inline).
#[allow(clippy::too_many_arguments)]
fn record_traces(
    result: &mut CoreResult,
    cfg: &SolverConfig,
    partial: &PartialState,
    shared: &SharedTiles,
    x: &[f64],
    r: &[f64],
    p: &[f64],
    norm_b: f64,
    st1: &mf_kernels::MixedSpmvStats,
    st2: &mf_kernels::MixedSpmvStats,
) {
    let rr = blas1::dot(r, r);
    let relres = rr.sqrt() / norm_b;
    result.final_relres = relres;
    if cfg.trace_residuals {
        result.residual_history.push(relres);
    }
    if let Some(reference) = &cfg.reference_solution {
        let mut diff = 0.0;
        let mut norm = 0.0;
        for (a, bb) in x.iter().zip(reference) {
            diff += (a - bb) * (a - bb);
            norm += bb * bb;
        }
        result
            .error_history
            .push((diff / norm.max(f64::MIN_POSITIVE)).sqrt());
    }
    if cfg.trace_partial {
        result.p_range_history.push(partial.p_range_histogram(p));
        result
            .bypass_history
            .push(st1.tiles_bypassed + st2.tiles_bypassed);
        result
            .precision_history
            .push(crate::cg::current_precision_histogram(shared));
    }
}

/// Breakdown recovery: restart the Krylov process from the current
/// residual (ρ and the direction are rebuilt; the shadow residual stays).
fn restart(r: &mut [f64], p: &mut Vec<f64>, r0s: &[f64], rho: &mut f64) {
    p.clear();
    p.extend_from_slice(r);
    *rho = blas1::dot(r, r0s);
    if rho.abs() < f64::MIN_POSITIVE {
        // (Sub)normal-zero shadow correlation: a ρ ≈ 0 would make the next
        // α non-finite again, so fall back to a fresh rho on r itself
        // (equivalent to restarting with r0* = r, standard practice).
        *rho = blas1::dot(r, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coster::{Coster, MultiCoster, SingleCoster};
    use mf_gpu::{CostModel, DeviceSpec};
    use mf_precision::ClassifyOptions;
    use mf_sparse::{Coo, Csr, TiledMatrix};

    fn convdiff1d(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 4.0);
            if i > 0 {
                a.push(i, i - 1, -1.5);
            }
            if i + 1 < n {
                a.push(i, i + 1, -0.5);
            }
        }
        a.to_csr()
    }

    fn setup(
        a: &Csr,
        cfg: &SolverConfig,
    ) -> (TiledMatrix, SharedTiles, Coster, PartialState, Vec<f64>) {
        let m = TiledMatrix::from_csr_with(a, cfg.tile_size, &ClassifyOptions::default());
        let shared = SharedTiles::load(&m);
        let cost = CostModel::new(DeviceSpec::a100());
        let coster = Coster::Single(SingleCoster::new(cost, &m, cfg.tile_size));
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);
        let eps_abs = cfg.tolerance * blas1::norm2(&b);
        let partial =
            PartialState::new(cfg.partial_convergence, m.tile_cols, cfg.tile_size, eps_abs);
        (m, shared, coster, partial, b)
    }

    #[test]
    fn bicgstab_converges_on_nonsymmetric() {
        let a = convdiff1d(200);
        let cfg = SolverConfig::default();
        let (m, mut shared, coster, mut partial, b) = setup(&a, &cfg);
        let res = run_bicgstab(&m, &mut shared, &b, &cfg, &coster, &mut partial);
        assert!(res.converged, "relres {}", res.final_relres);
        for v in &res.x {
            assert!((v - 1.0).abs() < 1e-6, "{v}");
        }
    }

    #[test]
    fn bicgstab_beats_its_tolerance() {
        let a = convdiff1d(100);
        let cfg = SolverConfig::default();
        let (m, mut shared, coster, mut partial, b) = setup(&a, &cfg);
        let res = run_bicgstab(&m, &mut shared, &b, &cfg, &coster, &mut partial);
        assert!(res.final_relres < 1e-10);
    }

    #[test]
    fn fixed_iteration_mode() {
        let a = convdiff1d(64);
        let cfg = SolverConfig::benchmark_100_iters();
        let (m, mut shared, coster, mut partial, b) = setup(&a, &cfg);
        let res = run_bicgstab(&m, &mut shared, &b, &cfg, &coster, &mut partial);
        assert_eq!(res.iterations, 100);
        // Two SpMVs per iteration.
        assert!(res.spmv_stats.nnz_total() >= 2 * 100 * m.nnz() / 2);
    }

    #[test]
    fn zero_rhs() {
        let a = convdiff1d(16);
        let cfg = SolverConfig::default();
        let (m, mut shared, coster, mut partial, _) = setup(&a, &cfg);
        let res = run_bicgstab(&m, &mut shared, &[0.0; 16], &cfg, &coster, &mut partial);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn single_and_multi_kernel_same_numerics() {
        let a = convdiff1d(90);
        let cfg = SolverConfig {
            partial_convergence: false,
            ..SolverConfig::default()
        };
        let (m, mut sh1, coster_s, mut p1, b) = setup(&a, &cfg);
        let res_s = run_bicgstab(&m, &mut sh1, &b, &cfg, &coster_s, &mut p1);
        let mut sh2 = SharedTiles::load(&m);
        let coster_m = Coster::Multi(MultiCoster::new(
            CostModel::new(DeviceSpec::a100()),
            m.nrows,
        ));
        let mut p2 = PartialState::new(false, m.tile_cols, 16, 1e-10);
        let res_m = run_bicgstab(&m, &mut sh2, &b, &cfg, &coster_m, &mut p2);
        assert_eq!(res_s.iterations, res_m.iterations);
        assert_eq!(res_s.x, res_m.x);
    }

    /// Skew-symmetric matrix: `(A·p, r0*) = 0` exactly on the first
    /// iteration, so α = ρ/0 is infinite before any update runs. The old
    /// core divided blindly and NaN-poisoned x; the robustness layer must
    /// restart, observe the fixed point, and abort with a structured
    /// failure and a finite residual.
    #[test]
    fn breakdown_matrix_fails_finite_with_events() {
        let n = 32;
        let mut a = Coo::new(n, n);
        for i in 0..n - 1 {
            a.push(i, i + 1, 1.0);
            a.push(i + 1, i, -1.0);
        }
        let csr = a.to_csr();
        let cfg = SolverConfig::default();
        let m = TiledMatrix::from_csr_with(&csr, cfg.tile_size, &ClassifyOptions::default());
        let mut shared = SharedTiles::load(&m);
        let coster = Coster::Single(SingleCoster::new(
            CostModel::new(DeviceSpec::a100()),
            &m,
            cfg.tile_size,
        ));
        let b = vec![1.0; n];
        let mut partial = PartialState::new(
            cfg.partial_convergence,
            m.tile_cols,
            cfg.tile_size,
            cfg.tolerance * blas1::norm2(&b),
        );
        let res = run_bicgstab(&m, &mut shared, &b, &cfg, &coster, &mut partial);
        assert!(!res.converged);
        assert!(
            res.final_relres.is_finite(),
            "breakdown must not leak NaN: {}",
            res.final_relres
        );
        for v in &res.x {
            assert!(v.is_finite(), "x poisoned: {v}");
        }
        assert!(
            matches!(res.failure, Some(SolveFailure::Stalled { .. })),
            "expected a stall abort, got {:?}",
            res.failure
        );
        assert!(
            !res.breakdowns.is_empty(),
            "breakdown events must be recorded"
        );
        assert_eq!(
            res.breakdowns.last().unwrap().action,
            RecoveryAction::Aborted
        );
        assert!(
            res.iterations <= MAX_CONSECUTIVE_RESTARTS,
            "stall abort must bound the futile restarts, ran {}",
            res.iterations
        );
    }

    #[test]
    fn event_trace_is_inert_and_records_both_spmvs() {
        let a = convdiff1d(120);
        let base = SolverConfig::default();
        let (m, mut sh1, coster, mut p1, b) = setup(&a, &base);
        let off = run_bicgstab(&m, &mut sh1, &b, &base, &coster, &mut p1);
        assert!(off.trace.is_none());

        let cfg = SolverConfig {
            trace: mf_trace::TraceConfig::on(),
            ..SolverConfig::default()
        };
        let (m2, mut sh2, coster2, mut p2, b2) = setup(&a, &cfg);
        let on = run_bicgstab(&m2, &mut sh2, &b2, &cfg, &coster2, &mut p2);
        assert_eq!(off.x, on.x, "tracing must not perturb the numerics");
        assert_eq!(off.iterations, on.iterations);

        let trace = on.trace.expect("tracing enabled -> trace present");
        assert_eq!(trace.count(mf_trace::EventKind::IterStart), on.iterations);
        // Two SpMVs per full iteration, each with a Bypass marker.
        assert_eq!(trace.count(mf_trace::EventKind::Bypass), 2 * on.iterations);
        assert_eq!(
            trace.bytes_by_precision().iter().sum::<u64>() as usize,
            on.spmv_stats.value_bytes()
        );
    }

    #[test]
    fn wide_range_matrix_still_solves() {
        // Diagonally dominant with wide-range off-diagonals (arc130-like).
        let n = 80;
        let mut a = Coo::new(n, n);
        let mut mag = 1.0e-6;
        for i in 0..n {
            a.push(i, i, 1.0 + 2.0 * mag);
            if i + 1 < n {
                a.push(i, i + 1, mag);
            }
            if i > 0 {
                a.push(i, i - 1, -mag);
            }
            mag *= 1.35;
            if mag > 1e6 {
                mag = 1e-6;
            }
        }
        let csr = a.to_csr();
        let cfg = SolverConfig::default();
        let (m, mut shared, coster, mut partial, b) = setup(&csr, &cfg);
        let res = run_bicgstab(&m, &mut shared, &b, &cfg, &coster, &mut partial);
        assert!(res.converged, "relres {}", res.final_relres);
    }
}
