//! Ticketed preprocessing: CSR→tile conversion, per-tile precision
//! classification and ILU(0)/IC(0) factorization as **one fused
//! sequencer/worker/committer flow** (DESIGN.md §16).
//!
//! The phase-barrier pipeline this replaces runs three stages back to
//! back: classify every tile (rayon map), assemble every tile (serial),
//! factor every row (serial). The fused flow puts tile-classification
//! units and factorization-row units into a single ticket stream (the
//! dependency-bearing rows lead, the independent tiles trail — see
//! `order_units`), lets
//! [`mf_gpu::run_ticketed`] workers compute them out of order against
//! committed snapshots, and commits strictly in ticket order:
//!
//! * a **tile** commit appends to the in-order [`TileAssembler`] — the
//!   packed value buffer is append-only, which is exactly the
//!   strict-commit-order discipline the ticket runtime provides;
//! * a **row** commit appends to the factor-row accumulator that
//!   dependent rows read through the [`CommitView`]. A row is admitted
//!   as soon as its largest pattern predecessor commits (`RowDeps`
//!   watermark logic: commits are in order, so watermark > max-dep
//!   implies *every* dep is visible).
//!
//! Workers run the *same* `classify_tile` / `ilu0_row` / `ic0_row`
//! kernels the serial path runs, and commits apply in the serial order,
//! so the output is **bitwise identical** to `from_csr_par` +
//! sequential classification + `ilu0_boosted` at every worker count —
//! clean or under seeded [`TicketFaults`] perturbation
//! (`tests/ticketed_parity.rs` pins the full grid).
//!
//! Factor breakdowns mirror the serial `*_boosted` drivers exactly: a
//! fused first attempt never aborts (tiles must finish), records the
//! first row error in row order, then retries rows-only passes on
//! `A + αI` with the identical [`initial_boost_shift`]-doubling
//! schedule.

use mf_gpu::ticket::{run_ticketed, CommitView, TicketConfig, TicketFaults, TicketStats, UnitSpec};
use mf_kernels::{
    diag_shifted, ic0_row, ilu0_row, initial_boost_shift, CholRowsView, FactorError, FactorRow,
    FactorRowsView, Ic0, Ic0Rows, Ic0Scratch, Ilu0, Ilu0Rows, IluScratch, MAX_FACTOR_SHIFTS,
};
use mf_precision::{ClassifyOptions, Precision};
use mf_sparse::{Csr, TileAssembler, TileBuildPlan, TiledMatrix};
use mf_trace::{EventKind, Trace, TraceConfig, WarpTracer};

/// Fixed seed salt for the preprocessing ticket stream; retry passes
/// add their attempt number so every pass has distinct per-ticket seeds.
const PREPROCESS_SALT: u64 = 0x7101_C5ED_0000_0000;

/// One work unit of the fused preprocessing stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PreUnit {
    /// Classify tile `t` of the [`TileBuildPlan`].
    Tile(usize),
    /// Factor row `r` against its committed predecessors.
    Row(usize),
}

/// One committed result of the fused stream.
#[derive(Clone, Debug)]
pub enum PreResult {
    /// The classified precision of a tile.
    Tile(Precision),
    /// The factored row, or the row's breakdown. Errors do not abort the
    /// fused pass (tiles must finish); the first one, in row order, is
    /// the pass verdict — the same row the serial factorization fails at.
    Row(Result<FactorRow, FactorError>),
}

/// Which factorization the fused pipeline runs alongside tiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FactorKind {
    /// ILU(0) (the PCG cold path).
    Ilu0,
    /// IC(0) (SPD-only preconditioning).
    Ic0,
}

/// Options for the ticketed preprocessing drivers.
#[derive(Clone, Copy, Default)]
pub struct TicketedOptions<'a> {
    /// Worker thread count; `<= 1` runs the serial reference path.
    pub workers: usize,
    /// Optional seeded worker perturbation (tests only).
    pub faults: Option<&'a TicketFaults>,
    /// Trace recording; when enabled the committer emits one
    /// [`EventKind::Ticket`] event per commit, in commit order, through
    /// warp 0 of the canonical merge.
    pub trace: TraceConfig,
}

/// Schedule-dependent diagnostics of one ticketed preprocessing run
/// (aggregated over the fused pass and any boost retries).
#[derive(Clone, Debug, Default)]
pub struct TicketedOutcome {
    /// Aggregated runtime counters.
    pub stats: TicketStats,
    /// The merged `Ticket`-event trace, when recording was enabled.
    pub trace: Option<Trace>,
}

fn add_stats(into: &mut TicketStats, s: &TicketStats) {
    into.tickets += s.tickets;
    into.workers = into.workers.max(s.workers);
    into.accepted += s.accepted;
    into.fallbacks += s.fallbacks;
    into.dropped += s.dropped;
    into.stale += s.stale;
}

/// Largest pattern column `< r` in row `r` (the row's commit watermark
/// dependency), or `None` for rows with no lower-triangle entries.
fn max_lower_col(a: &Csr, r: usize) -> Option<usize> {
    let mut dep = None;
    for (c, _) in a.row(r) {
        if c < r {
            dep = Some(c);
        } else {
            break;
        }
    }
    dep
}

/// Ticket order of the fused stream: all `rows` row units lead, all
/// `tiles` tile units trail.
///
/// Rows are the only units with dependencies, and on banded matrices
/// they form a near-serial commit chain (row `r` waits for row `r-1`'s
/// commit) — the critical path of the whole pipeline. Commits are
/// strictly in ticket order, so any tile ticket ordered *before* a row
/// ticket delays that row's commit (and every row behind it) by the
/// tile's compute. Leading with rows lets the chain pipeline compute
/// over commit from ticket 0 — factorization starts before any
/// classification, which no phase-barrier schedule can do — while the
/// dependency-free tiles fill worker capacity afterwards with their
/// commits pipelined. `fig_ticket` gates this schedule's modeled
/// makespan against the phase-barrier pipeline over identical unit
/// costs.
fn order_units(tiles: usize, rows: usize) -> Vec<PreUnit> {
    let mut units = Vec::with_capacity(tiles + rows);
    units.extend((0..rows).map(PreUnit::Row));
    units.extend((0..tiles).map(PreUnit::Tile));
    units
}

/// Packs the deterministic `a` payload of a `Ticket` event.
fn ticket_payload_a(stream: u64, index: usize) -> u64 {
    (stream << 32) | (index as u64 & 0xFFFF_FFFF)
}

/// Packs the schedule-dependent `b` payload (zeroed canonically).
fn ticket_payload_b(worker: Option<usize>, fallback: bool) -> u64 {
    let w = worker.map_or(0, |w| w as u64 + 1);
    (w << 1) | u64::from(fallback)
}

/// The ticketed pipeline's [`FactorRowsView`]: resolves row indices to
/// committed tickets. Only rows whose commit the caller's dependency
/// watermark guarantees are ever read.
struct TicketIluView<'v, 'a> {
    view: &'v CommitView<'a, PreResult>,
    row_ticket: &'v [usize],
}

const EMPTY_ROW: &[(usize, f64)] = &[];

impl FactorRowsView for TicketIluView<'_, '_> {
    fn upper_row(&self, k: usize) -> &[(usize, f64)] {
        match self.view.get(self.row_ticket[k]) {
            PreResult::Row(Ok(row)) => &row.upper,
            _ => EMPTY_ROW,
        }
    }
    fn diag(&self, k: usize) -> f64 {
        match self.view.get(self.row_ticket[k]) {
            PreResult::Row(Ok(row)) => row.diag,
            // A broken predecessor: report an unusable pivot. The result
            // computed through it is discarded (an earlier ticket already
            // carried the pass verdict), so the value only needs to be
            // deterministic.
            _ => 0.0,
        }
    }
}

struct TicketCholView<'v, 'a> {
    view: &'v CommitView<'a, PreResult>,
    row_ticket: &'v [usize],
}

impl CholRowsView for TicketCholView<'_, '_> {
    fn chol_row(&self, j: usize) -> &[(usize, f64)] {
        match self.view.get(self.row_ticket[j]) {
            PreResult::Row(Ok(row)) => &row.lower,
            _ => EMPTY_ROW,
        }
    }
    fn chol_diag(&self, j: usize) -> f64 {
        match self.view.get(self.row_ticket[j]) {
            PreResult::Row(Ok(row)) => row.diag,
            _ => 0.0,
        }
    }
}

/// Per-worker scratch covering both unit kinds.
struct PreScratch {
    ilu: IluScratch,
    ic: Ic0Scratch,
}

/// Computes one unit — the single compute kernel all passes share.
#[allow(clippy::too_many_arguments)]
fn compute_unit(
    a: &Csr,
    plan: Option<&TileBuildPlan>,
    opts: &ClassifyOptions,
    kind: FactorKind,
    row_ticket: &[usize],
    scratch: &mut PreScratch,
    unit: PreUnit,
    view: &CommitView<'_, PreResult>,
) -> PreResult {
    match unit {
        PreUnit::Tile(t) => PreResult::Tile(
            plan.expect("tile units require a plan")
                .classify_tile(a, t, opts),
        ),
        PreUnit::Row(r) => PreResult::Row(match kind {
            FactorKind::Ilu0 => {
                let v = TicketIluView { view, row_ticket };
                ilu0_row(a, r, &v, &mut scratch.ilu)
            }
            FactorKind::Ic0 => {
                let v = TicketCholView { view, row_ticket };
                ic0_row(a, r, &v, &mut scratch.ic)
            }
        }),
    }
}

/// One ticketed pass over `units`. Tile commits feed `asm`; the first
/// row error (in ticket = row order) is recorded in the returned value
/// without aborting when `abort_on_row_error` is false. Returns the
/// committed row results in row order.
#[allow(clippy::too_many_arguments)]
fn run_pass(
    a: &Csr,
    plan: Option<&TileBuildPlan>,
    opts: &ClassifyOptions,
    kind: FactorKind,
    units: &[PreUnit],
    topts: &TicketedOptions<'_>,
    salt: u64,
    stream_of: &dyn Fn(PreUnit) -> u64,
    tracer: Option<&WarpTracer>,
    mut asm: Option<&mut TileAssembler<'_>>,
    abort_on_row_error: bool,
) -> (Vec<FactorRow>, Option<FactorError>, TicketStats) {
    let n = a.nrows;
    // Ticket of each unit, so row compute can resolve predecessors and
    // the committer can map tickets back to streams.
    let mut row_ticket = vec![usize::MAX; n];
    for (ticket, u) in units.iter().enumerate() {
        if let PreUnit::Row(r) = *u {
            row_ticket[r] = ticket;
        }
    }
    // A row waits for its largest pattern predecessor's commit; commits
    // are strictly ordered, so that watermark implies every predecessor.
    let dep_of = |ticket: usize| -> Option<usize> {
        match units[ticket] {
            PreUnit::Tile(_) => None,
            PreUnit::Row(r) => max_lower_col(a, r).map(|c| row_ticket[c]),
        }
    };

    let cfg = TicketConfig {
        workers: topts.workers,
        salt,
        faults: topts.faults,
    };
    let mut first_err: Option<FactorError> = None;
    let run = run_ticketed(
        units,
        dep_of,
        cfg,
        || PreScratch {
            ilu: IluScratch::new(n),
            ic: Ic0Scratch::new(n),
        },
        |scratch, _ticket, unit, _seed, view| {
            compute_unit(a, plan, opts, kind, &row_ticket, scratch, *unit, view)
        },
        |_ticket, unit, r, info, _view| {
            if let Some(tr) = tracer {
                let idx = match *unit {
                    PreUnit::Tile(t) => t,
                    PreUnit::Row(row) => row,
                };
                tr.record(
                    EventKind::Ticket,
                    ticket_payload_a(stream_of(*unit), idx),
                    ticket_payload_b(info.worker, info.fallback),
                );
            }
            match (&r, *unit) {
                (PreResult::Tile(p), PreUnit::Tile(t)) => {
                    asm.as_mut()
                        .expect("tile units require an assembler")
                        .push_tile(t, *p);
                }
                (PreResult::Row(Err(e)), PreUnit::Row(_)) => {
                    if abort_on_row_error {
                        return Err(e.clone());
                    }
                    if first_err.is_none() {
                        first_err = Some(e.clone());
                    }
                }
                _ => {}
            }
            Ok(r)
        },
    );
    match run {
        Ok((out, stats)) => {
            let mut rows: Vec<FactorRow> = Vec::new();
            if first_err.is_none() {
                for res in out {
                    if let PreResult::Row(Ok(row)) = res {
                        rows.push(row);
                    }
                }
            }
            (rows, first_err, stats)
        }
        Err(e) => (
            Vec::new(),
            Some(e.error),
            TicketStats {
                tickets: units.len(),
                workers: topts.workers,
                ..TicketStats::default()
            },
        ),
    }
}

/// Rows-only boost retries mirroring the serial `*_boosted` schedule:
/// first shift [`initial_boost_shift`], doubling, at most
/// [`MAX_FACTOR_SHIFTS`] attempts, every attempted shift recorded.
#[allow(clippy::too_many_arguments)]
fn boost_retries(
    a: &Csr,
    kind: FactorKind,
    topts: &TicketedOptions<'_>,
    tracer: Option<&WarpTracer>,
    stats: &mut TicketStats,
    shifts: &mut Vec<f64>,
    first_err: FactorError,
) -> Result<Vec<FactorRow>, FactorError> {
    let mut shift = initial_boost_shift(a);
    let mut last = first_err;
    for attempt in 0..MAX_FACTOR_SHIFTS {
        shifts.push(shift);
        let shifted = diag_shifted(a, shift);
        let units: Vec<PreUnit> = (0..shifted.nrows).map(PreUnit::Row).collect();
        let stream = 2 + attempt as u64;
        let (rows, err, s) = run_pass(
            &shifted,
            None,
            &ClassifyOptions::default(),
            kind,
            &units,
            topts,
            PREPROCESS_SALT.wrapping_add(1 + attempt as u64),
            &move |_| stream,
            tracer,
            None,
            true,
        );
        add_stats(stats, &s);
        match err {
            None => return Ok(rows),
            Some(e) => last = e,
        }
        shift *= 2.0;
    }
    Err(last)
}

fn rows_to_ilu(rows: Vec<FactorRow>) -> Ilu0 {
    let mut acc = Ilu0Rows::with_capacity(rows.len());
    for row in rows {
        acc.push(row);
    }
    acc.into_factors()
}

fn rows_to_ic(rows: Vec<FactorRow>) -> Result<Ic0, FactorError> {
    let mut acc = Ic0Rows::with_capacity(rows.len());
    for row in rows {
        acc.push(row);
    }
    let l = acc.into_factor();
    let lt = l.transpose();
    Ok(Ic0 { l, lt })
}

fn finish_trace(tracer: Option<WarpTracer>) -> Option<Trace> {
    tracer.map(|t| Trace::merge(vec![t.finish()]))
}

fn make_tracer(cfg: &TraceConfig) -> Option<WarpTracer> {
    if cfg.enabled {
        let t = WarpTracer::new(0, cfg.capacity_per_warp);
        // One stamp for the whole preprocessing stream: iteration 0,
        // step 0. Commit order is carried by the per-warp `seq` field in
        // the canonical merge key.
        t.stamp(0, 0);
        Some(t)
    } else {
        None
    }
}

/// Ticketed CSR→tile conversion + classification (no factorization).
/// Bitwise identical to [`TiledMatrix::from_csr_par`] at every worker
/// count.
pub fn build_tiled_ticketed(
    a: &Csr,
    tile_size: usize,
    opts: &ClassifyOptions,
    topts: &TicketedOptions<'_>,
) -> (TiledMatrix, TicketedOutcome) {
    let plan = TileBuildPlan::new(a, tile_size);
    let units: Vec<PreUnit> = (0..plan.tile_count()).map(PreUnit::Tile).collect();
    let tracer = make_tracer(&topts.trace);
    let mut asm = TileAssembler::new(a, &plan);
    let (_, err, stats) = run_pass(
        a,
        Some(&plan),
        opts,
        FactorKind::Ilu0,
        &units,
        topts,
        PREPROCESS_SALT,
        &|_| 0,
        tracer.as_ref(),
        Some(&mut asm),
        false,
    );
    debug_assert!(err.is_none(), "tile-only pass cannot break down");
    let tiled = asm.finish();
    let outcome = TicketedOutcome {
        stats,
        trace: finish_trace(tracer),
    };
    (tiled, outcome)
}

/// The fused flow: tiles and ILU(0)/IC(0) rows in one ticket stream.
/// The tiled matrix is bitwise identical to `from_csr_par`, the factor
/// result (factors + attempted shifts) bitwise identical to
/// [`mf_kernels::ilu0_boosted`] / [`Ic0::new_boosted`].
#[allow(clippy::type_complexity)]
pub fn preprocess_fused_ticketed(
    a: &Csr,
    tile_size: usize,
    opts: &ClassifyOptions,
    kind: FactorKind,
    topts: &TicketedOptions<'_>,
) -> (
    TiledMatrix,
    Result<(Vec<FactorRow>, Vec<f64>), FactorError>,
    TicketedOutcome,
) {
    let plan = TileBuildPlan::new(a, tile_size);
    let square = a.nrows == a.ncols;
    let rows = if square { a.nrows } else { 0 };
    let units = order_units(plan.tile_count(), rows);
    let tracer = make_tracer(&topts.trace);
    let mut asm = TileAssembler::new(a, &plan);
    let (factor_rows, err, mut stats) = run_pass(
        a,
        Some(&plan),
        opts,
        kind,
        &units,
        topts,
        PREPROCESS_SALT,
        &|u| match u {
            PreUnit::Tile(_) => 0,
            PreUnit::Row(_) => 1,
        },
        tracer.as_ref(),
        Some(&mut asm),
        false,
    );
    let tiled = asm.finish();

    let factors = if !square {
        Err(FactorError::NotSquare)
    } else {
        match err {
            None => Ok((factor_rows, Vec::new())),
            // `NotSquare` is never retried; per-row passes cannot produce
            // it, but keep the serial driver's contract explicit.
            Some(FactorError::NotSquare) => Err(FactorError::NotSquare),
            Some(e) => {
                let mut shifts = Vec::new();
                boost_retries(a, kind, topts, tracer.as_ref(), &mut stats, &mut shifts, e)
                    .map(|rows| (rows, shifts))
            }
        }
    };
    let outcome = TicketedOutcome {
        stats,
        trace: finish_trace(tracer),
    };
    (tiled, factors, outcome)
}

/// [`preprocess_fused_ticketed`] with the row results packaged as the
/// [`Ilu0`] factors the PCG cold path consumes — the fused counterpart
/// of `preprocess` + [`mf_kernels::ilu0_boosted`].
#[allow(clippy::type_complexity)]
pub fn preprocess_tiled_ilu0_ticketed(
    a: &Csr,
    tile_size: usize,
    opts: &ClassifyOptions,
    topts: &TicketedOptions<'_>,
) -> (
    TiledMatrix,
    Result<(Ilu0, Vec<f64>), FactorError>,
    TicketedOutcome,
) {
    let (tiled, fac, outcome) =
        preprocess_fused_ticketed(a, tile_size, opts, FactorKind::Ilu0, topts);
    (
        tiled,
        fac.map(|(rows, shifts)| (rows_to_ilu(rows), shifts)),
        outcome,
    )
}

/// Ticketed mirror of [`mf_kernels::ilu0_boosted`] (rows only, no
/// tiling): bitwise-identical factors and shift schedule.
pub fn ilu0_boosted_ticketed(
    a: &Csr,
    topts: &TicketedOptions<'_>,
) -> (Result<(Ilu0, Vec<f64>), FactorError>, TicketedOutcome) {
    let (rows, result, outcome) = factor_rows_ticketed(a, FactorKind::Ilu0, topts);
    (result.map(|shifts| (rows_to_ilu(rows), shifts)), outcome)
}

/// Ticketed mirror of [`Ic0::new_boosted`]: bitwise-identical factors
/// and shift schedule.
pub fn ic0_boosted_ticketed(
    a: &Csr,
    topts: &TicketedOptions<'_>,
) -> (Result<(Ic0, Vec<f64>), FactorError>, TicketedOutcome) {
    let (rows, result, outcome) = factor_rows_ticketed(a, FactorKind::Ic0, topts);
    match result {
        Ok(shifts) => match rows_to_ic(rows) {
            Ok(ic) => (Ok((ic, shifts)), outcome),
            Err(e) => (Err(e), outcome),
        },
        Err(e) => (Err(e), outcome),
    }
}

/// Shared rows-only driver: first attempt on `a`, then the boost
/// schedule. Returns the surviving rows and the attempted shifts.
#[allow(clippy::type_complexity)]
fn factor_rows_ticketed(
    a: &Csr,
    kind: FactorKind,
    topts: &TicketedOptions<'_>,
) -> (
    Vec<FactorRow>,
    Result<Vec<f64>, FactorError>,
    TicketedOutcome,
) {
    if a.nrows != a.ncols {
        return (
            Vec::new(),
            Err(FactorError::NotSquare),
            TicketedOutcome::default(),
        );
    }
    let tracer = make_tracer(&topts.trace);
    let units: Vec<PreUnit> = (0..a.nrows).map(PreUnit::Row).collect();
    let (rows, err, mut stats) = run_pass(
        a,
        None,
        &ClassifyOptions::default(),
        kind,
        &units,
        topts,
        PREPROCESS_SALT,
        &|_| 1,
        tracer.as_ref(),
        None,
        false,
    );
    let result = match err {
        None => Ok((rows, Vec::new())),
        Some(FactorError::NotSquare) => Err(FactorError::NotSquare),
        Some(e) => {
            let mut shifts = Vec::new();
            boost_retries(a, kind, topts, tracer.as_ref(), &mut stats, &mut shifts, e)
                .map(|rows| (rows, shifts))
        }
    };
    let outcome = TicketedOutcome {
        stats,
        trace: finish_trace(tracer),
    };
    match result {
        Ok((rows, shifts)) => (rows, Ok(shifts), outcome),
        Err(e) => (Vec::new(), Err(e), outcome),
    }
}

/// Builds the fused stream's modeled [`UnitSpec`]s from real per-unit
/// costs (tile: its nnz; row: its nnz plus the upper-row lengths of its
/// eliminators) — the `fig_ticket` schedule-model input.
pub fn fused_unit_specs(
    a: &Csr,
    tile_size: usize,
) -> (Vec<UnitSpec>, Vec<UnitSpec>, Vec<UnitSpec>) {
    let plan = TileBuildPlan::new(a, tile_size);
    let rows = if a.nrows == a.ncols { a.nrows } else { 0 };
    let units = order_units(plan.tile_count(), rows);
    let mut row_ticket = vec![usize::MAX; a.nrows];
    for (ticket, u) in units.iter().enumerate() {
        if let PreUnit::Row(r) = *u {
            row_ticket[r] = ticket;
        }
    }
    // Row compute cost: its own pattern plus one pass over each
    // eliminator row's upper part (the IKJ inner loop's touch count).
    let row_cost = |r: usize| -> u64 {
        let own = a.row(r).count() as u64;
        let elim: u64 = a
            .row(r)
            .filter(|&(c, _)| c < r)
            .map(|(c, _)| a.row(c).filter(|&(j, _)| j >= c).count() as u64)
            .sum();
        own + elim
    };
    let spec_of = |u: &PreUnit| -> UnitSpec {
        match *u {
            PreUnit::Tile(t) => UnitSpec {
                dep: None,
                // Classification reads each value ~4 times (round-trip
                // tests per candidate precision).
                compute_cost: 4 * plan.tile_nnz_of(t) as u64,
                commit_cost: plan.tile_nnz_of(t) as u64,
            },
            PreUnit::Row(r) => UnitSpec {
                dep: max_lower_col(a, r).map(|c| row_ticket[c]),
                compute_cost: row_cost(r),
                commit_cost: a.row(r).count() as u64,
            },
        }
    };
    let fused: Vec<UnitSpec> = units.iter().map(spec_of).collect();
    let tiles: Vec<UnitSpec> = units
        .iter()
        .filter(|u| matches!(u, PreUnit::Tile(_)))
        .map(spec_of)
        .collect();
    // The barrier model's serial stage has no cross-unit deps.
    let serial_rows: Vec<UnitSpec> = units
        .iter()
        .filter(|u| matches!(u, PreUnit::Row(_)))
        .map(|u| UnitSpec {
            dep: None,
            ..spec_of(u)
        })
        .collect();
    (fused, tiles, serial_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_kernels::{ic0, ilu0, ilu0_boosted};
    use mf_sparse::Coo;

    fn tridiag_spd(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 4.0);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
            }
        }
        a.to_csr()
    }

    fn opts<'a>(workers: usize) -> TicketedOptions<'a> {
        TicketedOptions {
            workers,
            faults: None,
            trace: TraceConfig::default(),
        }
    }

    #[test]
    fn tiled_build_matches_phase_barrier() {
        let a = tridiag_spd(150);
        let reference = TiledMatrix::from_csr_par(&a, 16, &ClassifyOptions::default());
        for w in [1usize, 2, 4] {
            let (t, _) = build_tiled_ticketed(&a, 16, &ClassifyOptions::default(), &opts(w));
            assert_eq!(t.tile_prec, reference.tile_prec, "workers={w}");
            assert_eq!(t.vals_raw(), reference.vals_raw());
            assert_eq!(t.csr_rowptr, reference.csr_rowptr);
        }
    }

    #[test]
    fn fused_factors_match_serial() {
        let a = tridiag_spd(80);
        let serial = ilu0(&a).unwrap();
        for w in [1usize, 3] {
            let (_, fac, _) = preprocess_fused_ticketed(
                &a,
                16,
                &ClassifyOptions::default(),
                FactorKind::Ilu0,
                &opts(w),
            );
            let (rows, shifts) = fac.unwrap();
            assert!(shifts.is_empty());
            let f = rows_to_ilu(rows);
            assert_eq!(f.u.vals, serial.u.vals, "workers={w}");
            assert_eq!(f.l.vals, serial.l.vals);
        }
    }

    #[test]
    fn boosted_fallback_matches_serial_schedule() {
        // Structural zero pivots force the boost path.
        let mut a = Coo::new(6, 6);
        a.push(0, 1, 1.0);
        a.push(1, 0, 1.0);
        for i in 2..6 {
            a.push(i, i, 1.0);
        }
        let a = a.to_csr();
        let (serial, serial_shifts) = ilu0_boosted(&a).unwrap();
        for w in [1usize, 2, 7] {
            let (fac, _) = ilu0_boosted_ticketed(&a, &opts(w));
            let (f, shifts) = fac.unwrap();
            assert_eq!(shifts, serial_shifts, "workers={w}");
            assert_eq!(f.u.vals, serial.u.vals);
            assert_eq!(f.l.vals, serial.l.vals);
        }
    }

    #[test]
    fn ic_matches_serial() {
        let a = tridiag_spd(40);
        let serial = ic0(&a).unwrap();
        for w in [1usize, 4] {
            let (fac, _) = ic0_boosted_ticketed(&a, &opts(w));
            let (ic, shifts) = fac.unwrap();
            assert!(shifts.is_empty());
            assert_eq!(ic.l.vals, serial.vals, "workers={w}");
        }
    }

    #[test]
    fn rows_lead_tiles_trail_and_cover_both_streams() {
        let units = order_units(10, 30);
        assert_eq!(units.len(), 40);
        // The dependency-bearing row chain owns the head of the ticket
        // stream; independent tiles trail, each stream in index order.
        let expect: Vec<PreUnit> = (0..30)
            .map(PreUnit::Row)
            .chain((0..10).map(PreUnit::Tile))
            .collect();
        assert_eq!(units, expect);
    }

    #[test]
    fn trace_records_one_ticket_event_per_commit() {
        let a = tridiag_spd(64);
        let topts = TicketedOptions {
            workers: 2,
            faults: None,
            trace: TraceConfig::with_capacity(4096),
        };
        let (tiled, fac, outcome) = preprocess_fused_ticketed(
            &a,
            16,
            &ClassifyOptions::default(),
            FactorKind::Ilu0,
            &topts,
        );
        assert!(fac.is_ok());
        let trace = outcome.trace.expect("trace enabled");
        let tickets = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Ticket)
            .count();
        assert_eq!(tickets, tiled.tile_count() + a.nrows);
    }
}
