//! Adaptive re-tiering glue: building a [`PrecisionController`] from a
//! tiled matrix and packaging its decisions for the trace stream.
//!
//! The controller itself ([`mf_precision::retier`]) is a pure function of
//! the residual trajectory and the tile census — it never reads solver
//! state. This module owns the census: per-tile nonzero counts,
//! classification-time precisions and max-magnitudes (the scaled-FP8
//! exponent input), extracted once at solve start. Every engine —
//! sequential classic/pipelined/PCG and the threaded warps — builds its
//! controller through [`controller_for`], so identical inputs yield
//! bitwise-identical plans everywhere, which is what the cross-engine
//! differential harness (`tests/adaptive_parity.rs`) pins.

use mf_precision::{AdaptiveConfig, PrecisionController, RetierDecision, TileInfo};
use mf_sparse::TiledMatrix;

/// Extracts the per-tile census the controller classifies against:
/// nonzero count (bytes-moved projection), classification-time precision
/// (the promotion ceiling) and max |value| (scaled-FP8 exponent choice).
pub fn tile_infos(m: &TiledMatrix) -> Vec<TileInfo> {
    (0..m.tile_count())
        .map(|i| {
            let vals = m.decode_tile_values(i);
            let max_abs = vals.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
            TileInfo {
                nnz: vals.len(),
                initial: m.tile_prec[i],
                max_abs,
            }
        })
        .collect()
}

/// Builds the controller for one solve of `m`. Pure: same matrix + same
/// config ⇒ same controller state machine, on any engine.
pub fn controller_for(m: &TiledMatrix, cfg: AdaptiveConfig) -> PrecisionController {
    PrecisionController::new(cfg, tile_infos(m))
}

/// Packs a decision into the two payload words of an
/// [`mf_trace::EventKind::Retier`] event: `a = cap_code << 32 | actions`,
/// `b = iteration`.
pub fn retier_trace_payload(d: &RetierDecision) -> (u64, u64) {
    (
        ((d.cap.code() as u64) << 32) | d.actions.len() as u64,
        d.iteration as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_precision::{ClassifyOptions, TierCap};
    use mf_sparse::Coo;

    fn tiny_tiled(n: usize) -> TiledMatrix {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 4.0);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
            }
        }
        TiledMatrix::from_csr_with(&a.to_csr(), 4, &ClassifyOptions::default())
    }

    #[test]
    fn census_matches_matrix() {
        let tiled = tiny_tiled(36);
        let infos = tile_infos(&tiled);
        assert_eq!(infos.len(), tiled.tile_count());
        let total: usize = infos.iter().map(|t| t.nnz).sum();
        assert_eq!(total, tiled.nnz());
        for (i, t) in infos.iter().enumerate() {
            assert_eq!(t.initial, tiled.tile_prec[i]);
            assert!(t.max_abs > 0.0);
        }
    }

    #[test]
    fn controllers_are_replicable() {
        let tiled = tiny_tiled(25);
        let mut a = controller_for(&tiled, AdaptiveConfig::default());
        let mut b = controller_for(&tiled, AdaptiveConfig::default());
        let traj = [(8usize, 5e-1), (16, 3e-2), (24, 8e-4), (32, 5e-7)];
        for &(it, rr) in &traj {
            let da = a.observe(it, rr, 1e-10);
            let db = b.observe(it, rr, 1e-10);
            assert_eq!(da, db, "replicated controllers diverged at iter {it}");
        }
        assert_eq!(a.tiers(), b.tiers());
    }

    #[test]
    fn trace_payload_packs_cap_and_actions() {
        let d = RetierDecision {
            iteration: 42,
            decade: -3,
            cap: TierCap::Half,
            actions: vec![],
        };
        let (a, b) = retier_trace_payload(&d);
        assert_eq!(a >> 32, TierCap::Half.code() as u64);
        assert_eq!(a & 0xffff_ffff, 0);
        assert_eq!(b, 42);
    }
}
