//! Solver configuration.

use mf_precision::ClassifyOptions;
use mf_trace::TraceConfig;
use std::time::Duration;

/// Default watchdog deadline for the threaded single-kernel engines — far
/// above any healthy solve in this repo's size class, but finite, so a
/// wedged barrier turns into a structured failure instead of an infinite
/// spin. This is the *wall-clock* policy's default; the progress
/// heartbeat's is [`DEFAULT_HEARTBEAT`].
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(30);

/// Default interval of the progress-heartbeat watchdog: the solve only
/// fails as `Wedged` when **no** warp has produced a progress event for
/// this long. Unlike [`DEFAULT_WATCHDOG`] it does not bound total solve
/// time, so slow-but-healthy solves on huge systems never trip it; 10 s of
/// *zero* progress, by contrast, only happens to a genuinely wedged
/// dependency chain.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_secs(10);

/// How the threaded single-kernel engines detect a wedged solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WatchdogPolicy {
    /// No watchdog at all (the paper's idealized deadlock-free
    /// assumption). A truly wedged dependency chain will spin forever.
    Disabled,
    /// Absolute deadline measured from solve start (the PR 2 behavior):
    /// simple, but trips spuriously on slow-but-healthy solves.
    WallClock(Duration),
    /// Progress heartbeat: fires only when *no* warp has advanced for the
    /// given interval ([`mf_gpu::Heartbeat`]). The default.
    Heartbeat(Duration),
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy::Heartbeat(DEFAULT_HEARTBEAT)
    }
}

impl WatchdogPolicy {
    /// Adapter for the legacy `Option<Duration>` wall-clock API
    /// (`run_*_threaded_watchdog`): `None` disables the watchdog.
    pub fn from_wallclock(deadline: Option<Duration>) -> WatchdogPolicy {
        match deadline {
            Some(d) => WatchdogPolicy::WallClock(d),
            None => WatchdogPolicy::Disabled,
        }
    }
}

/// How many *consecutive* breakdown restarts a convergence-mode solve
/// tolerates before declaring itself stalled. A breakdown restart replaces
/// the search direction with the current residual without touching `x` or
/// `r`; once that restart itself breaks down again the state is (up to
/// dynamic-precision side effects) a fixed point, so a short budget only
/// truncates provably futile work. Fixed-iteration benchmark runs are
/// exempt — they intentionally keep iterating past exact convergence,
/// where restarts are routine.
pub const MAX_CONSECUTIVE_RESTARTS: usize = 8;

/// Pipelined-recurrence selection for the CG family. The pipelined
/// (Ghysels–Vanroose) variants trade a modest, characterized rounding
/// drift for a collapsed synchronization schedule — one global reduction
/// per iteration instead of two, and 1–2 barrier epochs per iteration in
/// the threaded engines instead of ~4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineMode {
    /// Let the cost model decide: pipelined when the predicted per-
    /// iteration sync saving beats the extra fused-update traffic.
    Auto,
    /// Always the classic (two-reduction) recurrence.
    Classic,
    /// Always the pipelined recurrence.
    Pipelined,
}

/// Execution-mode selection (§III-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMode {
    /// Decide per matrix: single kernel when the tiles fit on-chip and the
    /// nonzero count is below the fallback threshold (the paper's policy).
    Auto,
    /// Force the single-kernel scheme.
    SingleKernel,
    /// Force the classic multi-kernel path.
    MultiKernel,
}

/// Host-side parallelism policy for the exact-numerics kernels.
///
/// The solver cores run the mixed-precision SpMV either serially or striped
/// over tile rows ([`mf_kernels::spmv_mixed_par`]); the two paths are
/// bitwise-identical, so this knob trades wall-clock for thread occupancy
/// without perturbing any result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostParallelism {
    /// Parallelize when the matrix is large enough to amortize the thread
    /// spawns (`nnz ≥` [`AUTO_PAR_NNZ`], the SpMV analogue of
    /// `blas1::PAR_THRESHOLD`), using all available cores.
    Auto,
    /// Always run the serial kernels.
    Serial,
    /// Always use exactly this many worker threads (clamped to ≥ 1).
    Threads(usize),
}

/// `HostParallelism::Auto` switches to the striped SpMV at this stored-
/// nonzero count. Below it a solve iteration is memory-latency dominated
/// and thread spawn/join overhead exceeds the win.
pub const AUTO_PAR_NNZ: usize = 65_536;

impl HostParallelism {
    /// Resolves the policy to a concrete worker count for a matrix with
    /// `nnz` stored nonzeros. Returns 1 when the serial path should run.
    pub fn threads_for(self, nnz: usize) -> usize {
        match self {
            HostParallelism::Serial => 1,
            HostParallelism::Threads(n) => n.max(1),
            HostParallelism::Auto => {
                if nnz >= AUTO_PAR_NNZ {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                } else {
                    1
                }
            }
        }
    }
}

/// Configuration of a Mille-feuille solve.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Relative-residual convergence threshold ε (paper §IV-A: 1e-10).
    pub tolerance: f64,
    /// Maximum iterations (paper §IV-A: 1000).
    pub max_iter: usize,
    /// Run exactly this many iterations, ignoring convergence — the paper's
    /// performance figures (Figs. 8–10) time 100 fixed iterations.
    pub fixed_iterations: Option<usize>,
    /// Tile edge length (paper: 16).
    pub tile_size: usize,
    /// Store tiles in classified mixed precision (Finding 1). When `false`
    /// every tile is FP64 (the ablation baseline of Fig. 11).
    pub mixed_precision: bool,
    /// Force every tile to one uniform storage precision, overriding both
    /// `mixed_precision` and classification (the matrix-grained storage
    /// alternative of §II-A; used by the granularity ablation). Values are
    /// quantized accordingly — choose the precision that is lossless for
    /// the whole matrix to compare fairly.
    pub uniform_precision: Option<mf_precision::Precision>,
    /// Enable the partial-convergence strategy: per-iteration `vis_flag`
    /// retrieval, dynamic on-chip lowering and tile bypass (Finding 3).
    pub partial_convergence: bool,
    /// Safety factor on the partial-convergence threshold ladder. The
    /// paper's ladder is `ε·10⁻³ … ε` (factor 1.0); the default 0.1 shifts
    /// it one decade down, which keeps stiff systems from stalling just
    /// above the tolerance while retaining almost all of the bypass volume
    /// on well-behaved systems (see EXPERIMENTS.md).
    pub partial_safety: f64,
    /// Kernel mode policy.
    pub kernel_mode: KernelMode,
    /// Pipelined-recurrence policy for CG dispatched through
    /// [`crate::MilleFeuille::solve_auto`]. Explicit entry points
    /// (`solve_cg`, `solve_cg_pipelined`, …) ignore this and run what
    /// their name says.
    pub pipeline: PipelineMode,
    /// Classification options for the initial tile precisions.
    pub classify: ClassifyOptions,
    /// Leaf size of the recursive-block SpTRSV (preconditioned solvers).
    pub trsv_leaf: usize,
    /// Record the relative residual after every iteration (Fig. 12).
    pub trace_residuals: bool,
    /// Record the |p| range histogram after every iteration (Fig. 4) and
    /// the per-iteration bypass/precision statistics.
    pub trace_partial: bool,
    /// If set, record per-iteration relative error `‖x−x*‖₂/‖x*‖₂` against
    /// this reference solution (Fig. 12's y-axis).
    pub reference_solution: Option<Vec<f64>>,
    /// Host-side kernel parallelism (serial vs tile-row-striped SpMV).
    /// Both paths are bitwise-identical; see [`HostParallelism`].
    pub host_parallelism: HostParallelism,
    /// Wedge detection for the threaded single-kernel engines
    /// ([`crate::threaded`]): when the policy fires, the solve is poisoned
    /// and returns a [`crate::report::SolveFailure::Wedged`] failure
    /// instead of hanging. The default is the progress heartbeat
    /// ([`DEFAULT_HEARTBEAT`]): it fires only when *no* warp advances for
    /// the interval, so slow-but-healthy solves never trip it. The PR 2
    /// absolute deadline survives as [`WatchdogPolicy::WallClock`].
    pub watchdog: WatchdogPolicy,
    /// When [`crate::MilleFeuille::solve_auto`]'s structure heuristic picks
    /// CG but the solve aborts on curvature breakdowns (the matrix looked
    /// SPD and was not), re-dispatch the system to BiCGSTAB instead of
    /// surfacing the failed CG report. The handoff is recorded as a
    /// [`crate::report::RecoveryAction::SwitchedSolver`] breakdown event.
    pub auto_switch_on_breakdown: bool,
    /// Structured event tracing ([`mf_trace`]): off by default (every
    /// event site is one `Option` branch). When enabled, engines record
    /// iteration/barrier/row-wait/precision/bypass/breakdown/fault events
    /// into per-warp ring buffers, merged deterministically into
    /// `SolveReport::trace` / `ThreadedReport::trace` at join time.
    pub trace: TraceConfig,
    /// Adaptive precision controller v2 (residual-driven tile re-tiering,
    /// including scaled FP8): `Some(cfg)` arms a
    /// [`mf_precision::PrecisionController`] that observes the relative
    /// residual at every convergence check and emits deterministic re-tier
    /// plans applied at barrier-aligned epochs, each followed by a true-
    /// residual refresh. `None` (the default) keeps the static
    /// classification of Finding 1. Mutually exclusive with
    /// `partial_convergence` — the facade forces partial convergence off
    /// when adaptive is armed, because the one-way on-chip lowering would
    /// fight the controller's plans.
    pub adaptive: Option<mf_precision::AdaptiveConfig>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            tolerance: 1e-10,
            max_iter: 1000,
            fixed_iterations: None,
            tile_size: mf_sparse::DEFAULT_TILE_SIZE,
            mixed_precision: true,
            uniform_precision: None,
            partial_convergence: true,
            partial_safety: 0.1,
            kernel_mode: KernelMode::Auto,
            pipeline: PipelineMode::Auto,
            classify: ClassifyOptions::default(),
            trsv_leaf: mf_kernels::sptrsv::DEFAULT_TRSV_LEAF,
            trace_residuals: false,
            trace_partial: false,
            reference_solution: None,
            host_parallelism: HostParallelism::Auto,
            watchdog: WatchdogPolicy::default(),
            auto_switch_on_breakdown: true,
            trace: TraceConfig::default(),
            adaptive: None,
        }
    }
}

impl SolverConfig {
    /// The paper's benchmark configuration: 100 fixed iterations.
    pub fn benchmark_100_iters() -> Self {
        SolverConfig {
            fixed_iterations: Some(100),
            ..SolverConfig::default()
        }
    }

    /// A plain FP64 configuration (mixed precision and the partial-
    /// convergence strategy disabled) — the "only FP64" bar of Fig. 11.
    pub fn fp64_only() -> Self {
        SolverConfig {
            mixed_precision: false,
            partial_convergence: false,
            ..SolverConfig::default()
        }
    }

    /// Convergence-study configuration (residual + error traces on).
    pub fn convergence_study() -> Self {
        SolverConfig {
            trace_residuals: true,
            trace_partial: true,
            ..SolverConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SolverConfig::default();
        assert_eq!(c.tolerance, 1e-10);
        assert_eq!(c.max_iter, 1000);
        assert_eq!(c.tile_size, 16);
        assert!(c.mixed_precision);
        assert!(c.partial_convergence);
        assert_eq!(c.kernel_mode, KernelMode::Auto);
        assert_eq!(c.pipeline, PipelineMode::Auto);
        assert!(c.fixed_iterations.is_none());
        assert_eq!(c.host_parallelism, HostParallelism::Auto);
        assert_eq!(
            c.watchdog,
            WatchdogPolicy::Heartbeat(DEFAULT_HEARTBEAT),
            "watchdog defaults to the progress heartbeat"
        );
        assert!(c.auto_switch_on_breakdown, "auto re-dispatch defaults on");
        assert!(!c.trace.enabled, "event tracing defaults off");
        assert!(c.adaptive.is_none(), "adaptive re-tiering defaults off");
    }

    #[test]
    fn watchdog_policy_wallclock_adapter() {
        assert_eq!(
            WatchdogPolicy::from_wallclock(Some(Duration::from_secs(3))),
            WatchdogPolicy::WallClock(Duration::from_secs(3))
        );
        assert_eq!(
            WatchdogPolicy::from_wallclock(None),
            WatchdogPolicy::Disabled
        );
    }

    #[test]
    fn host_parallelism_resolution() {
        assert_eq!(HostParallelism::Serial.threads_for(usize::MAX), 1);
        assert_eq!(HostParallelism::Threads(4).threads_for(10), 4);
        assert_eq!(HostParallelism::Threads(0).threads_for(10), 1);
        // Auto stays serial below the threshold regardless of core count.
        assert_eq!(HostParallelism::Auto.threads_for(AUTO_PAR_NNZ - 1), 1);
        assert!(HostParallelism::Auto.threads_for(AUTO_PAR_NNZ) >= 1);
    }

    #[test]
    fn presets() {
        assert_eq!(
            SolverConfig::benchmark_100_iters().fixed_iterations,
            Some(100)
        );
        let f = SolverConfig::fp64_only();
        assert!(!f.mixed_precision);
        assert!(!f.partial_convergence);
        let s = SolverConfig::convergence_study();
        assert!(s.trace_residuals && s.trace_partial);
    }
}
