//! Blocked (multi-right-hand-side) conjugate gradients for the serving
//! layer.
//!
//! [`run_cg_block_ws`] advances `k` independent CG recurrences on the same
//! operator in lockstep, amortizing the dominant cost — the pass over the
//! tiled matrix — across all right-hand sides with one
//! [`mf_kernels::spmm_mixed`] call per iteration instead of `k` SpMVs.
//! Every scalar (α, β, ρ) and every vector update is per-column, so each
//! column executes *exactly* the floating-point sequence of
//! [`crate::cg::run_cg_ws`] with the partial-convergence strategy disabled
//! — a batched solve is bitwise identical to the `k` independent solves it
//! replaces (pinned by `tests/block_parity.rs`).
//!
//! Columns leave the lockstep individually:
//!
//! * **converged** — relres below tolerance: the column freezes (its `x`
//!   is final, the SpMM skips it) while the rest keep iterating;
//! * **detached** — the column hit a breakdown (non-SPD curvature,
//!   non-finite scalar) or its residual diverged from the batch by more
//!   than [`BlockOptions::spread_detach_ratio`]: the blocked core does not
//!   replicate the single-RHS restart machinery, it hands the column back
//!   for an individual [`crate::cg::run_cg_ws`] solve (which the serving
//!   layer performs automatically — and which is itself bitwise what a
//!   never-batched request would have run).

use crate::config::SolverConfig;
use crate::coster::Coster;
use mf_gpu::Timeline;
use mf_kernels::spmm::{axpy_block, col, col_mut, dot_block};
use mf_kernels::{blas1, spmm_mixed, MixedSpmvStats, SharedTiles, VisFlag};
use mf_sparse::TiledMatrix;

/// Tuning knobs of the blocked core that have no single-RHS counterpart.
#[derive(Clone, Copy, Debug)]
pub struct BlockOptions {
    /// Detach a column whose relative residual exceeds the best *active*
    /// column's by this factor (the batch would otherwise burn shared SpMM
    /// passes pacing a straggler). `f64::INFINITY` disables spread detach.
    pub spread_detach_ratio: f64,
    /// Grace period: spread detach only fires after this many iterations,
    /// so transient early-iteration spread doesn't eject columns that
    /// would have tracked the batch fine.
    pub spread_detach_after: usize,
}

impl Default for BlockOptions {
    fn default() -> BlockOptions {
        BlockOptions {
            spread_detach_ratio: 1e8,
            spread_detach_after: 32,
        }
    }
}

/// Why a column left the lockstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnStatus {
    /// Converged by the relative-residual criterion; `x` is final.
    Converged,
    /// Ran to the iteration cap without converging; `x` is the last
    /// iterate.
    Exhausted,
    /// Left the batch (breakdown or residual spread); `x` is meaningless —
    /// re-solve this right-hand side individually.
    Detached,
}

/// Per-column outcome of a blocked solve.
#[derive(Clone, Debug)]
pub struct ColumnResult {
    /// Final iterate (meaningful unless [`ColumnStatus::Detached`]).
    pub x: Vec<f64>,
    /// Iterations this column executed before freezing.
    pub iterations: usize,
    /// Terminal state.
    pub status: ColumnStatus,
    /// Final relative residual from the recurrence.
    pub final_relres: f64,
}

/// Output of [`run_cg_block_ws`].
#[derive(Clone, Debug)]
pub struct BlockResult {
    /// One entry per right-hand side, in input order.
    pub columns: Vec<ColumnResult>,
    /// Shared SpMM passes executed (the amortized iteration count).
    pub spmm_passes: usize,
    /// Modeled time of the batched loop.
    pub timeline: Timeline,
    /// Accumulated matrix-pass statistics (one pass per iteration, however
    /// many columns were active).
    pub spmv_stats: MixedSpmvStats,
}

impl BlockResult {
    /// Indices of columns that must be re-solved individually.
    pub fn detached(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.status == ColumnStatus::Detached)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Reusable buffers of the blocked core — the multi-vector analogue of
/// [`crate::workspace::SolverWorkspace`]. `ensure` zero-fills, so reuse
/// across batches (and across different `n`/`k`) can never leak state.
#[derive(Debug, Default)]
pub struct BlockWorkspace {
    x: Vec<f64>,
    r: Vec<f64>,
    p: Vec<f64>,
    u: Vec<f64>,
    rr: Vec<f64>,
    scalar: Vec<f64>,
    norm_b: Vec<f64>,
    relres: Vec<f64>,
    active: Vec<bool>,
}

impl BlockWorkspace {
    pub fn new() -> BlockWorkspace {
        BlockWorkspace::default()
    }

    fn ensure(&mut self, n: usize, k: usize) {
        for v in [&mut self.x, &mut self.r, &mut self.p, &mut self.u] {
            v.clear();
            v.resize(n * k, 0.0);
        }
        for v in [
            &mut self.rr,
            &mut self.scalar,
            &mut self.norm_b,
            &mut self.relres,
        ] {
            v.clear();
            v.resize(k, 0.0);
        }
        self.active.clear();
        self.active.resize(k, false);
    }
}

/// Blocked CG: solves `A · X[:, j] = B[:, j]` for `k` right-hand sides in
/// lockstep. `b` is column-major `n × k` ([`mf_kernels::spmm::col`]
/// layout). Runs with the partial-convergence strategy disabled
/// (all-`Keep` flags) — the per-column parity contract requires the shared
/// tile state to evolve identically to a single-RHS solve with
/// `partial_convergence: false`, which an all-`Keep` run guarantees (no
/// dynamic lowering ever fires).
///
/// [`SolverConfig::adaptive`] is ignored here for the same reason, only
/// more so: a re-tier plan is a function of one residual trajectory, and a
/// batch has `k` of them — any plan the lockstep applied to the *shared*
/// tile state would make each column's arithmetic depend on its
/// batch-mates, breaking the bitwise-independence contract. The serving
/// layer therefore never routes an adaptive config through the blocked
/// core: mf-serve's `solve_batch` falls back to `k` independent
/// single-RHS adaptive solves (each with its own [`SharedTiles`] and its
/// own controller), which is the only grouping-invariant semantics.
#[allow(clippy::too_many_arguments)]
pub fn run_cg_block_ws(
    m: &TiledMatrix,
    shared: &mut SharedTiles,
    b: &[f64],
    k: usize,
    cfg: &SolverConfig,
    opts: &BlockOptions,
    coster: &Coster,
    ws: &mut BlockWorkspace,
) -> BlockResult {
    let n = m.nrows;
    assert_eq!(m.nrows, m.ncols, "CG needs a square (SPD) matrix");
    assert!(k > 0, "empty batch");
    assert_eq!(b.len(), n * k, "b must be n × k column-major");

    let mut tl = Timeline::new();
    coster.solve_start(&mut tl);

    let flags: Vec<VisFlag> = vec![VisFlag::Keep; m.tile_cols.max(1)];
    ws.ensure(n, k);
    let mut columns: Vec<ColumnResult> = (0..k)
        .map(|_| ColumnResult {
            x: Vec::new(),
            iterations: 0,
            status: ColumnStatus::Exhausted,
            final_relres: f64::INFINITY,
        })
        .collect();

    // x0 = 0 ⇒ r0 = b, p0 = r0, per column; ‖b‖ = 0 columns are solved
    // exactly by x = 0 before the loop, matching the single-RHS early
    // return.
    for (j, column) in columns.iter_mut().enumerate() {
        let bj = col(b, n, j);
        let nb = blas1::norm2(bj);
        ws.norm_b[j] = nb;
        if nb == 0.0 {
            column.status = ColumnStatus::Converged;
            column.final_relres = 0.0;
            continue;
        }
        ws.active[j] = true;
        col_mut(&mut ws.r, n, j).copy_from_slice(bj);
        col_mut(&mut ws.p, n, j).copy_from_slice(bj);
        ws.rr[j] = blas1::dot(bj, bj);
    }

    let mut result = BlockResult {
        columns: Vec::new(),
        spmm_passes: 0,
        timeline: Timeline::new(),
        spmv_stats: MixedSpmvStats::default(),
    };

    for _ in 0..cfg.max_iter {
        if !ws.active.iter().any(|&a| a) {
            break;
        }
        // ---- Step A (shared): one SpMM pass U[:, j] = A · P[:, j] over
        // every still-active column.
        let stats = spmm_mixed(m, shared, &flags, &ws.p, &mut ws.u, &ws.active);
        result.spmv_stats.merge(&stats);
        result.spmm_passes += 1;
        coster.spmv(&mut tl, m, shared, &flags, &stats);

        // ---- Step B (per column): α = (r,r)/(µ,p); detach on breakdown.
        dot_block(&ws.u, &ws.p, n, &ws.active, &mut ws.scalar);
        for (j, column) in columns.iter_mut().enumerate() {
            if !ws.active[j] {
                continue;
            }
            coster.dot(&mut tl, true);
            let py = ws.scalar[j];
            let alpha = ws.rr[j] / py;
            if !alpha.is_finite() || py <= 0.0 {
                ws.active[j] = false;
                column.status = ColumnStatus::Detached;
                continue;
            }
            ws.scalar[j] = alpha;
        }

        // ---- Step C (per column): x += αp; r −= αµ; ρ' = (r,r).
        axpy_block(&ws.scalar, &ws.p, &mut ws.x, n, &ws.active);
        for j in 0..k {
            if ws.active[j] {
                blas1::axpy(-ws.scalar[j], col(&ws.u, n, j), col_mut(&mut ws.r, n, j));
                coster.axpy(&mut tl, 2);
            }
        }
        // ρ' overwrites α in `scalar` — α is fully consumed above.
        dot_block(&ws.r, &ws.r, n, &ws.active, &mut ws.scalar);

        // ---- Step D (per column): β = ρ'/ρ; p = r + βp; convergence.
        let mut best_active = f64::INFINITY;
        for (j, column) in columns.iter_mut().enumerate() {
            if !ws.active[j] {
                continue;
            }
            coster.dot(&mut tl, true);
            let rr_new = ws.scalar[j];
            if !rr_new.is_finite() {
                ws.active[j] = false;
                column.status = ColumnStatus::Detached;
                continue;
            }
            let beta = rr_new / ws.rr[j];
            ws.rr[j] = rr_new;
            blas1::xpay(col(&ws.r, n, j), beta, col_mut(&mut ws.p, n, j));
            coster.axpy(&mut tl, 1);
            column.iterations += 1;
            let relres = rr_new.sqrt() / ws.norm_b[j];
            column.final_relres = relres;
            ws.relres[j] = relres;
            if relres < cfg.tolerance {
                ws.active[j] = false;
                column.status = ColumnStatus::Converged;
            } else {
                best_active = best_active.min(relres);
            }
        }
        coster.iteration_end(&mut tl);

        // ---- Spread detach: a straggler orders of magnitude behind the
        // best active column wastes the batch's shared passes — hand it
        // back for an individual solve.
        if opts.spread_detach_ratio.is_finite() && result.spmm_passes >= opts.spread_detach_after {
            for (j, column) in columns.iter_mut().enumerate() {
                if ws.active[j] && ws.relres[j] > best_active * opts.spread_detach_ratio {
                    ws.active[j] = false;
                    column.status = ColumnStatus::Detached;
                }
            }
        }
    }

    for (j, c) in columns.iter_mut().enumerate() {
        c.x = if c.status == ColumnStatus::Detached {
            Vec::new()
        } else {
            col(&ws.x, n, j).to_vec()
        };
    }
    result.columns = columns;
    result.timeline = tl;
    result
}
