//! Pipelined (Ghysels–Vanroose) CG and PCG — sequential reference cores.
//!
//! The classic CG iteration needs **two** dependent global reductions per
//! iteration (`(p, Ap)` before α, `(r, r)` before β), each a full
//! synchronization epoch on the device. The pipelined recurrence
//! restructures the algorithm so one fused reduction pair per iteration
//! suffices, and that reduction's result is only consumed *after* the next
//! SpMV has been issued — on a GPU the reduction latency hides behind the
//! SpMV (Rupp et al., arXiv:1410.4054; Ghysels & Vanroose; PAPERS.md). The
//! price is two/four extra recurrence-maintained vectors and a modest,
//! *characterized* rounding drift relative to classic CG — asserted against
//! an explicit envelope by `tests/pipelined_parity.rs`, never hidden behind
//! loosened tolerances.
//!
//! Per iteration (CG): one SpMV `q = A·w`, one fused six-vector update
//! ([`blas1::cg_pipelined_update`]), one fused dot pair
//! `(γ', δ') = ((r,r), (w,r))` ([`blas1::dot2`]). The auxiliary vectors
//! maintain `s = A·p`, `z = A·s` and `w = A·r` by recurrence, so no extra
//! SpMVs run. Scalars:
//!
//! ```text
//! β = γ/γ_old            (0 on fresh start/restart)
//! α = γ/(δ − (β/α_old)·γ)  (γ/δ on fresh start/restart)
//! ```
//!
//! PCG adds the preconditioner chain `m = M⁻¹w`, `n = A·m` and maintains
//! `u = M⁻¹r`, `q = M⁻¹s`, `z = A·q` by recurrence — one SpTRSV pair, one
//! SpMV, one fused eight-vector update and one fused reduction (γ, δ plus
//! the residual norm ρ) per iteration.
//!
//! Breakdown semantics mirror the classic cores exactly: a non-positive
//! α-denominator is a curvature breakdown, a non-finite α a numeric one;
//! recovery discards the direction history by flagging a fresh start (β = 0
//! rebuilds `p`, `s`, `z` from the current `r`, `w`, `q` on the next
//! iteration — no extra dots, no extra synchronization), `x` and `r` stay
//! untouched, and [`MAX_CONSECUTIVE_RESTARTS`] restarts in convergence mode
//! abort as `Stalled`.

use crate::cg::{
    current_precision_histogram, finish_host_trace, host_tracer, mixed_spmv, record_spmv_trace,
    rel_error, CoreResult,
};
use crate::config::{SolverConfig, MAX_CONSECUTIVE_RESTARTS};
use crate::coster::{Coster, MultiCoster};
use crate::partial::PartialState;
use crate::precond::charge_factorization;
use crate::report::{BreakdownKind, RecoveryAction, SolveFailure};
use crate::workspace::SolverWorkspace;
use mf_gpu::Timeline;
use mf_kernels::{blas1, Ilu0, SharedTiles};
use mf_sparse::TiledMatrix;

/// Pipelined scalar update: returns `(beta, alpha, denom)` for the current
/// `(γ, δ)` pair. `fresh` selects the steepest-descent start used on
/// iteration 0 and after every breakdown restart. Shared with the threaded
/// engines so the sequential and in-kernel recurrences cannot diverge.
pub(crate) fn pipeline_scalars(
    fresh: bool,
    gamma: f64,
    gamma_old: f64,
    delta: f64,
    alpha_old: f64,
) -> (f64, f64, f64) {
    if fresh {
        (0.0, gamma / delta, delta)
    } else {
        let beta = gamma / gamma_old;
        let denom = delta - (beta / alpha_old) * gamma;
        (beta, gamma / denom, denom)
    }
}

/// Classifies a pipelined scalar breakdown exactly like the classic cores
/// classify `(p, Ap) ≤ 0` vs non-finite α.
pub(crate) fn breakdown_kind(alpha: f64, denom: f64) -> Option<BreakdownKind> {
    if !alpha.is_finite() {
        if denom.is_finite() && denom <= 0.0 {
            Some(BreakdownKind::Curvature)
        } else {
            Some(BreakdownKind::NonFinite)
        }
    } else if denom <= 0.0 {
        Some(BreakdownKind::Curvature)
    } else {
        None
    }
}

/// Pipelined CG on the tiled matrix (fresh workspace).
pub fn run_cg_pipelined(
    m: &TiledMatrix,
    shared: &mut SharedTiles,
    b: &[f64],
    cfg: &SolverConfig,
    coster: &Coster,
    partial: &mut PartialState,
) -> CoreResult {
    run_cg_pipelined_ws(
        m,
        shared,
        b,
        cfg,
        coster,
        partial,
        &mut SolverWorkspace::new(),
    )
}

/// Workspace-reusing pipelined CG (see [`crate::cg::run_cg_ws`] for the
/// workspace contract). Vector map: `q = A·w` lives in `ws.u`, `s = A·p`
/// in `ws.s`, `z = A·s` in `ws.t`, plus the new `ws.w`.
pub fn run_cg_pipelined_ws(
    m: &TiledMatrix,
    shared: &mut SharedTiles,
    b: &[f64],
    cfg: &SolverConfig,
    coster: &Coster,
    partial: &mut PartialState,
    ws: &mut SolverWorkspace,
) -> CoreResult {
    let n = m.nrows;
    assert_eq!(b.len(), n);
    assert_eq!(m.nrows, m.ncols, "CG needs a square (SPD) matrix");

    let mut tl = Timeline::new();
    coster.solve_start(&mut tl);

    let mut result = CoreResult::empty();
    let tracer = host_tracer(cfg);

    let norm_b = blas1::norm2(b);
    if norm_b == 0.0 {
        result.x = vec![0.0; n];
        result.converged = true;
        result.final_relres = 0.0;
        result.timeline = tl;
        finish_host_trace(tracer, &mut result);
        return result;
    }

    ws.ensure(n);
    let SolverWorkspace {
        x,
        r,
        p,
        u: q,
        s,
        t: z,
        w,
        ..
    } = ws;
    r.copy_from_slice(b);
    let threads = cfg.host_parallelism.threads_for(m.nnz());

    // Init (x0 = 0): r = b, w = A·r, γ = (r,r), δ = (w,r). The fused init
    // SpMV is the pipeline's one-time extra cost over classic CG.
    partial.update(r);
    if partial.enabled() {
        coster.visflag_scan(&mut tl);
    }
    let stats = mixed_spmv(m, shared, &partial.vis_flags, r, w, threads);
    result.spmv_stats.merge(&stats);
    if let Some(t) = &tracer {
        t.stamp(0, 0);
        record_spmv_trace(t, &stats, shared);
    }
    coster.spmv_unsync(&mut tl, m, shared, &partial.vis_flags, &stats);
    let (mut gamma, mut delta) = blas1::dot2(r, w, r);
    coster.dot_unsync(&mut tl, true);
    coster.barrier(&mut tl); // the init epoch publishing w, γ₀, δ₀

    // Adaptive re-tiering: the refresh recomputes r = b − A·x and the
    // recurrence seeds w = A·r, (γ, δ) from the re-tiered operator and
    // flags a fresh (steepest-descent) start — the pipelined analogue of
    // the classic core's r/p rebuild.
    let mut ctrl = cfg
        .adaptive
        .map(|ac| crate::adaptive::controller_for(m, ac));
    let retier_keep = ctrl.as_ref().map(|_| crate::cg::keep_flags(m.tile_cols));

    let iters = cfg.fixed_iterations.unwrap_or(cfg.max_iter);
    let check_convergence = cfg.fixed_iterations.is_none();
    let mut consecutive_restarts = 0usize;
    let mut gamma_old = 1.0f64;
    let mut alpha_old = 1.0f64;
    let mut fresh = true;

    for j in 0..iters {
        if let Some(t) = &tracer {
            t.stamp(j as i64, 0);
        }
        // ---- SpMV q = A·w. On the device this overlaps the reduction that
        // produced (γ, δ); sequentially it simply runs first.
        partial.update(w);
        if partial.enabled() {
            coster.visflag_scan(&mut tl);
        }
        let stats = mixed_spmv(m, shared, &partial.vis_flags, w, q, threads);
        result.spmv_stats.merge(&stats);
        if let Some(t) = &tracer {
            record_spmv_trace(t, &stats, shared);
        }
        coster.spmv_unsync(&mut tl, m, shared, &partial.vis_flags, &stats);

        // ---- Scalars from the previous reduction.
        let (beta, alpha, denom) = pipeline_scalars(fresh, gamma, gamma_old, delta, alpha_old);
        if let Some(kind) = breakdown_kind(alpha, denom) {
            // Breakdown restart: discard the direction history (β = 0 next
            // iteration rebuilds p, s, z from r, w, q) without touching x or
            // r — the same fixed-point-compatible semantics as classic CG.
            fresh = true;
            coster.barrier(&mut tl); // epochs stay aligned with the normal path
            let iter_idx = result.iterations;
            result.iterations += 1;
            consecutive_restarts += 1;
            let relres = gamma.sqrt() / norm_b;
            if relres.is_finite() {
                result.final_relres = relres;
            }
            if cfg.trace_residuals {
                result.residual_history.push(relres);
            }
            if let Some(reference) = &cfg.reference_solution {
                result.error_history.push(rel_error(x, reference));
            }
            if cfg.trace_partial {
                result.p_range_history.push(partial.p_range_histogram(w));
                result.bypass_history.push(stats.tiles_bypassed);
                result
                    .precision_history
                    .push(current_precision_histogram(shared));
            }
            let abort_nonfinite = !gamma.is_finite();
            let abort_stalled =
                check_convergence && consecutive_restarts >= MAX_CONSECUTIVE_RESTARTS;
            let action = if abort_nonfinite || abort_stalled {
                RecoveryAction::Aborted
            } else {
                RecoveryAction::Restarted
            };
            result.record_breakdown(iter_idx, kind, action);
            if abort_nonfinite {
                result.failure = Some(SolveFailure::NonFinite {
                    iteration: iter_idx,
                });
                break;
            }
            if abort_stalled {
                result.failure = Some(SolveFailure::Stalled {
                    iteration: iter_idx,
                });
                break;
            }
            continue;
        }
        consecutive_restarts = 0;

        // ---- Fused six-vector update (one pass; see blas1).
        blas1::cg_pipelined_update(alpha, beta, q, p, s, z, x, r, w);
        coster.axpy_unsync(&mut tl, 6);

        // ---- Fused dot pair for the *next* iteration's scalars, then THE
        // one barrier epoch of the iteration (the schedule's whole point).
        let (gamma_new, delta_new) = blas1::dot2(r, w, r);
        coster.dot_unsync(&mut tl, true);
        coster.barrier(&mut tl);

        gamma_old = gamma;
        alpha_old = alpha;
        gamma = gamma_new;
        delta = delta_new;
        fresh = false;

        result.iterations += 1;
        if !gamma.is_finite() {
            // Poisoned residual recurrence — abort observably, exactly like
            // the classic core's (r,r) check.
            let iter_idx = result.iterations - 1;
            result.record_breakdown(iter_idx, BreakdownKind::NonFinite, RecoveryAction::Aborted);
            result.failure = Some(SolveFailure::NonFinite {
                iteration: iter_idx,
            });
            break;
        }
        let relres = gamma.sqrt() / norm_b;
        result.final_relres = relres;

        if cfg.trace_residuals {
            result.residual_history.push(relres);
        }
        if let Some(reference) = &cfg.reference_solution {
            result.error_history.push(rel_error(x, reference));
        }
        if cfg.trace_partial {
            result.p_range_history.push(partial.p_range_histogram(w));
            result.bypass_history.push(stats.tiles_bypassed);
            result
                .precision_history
                .push(current_precision_histogram(shared));
        }

        if check_convergence && relres < cfg.tolerance {
            result.converged = true;
            break;
        }

        // ---- Adaptive re-tier epoch (after the convergence check):
        // re-tier, then reseed the whole recurrence from the true residual
        // of the re-tiered operator: r = b − A·x (via the q temp), w = A·r,
        // (γ, δ) = ((r,r), (w,r)), fresh start.
        if let Some(c) = ctrl.as_mut() {
            if let Some(d) = c.observe(result.iterations, relres, cfg.tolerance) {
                let touched: usize = d
                    .actions
                    .iter()
                    .map(|a| {
                        (m.tile_nnz[a.tile as usize + 1] - m.tile_nnz[a.tile as usize]) as usize
                    })
                    .sum();
                shared.apply_retier(m, &d.actions);
                coster.retier(&mut tl, touched);
                let keepf = retier_keep.as_ref().expect("armed with controller");
                let xstats = mixed_spmv(m, shared, keepf, x, q, threads);
                result.spmv_stats.merge(&xstats);
                coster.spmv_unsync(&mut tl, m, shared, keepf, &xstats);
                for i in 0..n {
                    r[i] = b[i] - q[i];
                }
                coster.axpy_unsync(&mut tl, 1);
                let wstats = mixed_spmv(m, shared, keepf, r, w, threads);
                result.spmv_stats.merge(&wstats);
                coster.spmv_unsync(&mut tl, m, shared, keepf, &wstats);
                let (g, dl) = blas1::dot2(r, w, r);
                gamma = g;
                delta = dl;
                coster.dot_unsync(&mut tl, true);
                coster.barrier(&mut tl);
                fresh = true;
                if let Some(t) = &tracer {
                    let (pa, pb) = crate::adaptive::retier_trace_payload(&d);
                    t.record(mf_trace::EventKind::Retier, pa, pb);
                }
                result.retier_trail.push(d);
            }
        }
    }

    finish_host_trace(tracer, &mut result);
    result.x = x.clone();
    result.timeline = tl;
    result
}

/// Pipelined ILU(0)-preconditioned CG (fresh workspace).
pub fn run_pcg_pipelined(
    m: &TiledMatrix,
    shared: &mut SharedTiles,
    ilu: &Ilu0,
    b: &[f64],
    cfg: &SolverConfig,
    mc: &MultiCoster,
    partial: &mut PartialState,
) -> CoreResult {
    run_pcg_pipelined_ws(
        m,
        shared,
        ilu,
        b,
        cfg,
        mc,
        partial,
        &mut SolverWorkspace::new(),
    )
}

/// Workspace-reusing pipelined PCG. Vector map: `u = M⁻¹r` lives in
/// `ws.z`, `z = A·q` in `ws.t`, the SpTRSV intermediate in `ws.y`, plus
/// the new `ws.w` (`A·u`), `ws.m` (`M⁻¹w`), `ws.n` (`A·m`) and `ws.q`
/// (`M⁻¹s`). Like [`crate::precond::run_pcg_ws`] it charges through a
/// [`MultiCoster`]; the threaded single-kernel engine is the in-kernel
/// variant.
#[allow(clippy::too_many_arguments)]
pub fn run_pcg_pipelined_ws(
    m: &TiledMatrix,
    shared: &mut SharedTiles,
    ilu: &Ilu0,
    b: &[f64],
    cfg: &SolverConfig,
    mc: &MultiCoster,
    partial: &mut PartialState,
    ws: &mut SolverWorkspace,
) -> CoreResult {
    let n = m.nrows;
    assert_eq!(b.len(), n);

    let mut tl = Timeline::new();
    charge_factorization(mc, &mut tl, ilu.nnz(), n);
    let lu_levels = mf_kernels::level_schedule(&ilu.l, true).num_levels
        + mf_kernels::level_schedule(&ilu.u, false).num_levels;

    let mut result = CoreResult::empty();

    let norm_b = blas1::norm2(b);
    if norm_b == 0.0 {
        result.x = vec![0.0; n];
        result.converged = true;
        result.final_relres = 0.0;
        result.timeline = tl;
        return result;
    }

    ws.ensure(n);
    let SolverWorkspace {
        x,
        r,
        p,
        s,
        t: z,
        z: u,
        y,
        w,
        m: mvec,
        n: nvec,
        q,
        ..
    } = ws;
    r.copy_from_slice(b);
    let threads = cfg.host_parallelism.threads_for(m.nnz());

    // Init (x0 = 0): r = b, u = M⁻¹r, w = A·u, γ = (r,u), δ = (w,u),
    // ρ = (r,r) = ‖b‖².
    let fstats = ilu.apply_recursive_into(r, cfg.trsv_leaf, y, u);
    mc.sptrsv_adaptive(&mut tl, &fstats, ilu.nnz(), lu_levels);
    partial.update(u);
    let stats = mixed_spmv(m, shared, &partial.vis_flags, u, w, threads);
    result.spmv_stats.merge(&stats);
    mc.spmv(&mut tl, m, &stats);
    let (mut gamma, mut delta) = blas1::dot2(r, w, u);
    mc.dot(&mut tl, true);
    let mut rho = norm_b * norm_b;

    let iters = cfg.fixed_iterations.unwrap_or(cfg.max_iter);
    let check_convergence = cfg.fixed_iterations.is_none();
    let mut consecutive_restarts = 0usize;
    let mut gamma_old = 1.0f64;
    let mut alpha_old = 1.0f64;
    let mut fresh = true;

    for _j in 0..iters {
        // ---- Preconditioner chain m = M⁻¹w, then SpMV n = A·m. On the
        // device these overlap the reduction that produced (γ, δ, ρ).
        let mstats = ilu.apply_recursive_into(w, cfg.trsv_leaf, y, mvec);
        mc.sptrsv_adaptive(&mut tl, &mstats, ilu.nnz(), lu_levels);
        partial.update(mvec);
        let stats = mixed_spmv(m, shared, &partial.vis_flags, mvec, nvec, threads);
        result.spmv_stats.merge(&stats);
        mc.spmv(&mut tl, m, &stats);

        // ---- Scalars from the previous reduction.
        let (beta, alpha, denom) = pipeline_scalars(fresh, gamma, gamma_old, delta, alpha_old);
        if let Some(kind) = breakdown_kind(alpha, denom) {
            // Breakdown restart: same flag-only recovery as pipelined CG
            // (β = 0 rebuilds p, s, q, z from u, w, m, n next iteration).
            fresh = true;
            let iter_idx = result.iterations;
            result.iterations += 1;
            consecutive_restarts += 1;
            let relres = rho.sqrt() / norm_b;
            if relres.is_finite() {
                result.final_relres = relres;
            }
            if cfg.trace_residuals {
                result.residual_history.push(relres);
            }
            let abort_nonfinite = !gamma.is_finite();
            let abort_stalled =
                check_convergence && consecutive_restarts >= MAX_CONSECUTIVE_RESTARTS;
            let action = if abort_nonfinite || abort_stalled {
                RecoveryAction::Aborted
            } else {
                RecoveryAction::Restarted
            };
            result.record_breakdown(iter_idx, kind, action);
            if abort_nonfinite {
                result.failure = Some(SolveFailure::NonFinite {
                    iteration: iter_idx,
                });
                break;
            }
            if abort_stalled {
                result.failure = Some(SolveFailure::Stalled {
                    iteration: iter_idx,
                });
                break;
            }
            continue;
        }
        consecutive_restarts = 0;

        // ---- Fused eight-vector update (one pass; see blas1).
        blas1::pcg_pipelined_update(alpha, beta, mvec, nvec, p, s, q, z, x, r, u, w);
        mc.axpy(&mut tl);
        mc.axpy(&mut tl);

        // ---- Fused reduction for the next iteration: γ' = (r,u),
        // δ' = (w,u), plus the residual norm ρ' = (r,r) the convergence
        // test needs (γ is *not* a norm under preconditioning).
        let (gamma_new, delta_new) = blas1::dot2(r, w, u);
        mc.dot(&mut tl, false);
        let rho_new = blas1::dot(r, r);
        mc.dot(&mut tl, true);

        gamma_old = gamma;
        alpha_old = alpha;
        gamma = gamma_new;
        delta = delta_new;
        rho = rho_new;
        fresh = false;

        result.iterations += 1;
        if !rho.is_finite() {
            let iter_idx = result.iterations - 1;
            result.record_breakdown(iter_idx, BreakdownKind::NonFinite, RecoveryAction::Aborted);
            result.failure = Some(SolveFailure::NonFinite {
                iteration: iter_idx,
            });
            break;
        }
        let relres = rho.sqrt() / norm_b;
        result.final_relres = relres;
        if cfg.trace_residuals {
            result.residual_history.push(relres);
        }
        if check_convergence && relres < cfg.tolerance {
            result.converged = true;
            break;
        }
    }

    result.x = x.clone();
    result.timeline = tl;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{run_cg, run_cg_ws};
    use crate::coster::SingleCoster;
    use mf_gpu::{CostModel, DeviceSpec};
    use mf_kernels::ilu0;
    use mf_precision::ClassifyOptions;
    use mf_sparse::{Coo, Csr};

    fn poisson1d(n: usize) -> Csr {
        let mut a = Coo::new(n, n);
        for i in 0..n {
            a.push(i, i, 4.0);
            if i > 0 {
                a.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                a.push(i, i + 1, -1.0);
            }
        }
        a.to_csr()
    }

    fn setup(
        a: &Csr,
        cfg: &SolverConfig,
    ) -> (TiledMatrix, SharedTiles, Coster, PartialState, Vec<f64>) {
        let m = TiledMatrix::from_csr_with(a, cfg.tile_size, &ClassifyOptions::default());
        let shared = SharedTiles::load(&m);
        let cost = CostModel::new(DeviceSpec::a100());
        let coster = Coster::Single(SingleCoster::new(cost, &m, cfg.tile_size));
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);
        let eps_abs = cfg.tolerance * blas1::norm2(&b);
        let partial =
            PartialState::new(cfg.partial_convergence, m.tile_cols, cfg.tile_size, eps_abs);
        (m, shared, coster, partial, b)
    }

    #[test]
    fn pipelined_cg_converges_on_poisson() {
        let a = poisson1d(200);
        let cfg = SolverConfig::default();
        let (m, mut shared, coster, mut partial, b) = setup(&a, &cfg);
        let res = run_cg_pipelined(&m, &mut shared, &b, &cfg, &coster, &mut partial);
        assert!(res.converged, "relres {}", res.final_relres);
        assert!(res.iterations < 220);
        for v in &res.x {
            assert!((v - 1.0).abs() < 1e-7, "{v}");
        }
    }

    #[test]
    fn pipelined_matches_classic_iteration_count_closely() {
        // The rounding drift of the pipelined recurrence may cost a few
        // iterations but must stay in the same regime.
        let a = poisson1d(300);
        let cfg = SolverConfig::default();
        let (m, mut sh1, coster, mut p1, b) = setup(&a, &cfg);
        let classic = run_cg(&m, &mut sh1, &b, &cfg, &coster, &mut p1);
        let (m2, mut sh2, coster2, mut p2, b2) = setup(&a, &cfg);
        let pipe = run_cg_pipelined(&m2, &mut sh2, &b2, &cfg, &coster2, &mut p2);
        assert!(classic.converged && pipe.converged);
        let (c, p) = (classic.iterations as f64, pipe.iterations as f64);
        assert!(
            (p - c).abs() <= (0.2 * c).max(5.0),
            "classic {c} vs pipelined {p} iterations"
        );
    }

    #[test]
    fn pipelined_fixed_iterations_run_exactly() {
        let a = poisson1d(64);
        let cfg = SolverConfig::benchmark_100_iters();
        let (m, mut shared, coster, mut partial, b) = setup(&a, &cfg);
        let res = run_cg_pipelined(&m, &mut shared, &b, &cfg, &coster, &mut partial);
        assert_eq!(res.iterations, 100);
        assert!(!res.converged);
    }

    #[test]
    fn pipelined_zero_rhs_trivially_converges() {
        let a = poisson1d(32);
        let cfg = SolverConfig::default();
        let (m, mut shared, coster, mut partial, _) = setup(&a, &cfg);
        let res = run_cg_pipelined(&m, &mut shared, &vec![0.0; 32], &cfg, &coster, &mut partial);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn pipelined_indefinite_matrix_stalls_finite() {
        // A = −I: δ = (Ar, r) < 0 immediately; every fresh start breaks
        // down again, so the solve must stop as Stalled after the restart
        // budget with a finite report — exactly the classic semantics.
        let mut a = Coo::new(64, 64);
        for i in 0..64 {
            a.push(i, i, -1.0);
        }
        let csr = a.to_csr();
        let cfg = SolverConfig::default();
        let (m, mut shared, coster, mut partial, _) = setup(&csr, &cfg);
        let b = vec![1.0; 64];
        let res = run_cg_pipelined(&m, &mut shared, &b, &cfg, &coster, &mut partial);
        assert!(!res.converged);
        assert!(res.final_relres.is_finite());
        assert!(res.x.iter().all(|v| v.is_finite()));
        assert_eq!(res.iterations, MAX_CONSECUTIVE_RESTARTS);
        assert!(matches!(res.failure, Some(SolveFailure::Stalled { .. })));
        assert!(res
            .breakdowns
            .iter()
            .all(|e| e.kind == BreakdownKind::Curvature));
    }

    #[test]
    fn pipelined_workspace_reuse_is_identical() {
        let a = poisson1d(300);
        let cfg = SolverConfig::default();
        let (m, mut shared, coster, mut partial, b) = setup(&a, &cfg);
        let mut ws = SolverWorkspace::with_size(300);
        let ptrs = [ws.x.as_ptr(), ws.w.as_ptr(), ws.t.as_ptr()];
        let res1 = run_cg_pipelined_ws(&m, &mut shared, &b, &cfg, &coster, &mut partial, &mut ws);
        assert!(res1.converged);

        let mut shared2 = SharedTiles::load(&m);
        let eps_abs = cfg.tolerance * blas1::norm2(&b);
        let mut partial2 =
            PartialState::new(cfg.partial_convergence, m.tile_cols, cfg.tile_size, eps_abs);
        let res2 = run_cg_pipelined_ws(&m, &mut shared2, &b, &cfg, &coster, &mut partial2, &mut ws);
        assert_eq!(res1.iterations, res2.iterations);
        assert_eq!(res1.x, res2.x);
        assert_eq!(
            [ws.x.as_ptr(), ws.w.as_ptr(), ws.t.as_ptr()],
            ptrs,
            "workspace buffers must be reused"
        );
    }

    #[test]
    fn pipelined_trace_is_inert_and_counts_iterations() {
        let a = poisson1d(96);
        let base = SolverConfig::default();
        let (m, mut sh1, coster, mut p1, b) = setup(&a, &base);
        let off = run_cg_pipelined(&m, &mut sh1, &b, &base, &coster, &mut p1);
        assert!(off.trace.is_none());

        let cfg = SolverConfig {
            trace: mf_trace::TraceConfig::on(),
            ..SolverConfig::default()
        };
        let (m2, mut sh2, coster2, mut p2, b2) = setup(&a, &cfg);
        let on = run_cg_pipelined(&m2, &mut sh2, &b2, &cfg, &coster2, &mut p2);
        assert_eq!(off.x, on.x, "tracing must not perturb the numerics");
        assert_eq!(off.iterations, on.iterations);
        let trace = on.trace.expect("tracing enabled");
        let s = trace.summary();
        assert_eq!(s.warps, 1);
        assert_eq!(s.iterations, on.iterations);
    }

    #[test]
    fn pipelined_pcg_converges_fast_on_tridiagonal() {
        // ILU(0) of a tridiagonal is exact, so like classic PCG the
        // pipelined variant needs only a couple of iterations.
        let a = poisson1d(400);
        let ilu = ilu0(&a).unwrap();
        let cfg = SolverConfig::default();
        let m = TiledMatrix::from_csr_with(&a, 16, &ClassifyOptions::default());
        let mut shared = SharedTiles::load(&m);
        let mc = MultiCoster::new(CostModel::new(DeviceSpec::a100()), a.nrows);
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);
        let mut partial = PartialState::new(false, m.tile_cols, 16, 1e-10);
        let res = run_pcg_pipelined(&m, &mut shared, &ilu, &b, &cfg, &mc, &mut partial);
        assert!(res.converged, "relres {}", res.final_relres);
        assert!(res.iterations <= 4, "{} iterations", res.iterations);
        for v in &res.x {
            assert!((v - 1.0).abs() < 1e-6);
        }
        assert!(res.timeline.get(mf_gpu::Phase::SpTrsv) > 0.0);
    }

    #[test]
    fn pipelined_pcg_fixed_iterations_and_zero_rhs() {
        let a = poisson1d(64);
        let ilu = ilu0(&a).unwrap();
        let m = TiledMatrix::from_csr_with(&a, 16, &ClassifyOptions::default());
        let mc = MultiCoster::new(CostModel::new(DeviceSpec::a100()), a.nrows);

        let cfg = SolverConfig {
            fixed_iterations: Some(12),
            ..SolverConfig::default()
        };
        let mut shared = SharedTiles::load(&m);
        let mut b = vec![0.0; a.nrows];
        a.matvec(&vec![1.0; a.ncols], &mut b);
        let mut partial = PartialState::new(false, m.tile_cols, 16, 1e-10);
        let res = run_pcg_pipelined(&m, &mut shared, &ilu, &b, &cfg, &mc, &mut partial);
        assert_eq!(res.iterations, 12);

        let mut shared2 = SharedTiles::load(&m);
        let mut partial2 = PartialState::new(false, m.tile_cols, 16, 1e-10);
        let res0 = run_pcg_pipelined(
            &m,
            &mut shared2,
            &ilu,
            &vec![0.0; 64],
            &SolverConfig::default(),
            &mc,
            &mut partial2,
        );
        assert!(res0.converged);
        assert_eq!(res0.iterations, 0);
    }

    #[test]
    fn pipelined_residual_trajectory_tracks_classic() {
        // Drift characterization at the unit level: both recurrences'
        // residual trajectories agree closely while above the rounding
        // floor (the harness-level envelope test sweeps this across
        // fixtures). Below ~100·ε relative the pipelined recurrence is
        // known to level off differently — that part is floor noise, not
        // drift, and is excluded from the envelope.
        let a = poisson1d(200);
        let cfg = SolverConfig {
            trace_residuals: true,
            fixed_iterations: Some(40),
            partial_convergence: false,
            ..SolverConfig::default()
        };
        let (m, mut sh1, coster, mut p1, b) = setup(&a, &cfg);
        let mut ws = SolverWorkspace::new();
        let classic = run_cg_ws(&m, &mut sh1, &b, &cfg, &coster, &mut p1, &mut ws);
        let (m2, mut sh2, coster2, mut p2, b2) = setup(&a, &cfg);
        let pipe = run_cg_pipelined(&m2, &mut sh2, &b2, &cfg, &coster2, &mut p2);
        assert_eq!(classic.residual_history.len(), 40);
        assert_eq!(pipe.residual_history.len(), 40);
        let floor = 100.0 * f64::EPSILON;
        for (i, (c, p)) in classic
            .residual_history
            .iter()
            .zip(&pipe.residual_history)
            .enumerate()
        {
            if *c < floor || *p < floor {
                break;
            }
            let drift = (p / c).ln().abs();
            assert!(
                drift < 0.5,
                "iteration {i}: classic {c:e} vs pipelined {p:e} (|ln ratio| {drift:.3})"
            );
        }
    }
}
